"""Ablation A1 (Section 5.6): 3-level vs 4-level stage 2 page tables.

The paper added verified 3-level stage 2 support because fewer levels
mean fewer intermediate entries to cache, "useful for improving
performance on Arm CPUs with smaller TLBs".  The ablation measures
SeKVM's microbenchmark costs under both depths on both machines and
asserts: 3-level is cheaper on the tiny-TLB m400, and the difference is
much smaller on Seattle (whose TLB holds everything either way).
"""

import pytest

from repro.perf import Hypervisor, M400, SEATTLE, SimConfig, simulate_operation

OPERATIONS = ("Hypercall", "I/O Kernel", "I/O User", "Virtual IPI")


def sweep(machine):
    out = {}
    for levels in (3, 4):
        cfg = SimConfig(
            machine=machine, hypervisor=Hypervisor.SEKVM, s2_levels=levels
        )
        for op in OPERATIONS:
            out[(op, levels)] = simulate_operation(cfg, op)
    return out


def test_pt_level_ablation(benchmark):
    m400 = benchmark(sweep, M400)
    seattle = sweep(SEATTLE)
    print()
    print(f"{'operation':<12} {'m400 4lvl':>10} {'m400 3lvl':>10} "
          f"{'saving':>8} {'seattle 4lvl':>13} {'seattle 3lvl':>13}")
    for op in OPERATIONS:
        m4, m3 = m400[(op, 4)], m400[(op, 3)]
        s4, s3 = seattle[(op, 4)], seattle[(op, 3)]
        print(f"{op:<12} {m4:>10.0f} {m3:>10.0f} {1 - m3 / m4:>7.1%} "
              f"{s4:>13.0f} {s3:>13.0f}")
        # 3-level is never slower, and strictly helps on the m400.
        assert m3 <= m4
        assert s3 <= s4
    m400_saving = 1 - sum(m400[(op, 3)] for op in OPERATIONS) / sum(
        m400[(op, 4)] for op in OPERATIONS
    )
    seattle_saving = 1 - sum(seattle[(op, 3)] for op in OPERATIONS) / sum(
        seattle[(op, 4)] for op in OPERATIONS
    )
    print(f"aggregate saving: m400 {m400_saving:.1%}, "
          f"seattle {seattle_saving:.1%}")
    assert m400_saving > seattle_saving
    assert m400_saving > 0.01
