"""Section 5.6: verify every SeKVM version (8 Linux releases x {3,4}-
level stage 2 tables), plus the seeded-bug rejection suite.

This is the reproduction of "we have verified eight KVM versions ...
and that the weakened wDRF conditions [are] satisfied for both 3-level
and 4-level stage 2 page tables", with the checker runtime as the
benchmark metric (the analogue of proof-checking time).
"""

from conftest import run_once

from repro.sekvm import verify_all_versions, verify_sekvm


def test_verify_all_kvm_versions(benchmark):
    outcomes = run_once(benchmark, verify_all_versions)
    print()
    assert len(outcomes) == 16
    for outcome in outcomes:
        status = "verified" if outcome.all_verified else "FAILED"
        print(f"  {outcome.version.name:<20} {status}")
        assert outcome.all_verified, outcome.describe()
    print(f"verified {len(outcomes)} SeKVM configurations "
          f"(8 Linux versions x 2 page-table depths)")


def test_seeded_bugs_rejected(benchmark):
    outcome = run_once(benchmark, verify_sekvm, include_buggy=True)
    print()
    print(outcome.describe())
    assert outcome.all_as_expected
    rejected = [
        o for o in outcome.outcomes
        if not o.case.should_verify and not o.report.all_hold
    ]
    assert len(rejected) == 7
