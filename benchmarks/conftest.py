"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures, prints
the reproduced artifact next to the paper's numbers, and asserts the
reproduction targets (shape, not absolute cycles).  Heavyweight
state-space explorations run once per benchmark via
``benchmark.pedantic``.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark *fn* with a single round (for expensive explorations)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
