"""Figure 8: single-VM application performance normalized to native.

Reproduction targets: every workload runs at 0.5-1.0x native; SeKVM is
within 10% of unmodified KVM everywhere (the paper's headline result);
compute-bound Kernbench outperforms I/O-bound Apache/Redis; kernel
version (4.18 vs 5.4) barely matters.
"""

from repro.perf import (
    describe_table4,
    format_figure8,
    run_figure8,
    sekvm_vs_kvm_overhead,
)


def test_figure8_single_vm_apps(benchmark):
    results = benchmark(run_figure8)
    print()
    print(describe_table4())
    print()
    print(format_figure8(results))

    assert len(results) == 40
    for r in results:
        assert 0.5 < r.normalized_perf < 1.0, r

    overheads = sekvm_vs_kvm_overhead(results)
    worst = max(overheads.items(), key=lambda kv: kv[1])
    print(f"\nworst-case SeKVM overhead vs KVM: {worst[1]:.1%} at {worst[0]}")
    assert worst[1] < 0.10

    perfs = {
        (r.workload, r.machine, r.hypervisor, r.linux): r.normalized_perf
        for r in results
    }
    assert perfs[("Kernbench", "m400", "SeKVM", "4.18")] > perfs[
        ("Apache", "m400", "SeKVM", "4.18")
    ]
