"""Extension benchmark: new verification subjects + automatic repair.

Beyond SeKVM's primitives, the framework verifies systems the paper
never touched: a lock-free SPSC ring buffer and a seqlock (A8 in
EXPERIMENTS.md), and the repair engine derives minimal barrier fixes for
the broken variants — including re-deriving the paper's own Example 3
fix mechanically.
"""

import importlib.util
from pathlib import Path

from conftest import run_once

from repro.litmus import example3_vcpu
from repro.memory import compare_models
from repro.vrm import check_drf_kernel, check_theorem2
from repro.vrm.repair import repair_barriers

EXAMPLE = (
    Path(__file__).resolve().parents[1]
    / "examples" / "verify_your_own_kernel.py"
)
spec = importlib.util.spec_from_file_location("ring_example", EXAMPLE)
ring_example = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ring_example)


def extension_sweep():
    results = {}
    for correct in (True, False):
        program = ring_example.ring_buffer_program(correct)
        cmp = compare_models(program)
        drf = check_drf_kernel(
            program, [ring_example.SLOT0, ring_example.SLOT1]
        )
        results[program.name] = (cmp.equivalent, drf.holds)
    repair = repair_barriers(example3_vcpu(correct=False))
    return results, repair


def test_extension_subjects(benchmark):
    results, repair = run_once(benchmark, extension_sweep)
    print()
    for name, (robust, drf) in results.items():
        print(f"  {name:<26} robust={robust}  DRF={drf}")
    good = results["spsc-ring[rel-acq]"]
    bad = results["spsc-ring[plain]"]
    assert good == (True, True)
    assert bad == (False, False)
    print("  repair of Example 3:")
    print("   ", repair.describe(example3_vcpu(correct=False)).replace("\n", "\n    "))
    assert len(repair.fixes) == 2
    kinds = sorted(f.kind for f in repair.fixes)
    assert kinds == ["acquire", "release"]  # the paper's own fix, derived
