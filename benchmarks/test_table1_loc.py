"""Table 1: code-size breakdown of the verification effort.

Paper: VRM framework 3.4K Coq, SeKVM-satisfies-wDRF 3.8K Coq, SeKVM
security proofs on SC 34.2K Coq — conditions are ~an order of magnitude
cheaper than the security proofs, and the framework is a reusable
one-time cost.  The reproduction reports the same decomposition over
this repository and asserts the condition layer stays a small fraction
of the system layer.
"""

from repro.report import (
    condition_to_security_ratio,
    format_table1,
    loc_table,
)


def test_table1_loc_breakdown(benchmark):
    rows = benchmark(loc_table)
    print()
    print(format_table1(rows))
    by_name = {r.component: r.loc for r in rows}
    framework = by_name["VRM framework (models + wDRF sufficiency)"]
    conditions = by_name["SeKVM satisfies wDRF (programs + pipeline)"]
    security = by_name["SeKVM system + security model"]
    # Shape: the per-system condition layer is the smallest component,
    # far below the security/system model, mirroring the paper's ratio.
    assert conditions < security
    assert conditions < framework
    ratio = condition_to_security_ratio(rows)
    print(f"condition-layer / system-layer ratio: {ratio:.2f} "
          f"(paper: {3800 / 34200:.2f})")
    assert ratio < 0.5
