"""Extension benchmark: verification cost vs. concurrency.

The paper reports proof effort in lines of Coq (Table 1); the executable
analogue of verification *cost* is state-space size and wall time.  This
benchmark measures the DRF-Kernel exploration for ``gen_vmid`` at 1-3
CPUs on both the SC and relaxed push/pull models, documenting the
(expected, exponential) growth and the SC-vs-RM gap — the quantitative
reason the paper verifies most code on SC and pays the relaxed-model
price only for the conditions.
"""

import pathlib
import time

from conftest import run_once

from repro.memory import explore, pushpull_config
from repro.parallel.bench import (
    bench_exploration,
    format_bench,
    write_bench_json,
)
from repro.sekvm.ir_programs import NEXT_VMID_LOC, gen_vmid_program


def scalability_sweep():
    rows = []
    for n_cpus in (1, 2, 3):
        program = gen_vmid_program(correct=True, n_cpus=n_cpus)
        for relaxed in (False, True):
            cfg = pushpull_config(
                relaxed=relaxed,
                owned_access_required=[NEXT_VMID_LOC],
                max_states=4_000_000,
            )
            start = time.perf_counter()
            result = explore(program, cfg, observe_locs=[])
            elapsed = time.perf_counter() - start
            rows.append(
                (n_cpus, "RM" if relaxed else "SC",
                 result.states_explored, result.complete, elapsed,
                 result.panic_free)
            )
    return rows


def test_checker_scalability(benchmark):
    rows = run_once(benchmark, scalability_sweep)
    print()
    print(f"{'CPUs':>4} {'model':>6} {'states':>10} {'complete':>9} "
          f"{'seconds':>8} {'panic-free':>10}")
    for n, model, states, complete, secs, panic_free in rows:
        print(f"{n:>4} {model:>6} {states:>10} {str(complete):>9} "
              f"{secs:>8.2f} {str(panic_free):>10}")
        assert complete and panic_free
    by_key = {(n, m): s for n, m, s, _, _, _ in rows}
    # Relaxed exploration costs more than SC at every width, and both
    # grow with concurrency.
    for n in (1, 2, 3):
        assert by_key[(n, "RM")] >= by_key[(n, "SC")]
    assert by_key[(3, "SC")] > by_key[(2, "SC")] > by_key[(1, "SC")]
    rm_ratio = by_key[(2, "RM")] / by_key[(2, "SC")]
    print(f"RM/SC state-space ratio at 2 CPUs: {rm_ratio:.0f}x "
          f"(why VRM verifies most code on the SC model)")
    assert rm_ratio > 2

def test_exploration_engine_bench(benchmark):
    """Track the exploration engine's perf trajectory across PRs.

    Measures the litmus corpus and ``verify_sekvm`` serial vs. parallel
    and the POR+interning effect against the unreduced/uninterned
    baseline, then persists the numbers to ``BENCH_exploration.json``
    at the repo root for CI to diff.
    """
    results = run_once(benchmark, bench_exploration, jobs=4)
    print()
    print(format_bench(results))
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exploration.json"
    write_bench_json(str(out), results)

    corpus = results["litmus_corpus"]
    assert corpus["serial"]["all_passed"]
    assert corpus["parallel"]["all_passed"]
    # The optimized engine must find exactly the baseline's behaviors
    # and never explore more states than it.
    ph = results["promise_heavy"]
    assert ph["optimized"]["behaviors"] == ph["baseline"]["behaviors"]
    assert ph["optimized"]["complete"] and ph["baseline"]["complete"]
    assert ph["optimized"]["states"] <= ph["baseline"]["states"]
    # Frontier sharding is bit-identical to the serial optimized run.
    assert ph["sharded"]["behaviors"] == ph["optimized"]["behaviors"]
    assert ph["sharded"]["states"] == ph["optimized"]["states"]
    assert ph["sharded"]["complete"]
    # Fused wDRF passes must reach identical verdicts in fewer
    # explorations and fewer states than per-condition passes.
    wdrf = results["wdrf"]
    assert wdrf["fused"]["as_expected"] and wdrf["unfused"]["as_expected"]
    assert wdrf["fused"]["explorations"] < wdrf["unfused"]["explorations"]
    assert wdrf["fused"]["states"] <= wdrf["unfused"]["states"]
    assert results["verify_sekvm"]["serial"]["all_verified"]
    assert results["verify_sekvm"]["parallel"]["all_verified"]
