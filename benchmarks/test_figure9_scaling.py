"""Figure 9: multi-VM scalability, 1..32 VMs on the m400 (Linux 4.18).

Reproduction targets: per-VM performance is flat while the machine has
spare cores (8 cores / 2-vCPU VMs -> up to 4 VMs), then decays roughly
proportionally with oversubscription; KVM and SeKVM decay together with
SeKVM no more than 10% behind at any VM count; the 1-VM points match
Figure 8.
"""

from repro.perf import (
    Hypervisor,
    M400,
    SimConfig,
    VM_COUNTS,
    format_figure9,
    normalized_performance,
    run_figure9,
    simulate_scaling,
    workload_by_name,
)


def test_figure9_multi_vm_scaling(benchmark):
    points = benchmark(run_figure9)
    print()
    print(format_figure9(points))

    table = {
        (p.workload, p.hypervisor, p.vms): p.normalized_perf for p in points
    }

    worst_gap, worst_at = 0.0, None
    for (workload, hyp, n), perf in table.items():
        if hyp != "SeKVM":
            continue
        gap = 1 - perf / table[(workload, "KVM", n)]
        if gap > worst_gap:
            worst_gap, worst_at = gap, (workload, n)
    print(f"\nworst SeKVM-vs-KVM gap: {worst_gap:.1%} at {worst_at}")
    assert worst_gap < 0.10

    for workload in ("Apache", "Kernbench", "Redis"):
        for hyp in ("KVM", "SeKVM"):
            # Flat while undersubscribed...
            assert table[(workload, hyp, 2)] == (
                table[(workload, hyp, 1)]
            ) or abs(
                table[(workload, hyp, 2)] - table[(workload, hyp, 1)]
            ) < 0.05
            # ...then decaying with oversubscription.
            assert table[(workload, hyp, 32)] < table[(workload, hyp, 8)]
            ratio = table[(workload, hyp, 32)] / table[(workload, hyp, 8)]
            assert 0.15 < ratio < 0.45   # ~4x fewer cycles per VM

    # 1-VM points line up with Figure 8 (the paper notes they coincide).
    cfg = SimConfig(machine=M400, hypervisor=Hypervisor.KVM)
    for name in ("Apache", "Redis"):
        workload = workload_by_name(name)
        assert abs(
            simulate_scaling(workload, cfg, 1)
            - normalized_performance(workload, cfg, vcpus=2)
        ) < 0.06
