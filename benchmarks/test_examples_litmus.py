"""Section 2's Examples 1-7 as an exploration benchmark.

Regenerates the paper's bug demonstrations: each buggy kernel shape
exhibits an outcome on the Promising Arm model that the SC model
forbids, and each wDRF-conforming fix eliminates it.  Benchmarks the
full corpus exploration (the cost of "model checking" the examples).
"""

from conftest import run_once

from repro.litmus import corpus_report, full_corpus, run_corpus


def test_examples_and_classic_corpus(benchmark):
    outcomes = run_once(benchmark, run_corpus)
    print()
    print(corpus_report(outcomes))
    assert all(o.passed for o in outcomes), corpus_report(outcomes)
    rm_bugs = [o for o in outcomes if o.test.exposes_rm_bug]
    assert len(rm_bugs) >= 8
    total_states = sum(o.rm.states_explored for o in outcomes)
    print(f"total relaxed-model states explored: {total_states}")
