"""Extension benchmark: push-button lock verification on relaxed memory.

The paper's related work points at VSync's model-checked verification of
synchronization primitives on Armv8; VRM's machinery supports the same
sweep.  Every correct primitive (ticket, TAS, TTAS, DMB-fenced TAS)
verifies all four properties (ownership DRF, barrier placement, RM ⊆ SC,
and direct mutual exclusion); every barrier-free variant fails all of
them — including concretely losing counter updates on the relaxed model.
"""

from conftest import run_once

from repro.sync import verify_all


def test_lock_verification_sweep(benchmark):
    results = run_once(benchmark, verify_all)
    print()
    for result in results:
        print(" ", result.describe())
        assert result.as_expected, result.describe()
    verified = sum(1 for r in results if r.verified)
    print(f"{verified}/{len(results)} primitives verified "
          f"(the rest correctly rejected)")
    assert verified == 5
