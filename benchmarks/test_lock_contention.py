"""Extension benchmark: direct lock-contention measurement.

The paper concludes its evaluation with: the locks SeKVM adds to make
its proofs tractable do not adversely affect scalability.  This
benchmark measures the claim directly on the functional model — lock
acquisitions grow linearly with VM count while contention stays at zero
in the (serialized) functional execution, and, structurally, stage 2
locks are per-principal so cross-VM contention is impossible by
construction.
"""

from conftest import run_once

from repro.perf.contention import format_contention, run_contention_study


def test_lock_contention_study(benchmark):
    points = run_once(benchmark, run_contention_study)
    print()
    print(format_contention(points))
    by_vms = {p.vms: p for p in points}
    # Acquisitions scale with offered load...
    assert by_vms[32].vm_lock_acquisitions > by_vms[1].vm_lock_acquisitions
    assert by_vms[32].s2pt_acquisitions > by_vms[1].s2pt_acquisitions
    # ...while the critical sections stay tiny and uncontended.
    for p in points:
        assert p.vm_lock_contention_rate == 0.0
        assert p.s2pt_contention_rate == 0.0
    # Structural scalability: stage 2 locks are per-principal, so the
    # per-VM acquisition count is independent of the VM count.
    per_vm_1 = by_vms[1].s2pt_acquisitions / 1
    per_vm_32 = by_vms[32].s2pt_acquisitions / 32
    assert abs(per_vm_1 - per_vm_32) / per_vm_1 < 0.35
