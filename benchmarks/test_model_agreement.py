"""Ablation A3: model agreement (the executable wDRF theorem).

Across the litmus corpus and the KCore primitive programs:

* SC behaviors are always a subset of Promising Arm behaviors (the
  relaxed model only adds outcomes);
* for programs satisfying the wDRF conditions, the sets coincide on
  kernel observables (Theorems 1/2/4);
* for the Section-2 buggy shapes, the relaxed model strictly exceeds SC
  (the theorem's preconditions are necessary in practice).
"""

from conftest import run_once

from repro.litmus import classic_corpus, extended_corpus, run_litmus
from repro.memory import compare_models, explore_promising
from repro.memory.axiomatic import axiomatic_outcomes, eligible
from repro.sekvm import kcore_buggy_cases, kcore_verified_cases
from repro.vrm import check_theorem4


def agreement_sweep():
    subset_checks = 0
    axiomatic_matches = 0
    for test in classic_corpus() + extended_corpus():
        cmp = compare_models(test.program, observe_locs=[])
        assert cmp.sc.behaviors <= cmp.rm.behaviors, test.name
        subset_checks += 1
        if eligible(test.program):
            ax = axiomatic_outcomes(test.program)
            op = explore_promising(
                test.program,
                observe_locs=sorted(test.program.initial_memory),
            )
            assert ax == {(b.registers, b.memory) for b in op.behaviors}, (
                test.name
            )
            axiomatic_matches += 1
    assert axiomatic_matches >= 18
    verified, buggy = [], []
    for case in kcore_verified_cases(4):
        result = check_theorem4(case.spec.program)
        verified.append((case.name, result))
    for case in kcore_buggy_cases(4):
        result = check_theorem4(case.spec.program)
        buggy.append((case.name, result))
    return subset_checks, verified, buggy


def test_model_agreement(benchmark):
    subset_checks, verified, buggy = run_once(benchmark, agreement_sweep)
    print()
    print(f"SC ⊆ RM confirmed on {subset_checks} classic litmus programs")
    for name, result in verified:
        print(f"  wDRF-conforming {name:<44} containment "
              f"{'holds' if result.holds else 'FAILS'}")
        assert result.verified, f"{name}: {result.describe()}"
    strict = 0
    for name, result in buggy:
        marker = "RM ⊋ SC" if not result.holds else "RM = SC"
        print(f"  seeded-bug      {name:<44} {marker}")
        if not result.holds:
            strict += 1
    # The concurrency bugs must show strict excess; static-only bugs
    # (EL2 overwrite, missing TLBI with different observables) may not.
    assert strict >= 4
