"""Extension benchmark: the observability layer's no-op cost.

The tracer's contract (`docs/OBSERVABILITY.md`) is that an uninstalled
sink costs one pointer comparison per emission site — the instrumented
engine must run the `promise_heavy` workload at the same speed the
checked-in `BENCH_exploration.json` recorded before/with the
instrumentation.  This benchmark times the workload with tracing off
and asserts the wall time stays within a noise band of the tracked
number; a regression here means an emission site leaked work onto the
untraced hot path (formatting, allocation, a metrics call per state).
"""

import json
import multiprocessing
import os
import pathlib
import time

import pytest
from conftest import run_once

from repro.memory.exploration import explore
from repro.memory.semantics import ModelConfig
from repro.obs import metrics, tracer
from repro.parallel.bench import promise_heavy_program

BENCH_FILE = pathlib.Path(__file__).parents[1] / "BENCH_exploration.json"

#: Allowed slowdown vs the tracked `promise_heavy.optimized` timing.
#: The measured no-op overhead is <1%; the band absorbs runner noise.
NOISE_BAND = 1.10


def _timed_promise_heavy():
    assert tracer.sink() is None and not metrics.metrics_enabled()
    program = promise_heavy_program()
    cfg = ModelConfig(relaxed=True, max_promises_per_thread=3)
    start = time.perf_counter()
    result = explore(program, cfg, por=True)
    return time.perf_counter() - start, result


def test_noop_tracing_overhead(benchmark):
    wall, result = run_once(benchmark, _timed_promise_heavy)
    assert result.complete

    tracked = json.loads(BENCH_FILE.read_text())
    baseline = tracked["promise_heavy"]["optimized"]
    assert result.states_explored == baseline["states"], (
        "instrumentation changed the explored state space"
    )
    ratio = wall / baseline["wall_seconds"]
    print(
        f"\npromise_heavy no-op tracing: {wall:.3f}s vs tracked "
        f"{baseline['wall_seconds']:.3f}s (x{ratio:.3f})"
    )
    assert ratio < NOISE_BAND, (
        f"no-op tracing path is {ratio:.2f}x the tracked timing — an "
        "emission site is doing work while no sink is installed"
    )


def _timed_promise_heavy_sharded():
    assert tracer.sink() is None and not metrics.metrics_enabled()
    program = promise_heavy_program()
    cfg = ModelConfig(relaxed=True, max_promises_per_thread=3)
    os.environ["REPRO_SHARD"] = "2"
    try:
        start = time.perf_counter()
        result = explore(program, cfg, por=True)
        return time.perf_counter() - start, result
    finally:
        os.environ.pop("REPRO_SHARD", None)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="frontier sharding requires the fork start method",
)
def test_noop_tracing_overhead_sharded(benchmark):
    """The sharded orchestrator's emission sites (`shard_steal`,
    `visited_filter_hit`, the `shard_explore` span) must cost nothing
    with no sink installed, in workers and orchestrator alike — the
    sharded wall time must stay in the same noise band around its own
    tracked `promise_heavy.sharded` baseline."""
    wall, result = run_once(benchmark, _timed_promise_heavy_sharded)
    assert result.complete

    tracked = json.loads(BENCH_FILE.read_text())
    baseline = tracked["promise_heavy"]["sharded"]
    assert result.states_explored == baseline["states"], (
        "sharding changed the explored state space"
    )
    ratio = wall / baseline["wall_seconds"]
    print(
        f"\npromise_heavy no-op tracing (sharded): {wall:.3f}s vs tracked "
        f"{baseline['wall_seconds']:.3f}s (x{ratio:.3f})"
    )
    assert ratio < NOISE_BAND, (
        f"sharded no-op tracing path is {ratio:.2f}x the tracked timing — "
        "an emission site is doing work while no sink is installed"
    )
