"""Table 3: microbenchmark cycle counts, KVM vs SeKVM on m400/Seattle.

Reproduction targets (shapes from the paper):

* SeKVM costs more than KVM for every operation on every machine;
* the overhead is much larger on the tiny-TLB m400 (~1.8-2.3x) than on
  Seattle (~1.2-1.3x), because KServ's 4 KB stage-2 mappings thrash the
  small TLB;
* simulated absolute cycles land within 25% of the paper's Table 3.
"""

from repro.perf import (
    PAPER_TABLE3,
    describe_table2,
    format_table3,
    overhead_ratio,
    run_table3,
)

OPERATIONS = ("Hypercall", "I/O Kernel", "I/O User", "Virtual IPI")


def test_table3_microbenchmarks(benchmark):
    cells = benchmark(run_table3)
    print()
    print(describe_table2())
    print()
    print(format_table3(cells))

    assert len(cells) == 16
    for cell in cells:
        assert 0.75 <= cell.ratio_to_paper <= 1.25, cell

    for op in OPERATIONS:
        by_hyp = {
            (c.machine, c.hypervisor): c.cycles
            for c in cells
            if c.operation == op
        }
        for machine in ("m400", "seattle"):
            assert by_hyp[(machine, "SeKVM")] > by_hyp[(machine, "KVM")]
        m400_ratio = overhead_ratio(cells, op, "m400")
        seattle_ratio = overhead_ratio(cells, op, "seattle")
        print(f"{op:<12} SeKVM/KVM: m400 {m400_ratio:.2f}x, "
              f"seattle {seattle_ratio:.2f}x "
              f"(paper: "
              f"{PAPER_TABLE3[(op, 'm400', 'SeKVM')] / PAPER_TABLE3[(op, 'm400', 'KVM')]:.2f}x / "
              f"{PAPER_TABLE3[(op, 'seattle', 'SeKVM')] / PAPER_TABLE3[(op, 'seattle', 'KVM')]:.2f}x)")
        assert m400_ratio > seattle_ratio
