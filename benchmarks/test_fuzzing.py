"""Extension benchmark: model fuzzing throughput.

Sweeps seeded random programs through three oracles — SC ⊆ Promising
containment, operational/axiomatic agreement on eligible programs, and
exploration completeness — and reports programs-per-second.  This is the
repository's continuous confidence check that the hardware models stay
pinned to each other and to the architecture.
"""

from conftest import run_once

from repro.litmus.generate import GeneratorConfig, random_program
from repro.memory import explore_promising, explore_sc
from repro.memory.axiomatic import axiomatic_outcomes, eligible

N_PROGRAMS = 60


def fuzz_sweep():
    cfg = GeneratorConfig(n_threads=2, min_ops=2, max_ops=3)
    containment_checks = agreement_checks = 0
    for seed in range(N_PROGRAMS):
        program = random_program(seed, cfg)
        sc = explore_sc(program)
        rm = explore_promising(program)
        assert sc.complete and rm.complete, program.name
        assert sc.behaviors <= rm.behaviors, program.name
        containment_checks += 1
        if eligible(program):
            ax = axiomatic_outcomes(program)
            op = explore_promising(
                program, observe_locs=sorted(program.initial_memory)
            )
            assert ax == {(b.registers, b.memory) for b in op.behaviors}, (
                program.name
            )
            agreement_checks += 1
    return containment_checks, agreement_checks


def test_model_fuzzing(benchmark):
    containment, agreement = run_once(benchmark, fuzz_sweep)
    print()
    print(f"SC ⊆ RM containment held on {containment} random programs")
    print(f"operational == axiomatic on {agreement} eligible programs")
    assert containment == N_PROGRAMS
    assert agreement >= 20
