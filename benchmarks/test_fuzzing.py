"""Extension benchmark: model fuzzing throughput.

Two sweeps share this file.  The legacy sweep drives seeded random
programs through the inline oracles — SC ⊆ Promising containment,
operational/axiomatic agreement on eligible programs, and exploration
completeness.  The conformance sweep runs the same class of programs
through :func:`repro.conformance.run_fuzz`, which layers on the
equivalence, engine-config, and monitor-truth oracles; its
programs-per-second figure is the cost of the full differential
harness, the number the CI fuzz budget is calibrated against.
"""

from conftest import run_once

from repro.conformance import FuzzConfig, run_fuzz
from repro.litmus.generate import GeneratorConfig, random_program
from repro.memory import explore_promising, explore_sc
from repro.memory.axiomatic import axiomatic_outcomes, eligible

N_PROGRAMS = 60
N_CONFORMANCE = 40


def fuzz_sweep():
    cfg = GeneratorConfig(n_threads=2, min_ops=2, max_ops=3)
    containment_checks = agreement_checks = 0
    for seed in range(N_PROGRAMS):
        program = random_program(seed, cfg)
        sc = explore_sc(program)
        rm = explore_promising(program)
        assert sc.complete and rm.complete, program.name
        assert sc.behaviors <= rm.behaviors, program.name
        containment_checks += 1
        if eligible(program):
            ax = axiomatic_outcomes(program)
            op = explore_promising(
                program, observe_locs=sorted(program.initial_memory)
            )
            assert ax == {(b.registers, b.memory) for b in op.behaviors}, (
                program.name
            )
            agreement_checks += 1
    return containment_checks, agreement_checks


def conformance_sweep():
    report = run_fuzz(FuzzConfig(seed=0, budget=N_CONFORMANCE))
    assert report.ok, "\n".join(f.describe() for f in report.findings)
    return report


def test_model_fuzzing(benchmark):
    containment, agreement = run_once(benchmark, fuzz_sweep)
    print()
    print(f"SC ⊆ RM containment held on {containment} random programs")
    print(f"operational == axiomatic on {agreement} eligible programs")
    assert containment == N_PROGRAMS
    assert agreement >= 20


def test_conformance_fuzzing(benchmark):
    report = run_once(benchmark, conformance_sweep)
    print()
    print(report.describe())
    assert report.programs == N_CONFORMANCE
    assert report.coverage.states_explored > 0
