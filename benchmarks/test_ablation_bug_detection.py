"""Ablation A2: which checker catches which seeded bug.

DESIGN.md calls out the tightness argument: every class of wDRF
violation (missing lock barriers, unsynchronized context handoff,
non-transactional page-table update, missing barrier or TLBI on unmap,
EL2 overwrite, raw kernel reads of user memory) must be rejected by the
matching condition checker — and *only* break the conditions it should.
"""

from conftest import run_once

from repro.sekvm import kcore_buggy_cases
from repro.vrm import WDRFCondition, verify_wdrf

#: Which conditions each seeded bug must break.
EXPECTED_FAILURES = {
    "gen_vmid[no-barriers]": {
        WDRFCondition.DRF_KERNEL,
        WDRFCondition.NO_BARRIER_MISUSE,
    },
    "vcpu_switch[no-barriers]": {
        WDRFCondition.DRF_KERNEL,
        WDRFCondition.NO_BARRIER_MISUSE,
    },
    "set_s2pt[4lvl][non-transactional]": {
        WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
    },
    "clear_s2pt[4lvl][no-barrier]": {
        WDRFCondition.SEQUENTIAL_TLB_INVALIDATION,
    },
    "clear_s2pt[4lvl][no-tlbi]": {
        WDRFCondition.SEQUENTIAL_TLB_INVALIDATION,
    },
    "set_el2_pt[overwrite]": {
        WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
    },
    "snapshot[raw-read]": {
        WDRFCondition.WEAK_MEMORY_ISOLATION,
    },
}


def run_detection():
    results = {}
    for case in kcore_buggy_cases(s2_levels=4):
        report = verify_wdrf(case.spec)
        failed = {
            cond
            for cond, result in report.results.items()
            if not result.holds
        }
        results[case.name] = failed
    return results


def test_bug_detection_matrix(benchmark):
    results = run_once(benchmark, run_detection)
    print()
    print(f"{'seeded bug':<38} {'conditions violated'}")
    for name, failed in results.items():
        print(f"{name:<38} {', '.join(sorted(c.value for c in failed))}")
        expected = EXPECTED_FAILURES[name]
        assert expected <= failed, (
            f"{name}: expected {expected} to fail, got {failed}"
        )
    assert set(results) == set(EXPECTED_FAILURES)
