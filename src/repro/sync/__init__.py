"""Synchronization-primitive library and push-button verification."""

from repro.sync.primitives import (
    SyncPrimitive,
    all_primitives,
    clh_lock,
    dmb_tas_lock,
    llsc_lock,
    tas_lock,
    ticket_lock,
    ttas_lock,
)
from repro.sync.verify import (
    COUNTER_LOC,
    SyncVerification,
    counter_harness,
    verify_all,
    verify_primitive,
)

__all__ = [
    "SyncPrimitive",
    "all_primitives",
    "clh_lock",
    "dmb_tas_lock",
    "llsc_lock",
    "tas_lock",
    "ticket_lock",
    "ttas_lock",
    "COUNTER_LOC",
    "SyncVerification",
    "counter_harness",
    "verify_all",
    "verify_primitive",
]
