"""A library of synchronization primitives as IR emitters.

The paper verifies one lock (Linux's ticket lock, Figure 7); its
related-work section points at VSync's push-button verification of many
primitives on weak memory models.  This module provides that breadth:
several lock algorithms, each in a *correct* (barriered) and a *broken*
(barrier-free) variant, all expressed against the same emitter
interface so the wDRF checkers and the mutual-exclusion harness in
:mod:`repro.sync.verify` can sweep them uniformly.

Primitives:

* ``ticket_lock``   — Figure 7: LDADDA ticket + load-acquire spin +
  store-release unlock (what KCore uses).
* ``tas_lock``      — test-and-set: CASA spin + store-release unlock.
* ``ttas_lock``     — test-and-test-and-set: plain-read spin, then CASA,
  store-release unlock.
* ``dmb_tas_lock``  — plain CAS guarded by explicit ``DMB SY`` barriers
  (the "fence everything" style) — also correct, proving the checkers
  accept barrier placement that differs from acquire/release.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.ir.builder import ThreadBuilder
from repro.ir.expr import ExprLike, Reg
from repro.ir.instructions import MemSpace


@dataclass(frozen=True)
class SyncPrimitive:
    """One synchronization algorithm, parameterized by correctness.

    ``emit_acquire``/``emit_release`` write the algorithm into a thread
    builder; ``protects`` are the shared locations to pull/push at the
    critical-section boundary (the push/pull instrumentation points).
    """

    name: str
    sync_locs: Tuple[Tuple[int, int], ...]      # (location, initial value)
    emit_acquire: Callable[[ThreadBuilder, Sequence[ExprLike]], None]
    emit_release: Callable[[ThreadBuilder, Sequence[ExprLike]], None]
    correct: bool

    def initial_memory(self) -> Dict[int, int]:
        return dict(self.sync_locs)

    def sync_spaces(self) -> Dict[int, MemSpace]:
        return {loc: MemSpace.SYNC for loc, _ in self.sync_locs}


# Default lock-word locations (shared by all primitives; one lock each).
TICKET_LOC, NOW_LOC, FLAG_LOC = 0x10, 0x11, 0x12


def ticket_lock(correct: bool = True) -> SyncPrimitive:
    """Linux's arm64 ticket lock (Figure 7)."""

    def acquire(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        b.faa("my_ticket", TICKET_LOC, acquire=correct)
        b.spin_until_eq("now", NOW_LOC, "my_ticket", acquire=correct)
        if protects:
            b.pull(*protects)

    def release(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        if protects:
            b.push(*protects)
        b.load("_t", NOW_LOC, space=MemSpace.SYNC)
        b.store(NOW_LOC, Reg("_t") + 1, release=correct,
                space=MemSpace.SYNC)

    return SyncPrimitive(
        name=f"ticket-lock[{'acq-rel' if correct else 'no-barriers'}]",
        sync_locs=((TICKET_LOC, 0), (NOW_LOC, 0)),
        emit_acquire=acquire,
        emit_release=release,
        correct=correct,
    )


def tas_lock(correct: bool = True) -> SyncPrimitive:
    """Test-and-set spinlock on a CAS loop."""

    def acquire(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        loop = b.fresh_label("tas")
        b.label(loop)
        b.cas("old", FLAG_LOC, 0, 1, acquire=correct)
        b.bnz(Reg("old"), loop)
        if protects:
            b.pull(*protects)

    def release(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        if protects:
            b.push(*protects)
        b.store(FLAG_LOC, 0, release=correct, space=MemSpace.SYNC)

    return SyncPrimitive(
        name=f"tas-lock[{'acq-rel' if correct else 'no-barriers'}]",
        sync_locs=((FLAG_LOC, 0),),
        emit_acquire=acquire,
        emit_release=release,
        correct=correct,
    )


def ttas_lock(correct: bool = True) -> SyncPrimitive:
    """Test-and-test-and-set: spin on a plain read before the CAS."""

    def acquire(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        retry = b.fresh_label("ttas")
        b.label(retry)
        b.spin_until_eq("seen", FLAG_LOC, 0, acquire=False)
        b.cas("old", FLAG_LOC, 0, 1, acquire=correct)
        b.bnz(Reg("old"), retry)
        if protects:
            b.pull(*protects)

    def release(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        if protects:
            b.push(*protects)
        b.store(FLAG_LOC, 0, release=correct, space=MemSpace.SYNC)

    return SyncPrimitive(
        name=f"ttas-lock[{'acq-rel' if correct else 'no-barriers'}]",
        sync_locs=((FLAG_LOC, 0),),
        emit_acquire=acquire,
        emit_release=release,
        correct=correct,
    )


def dmb_tas_lock() -> SyncPrimitive:
    """Plain CAS with explicit DMB SY fences — the pre-v8.1 style.

    Demonstrates that the checkers accept full barriers wherever
    acquire/release would stand (the conditions are about ordering, not
    one specific instruction encoding).
    """

    def acquire(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        loop = b.fresh_label("dmbtas")
        b.label(loop)
        b.cas("old", FLAG_LOC, 0, 1, acquire=False)
        b.bnz(Reg("old"), loop)
        b.barrier("full")
        if protects:
            b.pull(*protects)

    def release(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        if protects:
            b.push(*protects)
        b.barrier("full")
        b.store(FLAG_LOC, 0, space=MemSpace.SYNC)

    return SyncPrimitive(
        name="dmb-tas-lock[dmb-sy]",
        sync_locs=((FLAG_LOC, 0),),
        emit_acquire=acquire,
        emit_release=release,
        correct=True,
    )


def llsc_lock(correct: bool = True) -> SyncPrimitive:
    """Spinlock built on LDXR/STXR (the pre-LSE Linux idiom).

    Acquire: load-exclusive the flag (with acquire), retry while held,
    store-exclusive 1, retry on monitor loss.  Release: store-release 0.
    """

    def acquire(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        retry = b.fresh_label("llsc")
        b.label(retry)
        b.ldxr("seen", FLAG_LOC, acquire=correct)
        b.bnz(Reg("seen"), retry)          # held: retry
        b.stxr("status", FLAG_LOC, 1)
        b.bnz(Reg("status"), retry)        # monitor lost: retry
        if protects:
            b.pull(*protects)

    def release(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        if protects:
            b.push(*protects)
        b.store(FLAG_LOC, 0, release=correct, space=MemSpace.SYNC)

    return SyncPrimitive(
        name=f"llsc-lock[{'acq-rel' if correct else 'no-barriers'}]",
        sync_locs=((FLAG_LOC, 0),),
        emit_acquire=acquire,
        emit_release=release,
        correct=correct,
    )


#: CLH lock locations: a tail pointer plus one queue node per CPU and a
#: free dummy node (node value 0 = released, 1 = held).
CLH_TAIL, CLH_DUMMY, CLH_NODE0, CLH_NODE1 = 0x18, 0x19, 0x1A, 0x1B
_CLH_NODES = (CLH_NODE0, CLH_NODE1)


def clh_lock(correct: bool = True) -> SyncPrimitive:
    """CLH queue lock: swap yourself onto the tail, spin on your
    predecessor's node (the queue-lock family CertiKOS verified).

    The tail swap is a CAS retry loop; publishing the node must be
    release-ordered (the flag write precedes the link) and the
    predecessor spin acquire-ordered — dropping either is the broken
    variant.
    """

    def acquire(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        node = _CLH_NODES[b.tid % len(_CLH_NODES)]
        b.store(node, 1, release=correct, space=MemSpace.SYNC)
        retry = b.fresh_label("clhswap")
        b.label(retry)
        b.load("pred", CLH_TAIL, space=MemSpace.SYNC)
        b.cas("got", CLH_TAIL, Reg("pred"), node, release=correct)
        b.bnz(Reg("got") - Reg("pred"), retry)
        b.spin_until_eq("pflag", Reg("pred"), 0, acquire=correct)
        if protects:
            b.pull(*protects)

    def release(b: ThreadBuilder, protects: Sequence[ExprLike]) -> None:
        node = _CLH_NODES[b.tid % len(_CLH_NODES)]
        if protects:
            b.push(*protects)
        b.store(node, 0, release=correct, space=MemSpace.SYNC)

    return SyncPrimitive(
        name=f"clh-lock[{'acq-rel' if correct else 'no-barriers'}]",
        sync_locs=(
            (CLH_TAIL, CLH_DUMMY),
            (CLH_DUMMY, 0),
            (CLH_NODE0, 0),
            (CLH_NODE1, 0),
        ),
        emit_acquire=acquire,
        emit_release=release,
        correct=correct,
    )


def all_primitives() -> List[SyncPrimitive]:
    """Every primitive in both variants (correct first)."""
    return [
        ticket_lock(True),
        tas_lock(True),
        ttas_lock(True),
        llsc_lock(True),
        dmb_tas_lock(),
        ticket_lock(False),
        tas_lock(False),
        ttas_lock(False),
        llsc_lock(False),
    ]
