"""Push-button verification of synchronization primitives on relaxed
memory (the VSync-style sweep enabled by VRM's machinery).

Each primitive is dropped into the standard *protected counter* harness:
``n`` CPUs acquire, increment a shared counter, release.  Verification
then asks four questions:

1. **DRF-Kernel** — does the ownership discipline hold on the push/pull
   Promising model (no CPU touches the counter without owning it)?
2. **No-Barrier-Misuse** — is every ownership transfer covered by
   barriers (statically and dynamically)?
3. **Theorem 2** — are the harness's relaxed behaviors contained in its
   SC behaviors?
4. **Mutual exclusion, directly** — on the relaxed model, is the final
   counter always exactly ``n`` (no lost updates)?

A correct primitive answers yes to all four; a barrier-free variant
fails all of them — including losing counter updates on real relaxed
semantics, which is the concrete bug the abstractions are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ir import Reg, ThreadBuilder, build_program
from repro.ir.program import Program
from repro.memory import explore_promising
from repro.sync.primitives import SyncPrimitive, all_primitives
from repro.vrm import (
    ConditionResult,
    check_drf_kernel,
    check_no_barrier_misuse,
    check_theorem2,
)
from repro.vrm.theorem import TheoremResult

COUNTER_LOC = 0x20


def counter_harness(prim: SyncPrimitive, n_cpus: int = 2) -> Program:
    """The protected-counter program for one primitive."""
    threads = []
    for tid in range(n_cpus):
        b = ThreadBuilder(tid, name=f"cpu{tid}")
        prim.emit_acquire(b, [COUNTER_LOC])
        b.load("v", COUNTER_LOC)
        b.store(COUNTER_LOC, Reg("v") + 1)
        prim.emit_release(b, [COUNTER_LOC])
        threads.append(b)
    init = prim.initial_memory()
    init[COUNTER_LOC] = 0
    return build_program(
        threads,
        observed={tid: ["v"] for tid in range(n_cpus)},
        initial_memory=init,
        spaces=prim.sync_spaces(),
        name=f"counter[{prim.name}]",
    )


@dataclass(frozen=True)
class SyncVerification:
    """Verification verdicts for one primitive."""

    primitive: SyncPrimitive
    drf: ConditionResult
    barrier: ConditionResult
    theorem: TheoremResult
    mutual_exclusion: bool
    exhaustive: bool

    @property
    def verified(self) -> bool:
        return (
            self.drf.verified
            and self.barrier.verified
            and self.theorem.verified
            and self.mutual_exclusion
            and self.exhaustive
        )

    @property
    def as_expected(self) -> bool:
        return self.verified == self.primitive.correct

    def describe(self) -> str:
        return (
            f"{self.primitive.name:<32} "
            f"DRF={'ok' if self.drf.holds else 'FAIL'} "
            f"barriers={'ok' if self.barrier.holds else 'FAIL'} "
            f"RM⊆SC={'ok' if self.theorem.holds else 'FAIL'} "
            f"mutex={'ok' if self.mutual_exclusion else 'FAIL'} "
            f"-> {'VERIFIED' if self.verified else 'REJECTED'}"
        )


def verify_primitive(prim: SyncPrimitive, n_cpus: int = 2) -> SyncVerification:
    """Run the full verification battery on one primitive."""
    program = counter_harness(prim, n_cpus)
    drf = check_drf_kernel(program, shared_locs=[COUNTER_LOC])
    barrier = check_no_barrier_misuse(program, shared_locs=[COUNTER_LOC])
    theorem = check_theorem2(program)
    rm = explore_promising(program, observe_locs=[COUNTER_LOC])
    finals = {dict(b.memory)[COUNTER_LOC] for b in rm.behaviors}
    mutual_exclusion = finals == {n_cpus}
    return SyncVerification(
        primitive=prim,
        drf=drf,
        barrier=barrier,
        theorem=theorem,
        mutual_exclusion=mutual_exclusion,
        exhaustive=rm.complete and drf.exhaustive and theorem.exhaustive,
    )


def verify_all(n_cpus: int = 2) -> List[SyncVerification]:
    """Sweep the whole primitive library."""
    return [verify_primitive(p, n_cpus) for p in all_primitives()]
