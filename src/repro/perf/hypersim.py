"""Operation-level simulation of unmodified KVM vs SeKVM (Section 6).

The simulator executes a hypervisor *operation* (one microbenchmark
iteration, or one virtualization event inside an application workload)
as a sequence of phases — fixed-cost hardware events (traps, world
switches, exception returns) and memory phases that stream a working set
through the machine's TLB.  Costs differ between hypervisors for
structural reasons only:

* **SeKVM** interposes KCore on every transition (EL2 entry/exit plus
  s2page ownership checks), and runs KServ/QEMU under a stage 2 page
  table with 4 KB mappings — so their TLB misses pay nested-walk refill
  costs and their working sets occupy one entry per small page.
* **Unmodified KVM** runs the host with huge-page mappings (fewer TLB
  entries per working set) and host-only walks.

Because the TLB persists across iterations and the guest's own working
set contends for it, machines with tiny TLBs (m400) re-miss the handler
footprint on every operation while large-TLB machines (Seattle) keep it
resident — reproducing the paper's m400-vs-Seattle overhead gap without
hand-coding any ratio.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.mmu.tlb import TLB
from repro.perf.machine import MachineModel


class Hypervisor(enum.Enum):
    KVM = "KVM"
    SEKVM = "SeKVM"


class Space(enum.Enum):
    """Which address space a memory phase runs in."""

    VM = "vm"           # guest: nested translation under both hypervisors
    HOST = "host"       # KVM host / SeKVM's KServ
    QEMU = "qemu"       # userspace device emulation (inside host/KServ)
    KCORE = "kcore"     # SeKVM's EL2 core: own write-once table


#: Huge-page collapse factor: a 2 MB mapping covers 512 small pages; we
#: use a conservative factor for mixed handler footprints.
HUGE_PAGE_FACTOR = 8


@dataclass(frozen=True)
class Fixed:
    """A fixed-cost phase (trap, world switch, ...)."""

    cycles: int
    label: str = ""


@dataclass(frozen=True)
class Mem:
    """A memory phase: *accesses* spread over *pages* in *space*.

    ``cold_ratio`` controls locality: one access in ``cold_ratio`` walks
    the cold tail of the working set; the rest hit a few hot pages.
    """

    space: Space
    pages: int
    accesses: int
    label: str = ""
    cold_ratio: int = 16


Phase = Union[Fixed, Mem]


@dataclass(frozen=True)
class SimConfig:
    """One simulated configuration."""

    machine: MachineModel
    hypervisor: Hypervisor
    s2_levels: int = 4
    linux: str = "4.18"

    def version_factor(self) -> float:
        """Small efficiency delta across the verified Linux versions.

        The paper measures 4.18 and 5.4 and finds no substantial
        difference; intermediate versions interpolate the same small
        host-side improvements.
        """
        factors = {
            "4.18": 1.0,
            "4.20": 0.995,
            "5.0": 0.990,
            "5.1": 0.985,
            "5.2": 0.980,
            "5.3": 0.975,
            "5.4": 0.970,
            "5.5": 0.968,
        }
        return factors.get(self.linux, 1.0)


class CpuSimulator:
    """Per-CPU simulation state: the TLB and cycle accounting."""

    #: ASIDs for the spaces (guest contexts get 100+vmid from callers).
    _ASIDS = {Space.VM: 0, Space.HOST: 1, Space.QEMU: 2, Space.KCORE: 3}
    #: Page-number bases keeping spaces disjoint in the TLB.
    _BASES = {Space.VM: 0x10000, Space.HOST: 0x20000, Space.QEMU: 0x30000,
              Space.KCORE: 0x40000}

    def __init__(self, cfg: SimConfig):
        self.cfg = cfg
        self.machine = cfg.machine
        self.tlb = TLB(cfg.machine.tlb_entries, name=f"{cfg.machine.name}-tlb")
        self.cycles = 0
        self._cold_cursor: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _miss_cost(self, space: Space) -> int:
        m = self.machine
        if space is Space.VM:
            return m.nested_miss_cost(self.cfg.s2_levels)
        if space is Space.KCORE:
            # KCore's EL2 table is write-once with all memory mapped at
            # boot using block mappings: single-level refill.
            return m.mem_latency
        if self.cfg.hypervisor is Hypervisor.SEKVM:
            # KServ/QEMU run under stage 2 with 4 KB pages.
            return m.nested_miss_cost(self.cfg.s2_levels)
        return m.host_miss_cost()

    def _effective_pages(self, space: Space, pages: int) -> int:
        if space in (Space.HOST, Space.QEMU) and self.cfg.hypervisor is Hypervisor.KVM:
            # Host huge pages: the working set needs far fewer entries.
            return max(1, pages // HUGE_PAGE_FACTOR)
        return pages

    def run_phase(self, phase: Phase) -> None:
        if isinstance(phase, Fixed):
            self.cycles += phase.cycles
            return
        pages = self._effective_pages(phase.space, phase.pages)
        asid = self._ASIDS[phase.space]
        base = self._BASES[phase.space]
        miss_cost = self._miss_cost(phase.space)
        per_access = 1  # pipeline-hidden hit cost
        hot = min(4, pages)
        cold_cursor = self._cold_cursor.get(asid, 0)
        for i in range(phase.accesses):
            if i % phase.cold_ratio != phase.cold_ratio - 1:
                # Handler code/data exhibit strong locality: most
                # references hit a few hot pages.
                vpn = base + (i % hot)
            else:
                vpn = base + (cold_cursor % pages)
                cold_cursor += 1
            if self.tlb.lookup(asid, vpn) is None:
                self.tlb.insert(asid, vpn, vpn)
                self.cycles += miss_cost
            self.cycles += per_access
        self._cold_cursor[asid] = cold_cursor

    def run_phases(self, phases: Sequence[Phase]) -> None:
        for phase in phases:
            self.run_phase(phase)


# ---------------------------------------------------------------------------
# operation definitions (Table 2)
# ---------------------------------------------------------------------------

def _vm_exit_entry(cfg: SimConfig) -> List[Phase]:
    """Trap from the VM down to the hypervisor handler context."""
    m = cfg.machine
    phases: List[Phase] = [Fixed(m.trap_to_el2, "trap")]
    if cfg.hypervisor is Hypervisor.SEKVM:
        phases += [
            Fixed(m.kcore_entry, "kcore-entry"),
            Fixed(m.kcore_check, "s2page-checks"),
            Mem(Space.KCORE, pages=4, accesses=12, label="kcore-state"),
            Fixed(m.world_switch_regs, "save-vm-context"),
            Fixed(m.kcore_exit, "exit-to-kserv"),
        ]
    else:
        phases += [Fixed(m.world_switch_regs, "save-vm-context")]
    return phases


def _vm_exit_return(cfg: SimConfig) -> List[Phase]:
    """Return from the handler back into the VM."""
    m = cfg.machine
    phases: List[Phase] = []
    if cfg.hypervisor is Hypervisor.SEKVM:
        phases += [
            Fixed(m.kcore_entry, "kcore-entry"),
            Fixed(m.kcore_check, "s2page-checks"),
            Mem(Space.KCORE, pages=4, accesses=12, label="kcore-state"),
            Fixed(m.world_switch_regs, "restore-vm-context"),
            Fixed(m.kcore_exit, "kcore-exit"),
        ]
    else:
        phases += [Fixed(m.world_switch_regs, "restore-vm-context")]
    phases.append(Fixed(m.eret, "eret"))
    return phases


def _handler(cfg: SimConfig, extra_accesses: int = 0) -> List[Phase]:
    m = cfg.machine
    if cfg.hypervisor is Hypervisor.SEKVM:
        return [
            Mem(
                Space.HOST,
                pages=m.kserv_handler_pages,
                accesses=m.kserv_handler_accesses + extra_accesses,
                label="kserv-handler",
            )
        ]
    return [
        Mem(
            Space.HOST,
            pages=m.kvm_handler_pages,
            accesses=m.kvm_handler_accesses + extra_accesses,
            label="kvm-handler",
        )
    ]


def hypercall_phases(cfg: SimConfig) -> List[Phase]:
    """Table 2 'Hypercall': VM -> hypervisor -> VM, no work."""
    return _vm_exit_entry(cfg) + _handler(cfg) + _vm_exit_return(cfg)


def io_kernel_phases(cfg: SimConfig) -> List[Phase]:
    """Table 2 'I/O Kernel': trap to the in-kernel emulated GIC."""
    m = cfg.machine
    policy: List[Phase] = (
        [Fixed(m.kcore_io_check, "kcore-io-policy")]
        if cfg.hypervisor is Hypervisor.SEKVM
        else []
    )
    return (
        _vm_exit_entry(cfg)
        + policy
        + _handler(cfg, extra_accesses=24)
        + [Fixed(m.gic_emulate, "vgic-emulation")]
        + _vm_exit_return(cfg)
    )


def io_user_phases(cfg: SimConfig) -> List[Phase]:
    """Table 2 'I/O User': out to QEMU (emulated UART) and back."""
    m = cfg.machine
    policy: List[Phase] = (
        [Fixed(m.kcore_io_check, "kcore-io-policy")] * 2
        if cfg.hypervisor is Hypervisor.SEKVM
        else []
    )
    return (
        _vm_exit_entry(cfg)
        + policy
        + _handler(cfg, extra_accesses=16)
        + [
            Fixed(m.qemu_roundtrip, "kernel<->user"),
            Mem(Space.QEMU, pages=m.qemu_pages, accesses=m.qemu_accesses,
                label="qemu-uart"),
        ]
        + _handler(cfg, extra_accesses=8)
        + _vm_exit_return(cfg)
    )


def virtual_ipi_phases(cfg: SimConfig) -> List[Phase]:
    """Table 2 'Virtual IPI': sender exit + delivery + receiver inject."""
    m = cfg.machine
    sender = (
        _vm_exit_entry(cfg)
        + _handler(cfg, extra_accesses=16)
        + [Fixed(m.gic_emulate, "vgic-send")]
        + _vm_exit_return(cfg)
    )
    receiver = (
        [Fixed(m.ipi_hw, "physical-ipi")]
        + _vm_exit_entry(cfg)
        + _handler(cfg, extra_accesses=8)
        + [Fixed(m.gic_emulate, "vgic-inject")]
        + _vm_exit_return(cfg)
    )
    return sender + receiver


OPERATIONS = {
    "Hypercall": hypercall_phases,
    "I/O Kernel": io_kernel_phases,
    "I/O User": io_user_phases,
    "Virtual IPI": virtual_ipi_phases,
}

#: Guest work between operations: keeps the guest's working set hot in
#: the TLB, contending with the handler footprints (the m400 mechanism).
GUEST_TOUCH = Mem(Space.VM, pages=18, accesses=36, label="guest-work")


def simulate_operation(
    cfg: SimConfig,
    operation: str,
    iterations: int = 50,
    warmup: int = 5,
) -> float:
    """Average per-iteration cycles of *operation*, steady state.

    Matches the methodology of the KVM unit tests: run the operation in
    a loop with guest work in between and report the mean cost.
    """
    try:
        build = OPERATIONS[operation]
    except KeyError:
        raise ReproError(f"unknown microbenchmark {operation!r}") from None
    sim = CpuSimulator(cfg)
    phases = build(cfg)
    for _ in range(warmup):
        sim.run_phase(GUEST_TOUCH)
        sim.run_phases(phases)
    start = sim.cycles
    for _ in range(iterations):
        sim.run_phase(GUEST_TOUCH)
        sim.run_phases(phases)
    # Subtract the guest-touch cost measured in isolation (steady state),
    # so the result is the operation's cost alone.
    iso = CpuSimulator(cfg)
    for _ in range(warmup):
        iso.run_phase(GUEST_TOUCH)
    iso_start = iso.cycles
    for _ in range(iterations):
        iso.run_phase(GUEST_TOUCH)
    guest_cost = (iso.cycles - iso_start) / iterations
    total = (sim.cycles - start) / iterations
    return (total - guest_cost) * cfg.version_factor()
