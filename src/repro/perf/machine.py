"""Machine models for the evaluation (Section 6).

The paper measures two Armv8 servers:

* **m400** — HP Moonshot m400, 8-core 2.4 GHz Applied Micro X-Gene
  (Atlas).  The X-Gene's TLB is tiny (the paper cites 7-cpu.com), which
  is why SeKVM's microbenchmark overhead is much larger there: KServ
  runs under a stage 2 table with 4 KB pages, so handler working sets
  need many TLB entries and misses pay nested-walk costs.
* **Seattle** — AMD Seattle Rev.B0, 8-core 2 GHz Opteron A1100, with a
  conventionally sized TLB, "more reflective of typical Arm server
  performance".

A :class:`MachineModel` bundles the structural parameters (cores, TLB
capacity) and the cost constants (trap, world switch, walk latencies)
the operation simulator charges.  The constants were calibrated so the
simulated Table 3 lands near the paper's cycle counts; the *mechanisms*
(which operations pay which costs, and why m400 suffers more) are
structural, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """One evaluation machine."""

    name: str
    cpus: int
    freq_ghz: float

    # --- translation hardware ------------------------------------------
    tlb_entries: int             # unified stage-1/stage-2 TLB capacity
    walk_levels: int             # host page-table depth
    mem_latency: int             # cycles per memory reference during a walk

    # --- world-switch / trap costs (cycles) -----------------------------
    trap_to_el2: int             # hardware exception to EL2
    eret: int                    # exception return
    world_switch_regs: int       # save/restore GP+sysregs+FP context
    gic_emulate: int             # emulated interrupt-controller access
    qemu_roundtrip: int          # kernel->userspace->kernel for user I/O
    ipi_hw: int                  # physical IPI delivery latency

    # --- handler footprints (pages touched, accesses performed) ---------
    kvm_handler_pages: int       # host KVM exit-handler working set
    kvm_handler_accesses: int
    kserv_handler_pages: int     # KServ handler working set (4 KB pages)
    kserv_handler_accesses: int
    qemu_pages: int              # QEMU device-emulation working set
    qemu_accesses: int

    # --- KCore costs (SeKVM only) ----------------------------------------
    kcore_entry: int             # EL2 entry into KCore + sanitization
    kcore_exit: int
    kcore_check: int             # s2page ownership / policy checks per exit
    kcore_io_check: int          # extra per-I/O policy work (grant checks)

    def host_miss_cost(self) -> int:
        """Cycles to refill one TLB entry from a host (stage-1) walk."""
        return self.walk_levels * self.mem_latency

    def nested_miss_cost(self, s2_levels: int) -> int:
        """Cycles to refill one entry under nested (stage-1 x stage-2)
        translation.  The architectural worst case is
        ``(m+1)(n+1)-1`` references, but hardware walk caches keep the
        intermediate stage-2 translations resident, so the effective
        refill visits each stage-1 level plus one stage-2 walk — which
        is also why fewer stage-2 levels help small-TLB CPUs (§5.6)."""
        refs = self.walk_levels + s2_levels + 1
        return refs * self.mem_latency


#: HP Moonshot m400 (Applied Micro X-Gene): tiny TLB.
M400 = MachineModel(
    name="m400",
    cpus=8,
    freq_ghz=2.4,
    tlb_entries=32,
    walk_levels=4,
    mem_latency=50,
    trap_to_el2=550,
    eret=350,
    world_switch_regs=600,
    gic_emulate=875,
    qemu_roundtrip=5450,
    ipi_hw=1750,
    kvm_handler_pages=6,
    kvm_handler_accesses=48,
    kserv_handler_pages=22,
    kserv_handler_accesses=60,
    qemu_pages=24,
    qemu_accesses=64,
    kcore_entry=150,
    kcore_exit=120,
    kcore_check=100,
    kcore_io_check=260,
)

#: AMD Seattle (Opteron A1100): conventionally sized TLB.
SEATTLE = MachineModel(
    name="seattle",
    cpus=8,
    freq_ghz=2.0,
    tlb_entries=512,
    walk_levels=4,
    mem_latency=55,
    trap_to_el2=700,
    eret=450,
    world_switch_regs=750,
    gic_emulate=1050,
    qemu_roundtrip=6300,
    ipi_hw=1230,
    kvm_handler_pages=6,
    kvm_handler_accesses=48,
    kserv_handler_pages=22,
    kserv_handler_accesses=60,
    qemu_pages=24,
    qemu_accesses=64,
    kcore_entry=160,
    kcore_exit=130,
    kcore_check=110,
    kcore_io_check=300,
)

#: A modern Arm server (Neoverse-class): an extension point, not a paper
#: machine.  The paper notes "newer Arm CPUs have more reasonable TLB
#: sizes similar to or greater than the Seattle CPUs"; this model tests
#: that prediction — bigger TLB, shallower memory, cheaper traps — and
#: the benchmarks assert SeKVM's relative overhead keeps shrinking on it.
MODERN = MachineModel(
    name="modern",
    cpus=16,
    freq_ghz=3.0,
    tlb_entries=1024,
    walk_levels=4,
    mem_latency=40,
    trap_to_el2=450,
    eret=280,
    world_switch_regs=520,
    gic_emulate=700,
    qemu_roundtrip=4200,
    ipi_hw=900,
    kvm_handler_pages=6,
    kvm_handler_accesses=48,
    kserv_handler_pages=22,
    kserv_handler_accesses=60,
    qemu_pages=24,
    qemu_accesses=64,
    # VHE-era hardware makes EL2 entry/exit and sysreg context work
    # substantially cheaper, shrinking KCore's fixed interposition cost.
    kcore_entry=100,
    kcore_exit=80,
    kcore_check=70,
    kcore_io_check=180,
)

MACHINES = {"m400": M400, "seattle": SEATTLE, "modern": MODERN}
