"""Figure 8 harness: single-VM application performance vs native.

For each (application, machine, hypervisor, Linux version), compute
normalized performance — the paper plots throughput/runtime normalized
to native execution.  The model:

``overhead = sum(rate_i * cost_i) / cpu_hz`` where the rates come from
the workload profile (Table 4) and the per-event costs from the
operation simulator (the same costs that produce Table 3).  Normalized
performance is ``(1 - base_virt_tax) / (1 + io_bound * overhead)``.

Reproduction targets from the paper's text: SeKVM within 10% of
unmodified KVM for every workload on both machines, and no substantial
change between 2-vCPU and 4-vCPU VM configurations or kernel versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.hypersim import Hypervisor, SimConfig, simulate_operation
from repro.perf.machine import M400, SEATTLE, MachineModel
from repro.perf.workloads import APP_WORKLOADS, AppWorkload


@dataclass(frozen=True)
class AppBenchResult:
    workload: str
    machine: str
    hypervisor: str
    linux: str
    vcpus: int
    normalized_perf: float      # 1.0 == native


def event_costs(cfg: SimConfig) -> Dict[str, float]:
    """Per-event cycle costs for one configuration (cached per call)."""
    return {
        "hypercall": simulate_operation(cfg, "Hypercall"),
        "io_kernel": simulate_operation(cfg, "I/O Kernel"),
        "io_user": simulate_operation(cfg, "I/O User"),
        "ipi": simulate_operation(cfg, "Virtual IPI"),
    }


def normalized_performance(
    workload: AppWorkload,
    cfg: SimConfig,
    vcpus: int = 2,
    costs: Optional[Dict[str, float]] = None,
) -> float:
    """Normalized (to native) performance of *workload* under *cfg*."""
    if costs is None:
        costs = event_costs(cfg)
    # More vCPUs -> slightly more cross-vCPU IPIs per unit of work.
    ipi_scale = 1.0 + 0.15 * max(0, vcpus - 2)
    cycles_per_sec = (
        workload.hypercall_rate * costs["hypercall"]
        + workload.io_kernel_rate * costs["io_kernel"]
        + workload.io_user_rate * costs["io_user"]
        + workload.ipi_rate * ipi_scale * costs["ipi"]
    )
    cpu_hz = cfg.machine.freq_ghz * 1e9
    overhead = cycles_per_sec / cpu_hz
    return (1.0 - workload.base_virt_tax) / (1.0 + workload.io_bound * overhead)


def run_figure8(
    machines: Sequence[MachineModel] = (M400, SEATTLE),
    linux_versions: Sequence[str] = ("4.18", "5.4"),
) -> List[AppBenchResult]:
    """All Figure 8 series: app x machine x hypervisor x kernel."""
    results: List[AppBenchResult] = []
    for machine in machines:
        vcpus = 2 if machine.name == "m400" else 4
        for linux in linux_versions:
            for hypervisor in (Hypervisor.KVM, Hypervisor.SEKVM):
                cfg = SimConfig(
                    machine=machine, hypervisor=hypervisor, linux=linux
                )
                costs = event_costs(cfg)
                for workload in APP_WORKLOADS:
                    perf = normalized_performance(
                        workload, cfg, vcpus=vcpus, costs=costs
                    )
                    results.append(
                        AppBenchResult(
                            workload=workload.name,
                            machine=machine.name,
                            hypervisor=hypervisor.value,
                            linux=linux,
                            vcpus=vcpus,
                            normalized_perf=perf,
                        )
                    )
    return results


def sekvm_vs_kvm_overhead(
    results: Sequence[AppBenchResult],
) -> Dict[Tuple[str, str, str], float]:
    """Per (workload, machine, linux): 1 - SeKVM/KVM, the paper's
    '<10% worst-case overhead' quantity."""
    table: Dict[Tuple[str, str, str, str], float] = {}
    for r in results:
        table[(r.workload, r.machine, r.linux, r.hypervisor)] = r.normalized_perf
    out: Dict[Tuple[str, str, str], float] = {}
    for (workload, machine, linux, hyp), perf in table.items():
        if hyp != "SeKVM":
            continue
        kvm = table[(workload, machine, linux, "KVM")]
        out[(workload, machine, linux)] = 1.0 - perf / kvm
    return out


def format_figure8(results: Sequence[AppBenchResult]) -> str:
    lines = [
        "Figure 8. Single-VM application benchmark performance "
        "(normalized to native; higher is better)",
        f"{'workload':<10} {'machine':<8} {'linux':<6} "
        f"{'KVM':>6} {'SeKVM':>7} {'overhead':>9}",
    ]
    by_key: Dict[Tuple[str, str, str, str], float] = {
        (r.workload, r.machine, r.linux, r.hypervisor): r.normalized_perf
        for r in results
    }
    seen = []
    for r in results:
        key = (r.workload, r.machine, r.linux)
        if key in seen:
            continue
        seen.append(key)
        kvm = by_key[key + ("KVM",)]
        sekvm = by_key[key + ("SeKVM",)]
        lines.append(
            f"{r.workload:<10} {r.machine:<8} {r.linux:<6} "
            f"{kvm:>6.2f} {sekvm:>7.2f} {1 - sekvm / kvm:>8.1%}"
        )
    return "\n".join(lines)
