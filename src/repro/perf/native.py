"""Native-execution baseline.

The paper normalizes every application result to native execution on
the same hardware (host capped to the VM's CPU/RAM configuration, no
full-disk encryption).  In the simulation, native execution is the
degenerate configuration with no exits, no stage 2, and no backend
contention; this module makes that explicit so harnesses normalize
against a named baseline rather than an implicit constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.machine import MachineModel
from repro.perf.workloads import AppWorkload


@dataclass(frozen=True)
class NativeRun:
    """One native execution of a workload."""

    workload: str
    machine: str
    seconds: float

    @property
    def normalized_perf(self) -> float:
        return 1.0


def run_native(workload: AppWorkload, machine: MachineModel) -> NativeRun:
    """Native execution: the workload's nominal runtime, by definition
    of the normalization (native == 1.0)."""
    return NativeRun(
        workload=workload.name,
        machine=machine.name,
        seconds=workload.native_seconds,
    )
