"""Discrete-event multiprocessor scheduler for the multi-VM experiments.

Figure 9 runs up to 32 two-vCPU VMs on an 8-core m400; per-VM
performance then depends on CPU time-sharing, per-exit hypervisor
overhead, and contention on the shared host I/O backend.  This module
is a small but real discrete-event simulator: vCPUs are tasks that
alternate CPU bursts with I/O operations; CPUs run a round-robin
scheduler with a fixed timeslice; I/O operations queue at a shared
backend (the vhost/storage path) with a fixed per-operation service
time.  Each I/O also charges the vCPU its virtualization exit cost —
which is where KVM and SeKVM differ.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class VCpuTask:
    """One vCPU's remaining work.

    ``cpu_work`` is in seconds of pure guest CPU time; every
    ``io_interval`` seconds of progress it performs one I/O operation,
    which costs ``exit_overhead`` seconds of extra CPU (the exit path)
    and ``io_service`` seconds at the shared backend.
    """

    vm_id: int
    vcpu_id: int
    cpu_work: float
    io_interval: float
    exit_overhead: float
    io_service: float
    progressed: float = 0.0
    done_at: Optional[float] = None
    next_io_at: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.next_io_at = self.io_interval

    @property
    def remaining(self) -> float:
        return max(0.0, self.cpu_work - self.progressed)

    @property
    def finished(self) -> bool:
        return self.remaining <= 1e-12


class MultiVMSimulator:
    """Round-robin CPUs + a shared FIFO I/O backend."""

    def __init__(
        self,
        cpus: int,
        timeslice: float = 0.010,
        io_servers: int = 2,
    ):
        self.cpus = cpus
        self.timeslice = timeslice
        self.io_servers = io_servers
        self._events: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.run_queue: List[VCpuTask] = []
        self.idle_cpus = cpus
        self.io_free_at = [0.0] * io_servers
        self.finished_tasks: List[VCpuTask] = []

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._events, (self.now + delay, next(self._seq), fn))

    def add_task(self, task: VCpuTask) -> None:
        self.run_queue.append(task)

    def _dispatch(self) -> None:
        while self.idle_cpus > 0 and self.run_queue:
            task = self.run_queue.pop(0)
            self.idle_cpus -= 1
            self._run_slice(task)

    def _run_slice(self, task: VCpuTask) -> None:
        until_io = max(0.0, task.next_io_at - task.progressed)
        run_for = min(self.timeslice, task.remaining, until_io)
        hits_io_boundary = run_for >= until_io - 1e-12
        if hits_io_boundary:
            task.next_io_at += task.io_interval
        # The exit path is charged as CPU time on the slice that reaches
        # the I/O boundary — this is where KVM and SeKVM diverge.
        duration = run_for + (task.exit_overhead if hits_io_boundary else 0.0)

        def complete() -> None:
            task.progressed += run_for
            self.idle_cpus += 1
            if task.finished:
                task.done_at = self.now
                self.finished_tasks.append(task)
            elif hits_io_boundary:
                self._start_io(task)
            else:
                self.run_queue.append(task)
            self._dispatch()

        self.schedule(duration, complete)

    def _start_io(self, task: VCpuTask) -> None:
        # Pick the earliest-free backend server (FIFO with k servers).
        server = min(range(self.io_servers), key=lambda s: self.io_free_at[s])
        start = max(self.now, self.io_free_at[server])
        finish = start + task.io_service
        self.io_free_at[server] = finish

        def io_done() -> None:
            self.run_queue.append(task)
            self._dispatch()

        self.schedule(finish - self.now, io_done)

    # ------------------------------------------------------------------
    def run(self, max_time: float = 1e6) -> float:
        """Run to completion; returns the makespan."""
        self._dispatch()
        while self._events:
            time, _seq, fn = heapq.heappop(self._events)
            if time > max_time:
                break
            self.now = time
            fn()
        return self.now

    def vm_completion_times(self) -> Dict[int, float]:
        """Per-VM completion: when its last vCPU finished."""
        done: Dict[int, float] = {}
        for task in self.finished_tasks:
            assert task.done_at is not None
            done[task.vm_id] = max(done.get(task.vm_id, 0.0), task.done_at)
        return done
