"""Lock-contention study (the paper's Section 6 conclusion).

"These results indicate that the use of locks in SeKVM to protect shared
memory accesses and make its proofs tractable ... do not adversely
affect SeKVM's performance scalability."  The microbenchmark and
application results show this indirectly; this study measures it
directly on the functional model: drive N concurrent VMs through their
lifecycle with the vCPU scheduler and count how often KCore's locks are
actually contended.

The structural reason contention stays negligible: the global VM lock
only serializes VMID allocation and vCPU claim/release (rare, O(1)
critical sections); stage 2 page-table locks are per-principal, so VMs
never contend with each other on the hot fault path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sekvm.hypervisor import SeKVMSystem, make_image
from repro.sekvm.scheduler import VCpuScheduler


@dataclass(frozen=True)
class ContentionPoint:
    """Lock statistics for one VM count."""

    vms: int
    vm_lock_acquisitions: int
    vm_lock_contended: int
    s2pt_acquisitions: int
    s2pt_contended: int

    @property
    def vm_lock_contention_rate(self) -> float:
        if not self.vm_lock_acquisitions:
            return 0.0
        return self.vm_lock_contended / self.vm_lock_acquisitions

    @property
    def s2pt_contention_rate(self) -> float:
        if not self.s2pt_acquisitions:
            return 0.0
        return self.s2pt_contended / self.s2pt_acquisitions


def run_contention_study(
    vm_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    rounds: int = 10,
    writes_per_vm: int = 4,
) -> List[ContentionPoint]:
    """Boot N VMs, schedule them over 8 CPUs, run guest work, tear down;
    report per-lock acquisition/contention counts."""
    points: List[ContentionPoint] = []
    for n_vms in vm_counts:
        system = SeKVMSystem(total_pages=64 + 16 * n_vms, cpus=8)
        image, _ = make_image(1, 2)
        vmids = [system.boot_vm(image, vcpus=2) for _ in range(n_vms)]
        scheduler = VCpuScheduler(system.kcore, cpus=8)
        for vmid in vmids:
            scheduler.enqueue(vmid, 0)
            scheduler.enqueue(vmid, 1)
        scheduler.run_rounds(rounds)
        scheduler.idle()
        for vmid in vmids:
            system.run_guest_work(
                vmid, 0, cpu=vmid % 8,
                writes={0x10 + i: i for i in range(writes_per_vm)},
            )
        for vmid in vmids:
            system.teardown_vm(vmid)
        kcore = system.kcore
        s2_locks = [kcore.kserv_s2pt.lock] + [
            vm.s2pt.lock for vm in kcore.vms.values()
        ]
        points.append(
            ContentionPoint(
                vms=n_vms,
                vm_lock_acquisitions=kcore.vm_lock.acquisitions,
                vm_lock_contended=kcore.vm_lock.contended,
                s2pt_acquisitions=sum(l.acquisitions for l in s2_locks),
                s2pt_contended=sum(l.contended for l in s2_locks),
            )
        )
    return points


def format_contention(points: List[ContentionPoint]) -> str:
    lines = [
        "Lock contention under multi-VM load (functional model)",
        f"{'VMs':>4} {'vm-lock acq':>12} {'contended':>10} "
        f"{'s2pt acq':>9} {'contended':>10}",
    ]
    for p in points:
        lines.append(
            f"{p.vms:>4} {p.vm_lock_acquisitions:>12} "
            f"{p.vm_lock_contended:>10} {p.s2pt_acquisitions:>9} "
            f"{p.s2pt_contended:>10}"
        )
    return "\n".join(lines)
