"""Table 3 harness: microbenchmark cycle counts, KVM vs SeKVM.

Reproduces the paper's Table 3 — the four Table-2 operations measured in
cycles on both machines for unmodified KVM and SeKVM (Linux 4.18).
Paper values are embedded for side-by-side reporting; the reproduction
target is the *shape*: KVM < SeKVM everywhere, a roughly 1.8-2.3x gap on
the tiny-TLB m400 and 1.2-1.3x on Seattle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.perf.hypersim import Hypervisor, SimConfig, simulate_operation
from repro.perf.machine import M400, SEATTLE, MachineModel

#: Table 3 of the paper (cycles), for comparison columns.
PAPER_TABLE3: Dict[Tuple[str, str, str], int] = {
    ("Hypercall", "m400", "KVM"): 2275,
    ("Hypercall", "m400", "SeKVM"): 4695,
    ("Hypercall", "seattle", "KVM"): 2896,
    ("Hypercall", "seattle", "SeKVM"): 3720,
    ("I/O Kernel", "m400", "KVM"): 3144,
    ("I/O Kernel", "m400", "SeKVM"): 7235,
    ("I/O Kernel", "seattle", "KVM"): 3831,
    ("I/O Kernel", "seattle", "SeKVM"): 4864,
    ("I/O User", "m400", "KVM"): 7864,
    ("I/O User", "m400", "SeKVM"): 15501,
    ("I/O User", "seattle", "KVM"): 9288,
    ("I/O User", "seattle", "SeKVM"): 10903,
    ("Virtual IPI", "m400", "KVM"): 7915,
    ("Virtual IPI", "m400", "SeKVM"): 13900,
    ("Virtual IPI", "seattle", "KVM"): 8816,
    ("Virtual IPI", "seattle", "SeKVM"): 10699,
}

OPERATIONS = ("Hypercall", "I/O Kernel", "I/O User", "Virtual IPI")


@dataclass(frozen=True)
class MicrobenchCell:
    operation: str
    machine: str
    hypervisor: str
    cycles: float
    paper_cycles: int

    @property
    def ratio_to_paper(self) -> float:
        return self.cycles / self.paper_cycles


def run_table3(
    linux: str = "4.18", s2_levels: int = 4, iterations: int = 50
) -> List[MicrobenchCell]:
    """Simulate every cell of Table 3."""
    cells: List[MicrobenchCell] = []
    for machine in (M400, SEATTLE):
        for hypervisor in (Hypervisor.KVM, Hypervisor.SEKVM):
            cfg = SimConfig(
                machine=machine,
                hypervisor=hypervisor,
                s2_levels=s2_levels,
                linux=linux,
            )
            for operation in OPERATIONS:
                cycles = simulate_operation(cfg, operation, iterations=iterations)
                cells.append(
                    MicrobenchCell(
                        operation=operation,
                        machine=machine.name,
                        hypervisor=hypervisor.value,
                        cycles=cycles,
                        paper_cycles=PAPER_TABLE3[
                            (operation, machine.name, hypervisor.value)
                        ],
                    )
                )
    return cells


def overhead_ratio(
    cells: List[MicrobenchCell], operation: str, machine: str
) -> float:
    """SeKVM/KVM cycle ratio for one (operation, machine) pair."""
    by_hyp = {
        c.hypervisor: c.cycles
        for c in cells
        if c.operation == operation and c.machine == machine
    }
    return by_hyp["SeKVM"] / by_hyp["KVM"]


def format_table3(cells: List[MicrobenchCell]) -> str:
    lines = [
        "Table 3. Microbenchmark performance (cycles) — simulated vs paper",
        f"{'Benchmark':<12} {'machine':<8} {'KVM sim':>9} {'KVM paper':>10} "
        f"{'SeKVM sim':>10} {'SeKVM paper':>12}",
    ]
    for machine in ("m400", "seattle"):
        for operation in OPERATIONS:
            row = {
                c.hypervisor: c
                for c in cells
                if c.operation == operation and c.machine == machine
            }
            kvm, sekvm = row["KVM"], row["SeKVM"]
            lines.append(
                f"{operation:<12} {machine:<8} {kvm.cycles:>9.0f} "
                f"{kvm.paper_cycles:>10} {sekvm.cycles:>10.0f} "
                f"{sekvm.paper_cycles:>12}"
            )
    return "\n".join(lines)
