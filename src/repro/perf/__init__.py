"""Evaluation substrate: machines, operation simulation, workloads,
and the Table-3 / Figure-8 / Figure-9 harnesses."""

from repro.perf.machine import M400, MACHINES, MODERN, SEATTLE, MachineModel
from repro.perf.hypersim import (
    CpuSimulator,
    Fixed,
    Hypervisor,
    Mem,
    SimConfig,
    Space,
    simulate_operation,
)
from repro.perf.workloads import (
    APP_WORKLOADS,
    MICROBENCHMARKS,
    AppWorkload,
    Microbenchmark,
    describe_table2,
    describe_table4,
    workload_by_name,
)
from repro.perf.microbench import (
    MicrobenchCell,
    PAPER_TABLE3,
    format_table3,
    overhead_ratio,
    run_table3,
)
from repro.perf.appbench import (
    AppBenchResult,
    event_costs,
    format_figure8,
    normalized_performance,
    run_figure8,
    sekvm_vs_kvm_overhead,
)
from repro.perf.events import MultiVMSimulator, VCpuTask
from repro.perf.scaling import (
    ScalingPoint,
    VM_COUNTS,
    format_figure9,
    run_figure9,
    simulate_scaling,
)
from repro.perf.native import NativeRun, run_native
from repro.perf.contention import ContentionPoint, format_contention, run_contention_study

__all__ = [
    "M400",
    "MACHINES",
    "MODERN",
    "SEATTLE",
    "MachineModel",
    "CpuSimulator",
    "Fixed",
    "Hypervisor",
    "Mem",
    "SimConfig",
    "Space",
    "simulate_operation",
    "APP_WORKLOADS",
    "MICROBENCHMARKS",
    "AppWorkload",
    "Microbenchmark",
    "describe_table2",
    "describe_table4",
    "workload_by_name",
    "MicrobenchCell",
    "PAPER_TABLE3",
    "format_table3",
    "overhead_ratio",
    "run_table3",
    "AppBenchResult",
    "event_costs",
    "format_figure8",
    "normalized_performance",
    "run_figure8",
    "sekvm_vs_kvm_overhead",
    "MultiVMSimulator",
    "VCpuTask",
    "ScalingPoint",
    "VM_COUNTS",
    "format_figure9",
    "run_figure9",
    "simulate_scaling",
    "NativeRun",
    "run_native",
    "ContentionPoint",
    "format_contention",
    "run_contention_study",
]
