"""Figure 9 harness: multi-VM scalability on the m400 (Linux 4.18).

Runs 1..32 two-vCPU VM instances of each Table-4 application on the
8-core m400 model under KVM and SeKVM, using the discrete-event
scheduler of :mod:`repro.perf.events`.  Performance is normalized to
native execution of one workload instance, matching the paper's plots.

Reproduction targets: throughput per VM decays as instances contend for
CPUs (beyond 4 VMs the machine is oversubscribed) and the I/O backend;
KVM and SeKVM decay *together*, with SeKVM no more than ~10% behind at
every point — the paper's scalability-parity result.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perf.appbench import event_costs
from repro.perf.events import MultiVMSimulator, VCpuTask
from repro.perf.hypersim import Hypervisor, SimConfig
from repro.perf.machine import M400, MachineModel
from repro.perf.workloads import APP_WORKLOADS, AppWorkload, workload_by_name

#: VM counts plotted in Figure 9.
VM_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ScalingPoint:
    workload: str
    hypervisor: str
    vms: int
    normalized_perf: float      # native single-instance == 1.0


def _per_io_overhead_seconds(
    workload: AppWorkload, cfg: SimConfig, costs: Dict[str, float]
) -> Tuple[float, float]:
    """(io_interval, exit_overhead) per I/O event for the DES.

    All event types are folded into one aggregate I/O event stream with
    a weighted-average exit cost.
    """
    rates = {
        "hypercall": workload.hypercall_rate,
        "io_kernel": workload.io_kernel_rate,
        "io_user": workload.io_user_rate,
        "ipi": workload.ipi_rate,
    }
    total_rate = sum(rates.values())
    if total_rate == 0:
        return float("inf"), 0.0
    avg_cost_cycles = (
        sum(rates[k] * costs[k] for k in rates) / total_rate
    )
    cpu_hz = cfg.machine.freq_ghz * 1e9
    io_interval = 1.0 / total_rate          # seconds of work per event
    exit_overhead = avg_cost_cycles / cpu_hz
    return io_interval, exit_overhead


def simulate_scaling(
    workload: AppWorkload,
    cfg: SimConfig,
    n_vms: int,
    vcpus_per_vm: int = 2,
    native_seconds: float = 1.0,
    io_service: float = 5e-7,
    batch: int = 200,
) -> float:
    """Normalized per-VM performance with *n_vms* concurrent instances.

    ``batch`` coalesces that many hypervisor events into one simulated
    I/O operation (scaling interval, exit overhead, and backend service
    together), keeping the event count tractable without changing the
    utilization arithmetic.
    """
    costs = event_costs(cfg)
    io_interval, exit_overhead = _per_io_overhead_seconds(workload, cfg, costs)
    io_interval *= batch
    exit_overhead *= batch
    sim = MultiVMSimulator(cpus=cfg.machine.cpus, io_servers=2)
    work_per_vcpu = (
        native_seconds * (1.0 + workload.base_virt_tax) / vcpus_per_vm
    )
    for vm_id in range(n_vms):
        for vcpu_id in range(vcpus_per_vm):
            sim.add_task(
                VCpuTask(
                    vm_id=vm_id,
                    vcpu_id=vcpu_id,
                    cpu_work=work_per_vcpu,
                    io_interval=io_interval,
                    exit_overhead=exit_overhead * workload.io_bound,
                    io_service=io_service * batch,
                )
            )
    sim.run()
    completions = sim.vm_completion_times()
    avg_completion = mean(completions.values())
    # Native runs the same work on dedicated cores with no exits or
    # backend contention: its completion is work_per_vcpu without the
    # virtualization tax.
    native_completion = native_seconds / vcpus_per_vm
    return native_completion / avg_completion


def run_figure9(
    workloads: Optional[Sequence[AppWorkload]] = None,
    vm_counts: Sequence[int] = VM_COUNTS,
    machine: MachineModel = M400,
    linux: str = "4.18",
) -> List[ScalingPoint]:
    """All Figure 9 series (m400, Linux 4.18, 1..32 VMs)."""
    workloads = list(workloads or APP_WORKLOADS)
    points: List[ScalingPoint] = []
    for hypervisor in (Hypervisor.KVM, Hypervisor.SEKVM):
        cfg = SimConfig(machine=machine, hypervisor=hypervisor, linux=linux)
        for workload in workloads:
            for n in vm_counts:
                perf = simulate_scaling(workload, cfg, n)
                points.append(
                    ScalingPoint(
                        workload=workload.name,
                        hypervisor=hypervisor.value,
                        vms=n,
                        normalized_perf=perf,
                    )
                )
    return points


def format_figure9(points: Sequence[ScalingPoint]) -> str:
    lines = [
        "Figure 9. Multi-VM application benchmark performance "
        "(m400, normalized to 1 native instance)",
        f"{'workload':<10} {'hyp':<6} "
        + " ".join(f"{n:>6}VM" for n in VM_COUNTS),
    ]
    keys = sorted({(p.workload, p.hypervisor) for p in points})
    table = {(p.workload, p.hypervisor, p.vms): p.normalized_perf for p in points}
    for workload, hyp in keys:
        row = " ".join(
            f"{table[(workload, hyp, n)]:>8.2f}"
            for n in VM_COUNTS
            if (workload, hyp, n) in table
        )
        lines.append(f"{workload:<10} {hyp:<6} {row}")
    return "\n".join(lines)
