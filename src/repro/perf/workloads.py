"""Workload definitions: Table 2 (microbenchmarks) and Table 4 (apps).

Each application benchmark is modeled as a *virtualization profile*: the
rates at which one second of native execution generates hypervisor
events (hypercalls, kernel-emulated I/O, userspace-emulated I/O, virtual
IPIs) plus a guest CPU intensity.  Virtualized performance then emerges
from the per-event costs the operation simulator produces for each
machine × hypervisor — the same mechanism as the paper: I/O- and
IPC-heavy workloads (Apache, Redis) pay more than compute-bound ones
(Kernbench).

The profiles are calibrated against Figure 8's shape: normalized
performance between ~0.65 and ~1.0, SeKVM within 10% of KVM everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Microbenchmark:
    """One row of Table 2."""

    name: str
    description: str


MICROBENCHMARKS: Tuple[Microbenchmark, ...] = (
    Microbenchmark(
        "Hypercall",
        "Transition from a VM to the hypervisor and return to the VM "
        "without doing any work in the hypervisor. Measures bidirectional "
        "base transition cost of hypervisor operations.",
    ),
    Microbenchmark(
        "I/O Kernel",
        "Trap from a VM to the emulated interrupt controller in the "
        "hypervisor OS kernel, then return to the VM. Measures base cost "
        "of operations that access I/O devices supported in kernel space.",
    ),
    Microbenchmark(
        "I/O User",
        "Trap from a VM to the emulated UART in QEMU and then return to "
        "the VM. Measures base cost of operations that access I/O devices "
        "emulated in user space.",
    ),
    Microbenchmark(
        "Virtual IPI",
        "Issue virtual IPI from a VCPU to another VCPU running on a "
        "different CPU, both CPUs executing VM code. Measures time from "
        "sending virtual IPI until receiving VCPU handles it.",
    ),
)


@dataclass(frozen=True)
class AppWorkload:
    """One row of Table 4, as a virtualization profile.

    Rates are events per second of native execution; ``io_bound``
    scales how directly virtualization overhead cuts throughput
    (client-server benchmarks sit on the critical path of every
    request); ``native_seconds`` is the nominal native run time used by
    the multi-VM scheduler.
    """

    name: str
    description: str
    hypercall_rate: float
    io_kernel_rate: float
    io_user_rate: float
    ipi_rate: float
    io_bound: float = 1.0
    native_seconds: float = 10.0
    #: Hypervisor-independent virtualization tax (virtio/vhost queue
    #: processing, vCPU scheduling) relative to native.
    base_virt_tax: float = 0.04


APP_WORKLOADS: Tuple[AppWorkload, ...] = (
    AppWorkload(
        name="Hackbench",
        description=(
            "hackbench using Unix domain sockets and process groups "
            "running in 500 loops (20 groups on m400, 100 on Seattle)."
        ),
        hypercall_rate=2_000,
        io_kernel_rate=12_000,
        io_user_rate=0,
        ipi_rate=18_000,
        io_bound=0.8,
        base_virt_tax=0.05,
    ),
    AppWorkload(
        name="Kernbench",
        description=(
            "Compilation of the Linux kernel using allnoconfig for Arm "
            "(v4.18 with GCC 7.5.0 on m400, v4.9 with GCC 5.4.0 on Seattle)."
        ),
        hypercall_rate=500,
        io_kernel_rate=4_000,
        io_user_rate=200,
        ipi_rate=3_000,
        io_bound=0.5,
        base_virt_tax=0.02,
    ),
    AppWorkload(
        name="Apache",
        description=(
            "Apache server handling concurrent TLS requests from a remote "
            "ApacheBench client, serving the GCC manual index."
        ),
        hypercall_rate=4_000,
        io_kernel_rate=52_000,
        io_user_rate=5_000,
        ipi_rate=16_000,
        io_bound=1.0,
        base_virt_tax=0.10,
    ),
    AppWorkload(
        name="MongoDB",
        description=(
            "MongoDB server handling requests from a remote YCSB client "
            "running workload A with 16 concurrent threads."
        ),
        hypercall_rate=3_000,
        io_kernel_rate=30_000,
        io_user_rate=2_000,
        ipi_rate=10_000,
        io_bound=0.9,
        base_virt_tax=0.07,
    ),
    AppWorkload(
        name="Redis",
        description=(
            "Redis server handling requests from a remote YCSB client "
            "running workload A."
        ),
        hypercall_rate=3_500,
        io_kernel_rate=42_000,
        io_user_rate=3_000,
        ipi_rate=12_000,
        io_bound=1.0,
        base_virt_tax=0.12,
    ),
)


def workload_by_name(name: str) -> AppWorkload:
    for workload in APP_WORKLOADS:
        if workload.name.lower() == name.lower():
            return workload
    raise KeyError(name)


def describe_table2() -> str:
    lines = ["Table 2. Microbenchmarks."]
    for mb in MICROBENCHMARKS:
        lines.append(f"  {mb.name:<12} {mb.description}")
    return "\n".join(lines)


def describe_table4() -> str:
    lines = ["Table 4. Application benchmarks."]
    for wl in APP_WORKLOADS:
        lines.append(f"  {wl.name:<10} {wl.description}")
    return "\n".join(lines)
