"""Litmus corpus: classic Armv8 shapes + the paper's Examples 1-7."""

from repro.litmus.catalog import (
    LitmusTest,
    classic_corpus,
    example1,
    example2,
    example2_gen_vmid,
    example3,
    example3_vcpu,
    example4,
    example5,
    example6,
    example7,
    extended_corpus,
    full_corpus,
    paper_examples,
)
from repro.litmus.generate import (
    GeneratorConfig,
    random_corpus,
    random_program,
)
from repro.litmus.runner import (
    LitmusOutcome,
    corpus_report,
    run_corpus,
    run_litmus,
)

__all__ = [
    "LitmusTest",
    "classic_corpus",
    "example1",
    "example2",
    "example2_gen_vmid",
    "example3",
    "example3_vcpu",
    "example4",
    "example5",
    "example6",
    "example7",
    "extended_corpus",
    "full_corpus",
    "paper_examples",
    "GeneratorConfig",
    "random_corpus",
    "random_program",
    "LitmusOutcome",
    "corpus_report",
    "run_corpus",
    "run_litmus",
]
