"""Run litmus tests against the SC, TSO, and Promising Arm models.

The runner is the executable form of the claim that our Promising Arm
implementation matches the architecture: for every test, the
postcondition must be observable exactly on the models the catalog says
it is.  A mismatch is either a bug in the executor or a mis-specified
test, and the test suite treats both as failures.

SC and Promising Arm always run.  The TSO column is opt-in
(``model="tso"`` or ``REPRO_MODEL=tso``): when it runs, the verdict is
checked against :attr:`LitmusTest.expected_tso` where the catalog pins
one, and against the SC ⊆ TSO ⊆ Arm containment sandwich otherwise.

Model configurations are shared across tests (one SC config, one
relaxed config per promise bound) so exploration caching keys stay
stable, and :func:`run_corpus` fans tests out over a process pool with
``jobs=N`` — results are merged in catalog order, so parallel runs are
bit-identical to serial ones.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.litmus.catalog import LitmusTest, full_corpus
from repro.memory.behaviors import parse_register_key
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import ModelConfig, env_model
from repro.parallel import parallel_map

#: The one SC configuration every litmus test runs under.
SC_CFG = ModelConfig(relaxed=False)

#: The one TSO configuration (store buffers on, promises off).
TSO_CFG = ModelConfig(relaxed=False, tso=True)


@functools.lru_cache(maxsize=None)
def rm_config(max_promises: int) -> ModelConfig:
    """The shared relaxed configuration for a given promise bound."""
    return ModelConfig(relaxed=True, max_promises_per_thread=max_promises)


def litmus_configs(test: LitmusTest) -> Tuple[ModelConfig, ModelConfig]:
    """The ``(sc, rm)`` configurations *test* runs under.

    Tests carrying ``vm_features`` get them applied to both models, so a
    feature-gated behavior family is explored exactly where the catalog
    says it applies; every other test keeps the shared seed configs
    (identical cache keys, bit-identical digests).
    """
    sc_cfg = SC_CFG
    rm_cfg = rm_config(test.max_promises)
    if test.vm_features:
        feats = frozenset(test.vm_features)
        sc_cfg = dataclasses.replace(sc_cfg, vm_features=feats)
        rm_cfg = dataclasses.replace(rm_cfg, vm_features=feats)
    return sc_cfg, rm_cfg


def tso_config(test: LitmusTest) -> ModelConfig:
    """The TSO configuration *test* runs under (vm features applied)."""
    cfg = TSO_CFG
    if test.vm_features:
        cfg = dataclasses.replace(cfg, vm_features=frozenset(test.vm_features))
    return cfg


@dataclass(frozen=True)
class LitmusOutcome:
    """The observed result of one litmus test on both models."""

    test: LitmusTest
    sc: ExplorationResult
    rm: ExplorationResult
    observed_sc: bool
    observed_rm: bool
    #: Filled only when the TSO column ran (``model="tso"``).
    tso: Optional[ExplorationResult] = None
    observed_tso: Optional[bool] = None
    #: The architecture the relaxed column actually ran: ``REPRO_MODEL``
    #: re-targets relaxed configurations inside the explorer, so under
    #: ``REPRO_MODEL=tso`` the "RM" exploration IS a TSO exploration and
    #: its verdict must be checked against the TSO expectation.
    rm_model: str = "arm"

    def _rm_expectation(self) -> Optional[bool]:
        """What the relaxed column should observe, per its model."""
        if self.rm_model == "sc":
            return self.test.allowed_sc
        if self.rm_model == "tso":
            return self.test.expected_tso
        return self.test.allowed_rm

    @property
    def rm_passed(self) -> bool:
        expected = self._rm_expectation()
        if expected is not None:
            return self.observed_rm == expected
        # No pinned verdict for this model: fall back to the
        # SC ⊆ model ⊆ Arm containment sandwich.
        return (not self.observed_sc or self.observed_rm) and (
            not self.observed_rm or self.test.allowed_rm
        )

    @property
    def tso_passed(self) -> bool:
        """The TSO column's verdict check (vacuously true when not run).

        With an expectation (explicit or sandwich-derived) the observed
        verdict must match it; without one, the observation must at
        least respect SC ⊆ TSO ⊆ Arm.
        """
        if self.observed_tso is None:
            return True
        if self.tso is not None and not self.tso.complete:
            return False
        expected = self.test.expected_tso
        if expected is not None:
            return self.observed_tso == expected
        return (not self.observed_sc or self.observed_tso) and (
            not self.observed_tso or self.observed_rm
        )

    @property
    def passed(self) -> bool:
        return (
            self.observed_sc == self.test.allowed_sc
            and self.rm_passed
            and self.sc.complete
            and self.rm.complete
            and self.tso_passed
        )

    def describe(self) -> str:
        def fmt(observed: bool, ok: bool) -> str:
            mark = "ok" if ok else "MISMATCH"
            return f"{'observable' if observed else 'forbidden':>10} ({mark})"

        rm_col = "RM" if self.rm_model == "arm" else f"RM={self.rm_model}"
        line = (
            f"{self.test.name:<40} SC: "
            f"{fmt(self.observed_sc, self.observed_sc == self.test.allowed_sc)}"
            f"  {rm_col}: {fmt(self.observed_rm, self.rm_passed)}"
        )
        if self.observed_tso is not None:
            line += f"  TSO: {fmt(self.observed_tso, self.tso_passed)}"
        return line


def _admits(test: LitmusTest, result: ExplorationResult) -> bool:
    """Does some behavior satisfy both register and memory conditions?"""
    wanted_regs = {}
    for key, value in test.condition.items():
        wanted_regs[parse_register_key(key)] = value
    wanted_mem = dict(test.memory_condition)
    for behavior in result.behaviors:
        assignment = {(t, r): v for t, r, v in behavior.registers}
        if not all(assignment.get(k) == v for k, v in wanted_regs.items()):
            continue
        memory = dict(behavior.memory)
        if all(memory.get(loc) == val for loc, val in wanted_mem.items()):
            return True
    return False


def _explore_one(
    test: LitmusTest,
    cfg: ModelConfig,
    observe: Sequence[int],
    cache: bool,
    backend: str,
) -> ExplorationResult:
    """One model's behavior set via the selected backend.

    ``REPRO_BACKEND_CHECK=1`` runs both backends whenever the test is
    encodable, asserts the behavior sets are identical, and returns the
    exploration result (bit-identical to the default pipeline).
    """
    from repro.errors import VerificationError
    from repro.smt.backend import bmc_explore, bmc_supported
    from repro.smt.encode import Unsupported
    from repro.smt.router import backend_check_enabled, route

    check = backend_check_enabled()
    want_bmc = backend == "bmc" or (
        backend == "auto"
        and route(test.program, cfg, observe).backend == "bmc"
    )
    solved: Optional[ExplorationResult] = None
    if (want_bmc or check) and bmc_supported(test.program, cfg) is None:
        try:
            solved = bmc_explore(test.program, cfg, observe, cache=cache)
        except Unsupported:
            solved = None
    if solved is not None and want_bmc and not check:
        return solved
    explored = cached_explore(
        test.program, cfg, observe_locs=observe, cache=cache
    )
    if check and solved is not None and solved.behaviors != explored.behaviors:
        raise VerificationError(
            f"backend cross-check failed for litmus {test.name!r}: "
            f"{len(solved.behaviors - explored.behaviors)} BMC-only, "
            f"{len(explored.behaviors - solved.behaviors)} exploration-only "
            f"behavior(s)"
        )
    return explored


def run_litmus(
    test: LitmusTest,
    cache: bool = True,
    backend: Optional[str] = None,
    model: Optional[str] = None,
) -> LitmusOutcome:
    """Execute one test under both models and check its postcondition.

    ``backend`` selects the verification backend (``explore``, ``bmc``,
    or ``auto``; None reads ``REPRO_BACKEND``).  Tests outside the
    SAT-encodable fragment always run through exploration.

    ``model`` (None reads ``REPRO_MODEL``) keeps the SC and Arm columns
    but adds a third, TSO, exploration when set to ``"tso"`` — the
    catalog's SC/Arm expectations stay meaningful under every selection,
    so the litmus suite never silently weakens.
    """
    if backend is None:
        from repro.smt.router import backend_default

        backend = backend_default()
    if model is None:
        model = env_model()
    sc_cfg, rm_cfg = litmus_configs(test)
    observe = sorted(loc for loc, _ in test.memory_condition)
    sc = _explore_one(test, sc_cfg, observe, cache, backend)
    rm = _explore_one(test, rm_cfg, observe, cache, backend)
    tso = (
        _explore_one(test, tso_config(test), observe, cache, backend)
        if model == "tso"
        else None
    )
    return LitmusOutcome(
        test=test,
        sc=sc,
        rm=rm,
        observed_sc=_admits(test, sc),
        observed_rm=_admits(test, rm),
        tso=tso,
        observed_tso=None if tso is None else _admits(test, tso),
        # The explorer re-targets relaxed configs per REPRO_MODEL (the
        # ``model`` argument only adds the TSO column), so record what
        # the environment made the relaxed column mean.
        rm_model=env_model(),
    )


def run_corpus(
    tests: Optional[Iterable[LitmusTest]] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
    model: Optional[str] = None,
) -> List[LitmusOutcome]:
    """Run a collection of litmus tests (default: the full corpus).

    ``jobs`` fans tests out over a process pool (``None``/``0`` = serial,
    negative = all CPUs); outcomes always come back in catalog order.
    """
    if tests is None:
        tests = full_corpus()
    worker = functools.partial(run_litmus, cache=cache, model=model)
    return parallel_map(worker, tests, jobs=jobs)


def corpus_report(outcomes: Sequence[LitmusOutcome]) -> str:
    lines = [o.describe() for o in outcomes]
    failed = sum(1 for o in outcomes if not o.passed)
    lines.append(f"{len(outcomes) - failed}/{len(outcomes)} litmus tests matched")
    return "\n".join(lines)
