"""Run litmus tests against the SC and Promising Arm models.

The runner is the executable form of the claim that our Promising Arm
implementation matches the architecture: for every test, the
postcondition must be observable exactly on the models the catalog says
it is.  A mismatch is either a bug in the executor or a mis-specified
test, and the test suite treats both as failures.

Model configurations are shared across tests (one SC config, one
relaxed config per promise bound) so exploration caching keys stay
stable, and :func:`run_corpus` fans tests out over a process pool with
``jobs=N`` — results are merged in catalog order, so parallel runs are
bit-identical to serial ones.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.litmus.catalog import LitmusTest, full_corpus
from repro.memory.behaviors import parse_register_key
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import ModelConfig
from repro.parallel import parallel_map

#: The one SC configuration every litmus test runs under.
SC_CFG = ModelConfig(relaxed=False)


@functools.lru_cache(maxsize=None)
def rm_config(max_promises: int) -> ModelConfig:
    """The shared relaxed configuration for a given promise bound."""
    return ModelConfig(relaxed=True, max_promises_per_thread=max_promises)


@dataclass(frozen=True)
class LitmusOutcome:
    """The observed result of one litmus test on both models."""

    test: LitmusTest
    sc: ExplorationResult
    rm: ExplorationResult
    observed_sc: bool
    observed_rm: bool

    @property
    def passed(self) -> bool:
        return (
            self.observed_sc == self.test.allowed_sc
            and self.observed_rm == self.test.allowed_rm
            and self.sc.complete
            and self.rm.complete
        )

    def describe(self) -> str:
        def fmt(observed: bool, expected: bool) -> str:
            mark = "ok" if observed == expected else "MISMATCH"
            return f"{'observable' if observed else 'forbidden':>10} ({mark})"

        return (
            f"{self.test.name:<40} SC: {fmt(self.observed_sc, self.test.allowed_sc)}"
            f"  RM: {fmt(self.observed_rm, self.test.allowed_rm)}"
        )


def _admits(test: LitmusTest, result: ExplorationResult) -> bool:
    """Does some behavior satisfy both register and memory conditions?"""
    wanted_regs = {}
    for key, value in test.condition.items():
        wanted_regs[parse_register_key(key)] = value
    wanted_mem = dict(test.memory_condition)
    for behavior in result.behaviors:
        assignment = {(t, r): v for t, r, v in behavior.registers}
        if not all(assignment.get(k) == v for k, v in wanted_regs.items()):
            continue
        memory = dict(behavior.memory)
        if all(memory.get(loc) == val for loc, val in wanted_mem.items()):
            return True
    return False


def run_litmus(test: LitmusTest, cache: bool = True) -> LitmusOutcome:
    """Execute one test under both models and check its postcondition."""
    rm_cfg = rm_config(test.max_promises)
    observe = sorted(loc for loc, _ in test.memory_condition)
    sc = cached_explore(test.program, SC_CFG, observe_locs=observe, cache=cache)
    rm = cached_explore(test.program, rm_cfg, observe_locs=observe, cache=cache)
    return LitmusOutcome(
        test=test,
        sc=sc,
        rm=rm,
        observed_sc=_admits(test, sc),
        observed_rm=_admits(test, rm),
    )


def run_corpus(
    tests: Optional[Iterable[LitmusTest]] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[LitmusOutcome]:
    """Run a collection of litmus tests (default: the full corpus).

    ``jobs`` fans tests out over a process pool (``None``/``0`` = serial,
    negative = all CPUs); outcomes always come back in catalog order.
    """
    if tests is None:
        tests = full_corpus()
    worker = functools.partial(run_litmus, cache=cache)
    return parallel_map(worker, tests, jobs=jobs)


def corpus_report(outcomes: Sequence[LitmusOutcome]) -> str:
    lines = [o.describe() for o in outcomes]
    failed = sum(1 for o in outcomes if not o.passed)
    lines.append(f"{len(outcomes) - failed}/{len(outcomes)} litmus tests matched")
    return "\n".join(lines)
