"""Run litmus tests against the SC and Promising Arm models.

The runner is the executable form of the claim that our Promising Arm
implementation matches the architecture: for every test, the
postcondition must be observable exactly on the models the catalog says
it is.  A mismatch is either a bug in the executor or a mis-specified
test, and the test suite treats both as failures.

Model configurations are shared across tests (one SC config, one
relaxed config per promise bound) so exploration caching keys stay
stable, and :func:`run_corpus` fans tests out over a process pool with
``jobs=N`` — results are merged in catalog order, so parallel runs are
bit-identical to serial ones.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.litmus.catalog import LitmusTest, full_corpus
from repro.memory.behaviors import parse_register_key
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import ModelConfig
from repro.parallel import parallel_map

#: The one SC configuration every litmus test runs under.
SC_CFG = ModelConfig(relaxed=False)


@functools.lru_cache(maxsize=None)
def rm_config(max_promises: int) -> ModelConfig:
    """The shared relaxed configuration for a given promise bound."""
    return ModelConfig(relaxed=True, max_promises_per_thread=max_promises)


def litmus_configs(test: LitmusTest) -> Tuple[ModelConfig, ModelConfig]:
    """The ``(sc, rm)`` configurations *test* runs under.

    Tests carrying ``vm_features`` get them applied to both models, so a
    feature-gated behavior family is explored exactly where the catalog
    says it applies; every other test keeps the shared seed configs
    (identical cache keys, bit-identical digests).
    """
    sc_cfg = SC_CFG
    rm_cfg = rm_config(test.max_promises)
    if test.vm_features:
        feats = frozenset(test.vm_features)
        sc_cfg = dataclasses.replace(sc_cfg, vm_features=feats)
        rm_cfg = dataclasses.replace(rm_cfg, vm_features=feats)
    return sc_cfg, rm_cfg


@dataclass(frozen=True)
class LitmusOutcome:
    """The observed result of one litmus test on both models."""

    test: LitmusTest
    sc: ExplorationResult
    rm: ExplorationResult
    observed_sc: bool
    observed_rm: bool

    @property
    def passed(self) -> bool:
        return (
            self.observed_sc == self.test.allowed_sc
            and self.observed_rm == self.test.allowed_rm
            and self.sc.complete
            and self.rm.complete
        )

    def describe(self) -> str:
        def fmt(observed: bool, expected: bool) -> str:
            mark = "ok" if observed == expected else "MISMATCH"
            return f"{'observable' if observed else 'forbidden':>10} ({mark})"

        return (
            f"{self.test.name:<40} SC: {fmt(self.observed_sc, self.test.allowed_sc)}"
            f"  RM: {fmt(self.observed_rm, self.test.allowed_rm)}"
        )


def _admits(test: LitmusTest, result: ExplorationResult) -> bool:
    """Does some behavior satisfy both register and memory conditions?"""
    wanted_regs = {}
    for key, value in test.condition.items():
        wanted_regs[parse_register_key(key)] = value
    wanted_mem = dict(test.memory_condition)
    for behavior in result.behaviors:
        assignment = {(t, r): v for t, r, v in behavior.registers}
        if not all(assignment.get(k) == v for k, v in wanted_regs.items()):
            continue
        memory = dict(behavior.memory)
        if all(memory.get(loc) == val for loc, val in wanted_mem.items()):
            return True
    return False


def _explore_one(
    test: LitmusTest,
    cfg: ModelConfig,
    observe: Sequence[int],
    cache: bool,
    backend: str,
) -> ExplorationResult:
    """One model's behavior set via the selected backend.

    ``REPRO_BACKEND_CHECK=1`` runs both backends whenever the test is
    encodable, asserts the behavior sets are identical, and returns the
    exploration result (bit-identical to the default pipeline).
    """
    from repro.errors import VerificationError
    from repro.smt.backend import bmc_explore, bmc_supported
    from repro.smt.encode import Unsupported
    from repro.smt.router import backend_check_enabled, route

    check = backend_check_enabled()
    want_bmc = backend == "bmc" or (
        backend == "auto"
        and route(test.program, cfg, observe).backend == "bmc"
    )
    solved: Optional[ExplorationResult] = None
    if (want_bmc or check) and bmc_supported(test.program, cfg) is None:
        try:
            solved = bmc_explore(test.program, cfg, observe, cache=cache)
        except Unsupported:
            solved = None
    if solved is not None and want_bmc and not check:
        return solved
    explored = cached_explore(
        test.program, cfg, observe_locs=observe, cache=cache
    )
    if check and solved is not None and solved.behaviors != explored.behaviors:
        raise VerificationError(
            f"backend cross-check failed for litmus {test.name!r}: "
            f"{len(solved.behaviors - explored.behaviors)} BMC-only, "
            f"{len(explored.behaviors - solved.behaviors)} exploration-only "
            f"behavior(s)"
        )
    return explored


def run_litmus(
    test: LitmusTest, cache: bool = True, backend: Optional[str] = None
) -> LitmusOutcome:
    """Execute one test under both models and check its postcondition.

    ``backend`` selects the verification backend (``explore``, ``bmc``,
    or ``auto``; None reads ``REPRO_BACKEND``).  Tests outside the
    SAT-encodable fragment always run through exploration.
    """
    if backend is None:
        from repro.smt.router import backend_default

        backend = backend_default()
    sc_cfg, rm_cfg = litmus_configs(test)
    observe = sorted(loc for loc, _ in test.memory_condition)
    sc = _explore_one(test, sc_cfg, observe, cache, backend)
    rm = _explore_one(test, rm_cfg, observe, cache, backend)
    return LitmusOutcome(
        test=test,
        sc=sc,
        rm=rm,
        observed_sc=_admits(test, sc),
        observed_rm=_admits(test, rm),
    )


def run_corpus(
    tests: Optional[Iterable[LitmusTest]] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
) -> List[LitmusOutcome]:
    """Run a collection of litmus tests (default: the full corpus).

    ``jobs`` fans tests out over a process pool (``None``/``0`` = serial,
    negative = all CPUs); outcomes always come back in catalog order.
    """
    if tests is None:
        tests = full_corpus()
    worker = functools.partial(run_litmus, cache=cache)
    return parallel_map(worker, tests, jobs=jobs)


def corpus_report(outcomes: Sequence[LitmusOutcome]) -> str:
    lines = [o.describe() for o in outcomes]
    failed = sum(1 for o in outcomes if not o.passed)
    lines.append(f"{len(outcomes) - failed}/{len(outcomes)} litmus tests matched")
    return "\n".join(lines)
