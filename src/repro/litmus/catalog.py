"""Litmus-test corpus.

Two families:

* The classic Armv8 user-level shapes (SB, MP, LB, CoRR, WRC and their
  barrier/dependency variants), which pin the Promising Arm executor to
  the architecturally allowed/forbidden outcomes — the same role the
  herd7 corpus plays for the axiomatic model the paper's base model was
  proven equivalent to.
* The paper's Section 2 examples (1-7): kernel-code shapes that verify on
  an SC model yet misbehave on relaxed hardware, each in a *buggy* and a
  *fixed* (wDRF-conforming) variant.

Each :class:`LitmusTest` names a postcondition (register assignment) and
whether it must be observable on the SC and Promising Arm models; the
runner checks both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import MemSpace, PTKind, Reg, ThreadBuilder, build_program
from repro.ir.program import MMUConfig, Program
from repro.memory.semantics import PTE_AF, PTE_DIRTY
from repro.mmu.pagetable import PageTableLayout


@dataclass(frozen=True)
class LitmusTest:
    """One litmus test: a program, a postcondition, and expectations.

    ``condition`` uses the ``t{tid}_{reg} = value`` convention of
    :func:`repro.memory.behaviors.admits`.  ``allowed_sc``/``allowed_rm``
    say whether the postcondition must be observable on each model.
    ``paper_ref`` ties the test back to the paper.
    """

    name: str
    program: Program
    condition: Dict[str, int]
    allowed_sc: bool
    allowed_rm: bool
    #: Whether the outcome is observable on the TSO model.  ``None``
    #: means "derive it": when SC and Promising Arm agree, the
    #: containment sandwich SC ⊆ TSO ⊆ Arm pins TSO to the shared
    #: verdict; when they diverge an explicit value is required for the
    #: runner to check anything beyond containment.
    allowed_tso: Optional[bool] = None
    description: str = ""
    paper_ref: str = ""
    max_promises: int = 1
    #: Optional final-memory constraints ((loc, value), ...) conjoined
    #: with the register condition — needed for coherence-order probes
    #: like S, R, and 2+2W where the outcome lives in memory.
    memory_condition: Tuple[Tuple[int, int], ...] = ()
    #: Relaxed-virtual-memory features (see
    #: :data:`repro.memory.semantics.VM_FEATURES`) the test runs under;
    #: the runner applies them to both model configurations.
    vm_features: Tuple[str, ...] = ()

    @property
    def exposes_rm_bug(self) -> bool:
        """True when relaxed hardware admits an outcome SC forbids."""
        return self.allowed_rm and not self.allowed_sc

    @property
    def expected_tso(self) -> Optional[bool]:
        """The TSO verdict, explicit or derived from the containment
        sandwich; ``None`` when only SC ⊆ TSO ⊆ Arm can be checked."""
        if self.allowed_tso is not None:
            return self.allowed_tso
        if self.allowed_sc == self.allowed_rm:
            return self.allowed_sc
        return None


X, Y, Z = 0x100, 0x200, 0x300


def _two(t0: ThreadBuilder, t1: ThreadBuilder, observed, init, name) -> Program:
    return build_program(
        [t0, t1], observed=observed, initial_memory=init, name=name
    )


# ---------------------------------------------------------------------------
# classic corpus
# ---------------------------------------------------------------------------

def store_buffering(dmb: bool = False) -> LitmusTest:
    """SB: both threads store then load the other location."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1)
    if dmb:
        t0.barrier("full")
    t0.load("r0", Y)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1)
    if dmb:
        t1.barrier("full")
    t1.load("r1", X)
    name = "SB+dmbs" if dmb else "SB"
    return LitmusTest(
        name=name,
        program=_two(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0}, name),
        condition=dict(t0_r0=0, t1_r1=0),
        allowed_sc=False,
        allowed_rm=not dmb,
        # SB is THE hallmark TSO relaxation: each store sits in its
        # thread's buffer while the cross load reads the initial value.
        allowed_tso=not dmb,
        description="store buffering: both loads read the initial value",
    )


def message_passing(variant: str = "plain") -> LitmusTest:
    """MP: writer sets data then flag; reader sees flag but stale data?

    Variants: ``plain`` (allowed on RM), ``rel-acq``, ``dmb`` (both sides
    full barriers), ``addr`` (address-dependent reader) — all forbidden.
    """
    t0 = ThreadBuilder(0)
    t1 = ThreadBuilder(1)
    if variant == "plain":
        t0.store(X, 1).store(Y, 1)
        t1.load("r0", Y).load("r1", X)
    elif variant == "rel-acq":
        t0.store(X, 1).store(Y, 1, release=True)
        t1.load("r0", Y, acquire=True).load("r1", X)
    elif variant == "dmb":
        t0.store(X, 1).barrier("full").store(Y, 1)
        t1.load("r0", Y).barrier("full").load("r1", X)
    elif variant == "addr":
        # MP+dmb.st+addr: writer orders its stores; reader's second
        # address depends on the first read's value (X + (r0 - r0), an
        # artificial but architecturally real address dependency).
        # Without the writer-side barrier the outcome stays allowed.
        t0.store(X, 1).barrier("st").store(Y, 1)
        t1.load("r0", Y).load("r1", Reg("r0") - Reg("r0") + X)
    else:
        raise ValueError(variant)
    name = f"MP+{variant}" if variant != "plain" else "MP"
    return LitmusTest(
        name=name,
        program=_two(t0, t1, {1: ["r0", "r1"]}, {X: 0, Y: 0}, name),
        condition=dict(t1_r0=1, t1_r1=0),
        allowed_sc=False,
        allowed_rm=(variant == "plain"),
        allowed_tso=False,  # TSO keeps both store/store and load/load order
        description="message passing: flag observed but data stale",
    )


def load_buffering(variant: str = "plain") -> LitmusTest:
    """LB (the paper's Example 1 shape): loads read from later stores.

    Variants: ``plain`` (allowed: stores may be promised early), ``data``
    (data-dependent on both sides: forbidden — no out-of-thin-air),
    ``one-data`` (dependency on one side only: still allowed), ``ctrl``
    (control-dependent stores: forbidden on Arm).
    """
    t0 = ThreadBuilder(0)
    t1 = ThreadBuilder(1)
    if variant == "plain":
        t0.load("r0", X).store(Y, 1)
        t1.load("r1", Y).store(X, 1)
    elif variant == "data":
        t0.load("r0", X).store(Y, "r0")
        t1.load("r1", Y).store(X, "r1")
    elif variant == "one-data":
        t0.load("r0", X).store(Y, 1)
        t1.load("r1", Y).store(X, "r1")
    elif variant == "ctrl":
        for tb, src, dst, reg in ((t0, X, Y, "r0"), (t1, Y, X, "r1")):
            skip = tb.fresh_label("skip")
            tb.load(reg, src)
            tb.bz(Reg(reg), skip)
            tb.store(dst, 1)
            tb.label(skip)
    else:
        raise ValueError(variant)
    name = f"LB+{variant}" if variant != "plain" else "LB"
    return LitmusTest(
        name=name,
        program=_two(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0}, name),
        condition=dict(t0_r0=1, t1_r1=1),
        allowed_sc=False,
        allowed_rm=(variant in ("plain", "one-data")),
        allowed_tso=False,  # no load/store reordering under TSO
        description="load buffering / out-of-order writes",
        paper_ref="Example 1" if variant == "plain" else "",
    )


def coherence_rr() -> LitmusTest:
    """CoRR: two reads of one location must not go backwards in
    coherence order — even on relaxed Arm."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1)
    t1 = ThreadBuilder(1)
    t1.load("r0", X).load("r1", X)
    return LitmusTest(
        name="CoRR",
        program=_two(t0, t1, {1: ["r0", "r1"]}, {X: 0}, "CoRR"),
        condition=dict(t1_r0=1, t1_r1=0),
        allowed_sc=False,
        allowed_rm=False,
        description="read-read coherence",
    )


def coherence_ww() -> LitmusTest:
    """CoWW+read-back: a thread's two stores to one location are ordered;
    its own later read must see the second."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1).store(X, 2).load("r0", X)
    t1 = ThreadBuilder(1)
    t1.nop()
    return LitmusTest(
        name="CoWW",
        program=_two(t0, t1, {0: ["r0"]}, {X: 0}, "CoWW"),
        condition=dict(t0_r0=1),
        allowed_sc=False,
        allowed_rm=False,
        description="write-write coherence with read-back",
    )


def write_to_read_causality(dependencies: bool = True) -> LitmusTest:
    """WRC: write-to-read causality across three threads.

    Armv8 is multicopy-atomic, so with dependencies on both observer
    edges the non-causal outcome is forbidden; with plain accesses the
    reader may still locally reorder and observe it.
    """
    t0 = ThreadBuilder(0)
    t0.store(X, 1)
    t1 = ThreadBuilder(1)
    t2 = ThreadBuilder(2)
    if dependencies:
        t1.load("r0", X).store(Y, "r0")
        t2.load("r1", Y).load("r2", Reg("r1") - Reg("r1") + X)
    else:
        skip = t1.fresh_label("skip")
        t1.load("r0", X).bz(Reg("r0"), skip).store(Y, 1).label(skip)
        t2.load("r1", Y).load("r2", X)
    name = "WRC+deps" if dependencies else "WRC"
    program = build_program(
        [t0, t1, t2],
        observed={1: ["r0"], 2: ["r1", "r2"]},
        initial_memory={X: 0, Y: 0},
        name=name,
    )
    return LitmusTest(
        name=name,
        program=program,
        condition=dict(t1_r0=1, t2_r1=1, t2_r2=0),
        allowed_sc=False,
        allowed_rm=not dependencies,
        allowed_tso=False,  # TSO is multicopy-atomic and load/load ordered
        description="write-to-read causality (multicopy atomicity probe)",
    )


def atomic_increment_uniqueness() -> LitmusTest:
    """Two fetch-and-incs must return distinct values even on RM."""
    t0 = ThreadBuilder(0)
    t0.faa("r0", X)
    t1 = ThreadBuilder(1)
    t1.faa("r1", X)
    return LitmusTest(
        name="FAA-unique",
        program=_two(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0}, "FAA-unique"),
        condition=dict(t0_r0=0, t1_r1=0),
        allowed_sc=False,
        allowed_rm=False,
        description="atomicity of fetch-and-increment",
    )


# ---------------------------------------------------------------------------
# the paper's Section 2 examples
# ---------------------------------------------------------------------------

TICKET, NOW, NEXT_VMID = 0x10, 0x11, 0x20


def example2_gen_vmid(correct: bool, n_cpus: int = 2, max_vm: int = 16) -> Program:
    """Example 2 (VM booting): ``gen_vmid`` with/without lock barriers."""
    threads = []
    for tid in range(n_cpus):
        b = ThreadBuilder(tid)
        b.faa("my_ticket", TICKET, acquire=correct)
        b.spin_until_eq("now", NOW, "my_ticket", acquire=correct)
        b.load("vmid", NEXT_VMID)
        overflow = b.fresh_label("overflow")
        done = b.fresh_label("done")
        b.mov("in_range", (Reg("vmid") < max_vm))
        b.bz(Reg("in_range"), overflow)
        b.store(NEXT_VMID, Reg("vmid") + 1)
        b.jump(done)
        b.label(overflow)
        b.panic("gen_vmid: VMID space exhausted")
        b.label(done)
        b.load("t", NOW)
        b.store(NOW, Reg("t") + 1, release=correct)
        threads.append(b)
    return build_program(
        threads,
        observed={tid: ["vmid"] for tid in range(n_cpus)},
        initial_memory={TICKET: 0, NOW: 0, NEXT_VMID: 0},
        name=f"gen_vmid[{'fixed' if correct else 'buggy'}]",
    )


def example2(correct: bool) -> LitmusTest:
    return LitmusTest(
        name=f"Example2-gen_vmid[{'fixed' if correct else 'buggy'}]",
        program=example2_gen_vmid(correct),
        condition=dict(t0_vmid=0, t1_vmid=0),
        allowed_sc=False,
        allowed_rm=not correct,
        allowed_tso=False,  # the ticket RMW drains the buffer either way
        description="two CPUs booting VMs receive the same VMID",
        paper_ref="Example 2",
    )


CTX, VCPU_STATE = 0x30, 0x31
ACTIVE, INACTIVE = 1, 0
SAVED_CTX_VALUE = 42


def example3_vcpu(correct: bool) -> Program:
    """Example 3 (VM context switch): save_vm / restore_vm.

    CPU 0 runs the vCPU: it saves the context then marks the vCPU state
    INACTIVE.  CPU 1 waits for INACTIVE, marks it ACTIVE, and restores
    the context.  Without release/acquire on the state variable, the
    context store can be observed *after* the state change and CPU 1
    restores a stale context.
    """
    t0 = ThreadBuilder(0)
    t0.store(CTX, SAVED_CTX_VALUE)                      # save vCPU context
    t0.store(VCPU_STATE, INACTIVE, release=correct)     # publish ownership
    t1 = ThreadBuilder(1)
    t1.spin_until_eq("s", VCPU_STATE, INACTIVE, acquire=correct)
    t1.store(VCPU_STATE, ACTIVE)
    t1.load("restored", CTX)                            # restore context
    return build_program(
        [t0, t1],
        observed={1: ["restored"]},
        initial_memory={CTX: 0, VCPU_STATE: ACTIVE},
        name=f"vcpu_switch[{'fixed' if correct else 'buggy'}]",
    )


def example3(correct: bool) -> LitmusTest:
    return LitmusTest(
        name=f"Example3-vcpu-switch[{'fixed' if correct else 'buggy'}]",
        program=example3_vcpu(correct),
        condition=dict(t1_restored=0),   # stale (pre-save) context restored
        allowed_sc=False,
        allowed_rm=not correct,
        allowed_tso=False,  # FIFO drain publishes CTX before VCPU_STATE
        description="vCPU context restored before it was saved",
        paper_ref="Example 3",
    )


def example4_pt_reads() -> Tuple[Program, Dict[str, int]]:
    """Example 4 (out-of-order page table reads).

    Pre: 0x80 -> 0x10 (all-0), 0x81 -> 0x11 (all-0); kernel remaps both
    to all-1 pages.  A user thread reading y then x can see the *second*
    remap but not the first.
    """
    layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
    p10, p11, p20, p21 = 0x10, 0x11, 0x20, 0x21
    layout.map(0x80, p10)
    layout.map(0x81, p11)
    pte80 = layout.leaf_entry(0x80)
    pte81 = layout.leaf_entry(0x81)
    init = layout.initial_memory()
    init.update({p10: 0, p11: 0, p20: 1, p21: 1})
    t0 = ThreadBuilder(0)
    t0.pt_store(pte80, p20, kind=PTKind.STAGE2, level=1)
    t0.pt_store(pte81, p21, kind=PTKind.STAGE2, level=1)
    t1 = ThreadBuilder(1, is_kernel=False)
    t1.vload("r0", 0x81).vload("r1", 0x80)
    program = build_program(
        [t0, t1],
        observed={1: ["r0", "r1"]},
        initial_memory=init,
        mmu=layout.mmu_config(),
        name="Example4-pt-reads",
    )
    return program, dict(t1_r0=1, t1_r1=0)


def example4() -> LitmusTest:
    program, condition = example4_pt_reads()
    return LitmusTest(
        name="Example4-pt-reads",
        program=program,
        condition=condition,
        allowed_sc=False,
        allowed_rm=True,
        allowed_tso=False,  # reads stay ordered; no stale walker reads
        description="user observes second PT remap but not the first",
        paper_ref="Example 4",
    )


SECRET_VALUE = 77


def example5_pt_writes(transactional: bool) -> Program:
    """Example 5 (out-of-order page table writes).

    Buggy: the kernel unmaps a PGD then writes a PTE under it; a racing
    walk can see the new PTE through the still-mapped (stale) PGD and
    reach physical page p, even though the final page table leaves the
    address unmapped — an RM-only leak.

    Transactional: the ``set_s2pt`` insert discipline of Section 5.4 —
    the new leaf lives in a freshly allocated zeroed table that is linked
    into an *empty* PGD slot.  Under any reordering a partial walk
    faults; only the complete update exposes the page, which is then also
    the SC post-state (no RM-only outcome).
    """
    layout = PageTableLayout(base=0x1000, levels=2, va_bits_per_level=4)
    layout.map(0x01, 0x60)  # forces the 0x0X intermediate table to exist
    secret_page = 0x40
    init = layout.initial_memory()
    init[secret_page] = SECRET_VALUE

    t0 = ThreadBuilder(0)
    if transactional:
        # Map vpn 0x15 (empty PGD slot 1): walk-allocate-set in program
        # order, exactly the write sequence set_s2pt performs.
        writes = layout.plan_map(0x15, secret_page)
        for loc, value, level in writes:
            t0.pt_store(loc, value, kind=PTKind.STAGE2, level=level)
        victim_vpn = 0x15
    else:
        pgd_x = layout.entry_path(0x05)[0]
        pte_y = layout.entry_path(0x05)[1]
        t0.pt_store(pgd_x, 0, kind=PTKind.STAGE2, level=0)
        t0.pt_store(pte_y, secret_page, kind=PTKind.STAGE2, level=1)
        victim_vpn = 0x05
    t1 = ThreadBuilder(1, is_kernel=False)
    t1.vload("r0", victim_vpn)
    return build_program(
        [t0, t1],
        observed={1: ["r0"]},
        initial_memory=init,
        mmu=layout.mmu_config(),
        name=f"pt_writes[{'transactional' if transactional else 'buggy'}]",
    )


def example5(transactional: bool = False) -> LitmusTest:
    kind = "transactional" if transactional else "buggy"
    return LitmusTest(
        name=f"Example5-pt-writes[{kind}]",
        program=example5_pt_writes(transactional),
        condition=dict(t1_r0=SECRET_VALUE),
        # Buggy: reading the secret is an RM-only leak (the final PT
        # leaves the address unmapped).  Transactional: reading the page
        # is the legitimate post-state, observable on both models.
        allowed_sc=transactional,
        allowed_rm=True,
        allowed_tso=transactional,  # the leak needs Arm's write reordering
        description="racing walk reaches a page through a half-applied update",
        paper_ref="Example 5",
    )


STALE_PAGE_VALUE = 55
DONE_FLAG = 0x500


def example6_tlb(with_barrier: bool) -> Program:
    """Example 6 (out-of-order page table and TLB reads).

    The kernel unmaps 0x8 and invalidates the TLB, then signals
    completion; a user thread that observes the signal must no longer
    reach the old physical page.  Without a barrier between the unmap and
    the TLBI, a racing walk can refill the TLB from the stale entry.
    """
    layout = PageTableLayout(base=0x1000, levels=1, va_bits_per_level=4)
    layout.map(0x8, 0x10)
    pte = layout.leaf_entry(0x8)
    init = layout.initial_memory()
    init[0x10] = STALE_PAGE_VALUE
    init[DONE_FLAG] = 0
    t0 = ThreadBuilder(0)
    t0.pt_store(pte, 0, kind=PTKind.STAGE2, level=0)
    if with_barrier:
        t0.barrier("full")
    t0.tlbi(0x8)
    t0.store(DONE_FLAG, 1, release=True)
    t1 = ThreadBuilder(1, is_kernel=False)
    t1.spin_until_eq("d", DONE_FLAG, 1, acquire=True)
    t1.vload("r0", 0x8)
    return build_program(
        [t0, t1],
        observed={1: ["r0"]},
        initial_memory=init,
        mmu=layout.mmu_config(),
        name=f"tlb_inval[{'barrier' if with_barrier else 'buggy'}]",
    )


def example6(with_barrier: bool = False) -> LitmusTest:
    kind = "barrier" if with_barrier else "buggy"
    return LitmusTest(
        name=f"Example6-tlbi[{kind}]",
        program=example6_tlb(with_barrier),
        condition=dict(t1_r0=STALE_PAGE_VALUE),
        allowed_sc=False,
        allowed_rm=not with_barrier,
        allowed_tso=False,  # TSO has no TLB-refill race to exploit
        description="stale translation survives a TLB invalidation",
        paper_ref="Example 6",
    )


def example7_user_to_kernel(use_oracle: bool) -> Program:
    """Example 7 (information flow from user programs to the kernel).

    Two user threads run Example 1's racy code and each bumps ``z`` when
    its read returned 1; on SC at most one read can return 1, so z <= 1.
    Kernel CPU 2 reads ``z`` and computes ``r2 = (z == 2 ? 0 : 1)`` — the
    divide-by-zero shape.  On RM both reads can return 1, z can reach 2,
    and the kernel's r2 becomes 0: user relaxed behavior propagated into
    verified kernel code.  With a data oracle (``use_oracle=True``) the
    kernel's read is masked and its SC-proved behavior envelope already
    contains every outcome.
    """
    t0 = ThreadBuilder(0, is_kernel=False)
    t0.load("r0", X).store(Y, 1)
    skip0 = t0.fresh_label("skip")
    t0.bz(Reg("r0"), skip0)
    t0.faa("tmp", Z, space=MemSpace.USER)
    t0.label(skip0)

    t1 = ThreadBuilder(1, is_kernel=False)
    t1.load("r1", Y).store(X, "r1")
    skip1 = t1.fresh_label("skip")
    t1.bz(Reg("r1"), skip1)
    t1.faa("tmp", Z, space=MemSpace.USER)
    t1.label(skip1)

    t2 = ThreadBuilder(2, is_kernel=True)
    if use_oracle:
        t2.oracle_read("z", Z, choices=(0, 1, 2))
    else:
        t2.load("z", Z, space=MemSpace.USER)
    t2.mov("r2", Reg("z").ne(2))
    return build_program(
        [t0, t1, t2],
        observed={2: ["r2"]},
        initial_memory={X: 0, Y: 0, Z: 0},
        spaces={X: MemSpace.USER, Y: MemSpace.USER, Z: MemSpace.USER},
        name=f"user_flow[{'oracle' if use_oracle else 'direct'}]",
    )


def example7(use_oracle: bool = False) -> LitmusTest:
    kind = "oracle" if use_oracle else "direct"
    return LitmusTest(
        name=f"Example7-user-flow[{kind}]",
        program=example7_user_to_kernel(use_oracle),
        condition=dict(t2_r2=0),
        allowed_sc=use_oracle,   # the oracle already admits z=2 on SC
        allowed_rm=True,
        allowed_tso=use_oracle,  # LB's z=2 outcome needs Arm promises
        description="user RM behavior reaches kernel through memory reads",
        paper_ref="Example 7",
    )


# One-thread LB on the user side means Example 1 itself:
def example1() -> LitmusTest:
    test = load_buffering("plain")
    return LitmusTest(
        name="Example1-out-of-order-write",
        program=test.program,
        condition=test.condition,
        allowed_sc=False,
        allowed_rm=True,
        allowed_tso=False,  # same shape as LB
        description="out-of-order write observed (paper Example 1)",
        paper_ref="Example 1",
    )


def shape_s(dmb_writer: bool = False) -> LitmusTest:
    """S: T0 stores data then raises a flag; T1 reads the flag and
    overwrites the data with a dependent store.  ``final X == 2 and
    r0 == 1`` requires T1's (dependent, hence ordered) store to land
    coherence-before T0's first store while still reading T0's second —
    possible only if T0's stores were reordered."""
    t0 = ThreadBuilder(0)
    t0.store(X, 2)
    if dmb_writer:
        t0.barrier("st")
    t0.store(Y, 1)
    t1 = ThreadBuilder(1)
    t1.load("r0", Y).store(X, Reg("r0") - Reg("r0") + 1)  # data dep
    name = "S+dmb.st+data" if dmb_writer else "S+data"
    return LitmusTest(
        name=name,
        program=_two(t0, t1, {1: ["r0"]}, {X: 0, Y: 0}, name),
        condition=dict(t1_r0=1),
        memory_condition=((X, 2),),
        allowed_sc=False,
        allowed_rm=not dmb_writer,
        allowed_tso=False,  # FIFO buffers keep T0's stores in order
        description="S shape (write-after-read coherence probe)",
    )


def two_plus_two_w(release: bool = False) -> LitmusTest:
    """2+2W: both threads write both locations in opposite orders.

    ``final X == 1 and Y == 1`` means each thread's *second* write lost
    to the other's *first* — both threads' stores were reordered.
    Allowed on plain Arm stores, forbidden with release second stores
    (and on SC).
    """
    t0 = ThreadBuilder(0)
    t0.store(X, 1).store(Y, 2, release=release)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1).store(X, 2, release=release)
    name = "2+2W+rel" if release else "2+2W"
    program = _two(t0, t1, {}, {X: 0, Y: 0}, name)
    return LitmusTest(
        name=name,
        program=program,
        condition={},
        memory_condition=((X, 1), (Y, 1)),
        allowed_sc=False,
        allowed_rm=not release,
        allowed_tso=False,  # store/store reordering is not a TSO relaxation
        description="2+2W write-write reordering probe",
        max_promises=1,
    )


def isa2() -> LitmusTest:
    """ISA2: three-thread transitive message passing with full
    dependency/barrier chain — forbidden on Armv8."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1).store(Y, 1, release=True)
    t1 = ThreadBuilder(1)
    t1.load("r0", Y, acquire=True).store(Z, "r0")
    t2 = ThreadBuilder(2)
    t2.load("r1", Z, acquire=True).load("r2", X)
    program = build_program(
        [t0, t1, t2],
        observed={1: ["r0"], 2: ["r1", "r2"]},
        initial_memory={X: 0, Y: 0, Z: 0},
        name="ISA2",
    )
    return LitmusTest(
        name="ISA2",
        program=program,
        condition=dict(t1_r0=1, t2_r1=1, t2_r2=0),
        allowed_sc=False,
        allowed_rm=False,
        description="transitive release/acquire message passing",
    )


def isa2_plain() -> LitmusTest:
    """ISA2 without any ordering: the stale read is allowed."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1).store(Y, 1)
    t1 = ThreadBuilder(1)
    t1.load("r0", Y).store(Z, "r0")
    t2 = ThreadBuilder(2)
    t2.load("r1", Z).load("r2", X)
    program = build_program(
        [t0, t1, t2],
        observed={1: ["r0"], 2: ["r1", "r2"]},
        initial_memory={X: 0, Y: 0, Z: 0},
        name="ISA2+plain",
    )
    return LitmusTest(
        name="ISA2+plain",
        program=program,
        condition=dict(t1_r0=1, t2_r1=1, t2_r2=0),
        allowed_sc=False,
        allowed_rm=True,
        allowed_tso=False,
        description="ISA2 shape with no barriers",
    )


def shape_r(dmb: bool = True) -> LitmusTest:
    """R: store/store vs store/load.

    ``final Y == 2 and r0 == 0``: T1's store to Y won the coherence race
    (so T0 finished both stores first) yet T1 still read the old X.
    Forbidden with full barriers on both threads; allowed plain.
    """
    t0 = ThreadBuilder(0)
    t0.store(X, 1)
    if dmb:
        t0.barrier("full")
    t0.store(Y, 1)
    t1 = ThreadBuilder(1)
    t1.store(Y, 2)
    if dmb:
        t1.barrier("full")
    t1.load("r0", X)
    name = "R+dmbs" if dmb else "R"
    program = _two(t0, t1, {1: ["r0"]}, {X: 0, Y: 0}, name)
    return LitmusTest(
        name=name,
        program=program,
        condition=dict(t1_r0=0),
        memory_condition=((Y, 2),),
        allowed_sc=False,
        allowed_rm=not dmb,
        # Like SB, R is TSO-observable: T1's store to Y can drain (and
        # lose the coherence race) while its load of X ran early.
        allowed_tso=not dmb,
        description="R shape (coherence + barrier interaction)",
    )


def iriw() -> LitmusTest:
    """IRIW: two writers, two readers observing them in opposite orders.

    The model separator of the portfolio: forbidden on SC (a single
    interleaving orders the writes one way), forbidden on TSO (store
    buffers drain into a *single* shared memory, so all threads agree on
    the write order — TSO is multicopy-atomic and keeps load/load
    order), yet allowed on pre-Armv8-style non-multicopy-atomic relaxed
    models, which the Promising executor reproduces via early promises.
    """
    t0 = ThreadBuilder(0)
    t0.store(X, 1)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1)
    t2 = ThreadBuilder(2)
    t2.load("r0", X).load("r1", Y)
    t3 = ThreadBuilder(3)
    t3.load("r2", Y).load("r3", X)
    program = build_program(
        [t0, t1, t2, t3],
        observed={2: ["r0", "r1"], 3: ["r2", "r3"]},
        initial_memory={X: 0, Y: 0},
        name="IRIW",
    )
    return LitmusTest(
        name="IRIW",
        program=program,
        condition=dict(t2_r0=1, t2_r1=0, t3_r2=1, t3_r3=0),
        allowed_sc=False,
        allowed_rm=True,
        allowed_tso=False,
        description="independent readers disagree on the write order",
    )


def sb_rel_acq() -> LitmusTest:
    """SB with release stores and acquire loads is STILL allowed on Arm:
    release/acquire does not order a store before a later load."""
    t0 = ThreadBuilder(0)
    t0.store(X, 1, release=True).load("r0", Y, acquire=True)
    t1 = ThreadBuilder(1)
    t1.store(Y, 1, release=True).load("r1", X, acquire=True)
    return LitmusTest(
        name="SB+rel-acq",
        program=_two(t0, t1, {0: ["r0"], 1: ["r1"]}, {X: 0, Y: 0},
                     "SB+rel-acq"),
        condition=dict(t0_r0=0, t1_r1=0),
        allowed_sc=False,
        allowed_rm=True,
        allowed_tso=False,  # a TSO release store drains the buffer first
        description="release/acquire is not a full fence (SB stays allowed)",
    )


# ---------------------------------------------------------------------------
# relaxed-virtual-memory corpus (REPRO_VM_FEATURES behavior families)
# ---------------------------------------------------------------------------

#: Shared flat-table geometry for the VM-feature tests: a two-level walk
#: rooted at ``VM_ROOT`` whose level-0 entry points at table ``VM_T1``,
#: whose entry 0 maps vpn 0 to page ``VM_P1``.
VM_ROOT, VM_T1, VM_T2 = 0x200, 0x210, 0x220
VM_P1, VM_P2 = 0x100, 0x110
VM_FLAG = 0x300
VM_S2 = 0x400


def _vm_handshake_accessor(tid: int = 1) -> ThreadBuilder:
    """The VM tests' reader: waits for the updater's release, then loads."""
    a = ThreadBuilder(tid, "accessor", is_kernel=False)
    a.spin_until_eq("f", VM_FLAG, 1, acquire=True)
    a.vload("r", 0)
    return a


def vm_bbm(honest: bool) -> LitmusTest:
    """Break-before-make amalgamation (``bbm`` feature).

    An updater changes the live leaf entry vpn0 -> VM_P1 to vpn0 -> VM_P2
    and hands off with a release store.  The honest variant interposes the
    invalid entry plus a TLBI between the two live values
    (:meth:`ThreadBuilder.bbm_remap`); the amalgamated variant rewrites
    the live entry directly (store/DMB/TLBI) — sufficient discipline for
    invalid-to-live transitions, CONSTRAINED UNPREDICTABLE for
    live-to-live ones.  Under ``bbm`` the overwritten translation then
    stays a permanent walker candidate, so the accessor can still read
    the old frame *after* the handshake.
    """
    u = ThreadBuilder(0, "updater")
    if honest:
        u.bbm_remap(VM_T1 + 0, VM_P2, vpn=0, kind=PTKind.STAGE2, level=1)
    else:
        u.pt_store(VM_T1 + 0, VM_P2, kind=PTKind.STAGE2, level=1)
        u.barrier("full")
        u.tlbi(0)
        u.barrier("full")
    u.store(VM_FLAG, 1, release=True)
    program = build_program(
        [u, _vm_handshake_accessor()],
        observed={1: ("r",)},
        initial_memory={
            VM_ROOT: VM_T1, VM_T1: VM_P1, VM_P1: 1, VM_P2: 2, VM_FLAG: 0,
        },
        mmu=MMUConfig(root=VM_ROOT),
        name=f"vm_bbm[{'honest' if honest else 'amalgamated'}]",
    )
    return LitmusTest(
        name=f"VM-bbm[{'honest' if honest else 'amalgamated'}]",
        program=program,
        condition=dict(t1_r=1),
        allowed_sc=False,
        allowed_rm=not honest,
        allowed_tso=False,  # amalgamation is a walker relaxation, Arm-only
        description=(
            "break-before-make interposes an invalid entry; skipping the "
            "break leaves the old translation amalgamated forever"
        ),
        paper_ref="Simner et al. §4 (break-before-make)",
        vm_features=("bbm",),
    )


def vm_walk_cache(leaf_only: bool) -> LitmusTest:
    """Partial caching of intermediate walk entries (``walk-cache``).

    The updater honestly break-before-makes the *non-leaf* root entry
    from table VM_T1 to table VM_T2.  With full TLBIs the accessor's
    cached intermediate descriptor is expelled and the post-handshake
    load must reach the new table's frame (or fault inside the window).
    With last-level (``leaf_only``) TLBIs the cached level-0 descriptor
    survives, and the accessor can keep walking through the stale table
    to the old frame.
    """
    u = ThreadBuilder(0, "updater")
    u.pt_store(VM_ROOT + 0, 0, kind=PTKind.STAGE2, level=0)
    u.barrier("full")
    u.tlbi(0, leaf_only=leaf_only)
    u.barrier("full")
    u.pt_store(VM_ROOT + 0, VM_T2, kind=PTKind.STAGE2, level=0)
    u.barrier("full")
    u.tlbi(0, leaf_only=leaf_only)
    u.barrier("full")
    u.store(VM_FLAG, 1, release=True)
    a = ThreadBuilder(1, "accessor", is_kernel=False)
    a.vload("pre", 0)  # primes the walk cache with the old descriptor
    a.spin_until_eq("f", VM_FLAG, 1, acquire=True)
    a.tlbi(0, leaf_only=True)  # drops the leaf TLB entry, not the cache
    a.vload("r", 0)
    program = build_program(
        [u, a],
        observed={1: ("pre", "r")},
        initial_memory={
            VM_ROOT: VM_T1, VM_T1: VM_P1, VM_T2: VM_P2,
            VM_P1: 1, VM_P2: 2, VM_FLAG: 0,
        },
        mmu=MMUConfig(root=VM_ROOT),
        name=f"vm_walk_cache[{'leaf-only' if leaf_only else 'full'}-tlbi]",
    )
    return LitmusTest(
        name=f"VM-walk-cache[{'leaf-only' if leaf_only else 'full'}-tlbi]",
        program=program,
        condition=dict(t1_r=1),
        allowed_sc=False,
        allowed_rm=leaf_only,
        allowed_tso=False,  # walk caching is a walker relaxation, Arm-only
        description=(
            "a leaf-only TLBI leaves stale intermediate walk entries "
            "cached; only a non-leaf invalidation expels them"
        ),
        paper_ref="Simner et al. §3.3 (partial caching of walks)",
        vm_features=("walk-cache",),
    )


def vm_dirty_bit() -> LitmusTest:
    """Hardware access/dirty updates (``had``).

    A user store through the vpn0 mapping must leave the leaf entry with
    both the access flag and the dirty bit set — the walker's atomic
    read-modify-write is a coherence participant, so the final memory
    state carries the update on both models.
    """
    a = ThreadBuilder(0, "accessor", is_kernel=False)
    a.vstore(0, 9)
    program = build_program(
        [a],
        observed={},
        initial_memory={VM_ROOT: VM_T1, VM_T1: VM_P1, VM_P1: 1},
        mmu=MMUConfig(root=VM_ROOT),
        name="vm_dirty_bit",
    )
    return LitmusTest(
        name="VM-dirty-bit",
        program=program,
        condition={},
        allowed_sc=True,
        allowed_rm=True,
        description=(
            "a completed store through a mapping leaves its leaf entry "
            "access-flagged and dirty"
        ),
        paper_ref="Simner et al. §3.6 (HW access/dirty updates)",
        memory_condition=(
            (VM_T1, VM_P1 | PTE_AF | PTE_DIRTY),
            (VM_P1, 9),
        ),
        vm_features=("had",),
    )


def vm_stage2_tlbi(stage: Optional[int]) -> LitmusTest:
    """Per-stage TLBI scope under two-stage translation (``stage2``).

    Stage-1 tables map vpn 0 through VM_T1 to intermediate page VM_P1;
    the flat stage-2 table at VM_S2 backs VM_P1 with physical frame 0x120
    (value 10), which the updater remaps to frame 0x130 (value 20).  A
    TLBI scoped to stage 1 alone never raises the stage-2 walker floor,
    so the accessor can keep translating through the stale stage-2 entry;
    a stage-2 or both-stage invalidation forbids that.
    """
    pa_a, pa_b = 0x120, 0x130
    u = ThreadBuilder(0, "updater")
    u.pt_store(VM_S2 + VM_P1, pa_b, kind=PTKind.STAGE2, level=1)
    u.barrier("full")
    u.tlbi(0, stage=stage)
    u.barrier("full")
    u.store(VM_FLAG, 1, release=True)
    init = {
        VM_ROOT: VM_T1, VM_T1: VM_P1,
        VM_S2 + VM_ROOT: VM_ROOT, VM_S2 + VM_T1: VM_T1, VM_S2 + VM_P1: pa_a,
        pa_a: 10, pa_b: 20, VM_FLAG: 0,
    }
    scope = "both" if stage is None else f"stage{stage}"
    program = build_program(
        [u, _vm_handshake_accessor()],
        observed={1: ("r",)},
        initial_memory=init,
        mmu=MMUConfig(root=VM_ROOT, stage2_root=VM_S2),
        name=f"vm_stage2_tlbi[{scope}]",
    )
    return LitmusTest(
        name=f"VM-stage2-tlbi[{scope}]",
        program=program,
        condition=dict(t1_r=10),
        allowed_sc=False,
        allowed_rm=stage == 1,
        allowed_tso=False,  # per-stage TLB scoping is a walker relaxation
        description=(
            "a stage-1-scoped TLBI does not invalidate stage-2 "
            "translations; the stale intermediate-physical mapping "
            "survives unless the invalidation covers stage 2"
        ),
        paper_ref="Simner et al. §3.5 (two-stage translation)",
        vm_features=("stage2",),
    )


def vm_corpus() -> List[LitmusTest]:
    """The relaxed-virtual-memory feature families."""
    return [
        vm_bbm(honest=True),
        vm_bbm(honest=False),
        vm_walk_cache(leaf_only=False),
        vm_walk_cache(leaf_only=True),
        vm_dirty_bit(),
        vm_stage2_tlbi(stage=1),
        vm_stage2_tlbi(stage=2),
        vm_stage2_tlbi(stage=None),
    ]


def extended_corpus() -> List[LitmusTest]:
    """Additional shapes beyond the core corpus."""
    return [
        shape_s(False),
        shape_s(True),
        two_plus_two_w(False),
        two_plus_two_w(True),
        isa2(),
        isa2_plain(),
        shape_r(True),
        shape_r(False),
        iriw(),
        sb_rel_acq(),
    ]


def classic_corpus() -> List[LitmusTest]:
    return [
        store_buffering(False),
        store_buffering(True),
        message_passing("plain"),
        message_passing("rel-acq"),
        message_passing("dmb"),
        message_passing("addr"),
        load_buffering("plain"),
        load_buffering("data"),
        load_buffering("one-data"),
        load_buffering("ctrl"),
        coherence_rr(),
        coherence_ww(),
        write_to_read_causality(True),
        write_to_read_causality(False),
        atomic_increment_uniqueness(),
    ]


def paper_examples() -> List[LitmusTest]:
    return [
        example1(),
        example2(correct=False),
        example2(correct=True),
        example3(correct=False),
        example3(correct=True),
        example4(),
        example5(transactional=False),
        example5(transactional=True),
        example6(with_barrier=False),
        example6(with_barrier=True),
        example7(use_oracle=False),
        example7(use_oracle=True),
    ]


def full_corpus() -> List[LitmusTest]:
    return (
        classic_corpus() + extended_corpus() + paper_examples() + vm_corpus()
    )
