"""Random litmus-program generation (model fuzzing).

Beyond the curated corpus, the executor's central invariants — SC
behaviors are a subset of Promising Arm behaviors; coherence and
atomicity are never violated — should hold on *arbitrary* programs.
This module generates seeded random multi-threaded programs over a small
location/operation alphabet so the test suite and the fuzzing benchmark
can sweep thousands of shapes reproducibly.

Reproducibility contract: all randomness flows through an explicit
:class:`random.Random` — either constructed here from the caller's seed
or passed in via ``rng=`` (which callers composing several generators
should derive with :func:`derive_rng` so each consumer gets an
independent, label-addressed stream).  Nothing reads the global
``random`` state, so a program regenerated from a persisted seed record
is bit-identical no matter what else the process has drawn.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ir import Reg, ThreadBuilder, build_program
from repro.ir.program import Program

#: Operation alphabet with generation weights.
_OPS: Tuple[Tuple[str, int], ...] = (
    ("load", 5),
    ("load_acq", 2),
    ("store", 5),
    ("store_rel", 2),
    ("faa", 2),
    ("cas", 1),
    ("barrier_full", 1),
    ("barrier_ld", 1),
    ("barrier_st", 1),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for random programs."""

    n_threads: int = 2
    min_ops: int = 2
    max_ops: int = 4
    n_locations: int = 2
    base_location: int = 0x100
    value_range: int = 3


def derive_rng(seed: int, *labels: object) -> random.Random:
    """An independent RNG stream addressed by ``(seed, *labels)``.

    Streams for different label paths are statistically independent
    (the seed is a SHA-256 of the path), so a fuzzing engine can hand
    program *i* its own generator without the draws of programs
    ``0..i-1`` — or of any oracle in between — shifting it.
    """
    text = "|".join([str(seed), *[str(label) for label in labels]])
    digest = hashlib.sha256(text.encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def random_program(
    seed: int,
    cfg: Optional[GeneratorConfig] = None,
    rng: Optional[random.Random] = None,
) -> Program:
    """A deterministic random program for *seed* (or an explicit *rng*)."""
    cfg = cfg or GeneratorConfig()
    rng = rng if rng is not None else random.Random(seed)
    ops, weights = zip(*_OPS)
    threads = []
    observed = {}
    for tid in range(cfg.n_threads):
        b = ThreadBuilder(tid)
        regs: List[str] = []
        n_ops = rng.randint(cfg.min_ops, cfg.max_ops)
        for i in range(n_ops):
            op = rng.choices(ops, weights=weights)[0]
            loc = cfg.base_location + rng.randrange(cfg.n_locations)
            val = rng.randrange(1, cfg.value_range + 1)
            reg = f"r{i}"
            if op == "load":
                b.load(reg, loc)
                regs.append(reg)
            elif op == "load_acq":
                b.load(reg, loc, acquire=True)
                regs.append(reg)
            elif op == "store":
                # Occasionally store a previously read register (creating
                # data dependencies), otherwise an immediate.
                if regs and rng.random() < 0.3:
                    b.store(loc, Reg(rng.choice(regs)))
                else:
                    b.store(loc, val)
            elif op == "store_rel":
                b.store(loc, val, release=True)
            elif op == "faa":
                b.faa(reg, loc)
                regs.append(reg)
            elif op == "cas":
                b.cas(reg, loc, 0, val)
                regs.append(reg)
            elif op == "barrier_full":
                b.barrier("full")
            elif op == "barrier_ld":
                b.barrier("ld")
            elif op == "barrier_st":
                b.barrier("st")
        observed[tid] = regs
        threads.append(b)
    init = {
        cfg.base_location + i: 0 for i in range(cfg.n_locations)
    }
    return build_program(
        threads, observed=observed, initial_memory=init,
        name=f"random[{seed}]",
    )


def random_corpus(
    n_programs: int, start_seed: int = 0,
    cfg: Optional[GeneratorConfig] = None,
) -> List[Program]:
    """A batch of deterministic random programs."""
    return [random_program(start_seed + i, cfg) for i in range(n_programs)]
