"""Random litmus-program generation (model fuzzing).

Beyond the curated corpus, the executor's central invariants — SC
behaviors are a subset of Promising Arm behaviors; coherence and
atomicity are never violated — should hold on *arbitrary* programs.
This module generates seeded random multi-threaded programs over a small
location/operation alphabet so the test suite and the fuzzing benchmark
can sweep thousands of shapes reproducibly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.ir import Reg, ThreadBuilder, build_program
from repro.ir.program import Program

#: Operation alphabet with generation weights.
_OPS: Tuple[Tuple[str, int], ...] = (
    ("load", 5),
    ("load_acq", 2),
    ("store", 5),
    ("store_rel", 2),
    ("faa", 2),
    ("cas", 1),
    ("barrier_full", 1),
    ("barrier_ld", 1),
    ("barrier_st", 1),
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape parameters for random programs."""

    n_threads: int = 2
    min_ops: int = 2
    max_ops: int = 4
    n_locations: int = 2
    base_location: int = 0x100
    value_range: int = 3


def random_program(seed: int, cfg: Optional[GeneratorConfig] = None) -> Program:
    """A deterministic random program for *seed*."""
    cfg = cfg or GeneratorConfig()
    rng = random.Random(seed)
    ops, weights = zip(*_OPS)
    threads = []
    observed = {}
    for tid in range(cfg.n_threads):
        b = ThreadBuilder(tid)
        regs: List[str] = []
        n_ops = rng.randint(cfg.min_ops, cfg.max_ops)
        for i in range(n_ops):
            op = rng.choices(ops, weights=weights)[0]
            loc = cfg.base_location + rng.randrange(cfg.n_locations)
            val = rng.randrange(1, cfg.value_range + 1)
            reg = f"r{i}"
            if op == "load":
                b.load(reg, loc)
                regs.append(reg)
            elif op == "load_acq":
                b.load(reg, loc, acquire=True)
                regs.append(reg)
            elif op == "store":
                # Occasionally store a previously read register (creating
                # data dependencies), otherwise an immediate.
                if regs and rng.random() < 0.3:
                    b.store(loc, Reg(rng.choice(regs)))
                else:
                    b.store(loc, val)
            elif op == "store_rel":
                b.store(loc, val, release=True)
            elif op == "faa":
                b.faa(reg, loc)
                regs.append(reg)
            elif op == "cas":
                b.cas(reg, loc, 0, val)
                regs.append(reg)
            elif op == "barrier_full":
                b.barrier("full")
            elif op == "barrier_ld":
                b.barrier("ld")
            elif op == "barrier_st":
                b.barrier("st")
        observed[tid] = regs
        threads.append(b)
    init = {
        cfg.base_location + i: 0 for i in range(cfg.n_locations)
    }
    return build_program(
        threads, observed=observed, initial_memory=init,
        name=f"random[{seed}]",
    )


def random_corpus(
    n_programs: int, start_seed: int = 0,
    cfg: Optional[GeneratorConfig] = None,
) -> List[Program]:
    """A batch of deterministic random programs."""
    return [random_program(start_seed + i, cfg) for i in range(n_programs)]
