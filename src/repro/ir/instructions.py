"""Instruction set of the kernel IR.

The IR is a small, Arm-flavored assembly sufficient to express the kernel
fragments the paper reasons about: plain and acquire/release memory
accesses, atomic fetch-and-increment (the ticket lock's ``LDADD``),
barriers (``DMB SY/LD/ST``, ``ISB``), conditional branches, page-table
stores with level/kind metadata, TLB invalidation, virtual-memory accesses
that go through the modeled MMU walker, the logical ``push``/``pull``
ownership primitives of the push/pull Promising model (Section 4.1), data
oracle reads (Section 5.3), and an explicit ``panic``.

Instructions are immutable dataclasses; a program is a tuple of threads,
each a tuple of instructions (see :mod:`repro.ir.program`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ProgramError
from repro.ir.expr import Expr, coerce


class BarrierKind(enum.Enum):
    """The barrier flavors distinguished by the Promising Arm model."""

    FULL = "dmb sy"   # orders prior reads+writes with later reads+writes
    LD = "dmb ld"     # orders prior reads with later reads+writes
    ST = "dmb st"     # orders prior writes with later writes
    ISB = "isb"       # orders later loads after resolved control deps


class PTKind(enum.Enum):
    """Which page table a page-table store targets.

    The wDRF conditions treat the kernel's own page table (EL2 for KCore)
    differently from the guest-facing stage 2 and SMMU tables, so stores
    carry this classification.
    """

    KERNEL = "kernel"   # KCore's own (EL2) page table — Write-Once applies
    STAGE2 = "stage2"   # stage 2 tables for KServ/VMs — Transactional applies
    SMMU = "smmu"       # SMMU tables for DMA — Transactional applies


class MemSpace(enum.Enum):
    """Coarse classification of the location an access targets.

    Used by the Memory-Isolation checker: kernel code must not read USER
    locations except through a data oracle, and user threads must not be
    able to write KERNEL locations.
    """

    KERNEL = "kernel"
    USER = "user"
    SYNC = "sync"       # lock words & ownership variables (exempt from DRF)
    PT = "pt"           # page-table memory (read by MMU walkers)


class Instruction:
    """Base class: every IR instruction."""



@dataclass(frozen=True, slots=True)
class Label(Instruction):
    """A branch target.  Pseudo-instruction; executes as a no-op."""

    name: str



@dataclass(frozen=True, slots=True)
class Nop(Instruction):
    """Does nothing.  Useful as a placeholder in generated code."""



@dataclass(frozen=True, slots=True)
class Mov(Instruction):
    """``dst := src`` — register arithmetic, no memory access."""

    dst: str
    src: Expr



@dataclass(frozen=True, slots=True)
class Load(Instruction):
    """``dst := [addr]`` — a physical-address load.

    ``acquire=True`` models Arm's ``LDAR``: the load carries a barrier
    ordering all later accesses after it.  ``space`` classifies the target
    location for the isolation checker.
    """

    dst: str
    addr: Expr
    acquire: bool = False
    space: MemSpace = MemSpace.KERNEL



@dataclass(frozen=True, slots=True)
class Store(Instruction):
    """``[addr] := value`` — a physical-address store.

    ``release=True`` models Arm's ``STLR``: the store is ordered after all
    program-order-earlier accesses.  Page-table stores set ``pt_kind`` and
    ``pt_level`` so the Write-Once and Transactional checkers can find
    them; they are otherwise ordinary stores (MMU walkers read the same
    memory).
    """

    addr: Expr
    value: Expr
    release: bool = False
    space: MemSpace = MemSpace.KERNEL
    pt_kind: Optional[PTKind] = None
    pt_level: Optional[int] = None



@dataclass(frozen=True, slots=True)
class FetchAndInc(Instruction):
    """``dst := [addr]; [addr] += amount`` — atomic read-modify-write.

    Models Arm's ``LDADD`` (or an ``LDXR``/``STXR`` loop): the read and
    write are adjacent in the location's coherence order.  ``acquire`` and
    ``release`` give it ``LDADDA``/``LDADDL`` semantics.
    """

    dst: str
    addr: Expr
    amount: int = 1
    acquire: bool = False
    release: bool = False
    space: MemSpace = MemSpace.SYNC



@dataclass(frozen=True, slots=True)
class LoadExclusive(Instruction):
    """``dst := [addr]`` and arm the exclusive monitor (``LDXR``/``LDAXR``).

    The paired :class:`StoreExclusive` succeeds only if no other write
    to the location intervened — Arm's LL/SC primitive, the pre-LSE way
    to build atomics (the ticket lock's original implementation).
    """

    dst: str
    addr: Expr
    acquire: bool = False
    space: MemSpace = MemSpace.SYNC


@dataclass(frozen=True, slots=True)
class StoreExclusive(Instruction):
    """``status := try([addr] := value)`` (``STXR``/``STLXR``).

    ``status`` receives 0 on success, 1 on failure (monitor lost).  The
    store only happens on success and is adjacent in coherence order to
    the monitored load's read.
    """

    status: str
    addr: Expr
    value: Expr
    release: bool = False
    space: MemSpace = MemSpace.SYNC


@dataclass(frozen=True, slots=True)
class CompareAndSwap(Instruction):
    """``dst := [addr]; if dst == expected: [addr] := desired`` — atomic.

    Models Arm's ``CAS``/``CASA``/``CASL``/``CASAL``: returns the old
    value in ``dst`` (the swap succeeded iff ``dst == expected``); the
    read and (conditional) write are adjacent in coherence order.
    """

    dst: str
    addr: Expr
    expected: Expr
    desired: Expr
    acquire: bool = False
    release: bool = False
    space: MemSpace = MemSpace.SYNC


@dataclass(frozen=True, slots=True)
class Barrier(Instruction):
    """An explicit memory barrier (``DMB SY``/``LD``/``ST`` or ``ISB``)."""

    kind: BarrierKind



@dataclass(frozen=True, slots=True)
class BranchIfZero(Instruction):
    """``if cond == 0: goto target`` — introduces a control dependency."""

    cond: Expr
    target: str



@dataclass(frozen=True, slots=True)
class BranchIfNonZero(Instruction):
    """``if cond != 0: goto target`` — introduces a control dependency."""

    cond: Expr
    target: str



@dataclass(frozen=True, slots=True)
class Jump(Instruction):
    """Unconditional ``goto target``."""

    target: str



@dataclass(frozen=True, slots=True)
class VLoad(Instruction):
    """``dst := [translate(vaddr)]`` — a load through the MMU.

    Translation consults the per-CPU TLB and, on a miss, performs a
    hardware page-table walk whose reads go through the (relaxed) memory
    system.  A failed translation records a page fault.  Used to model
    user/VM accesses racing with kernel page-table updates (Examples 4-6).
    """

    dst: str
    vaddr: Expr
    space: MemSpace = MemSpace.USER



@dataclass(frozen=True, slots=True)
class VStore(Instruction):
    """``[translate(vaddr)] := value`` — a store through the MMU."""

    vaddr: Expr
    value: Expr
    space: MemSpace = MemSpace.USER



@dataclass(frozen=True, slots=True)
class TLBInvalidate(Instruction):
    """Broadcast TLB invalidation (``TLBI VAE1IS`` / ``TLBI ALL``).

    ``vaddr=None`` invalidates everything.  Whether the invalidation also
    forces page-table walkers to observe program-order-earlier page-table
    stores depends on barrier placement — exactly the distinction the
    Sequential-TLB-Invalidation condition is about (see
    :mod:`repro.mmu.tlb`).

    ``stage`` scopes the invalidation under the ``stage2`` VM feature:
    ``None`` hits both translation stages (``TLBI VMALLS12E1IS``), ``1``
    only stage 1 (``TLBI VAE1IS``), ``2`` only stage 2 (``TLBI
    IPAS2E1IS``); each stage's walker floor is raised only by a TLBI
    covering it.  ``leaf_only=True`` models a last-level invalidation
    (``TLBI VALE1IS``): cached leaf translations drop but cached
    intermediate (non-leaf) walk entries survive — the distinction the
    ``walk-cache`` VM feature makes observable.
    """

    vaddr: Optional[Expr] = None
    stage: Optional[int] = None
    leaf_only: bool = False



@dataclass(frozen=True, slots=True)
class Pull(Instruction):
    """Logical acquisition of ownership of shared locations (Section 4.1).

    A no-op on hardware; in the push/pull Promising model it panics if any
    of the locations is currently owned by another CPU, and grants this
    CPU exclusive access until the matching :class:`Push`.
    """

    locs: Tuple[Expr, ...]



@dataclass(frozen=True, slots=True)
class Push(Instruction):
    """Logical release of ownership of shared locations (Section 4.1)."""

    locs: Tuple[Expr, ...]



@dataclass(frozen=True, slots=True)
class OracleRead(Instruction):
    """``dst := oracle()`` — a data-oracle read of user memory (§5.3).

    SeKVM's proofs model kernel reads of VM/KServ memory as draws from a
    data oracle, making the kernel's verified behavior independent of the
    concrete user program.  The executors return an unconstrained
    (explored) or oracle-scripted value instead of reading memory.
    """

    dst: str
    addr: Expr
    choices: Tuple[int, ...] = (0, 1)



@dataclass(frozen=True, slots=True)
class Panic(Instruction):
    """Explicit kernel panic (e.g. ``gen_vmid`` overflow in Figure 1)."""

    reason: str = "panic"



def is_memory_access(instr: Instruction) -> bool:
    """True for instructions that read or write the memory system."""
    return isinstance(
        instr, (Load, Store, FetchAndInc, CompareAndSwap, VLoad, VStore)
    )


def is_pt_store(instr: Instruction) -> bool:
    """True for stores tagged as page-table updates."""
    return isinstance(instr, Store) and instr.pt_kind is not None


def validate_instruction(instr: Instruction) -> None:
    """Raise :class:`ProgramError` if *instr* is structurally invalid."""
    if isinstance(instr, Store) and instr.pt_level is not None:
        if instr.pt_kind is None:
            raise ProgramError("Store has pt_level but no pt_kind")
        if instr.pt_level < 0:
            raise ProgramError("negative page-table level")
    if isinstance(instr, FetchAndInc) and instr.amount == 0:
        raise ProgramError("FetchAndInc with amount 0 is not an RMW")
    if isinstance(instr, TLBInvalidate) and instr.stage not in (None, 1, 2):
        raise ProgramError(
            f"TLBInvalidate stage must be None, 1, or 2 (got {instr.stage!r})"
        )
    if isinstance(instr, (Pull, Push)) and not instr.locs:
        raise ProgramError("Pull/Push must name at least one location")
