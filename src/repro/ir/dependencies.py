"""Static dependency analysis over kernel IR threads.

The Promising Arm model preserves program order between instructions
related by data dependencies, address dependencies, coherence (same
location), or barriers (Section 4, "The formal model for Armv8").  The
executors enforce these *dynamically* through views; this module computes
the same relations *statically* for straight-line code, which the
No-Barrier-Misuse checker and the test suite use to reason about which
reorderings an implementation permits.

Static analysis is necessarily approximate in two ways: register
dependencies are exact (the IR is in SSA-ish style per fragment), but
same-location analysis only resolves addresses that are immediate
expressions.  Callers that need exact coherence information use the
dynamic executors instead.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import Expr, Imm
from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    BranchIfNonZero,
    BranchIfZero,
    CompareAndSwap,
    FetchAndInc,
    Instruction,
    Load,
    LoadExclusive,
    Mov,
    OracleRead,
    Store,
    StoreExclusive,
    VLoad,
    VStore,
)
from repro.ir.program import Thread


def written_register(instr: Instruction) -> Optional[str]:
    """The register *instr* writes, if any."""
    if isinstance(
        instr,
        (Load, LoadExclusive, FetchAndInc, CompareAndSwap, VLoad, Mov,
         OracleRead),
    ):
        return instr.dst
    if isinstance(instr, StoreExclusive):
        return instr.status
    return None


def address_registers(instr: Instruction) -> FrozenSet[str]:
    """Registers feeding *instr*'s address operand."""
    if isinstance(
        instr,
        (Load, LoadExclusive, FetchAndInc, CompareAndSwap, OracleRead),
    ):
        return instr.addr.registers()
    if isinstance(instr, StoreExclusive):
        return instr.addr.registers()
    if isinstance(instr, Store):
        return instr.addr.registers()
    if isinstance(instr, VLoad):
        return instr.vaddr.registers()
    if isinstance(instr, VStore):
        return instr.vaddr.registers()
    return frozenset()


def value_registers(instr: Instruction) -> FrozenSet[str]:
    """Registers feeding *instr*'s data (value/condition) operand."""
    if isinstance(instr, (Store, StoreExclusive, VStore)):
        return instr.value.registers()
    if isinstance(instr, CompareAndSwap):
        return instr.expected.registers() | instr.desired.registers()
    if isinstance(instr, Mov):
        return instr.src.registers()
    if isinstance(instr, (BranchIfZero, BranchIfNonZero)):
        return instr.cond.registers()
    return frozenset()


def static_location(instr: Instruction) -> Optional[int]:
    """The concrete location accessed, when statically known."""
    addr: Optional[Expr] = None
    if isinstance(instr, (Load, FetchAndInc)):
        addr = instr.addr
    elif isinstance(instr, Store):
        addr = instr.addr
    if isinstance(addr, Imm):
        return addr.value
    return None


def _reaching_writers(thread: Thread) -> List[Dict[str, int]]:
    """For each instruction index, map register -> index of last writer.

    Straight-line approximation: branches are treated as fallthrough for
    reachability, which over-approximates dependencies (safe for the
    checkers, which only use dependencies to *justify* orderings).
    """
    out: List[Dict[str, int]] = []
    current: Dict[str, int] = {}
    for idx, instr in enumerate(thread.instrs):
        out.append(dict(current))
        reg = written_register(instr)
        if reg is not None:
            current[reg] = idx
    return out


def data_dependencies(thread: Thread) -> Set[Tuple[int, int]]:
    """Pairs ``(i, j)`` where instruction ``j``'s data operand uses a
    register last written by instruction ``i``."""
    writers = _reaching_writers(thread)
    deps: Set[Tuple[int, int]] = set()
    for j, instr in enumerate(thread.instrs):
        for reg in value_registers(instr):
            i = writers[j].get(reg)
            if i is not None:
                deps.add((i, j))
    return deps


def address_dependencies(thread: Thread) -> Set[Tuple[int, int]]:
    """Pairs ``(i, j)`` where ``j``'s address uses a register written by ``i``."""
    writers = _reaching_writers(thread)
    deps: Set[Tuple[int, int]] = set()
    for j, instr in enumerate(thread.instrs):
        for reg in address_registers(instr):
            i = writers[j].get(reg)
            if i is not None:
                deps.add((i, j))
    return deps


def control_dependencies(thread: Thread) -> Set[Tuple[int, int]]:
    """Pairs ``(b, j)`` where ``j`` follows a conditional branch ``b``.

    Every instruction after a conditional branch is control-dependent on
    it (the Arm notion: the branch outcome gates whether/where ``j``
    executes).  Arm only enforces control dependencies for *stores* (and
    for loads when an ISB intervenes); consumers apply that filter.
    """
    deps: Set[Tuple[int, int]] = set()
    branch_indices: List[int] = []
    for idx, instr in enumerate(thread.instrs):
        for b in branch_indices:
            deps.add((b, idx))
        if isinstance(instr, (BranchIfZero, BranchIfNonZero)):
            branch_indices.append(idx)
    return deps


def barrier_ordered_pairs(thread: Thread) -> Set[Tuple[int, int]]:
    """Pairs ``(i, j)`` of memory accesses ordered by an intervening
    barrier (or by acquire/release semantics on the accesses themselves).

    Implements the Armv8 ordering strength of each barrier flavor:

    * ``DMB SY`` orders all prior accesses with all later accesses.
    * ``DMB LD`` orders prior *loads* with all later accesses.
    * ``DMB ST`` orders prior *stores* with later *stores*.
    * an acquire load is ordered before all later accesses;
    * a release store is ordered after all prior accesses.
    """
    instrs = thread.instrs
    n = len(instrs)

    def is_load(k: int) -> bool:
        return isinstance(
            instrs[k],
            (Load, LoadExclusive, VLoad, FetchAndInc, CompareAndSwap),
        )

    def is_store(k: int) -> bool:
        return isinstance(
            instrs[k],
            (Store, StoreExclusive, VStore, FetchAndInc, CompareAndSwap),
        )

    def is_access(k: int) -> bool:
        return is_load(k) or is_store(k)

    ordered: Set[Tuple[int, int]] = set()
    for b, instr in enumerate(instrs):
        if isinstance(instr, Barrier) and instr.kind is not BarrierKind.ISB:
            for i in range(b):
                if not is_access(i):
                    continue
                for j in range(b + 1, n):
                    if not is_access(j):
                        continue
                    if instr.kind is BarrierKind.FULL:
                        ordered.add((i, j))
                    elif instr.kind is BarrierKind.LD and is_load(i):
                        ordered.add((i, j))
                    elif instr.kind is BarrierKind.ST and is_store(i) and is_store(j):
                        ordered.add((i, j))
    for k, instr in enumerate(instrs):
        if isinstance(
            instr, (Load, LoadExclusive, FetchAndInc, CompareAndSwap)
        ) and getattr(instr, "acquire", False):
            for j in range(k + 1, n):
                if is_access(j):
                    ordered.add((k, j))
        if isinstance(
            instr, (Store, StoreExclusive, FetchAndInc, CompareAndSwap)
        ) and getattr(instr, "release", False):
            for i in range(k):
                if is_access(i):
                    ordered.add((i, k))
    return ordered


def coherence_pairs(thread: Thread) -> Set[Tuple[int, int]]:
    """Pairs of accesses to the same *statically known* location."""
    locs: Dict[int, int] = {}
    pairs: Set[Tuple[int, int]] = set()
    seen: List[Tuple[int, int]] = []  # (index, loc)
    for idx, instr in enumerate(thread.instrs):
        loc = static_location(instr)
        if loc is None:
            continue
        for prev_idx, prev_loc in seen:
            if prev_loc == loc:
                pairs.add((prev_idx, idx))
        seen.append((idx, loc))
    return pairs


def preserved_program_order(thread: Thread) -> Set[Tuple[int, int]]:
    """The union of all statically known ordering constraints.

    This is the (approximate) "preserved program order" of the Armv8
    model for the thread: any pair *not* in this relation's transitive
    closure may appear reordered to other CPUs.
    """
    ppo = set()
    ppo |= data_dependencies(thread)
    ppo |= address_dependencies(thread)
    ppo |= barrier_ordered_pairs(thread)
    ppo |= coherence_pairs(thread)
    # Control dependencies order stores only (Arm; loads need ISB).
    for b, j in control_dependencies(thread):
        if isinstance(thread.instrs[j], (Store, VStore)):
            ppo.add((b, j))
    return ppo


def may_reorder(thread: Thread, i: int, j: int) -> bool:
    """Whether accesses ``i < j`` may be observed out of order.

    True iff ``(i, j)`` is not in the transitive closure of the preserved
    program order.  Only meaningful for straight-line threads.
    """
    if i >= j:
        return False
    ppo = preserved_program_order(thread)
    # Transitive closure restricted to what we need: reachability i -> j.
    frontier = {i}
    seen = {i}
    while frontier:
        nxt = set()
        for a in frontier:
            for (x, y) in ppo:
                if x == a and y not in seen:
                    if y == j:
                        return False
                    nxt.add(y)
                    seen.add(y)
        frontier = nxt
    return True
