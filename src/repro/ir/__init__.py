"""Kernel IR: the Arm-flavored assembly every model and checker consumes.

Public surface:

* :mod:`repro.ir.expr` — operand expressions (:class:`Reg`, :class:`Imm`).
* :mod:`repro.ir.instructions` — the instruction set.
* :mod:`repro.ir.program` — :class:`Thread`, :class:`Program`, :class:`MMUConfig`.
* :mod:`repro.ir.builder` — fluent assembler.
* :mod:`repro.ir.dependencies` — static data/address/control/barrier analysis.
"""

from repro.ir.expr import BinOp, Expr, Imm, Reg, coerce
from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    BranchIfNonZero,
    BranchIfZero,
    CompareAndSwap,
    FetchAndInc,
    Instruction,
    Jump,
    Label,
    Load,
    LoadExclusive,
    MemSpace,
    Mov,
    Nop,
    OracleRead,
    Panic,
    PTKind,
    Pull,
    Push,
    Store,
    StoreExclusive,
    TLBInvalidate,
    VLoad,
    VStore,
    is_memory_access,
    is_pt_store,
)
from repro.ir.program import MMUConfig, Program, Thread, make_program
from repro.ir.builder import ThreadBuilder, build_program
from repro.ir.pretty import format_instruction, format_program, format_thread
from repro.ir.transform import merge_programs, rename_registers, sequence_threads, unroll_loops

__all__ = [
    "BinOp",
    "Expr",
    "Imm",
    "Reg",
    "coerce",
    "Barrier",
    "BarrierKind",
    "BranchIfNonZero",
    "BranchIfZero",
    "CompareAndSwap",
    "FetchAndInc",
    "Instruction",
    "Jump",
    "Label",
    "Load",
    "LoadExclusive",
    "MemSpace",
    "Mov",
    "Nop",
    "OracleRead",
    "Panic",
    "PTKind",
    "Pull",
    "Push",
    "Store",
    "StoreExclusive",
    "TLBInvalidate",
    "VLoad",
    "VStore",
    "is_memory_access",
    "is_pt_store",
    "MMUConfig",
    "Program",
    "Thread",
    "make_program",
    "ThreadBuilder",
    "build_program",
    "format_instruction",
    "format_program",
    "format_thread",
    "merge_programs",
    "rename_registers",
    "sequence_threads",
    "unroll_loops",
]
