"""Fluent assembler for kernel IR threads and programs.

Writing instruction tuples by hand is noisy; the builders below let the
litmus catalog, the SeKVM IR programs, and tests express kernel fragments
compactly::

    b = ThreadBuilder(tid=0)
    b.mov("t", 1)
    b.store(X, "t")
    b.barrier("st")
    b.store(Y, 1)
    thread = b.build(observed=("t",))

Every emit method returns ``self`` so calls can be chained.  Labels are
plain strings; :meth:`ThreadBuilder.fresh_label` generates collision-free
ones for generated control flow (spin loops).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ProgramError
from repro.ir.expr import Expr, ExprLike, coerce
from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    BranchIfNonZero,
    BranchIfZero,
    CompareAndSwap,
    FetchAndInc,
    Instruction,
    Jump,
    Label,
    Load,
    LoadExclusive,
    MemSpace,
    Mov,
    Nop,
    OracleRead,
    Panic,
    Pull,
    Push,
    Store,
    StoreExclusive,
    PTKind,
    TLBInvalidate,
    VLoad,
    VStore,
)
from repro.ir.program import MMUConfig, Program, Thread, make_program

_BARRIERS = {
    "full": BarrierKind.FULL,
    "sy": BarrierKind.FULL,
    "ld": BarrierKind.LD,
    "st": BarrierKind.ST,
    "isb": BarrierKind.ISB,
}


class ThreadBuilder:
    """Accumulates instructions for one thread."""

    def __init__(self, tid: int, name: str = "", is_kernel: bool = True):
        self.tid = tid
        self.name = name or f"cpu{tid}"
        self.is_kernel = is_kernel
        self._instrs: list[Instruction] = []
        self._label_counter = itertools.count()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def emit(self, instr: Instruction) -> "ThreadBuilder":
        self._instrs.append(instr)
        return self

    def fresh_label(self, stem: str = "L") -> str:
        return f".{stem}_{self.tid}_{next(self._label_counter)}"

    def build(self, observed: Sequence[str] = ()) -> Thread:
        return Thread(
            tid=self.tid,
            instrs=tuple(self._instrs),
            name=self.name,
            is_kernel=self.is_kernel,
            observed=tuple(observed),
        )

    # ------------------------------------------------------------------
    # plain instructions
    # ------------------------------------------------------------------
    def mov(self, dst: str, src: ExprLike) -> "ThreadBuilder":
        return self.emit(Mov(dst, coerce(src)))

    def load(
        self,
        dst: str,
        addr: ExprLike,
        acquire: bool = False,
        space: MemSpace = MemSpace.KERNEL,
    ) -> "ThreadBuilder":
        return self.emit(Load(dst, coerce(addr), acquire=acquire, space=space))

    def store(
        self,
        addr: ExprLike,
        value: ExprLike,
        release: bool = False,
        space: MemSpace = MemSpace.KERNEL,
        pt_kind: Optional[PTKind] = None,
        pt_level: Optional[int] = None,
    ) -> "ThreadBuilder":
        return self.emit(
            Store(
                coerce(addr),
                coerce(value),
                release=release,
                space=space,
                pt_kind=pt_kind,
                pt_level=pt_level,
            )
        )

    def pt_store(
        self,
        addr: ExprLike,
        value: ExprLike,
        kind: PTKind,
        level: int,
        release: bool = False,
    ) -> "ThreadBuilder":
        """A store into page-table memory, tagged for the PT checkers."""
        return self.store(
            addr,
            value,
            release=release,
            space=MemSpace.PT,
            pt_kind=kind,
            pt_level=level,
        )

    def faa(
        self,
        dst: str,
        addr: ExprLike,
        amount: int = 1,
        acquire: bool = False,
        release: bool = False,
        space: MemSpace = MemSpace.SYNC,
    ) -> "ThreadBuilder":
        return self.emit(
            FetchAndInc(
                dst, coerce(addr), amount=amount, acquire=acquire,
                release=release, space=space,
            )
        )

    def cas(
        self,
        dst: str,
        addr: ExprLike,
        expected: ExprLike,
        desired: ExprLike,
        acquire: bool = False,
        release: bool = False,
        space: MemSpace = MemSpace.SYNC,
    ) -> "ThreadBuilder":
        return self.emit(
            CompareAndSwap(
                dst, coerce(addr), coerce(expected), coerce(desired),
                acquire=acquire, release=release, space=space,
            )
        )

    def ldxr(
        self,
        dst: str,
        addr: ExprLike,
        acquire: bool = False,
        space: MemSpace = MemSpace.SYNC,
    ) -> "ThreadBuilder":
        return self.emit(
            LoadExclusive(dst, coerce(addr), acquire=acquire, space=space)
        )

    def stxr(
        self,
        status: str,
        addr: ExprLike,
        value: ExprLike,
        release: bool = False,
        space: MemSpace = MemSpace.SYNC,
    ) -> "ThreadBuilder":
        return self.emit(
            StoreExclusive(
                status, coerce(addr), coerce(value), release=release,
                space=space,
            )
        )

    def barrier(self, kind: Union[str, BarrierKind]) -> "ThreadBuilder":
        if isinstance(kind, str):
            try:
                kind = _BARRIERS[kind.lower()]
            except KeyError:
                raise ProgramError(f"unknown barrier kind {kind!r}") from None
        return self.emit(Barrier(kind))

    def label(self, name: str) -> "ThreadBuilder":
        return self.emit(Label(name))

    def jump(self, target: str) -> "ThreadBuilder":
        return self.emit(Jump(target))

    def bz(self, cond: ExprLike, target: str) -> "ThreadBuilder":
        return self.emit(BranchIfZero(coerce(cond), target))

    def bnz(self, cond: ExprLike, target: str) -> "ThreadBuilder":
        return self.emit(BranchIfNonZero(coerce(cond), target))

    def vload(
        self, dst: str, vaddr: ExprLike, space: MemSpace = MemSpace.USER
    ) -> "ThreadBuilder":
        return self.emit(VLoad(dst, coerce(vaddr), space=space))

    def vstore(
        self, vaddr: ExprLike, value: ExprLike, space: MemSpace = MemSpace.USER
    ) -> "ThreadBuilder":
        return self.emit(VStore(coerce(vaddr), coerce(value), space=space))

    def tlbi(
        self,
        vaddr: Optional[ExprLike] = None,
        stage: Optional[int] = None,
        leaf_only: bool = False,
    ) -> "ThreadBuilder":
        return self.emit(
            TLBInvalidate(
                None if vaddr is None else coerce(vaddr),
                stage=stage,
                leaf_only=leaf_only,
            )
        )

    def bbm_remap(
        self,
        entry_loc: ExprLike,
        new_value: ExprLike,
        vpn: Optional[ExprLike] = None,
        stage: Optional[int] = None,
        kind: PTKind = PTKind.STAGE2,
        level: int = 1,
    ) -> "ThreadBuilder":
        """Emit a break-before-make remap of one page-table entry.

        The honest protocol Arm requires for changing a live translation
        entry to a different live value: write the invalid (0) entry,
        order it, invalidate the TLB, order the invalidation, then write
        the new entry and invalidate again.  The ``bbm-skipped`` seeded
        mutant (see :mod:`repro.memory.mutants`) drops the break phase —
        store-new/DMB/TLBI only, i.e. exactly the discipline
        Sequential-TLB-Invalidation asks for on *invalid-to-live*
        transitions, which is insufficient for live-to-live remaps under
        the ``bbm`` VM feature.
        """
        from repro.memory import mutants

        if not mutants.enabled("bbm-skipped"):
            self.pt_store(entry_loc, 0, kind=kind, level=level)
            self.barrier("full")
            self.tlbi(vpn, stage=stage)
            self.barrier("full")
        self.pt_store(entry_loc, new_value, kind=kind, level=level)
        self.barrier("full")
        self.tlbi(vpn, stage=stage)
        self.barrier("full")
        return self

    def pull(self, *locs: ExprLike) -> "ThreadBuilder":
        return self.emit(Pull(tuple(coerce(l) for l in locs)))

    def push(self, *locs: ExprLike) -> "ThreadBuilder":
        return self.emit(Push(tuple(coerce(l) for l in locs)))

    def oracle_read(
        self, dst: str, addr: ExprLike, choices: Sequence[int] = (0, 1)
    ) -> "ThreadBuilder":
        return self.emit(OracleRead(dst, coerce(addr), tuple(choices)))

    def panic(self, reason: str = "panic") -> "ThreadBuilder":
        return self.emit(Panic(reason))

    def nop(self) -> "ThreadBuilder":
        return self.emit(Nop())

    # ------------------------------------------------------------------
    # structured helpers
    # ------------------------------------------------------------------
    def spin_until_eq(
        self,
        reg: str,
        addr: ExprLike,
        expected: ExprLike,
        acquire: bool = False,
        space: MemSpace = MemSpace.SYNC,
    ) -> "ThreadBuilder":
        """``do { reg := [addr] } while (reg != expected)`` — the ticket
        lock's wait loop (Figure 1 / Figure 7)."""
        loop = self.fresh_label("spin")
        self.label(loop)
        self.load(reg, addr, acquire=acquire, space=space)
        cond = coerce(reg) - coerce(expected)
        return self.bnz(cond, loop)

    def if_eq(self, a: ExprLike, b: ExprLike) -> "_IfContext":
        """Structured ``if (a == b) { ... } else { ... }``; use as::

            with b.if_eq("r0", 1):
                b.store(X, 1)
        """
        return _IfContext(self, coerce(a) - coerce(b), invert=True)

    def if_ne(self, a: ExprLike, b: ExprLike) -> "_IfContext":
        return _IfContext(self, coerce(a) - coerce(b), invert=False)


class _IfContext:
    """Context manager emitting branch/label scaffolding for an if-block."""

    def __init__(self, builder: ThreadBuilder, cond: Expr, invert: bool):
        self._b = builder
        self._cond = cond
        self._invert = invert
        self._end = builder.fresh_label("endif")

    def __enter__(self) -> ThreadBuilder:
        # invert=True means: skip block when cond != 0 (i.e. a != b).
        if self._invert:
            self._b.bnz(self._cond, self._end)
        else:
            self._b.bz(self._cond, self._end)
        return self._b

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._b.label(self._end)


def build_program(
    builders: Iterable[ThreadBuilder],
    observed: Optional[Mapping[int, Sequence[str]]] = None,
    initial_memory: Optional[Mapping[int, int]] = None,
    spaces: Optional[Mapping[int, MemSpace]] = None,
    mmu: Optional[MMUConfig] = None,
    name: str = "program",
) -> Program:
    """Finish a set of thread builders into a :class:`Program`."""
    observed = observed or {}
    threads = [b.build(observed=observed.get(b.tid, ())) for b in builders]
    return make_program(
        threads,
        initial_memory=initial_memory,
        spaces=spaces,
        mmu=mmu,
        name=name,
    )
