"""Threads and programs of the kernel IR.

A :class:`Program` is the unit every executor and checker consumes: a set
of :class:`Thread` instruction streams, initial memory, a classification
of locations into kernel/user/sync/page-table spaces, and (optionally) an
MMU configuration describing page-table roots for virtual accesses.

Threads are marked kernel or user.  The wDRF conditions only constrain
*kernel* threads; user threads model VMs/user programs and may contain
arbitrary racy code (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.ir.instructions import (
    BranchIfNonZero,
    BranchIfZero,
    Instruction,
    Jump,
    Label,
    validate_instruction,
)
from repro.ir.instructions import MemSpace


@dataclass(frozen=True)
class Thread:
    """A single CPU's instruction stream.

    ``observed`` names the registers whose final values are part of the
    thread's observable behavior (the ``r0``/``r1`` of the paper's litmus
    examples).
    """

    tid: int
    instrs: Tuple[Instruction, ...]
    name: str = ""
    is_kernel: bool = True
    observed: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for instr in self.instrs:
            validate_instruction(instr)

    def labels(self) -> Dict[str, int]:
        """Map each label name to its instruction index."""
        out: Dict[str, int] = {}
        for idx, instr in enumerate(self.instrs):
            if isinstance(instr, Label):
                if instr.name in out:
                    raise ProgramError(
                        f"duplicate label {instr.name!r} in thread {self.tid}"
                    )
                out[instr.name] = idx
        return out

    def validate(self) -> None:
        """Check that all branch targets resolve."""
        labels = self.labels()
        for instr in self.instrs:
            if isinstance(instr, (BranchIfZero, BranchIfNonZero, Jump)):
                if instr.target not in labels:
                    raise ProgramError(
                        f"branch to unknown label {instr.target!r} "
                        f"in thread {self.tid}"
                    )


@dataclass(frozen=True)
class MMUConfig:
    """Where virtual-memory translation finds its page tables.

    ``root`` is the physical location of the (single, shared) translation
    table root used by user threads' ``VLoad``/``VStore``; ``levels`` is
    the table depth (the paper verifies both 3- and 4-level stage 2
    tables); ``va_bits_per_level`` is how many VA bits each level indexes.

    ``stage2_root``, when set and the ``stage2`` VM feature is enabled,
    places one flat stage-2 translation table: the entry for intermediate
    physical address ``ipa`` lives at ``stage2_root + ipa`` and holds the
    backing physical address (0 = stage-2 fault).  Every stage-1 table
    entry address and the final output page are stage-2 translated
    through it.

    The concrete walk semantics live in :mod:`repro.mmu.walker`; this is
    only the configuration carried by a program.
    """

    root: int
    levels: int = 2
    va_bits_per_level: int = 4
    page_bits: int = 4
    stage2_root: Optional[int] = None

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ProgramError("page table must have at least one level")
        if self.va_bits_per_level < 1 or self.page_bits < 1:
            raise ProgramError("va_bits_per_level and page_bits must be >= 1")
        if self.stage2_root is not None and self.stage2_root < 0:
            raise ProgramError("stage2_root must be a non-negative location")


@dataclass(frozen=True)
class Program:
    """A complete multiprocessor kernel program.

    ``initial_memory`` gives initial values for locations (unlisted
    locations read as 0).  ``spaces`` classifies locations for the
    Memory-Isolation checker; unlisted locations default to
    ``MemSpace.KERNEL``.  ``name`` is used in reports.
    """

    threads: Tuple[Thread, ...]
    initial_memory: Mapping[int, int] = field(default_factory=dict)
    spaces: Mapping[int, MemSpace] = field(default_factory=dict)
    mmu: Optional[MMUConfig] = None
    name: str = "program"

    def __post_init__(self) -> None:
        tids = [t.tid for t in self.threads]
        if len(set(tids)) != len(tids):
            raise ProgramError("duplicate thread ids")
        for thread in self.threads:
            thread.validate()

    def thread(self, tid: int) -> Thread:
        for t in self.threads:
            if t.tid == tid:
                return t
        raise ProgramError(f"no thread with tid {tid}")

    def kernel_threads(self) -> Tuple[Thread, ...]:
        return tuple(t for t in self.threads if t.is_kernel)

    def user_threads(self) -> Tuple[Thread, ...]:
        return tuple(t for t in self.threads if not t.is_kernel)

    def space_of(self, loc: int) -> MemSpace:
        """The memory-space classification of a location."""
        return self.spaces.get(loc, MemSpace.KERNEL)

    def initial_value(self, loc: int) -> int:
        return self.initial_memory.get(loc, 0)


def make_program(
    threads: Sequence[Thread],
    initial_memory: Optional[Mapping[int, int]] = None,
    spaces: Optional[Mapping[int, MemSpace]] = None,
    mmu: Optional[MMUConfig] = None,
    name: str = "program",
) -> Program:
    """Convenience constructor that freezes the mappings."""
    return Program(
        threads=tuple(threads),
        initial_memory=dict(initial_memory or {}),
        spaces=dict(spaces or {}),
        mmu=mmu,
        name=name,
    )
