"""Program transformations: loop unrolling, renaming, composition.

Utilities for building larger verification subjects out of smaller
fragments:

* :func:`unroll_loops` — bound backward branches by replicating bodies,
  turning spin loops into straight-line retries (useful to make programs
  eligible for the axiomatic checker, or to cap exploration).
* :func:`rename_registers` — prefix a thread's registers so fragments
  can be concatenated without clashes.
* :func:`sequence_threads` — run fragment B after fragment A on the same
  CPU (label-safe concatenation).
* :func:`merge_programs` — combine two programs' threads/memory/spaces
  into one (for composite scenarios: different KCore primitives running
  concurrently on different CPUs).
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.ir.expr import BinOp, Expr, Imm, Reg
from repro.ir.instructions import (
    BranchIfNonZero,
    BranchIfZero,
    CompareAndSwap,
    FetchAndInc,
    Instruction,
    Jump,
    Label,
    Load,
    LoadExclusive,
    Mov,
    Nop,
    OracleRead,
    Panic,
    Pull,
    Push,
    Store,
    StoreExclusive,
    TLBInvalidate,
    VLoad,
    VStore,
)
from repro.ir.program import MMUConfig, Program, Thread


def _rename_expr(expr: Expr, prefix: str) -> Expr:
    if isinstance(expr, Reg):
        return Reg(prefix + expr.name)
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _rename_expr(expr.lhs, prefix), _rename_expr(expr.rhs, prefix)
        )
    return expr


def _rename_instruction(instr: Instruction, prefix: str) -> Instruction:
    """Prefix every register (and label) reference in *instr*."""
    if isinstance(instr, Mov):
        return Mov(prefix + instr.dst, _rename_expr(instr.src, prefix))
    if isinstance(instr, Load):
        return dc_replace(
            instr, dst=prefix + instr.dst, addr=_rename_expr(instr.addr, prefix)
        )
    if isinstance(instr, LoadExclusive):
        return dc_replace(
            instr, dst=prefix + instr.dst, addr=_rename_expr(instr.addr, prefix)
        )
    if isinstance(instr, Store):
        return dc_replace(
            instr,
            addr=_rename_expr(instr.addr, prefix),
            value=_rename_expr(instr.value, prefix),
        )
    if isinstance(instr, StoreExclusive):
        return dc_replace(
            instr,
            status=prefix + instr.status,
            addr=_rename_expr(instr.addr, prefix),
            value=_rename_expr(instr.value, prefix),
        )
    if isinstance(instr, FetchAndInc):
        return dc_replace(
            instr, dst=prefix + instr.dst, addr=_rename_expr(instr.addr, prefix)
        )
    if isinstance(instr, CompareAndSwap):
        return dc_replace(
            instr,
            dst=prefix + instr.dst,
            addr=_rename_expr(instr.addr, prefix),
            expected=_rename_expr(instr.expected, prefix),
            desired=_rename_expr(instr.desired, prefix),
        )
    if isinstance(instr, (BranchIfZero, BranchIfNonZero)):
        return dc_replace(
            instr, cond=_rename_expr(instr.cond, prefix),
            target=prefix + instr.target,
        )
    if isinstance(instr, Jump):
        return Jump(prefix + instr.target)
    if isinstance(instr, Label):
        return Label(prefix + instr.name)
    if isinstance(instr, VLoad):
        return dc_replace(
            instr, dst=prefix + instr.dst, vaddr=_rename_expr(instr.vaddr, prefix)
        )
    if isinstance(instr, VStore):
        return dc_replace(
            instr,
            vaddr=_rename_expr(instr.vaddr, prefix),
            value=_rename_expr(instr.value, prefix),
        )
    if isinstance(instr, OracleRead):
        return dc_replace(
            instr, dst=prefix + instr.dst, addr=_rename_expr(instr.addr, prefix)
        )
    if isinstance(instr, TLBInvalidate):
        if instr.vaddr is None:
            return instr
        return TLBInvalidate(_rename_expr(instr.vaddr, prefix))
    if isinstance(instr, Pull):
        return Pull(tuple(_rename_expr(e, prefix) for e in instr.locs))
    if isinstance(instr, Push):
        return Push(tuple(_rename_expr(e, prefix) for e in instr.locs))
    return instr


def rename_registers(thread: Thread, prefix: str) -> Thread:
    """Prefix all registers and labels of *thread*."""
    instrs = tuple(_rename_instruction(i, prefix) for i in thread.instrs)
    observed = tuple(prefix + r for r in thread.observed)
    return Thread(
        tid=thread.tid, instrs=instrs, name=thread.name,
        is_kernel=thread.is_kernel, observed=observed,
    )


def sequence_threads(first: Thread, second: Thread, tid: Optional[int] = None) -> Thread:
    """Run *second* after *first* on one CPU (registers/labels disjoint
    via prefixes)."""
    a = rename_registers(first, "a_")
    b = rename_registers(second, "b_")
    return Thread(
        tid=tid if tid is not None else first.tid,
        instrs=a.instrs + b.instrs,
        name=f"{first.name}+{second.name}",
        is_kernel=first.is_kernel and second.is_kernel,
        observed=a.observed + b.observed,
    )


def merge_programs(a: Program, b: Program, name: str = "") -> Program:
    """Combine two programs into one (threads renumbered; memory and
    space maps unioned; at most one may carry an MMU config)."""
    overlap = set(a.initial_memory) & set(b.initial_memory)
    for loc in overlap:
        if a.initial_value(loc) != b.initial_value(loc):
            raise ProgramError(
                f"conflicting initial values for location {loc:#x}"
            )
    if a.mmu is not None and b.mmu is not None and a.mmu != b.mmu:
        raise ProgramError("cannot merge two different MMU configurations")
    threads: List[Thread] = []
    next_tid = 0
    for thread in a.threads + b.threads:
        threads.append(
            Thread(
                tid=next_tid,
                instrs=thread.instrs,
                name=thread.name,
                is_kernel=thread.is_kernel,
                observed=thread.observed,
            )
        )
        next_tid += 1
    return Program(
        threads=tuple(threads),
        initial_memory={**dict(a.initial_memory), **dict(b.initial_memory)},
        spaces={**dict(a.spaces), **dict(b.spaces)},
        mmu=a.mmu or b.mmu,
        name=name or f"{a.name}||{b.name}",
    )


def unroll_loops(thread: Thread, bound: int) -> Thread:
    """Replicate the instruction stream *bound* times, turning backward
    branches into forward retries; the final copy's backward branches
    become panics (retry budget exhausted).

    Sound for verification harnesses whose loops are retry loops: any
    execution needing more than *bound* iterations is cut (and visible
    as a panic rather than silently dropped).
    """
    if bound < 1:
        raise ProgramError("unroll bound must be >= 1")
    labels = thread.labels()
    out: List[Instruction] = []
    for copy in range(bound):
        prefix = f"u{copy}_"
        for idx, instr in enumerate(thread.instrs):
            if isinstance(instr, Label):
                out.append(Label(prefix + instr.name))
            elif isinstance(instr, (BranchIfZero, BranchIfNonZero, Jump)):
                target_idx = labels[instr.target]
                backward = target_idx <= idx
                if backward:
                    if copy + 1 < bound:
                        new_target = f"u{copy + 1}_{instr.target}"
                    else:
                        out.append(_branch_to_panic(instr))
                        continue
                else:
                    new_target = prefix + instr.target
                out.append(dc_replace(instr, target=new_target))
            else:
                out.append(instr)
        if copy + 1 < bound:
            # Skip the next copies if this one ran to completion.
            out.append(Jump("u_done"))
    out.append(Label("u_done"))
    # Remap: each copy starts at its own labels; forward jump targets of
    # copy k land inside copy k; loop back-edges land in copy k+1.
    unrolled = Thread(
        tid=thread.tid,
        instrs=tuple(out),
        name=thread.name,
        is_kernel=thread.is_kernel,
        observed=thread.observed,
    )
    unrolled.validate()
    return unrolled


def _branch_to_panic(instr: Instruction) -> Instruction:
    """The final copy's back-edge: conditional panic on retry exhaustion."""
    if isinstance(instr, Jump):
        return Panic("unroll bound exhausted")
    # Conditional branches panic when they WOULD have looped; encode by
    # branching over a panic is not expressible in one instruction, so
    # conservatively panic unconditionally only for unconditional jumps
    # and keep conditionals as nops (the loop condition failing to exit
    # within the bound surfaces as a wrong final register, caught by the
    # harness assertions).
    return Nop()