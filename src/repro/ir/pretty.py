"""Human-readable rendering of kernel IR instructions and programs.

Used by the execution tracer, the examples, and anywhere a checker
reports a violation location: assembly-flavored one-liners like
``r0 := [0x100] (acquire)`` instead of dataclass reprs.
"""

from __future__ import annotations

from typing import List

from repro.ir.expr import Expr, Imm
from repro.ir.instructions import (
    Barrier,
    BranchIfNonZero,
    BranchIfZero,
    CompareAndSwap,
    FetchAndInc,
    Instruction,
    Jump,
    Label,
    Load,
    LoadExclusive,
    Mov,
    Nop,
    OracleRead,
    Panic,
    Pull,
    Push,
    Store,
    StoreExclusive,
    TLBInvalidate,
    VLoad,
    VStore,
)
from repro.ir.program import Program, Thread


def _addr(expr: Expr) -> str:
    if isinstance(expr, Imm):
        return f"[{expr.value:#x}]"
    return f"[{expr!r}]"


def format_instruction(instr: Instruction) -> str:
    """One-line assembly-style rendering of *instr*."""
    if isinstance(instr, Label):
        return f"{instr.name}:"
    if isinstance(instr, Nop):
        return "nop"
    if isinstance(instr, Mov):
        return f"{instr.dst} := {instr.src!r}"
    if isinstance(instr, Load):
        suffix = " (acquire)" if instr.acquire else ""
        return f"{instr.dst} := {_addr(instr.addr)}{suffix}"
    if isinstance(instr, LoadExclusive):
        suffix = " (acquire)" if instr.acquire else ""
        return f"{instr.dst} := ldxr{_addr(instr.addr)}{suffix}"
    if isinstance(instr, StoreExclusive):
        suffix = " (release)" if instr.release else ""
        return f"{instr.status} := stxr{_addr(instr.addr)}, {instr.value!r}{suffix}"
    if isinstance(instr, Store):
        suffix = " (release)" if instr.release else ""
        tag = f" ; {instr.pt_kind.value}-pt L{instr.pt_level}" if instr.pt_kind else ""
        return f"{_addr(instr.addr)} := {instr.value!r}{suffix}{tag}"
    if isinstance(instr, FetchAndInc):
        flags = "".join(
            s for s, on in ((" acquire", instr.acquire), (" release", instr.release)) if on
        )
        return (
            f"{instr.dst} := fetch_and_add{_addr(instr.addr)}, "
            f"{instr.amount}{flags}"
        )
    if isinstance(instr, CompareAndSwap):
        flags = "".join(
            s for s, on in ((" acquire", instr.acquire), (" release", instr.release)) if on
        )
        return (
            f"{instr.dst} := cas{_addr(instr.addr)} "
            f"{instr.expected!r} -> {instr.desired!r}{flags}"
        )
    if isinstance(instr, Barrier):
        return instr.kind.value
    if isinstance(instr, BranchIfZero):
        return f"cbz {instr.cond!r}, {instr.target}"
    if isinstance(instr, BranchIfNonZero):
        return f"cbnz {instr.cond!r}, {instr.target}"
    if isinstance(instr, Jump):
        return f"b {instr.target}"
    if isinstance(instr, VLoad):
        return f"{instr.dst} := *translate({instr.vaddr!r})"
    if isinstance(instr, VStore):
        return f"*translate({instr.vaddr!r}) := {instr.value!r}"
    if isinstance(instr, TLBInvalidate):
        target = "all" if instr.vaddr is None else repr(instr.vaddr)
        return f"tlbi {target}"
    if isinstance(instr, Pull):
        locs = ", ".join(_addr(e) for e in instr.locs)
        return f"pull {locs}"
    if isinstance(instr, Push):
        locs = ", ".join(_addr(e) for e in instr.locs)
        return f"push {locs}"
    if isinstance(instr, OracleRead):
        return f"{instr.dst} := oracle({_addr(instr.addr)})"
    if isinstance(instr, Panic):
        return f"panic({instr.reason!r})"
    return repr(instr)


def format_thread(thread: Thread) -> str:
    """Multi-line listing of one thread."""
    header = (
        f"thread {thread.tid} ({thread.name or 'unnamed'}, "
        f"{'kernel' if thread.is_kernel else 'user'}):"
    )
    lines: List[str] = [header]
    for pc, instr in enumerate(thread.instrs):
        lines.append(f"  {pc:>3}: {format_instruction(instr)}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Full program listing with initial memory."""
    lines = [f"program {program.name!r}:"]
    if program.initial_memory:
        init = ", ".join(
            f"[{loc:#x}]={val}" for loc, val in sorted(program.initial_memory.items())
        )
        lines.append(f"  init: {init}")
    for thread in program.threads:
        lines.append(format_thread(thread))
    return "\n".join(lines)
