"""Operand expressions for the kernel IR.

Expressions are tiny trees over registers and immediates.  They exist for
one reason beyond computing values: **dependency tracking**.  The Armv8
memory model (and therefore the Promising Arm model the paper builds on)
preserves program order between instructions linked by *data* dependencies
(a register written by one instruction feeds the value operand of another)
and *address* dependencies (it feeds the address operand).  Keeping
operands symbolic until execution lets the executors compute, per access,
the set of registers its address and value depend on.

Expressions are immutable and hashable so instruction objects (and thus
whole programs) can be shared freely between explorations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

from repro.errors import ProgramError

#: A register file maps register names to integer values.
RegFile = Dict[str, int]

ExprLike = Union["Expr", int, str]


class Expr:
    """Base class for operand expressions."""


    def eval(self, regs: RegFile) -> int:
        raise NotImplementedError

    def registers(self) -> FrozenSet[str]:
        """Registers this expression reads (the dependency footprint)."""
        raise NotImplementedError

    # Small operator sugar so builders can write ``Reg("r0") + 8``.
    def __add__(self, other: ExprLike) -> "BinOp":
        return BinOp("+", self, coerce(other))

    def __radd__(self, other: ExprLike) -> "BinOp":
        return BinOp("+", coerce(other), self)

    def __sub__(self, other: ExprLike) -> "BinOp":
        return BinOp("-", self, coerce(other))

    def __rsub__(self, other: ExprLike) -> "BinOp":
        return BinOp("-", coerce(other), self)

    def __mul__(self, other: ExprLike) -> "BinOp":
        return BinOp("*", self, coerce(other))

    def __rmul__(self, other: ExprLike) -> "BinOp":
        return BinOp("*", coerce(other), self)

    # Comparisons build 0/1-valued expressions.  ``==`` stays structural
    # equality (dataclass semantics); use ``.eq()``/``.ne()`` for the
    # value-level comparison operands.
    def __lt__(self, other: ExprLike) -> "BinOp":
        return BinOp("<", self, coerce(other))

    def __le__(self, other: ExprLike) -> "BinOp":
        return BinOp("<=", self, coerce(other))

    def __gt__(self, other: ExprLike) -> "BinOp":
        return BinOp("<", coerce(other), self)

    def __ge__(self, other: ExprLike) -> "BinOp":
        return BinOp("<=", coerce(other), self)

    def eq(self, other: ExprLike) -> "BinOp":
        return BinOp("==", self, coerce(other))

    def ne(self, other: ExprLike) -> "BinOp":
        return BinOp("!=", self, coerce(other))


@dataclass(frozen=True, slots=True)
class Imm(Expr):
    """An immediate (constant) operand."""

    value: int


    def eval(self, regs: RegFile) -> int:
        return self.value

    def registers(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True, slots=True)
class Reg(Expr):
    """A register operand."""

    name: str


    def eval(self, regs: RegFile) -> int:
        try:
            return regs[self.name]
        except KeyError:
            raise ProgramError(f"read of unwritten register {self.name!r}") from None

    def registers(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return self.name


_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    ">>": lambda a, b: a >> b,
    "<<": lambda a, b: a << b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """A binary arithmetic/comparison operand expression."""

    op: str
    lhs: Expr
    rhs: Expr


    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ProgramError(f"unknown operator {self.op!r}")

    def eval(self, regs: RegFile) -> int:
        return _OPS[self.op](self.lhs.eval(regs), self.rhs.eval(regs))

    def registers(self) -> FrozenSet[str]:
        return self.lhs.registers() | self.rhs.registers()

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


def coerce(value: ExprLike) -> Expr:
    """Coerce an int (immediate), str (register name), or Expr to an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; normalize
        return Imm(int(value))
    if isinstance(value, int):
        return Imm(value)
    if isinstance(value, str):
        return Reg(value)
    raise ProgramError(f"cannot use {value!r} as an operand expression")


def registers_of(*exprs: Expr) -> Tuple[str, ...]:
    """The sorted union of registers read by *exprs* (stable for hashing)."""
    out: FrozenSet[str] = frozenset()
    for expr in exprs:
        out |= expr.registers()
    return tuple(sorted(out))
