"""Exploration-engine benchmark: POR, interning, memoization, fan-out.

Produces the numbers tracked across PRs in ``BENCH_exploration.json``:
wall time and states/second for the litmus corpus and ``verify_sekvm``,
serial vs. parallel, plus the single-threaded effect of partial-order
reduction and certification memoization on a promise-heavy workload.
Parallel entries record the :func:`repro.parallel.pool.plan_jobs`
decision so a disappointing "speedup" can be traced to the machine.
Used by the ``bench`` CLI subcommand and by
``benchmarks/test_checker_scalability.py``.

All measurements run with caching disabled (memo cleared, disk layer
off) so they time real exploration work, never cache hits.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Optional


@contextmanager
def _env(**overrides):
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update({k: v for k, v in overrides.items() if v is not None})
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _fresh() -> None:
    from repro.memory.cache import clear_memory_cache

    clear_memory_cache()


def promise_heavy_program():
    """A workload dominated by promise certification: one thread issues
    three promisable stores, the other reads them all."""
    from repro.ir import ThreadBuilder, build_program

    x, y, z, w = 0x10, 0x20, 0x30, 0x40
    t0 = ThreadBuilder(0)
    t0.store(x, 1).store(y, 1).store(z, 1).load("r0", w)
    t1 = ThreadBuilder(1)
    t1.store(w, 1).load("a", x).load("b", y).load("c", z)
    return build_program(
        [t0, t1],
        observed={0: ["r0"], 1: ["a", "b", "c"]},
        initial_memory={x: 0, y: 0, z: 0, w: 0},
    )


def _time_corpus(
    jobs: Optional[int], por: bool, intern: bool = True
) -> Dict[str, float]:
    from repro.litmus.catalog import full_corpus
    from repro.litmus.runner import run_corpus

    _fresh()
    with _env(
        REPRO_EXPLORE_CACHE="0",
        REPRO_POR="1" if por else "0",
        REPRO_INTERN="1" if intern else "0",
        REPRO_SHARD="0",
    ):
        start = time.perf_counter()
        outcomes = run_corpus(full_corpus(), jobs=jobs, cache=False)
        wall = time.perf_counter() - start
    states = sum(o.sc.states_explored + o.rm.states_explored for o in outcomes)
    return {
        "wall_seconds": wall,
        "states": states,
        "states_per_second": states / wall if wall else 0.0,
        "tests": len(outcomes),
        "all_passed": all(o.passed for o in outcomes),
    }


def _time_promise_heavy(
    por: bool, intern: bool = True, memo: bool = True, shard: int = 0,
) -> Dict[str, float]:
    from repro.memory.exploration import explore
    from repro.memory.semantics import ModelConfig

    program = promise_heavy_program()
    cfg = ModelConfig(relaxed=True, max_promises_per_thread=3)
    with _env(
        REPRO_INTERN="1" if intern else "0",
        REPRO_CERT_MEMO="1" if memo else "0",
        REPRO_SHARD=str(shard),
    ):
        start = time.perf_counter()
        result = explore(program, cfg, por=por)
        wall = time.perf_counter() - start
    out = {
        "wall_seconds": wall,
        "states": result.states_explored,
        "states_per_second": result.states_explored / wall if wall else 0.0,
        "behaviors": len(result.behaviors),
        "complete": result.complete,
    }
    if result.stats is not None:
        out["engine_stats"] = result.stats.as_dict()
    return out


def _time_vm_corpus(featured: bool) -> Dict[str, float]:
    """The VM litmus families, explored with their feature gates as the
    catalog configures them (``featured=True``) or forcibly stripped
    (``featured=False`` — same programs on the seed semantics, the
    gates-closed cost baseline)."""
    import dataclasses

    from repro.litmus.catalog import vm_corpus
    from repro.litmus.runner import run_corpus

    tests = vm_corpus()
    if not featured:
        tests = [dataclasses.replace(t, vm_features=()) for t in tests]
    _fresh()
    with _env(REPRO_EXPLORE_CACHE="0", REPRO_SHARD="0"):
        start = time.perf_counter()
        outcomes = run_corpus(tests, jobs=None, cache=False)
        wall = time.perf_counter() - start
    states = sum(o.sc.states_explored + o.rm.states_explored for o in outcomes)
    out = {
        "wall_seconds": wall,
        "states": states,
        "states_per_second": states / wall if wall else 0.0,
        "tests": len(outcomes),
    }
    if featured:
        # Postconditions are calibrated for the featured configs only;
        # the stripped baseline intentionally misses the RM-observable
        # outcomes, so `all_passed` would be meaningless there.
        out["all_passed"] = all(o.passed for o in outcomes)
    return out


def _time_vm_matrix() -> Dict[str, float]:
    """One full verdict-matrix build (every feature combination)."""
    from repro.vrm.vm_matrix import build_matrix

    _fresh()
    with _env(REPRO_EXPLORE_CACHE="0", REPRO_SHARD="0"):
        start = time.perf_counter()
        matrix = build_matrix(cache=False)
        wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "rows": len(matrix["rows"]),
        "complete": all(r["complete"] for r in matrix["rows"]),
    }


def _time_sekvm(jobs: Optional[int]) -> Dict[str, float]:
    from repro.sekvm.verify import verify_sekvm

    _fresh()
    with _env(REPRO_EXPLORE_CACHE="0", REPRO_SHARD="0"):
        start = time.perf_counter()
        outcome = verify_sekvm(jobs=jobs)
        wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "cases": len(outcome.outcomes),
        "all_verified": outcome.all_verified,
    }


def _time_wdrf(fuse: bool) -> Dict[str, float]:
    """Time ``verify_wdrf`` over the SeKVM spec corpus, fused or not.

    ``fuse=False`` is the legacy pipeline — per-condition passes run to
    exhaustion, no monitor early-exit — so the ratio measures the whole
    streaming pipeline, not fusion alone.  Runs with the in-process
    memo *and* the disk cache off so both sides pay for every
    exploration (the memo would otherwise dedupe identical passes
    within the process and hide the fusion win), and includes the
    seeded-bug cases, where fail-fast monitors shine.
    """
    from repro.sekvm.ir_programs import kcore_buggy_cases, kcore_verified_cases
    from repro.vrm.verifier import VerifyStats, verify_wdrf

    cases = list(kcore_verified_cases(4)) + list(kcore_buggy_cases(4))
    _fresh()
    stats = VerifyStats()
    with _env(
        REPRO_EXPLORE_CACHE="0",
        REPRO_EXPLORE_MEMO="0",
        REPRO_FUSE_CHECK="0",
        REPRO_SHARD="0",
    ):
        start = time.perf_counter()
        reports = [
            verify_wdrf(case.spec, fuse=fuse, collect=stats)
            for case in cases
        ]
        wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "cases": len(cases),
        "as_expected": all(
            report.all_verified == case.should_verify
            for case, report in zip(cases, reports)
        ),
        "explorations": stats.explorations,
        "states": stats.states_explored,
        "states_per_second": stats.states_explored / wall if wall else 0.0,
        "fused_conditions": stats.fused_conditions,
        "monitor_stops": stats.monitor_stops,
        "stopped_early": stats.stopped_early,
    }


def _time_portability() -> Dict:
    """Per-model exploration cost of the litmus corpus (SC/TSO/Arm).

    One pass over the catalog explores every test under all three
    portfolio configurations with caching off, so the per-model totals
    are directly comparable — same programs, same observation sets,
    only the architecture differs.  The same pass certifies the
    containment chain SC ⊆ TSO ⊆ Arm on the explored behavior sets
    (the bench-time mirror of ``tests/corpus/portability_verdicts.json``).
    """
    from repro.litmus.catalog import full_corpus
    from repro.litmus.runner import litmus_configs, tso_config
    from repro.memory.cache import cached_explore

    tests = list(full_corpus())
    totals: Dict[str, Dict[str, float]] = {
        m: {"wall_seconds": 0.0, "states": 0} for m in ("sc", "tso", "arm")
    }
    certified = True
    _fresh()
    with _env(REPRO_EXPLORE_CACHE="0", REPRO_SHARD="0"):
        for test in tests:
            sc_cfg, rm_cfg = litmus_configs(test)
            configs = {
                "sc": sc_cfg, "tso": tso_config(test), "arm": rm_cfg,
            }
            observe = sorted(test.program.initial_memory)
            results = {}
            for model, cfg in configs.items():
                start = time.perf_counter()
                results[model] = cached_explore(
                    test.program, cfg, observe_locs=observe, cache=False
                )
                totals[model]["wall_seconds"] += time.perf_counter() - start
                totals[model]["states"] += results[model].states_explored
            certified = certified and not (
                results["sc"].behaviors - results["tso"].behaviors
            ) and not (
                results["tso"].behaviors - results["arm"].behaviors
            )
    for record in totals.values():
        record["states_per_second"] = _ratio(
            record["states"], record["wall_seconds"]
        )
    return {
        "tests": len(tests),
        "models": totals,
        "containment_certified": certified,
        # What each step down the portfolio costs: TSO pays for the
        # store-buffer interleavings, Arm for promise certification.
        "tso_cost_vs_sc": _ratio(
            totals["tso"]["wall_seconds"], totals["sc"]["wall_seconds"]
        ),
        "arm_cost_vs_tso": _ratio(
            totals["arm"]["wall_seconds"], totals["tso"]["wall_seconds"]
        ),
    }


def bmc_explosion_spec():
    """A wDRF spec whose exploration state space explodes but whose CNF
    stays tiny: two CPUs each initialize three private kernel PT entries
    and read back one, so relaxed exploration certifies thousands of
    promise interleavings while the write-once/isolation queries are a
    few hundred clauses.  Exploration still *completes* within the
    default budgets — both backends reach the same verdict, the wall
    clock is the only difference — which is exactly the shape the
    cost-model router must win on."""
    from repro.ir import PTKind, ThreadBuilder, build_program
    from repro.vrm.verifier import WDRFSpec

    tbs, init, pts = [], {}, []
    for t in range(2):
        tb = ThreadBuilder(t)
        for s in range(3):
            loc = 0x1000 + 0x10 * (t * 3 + s)
            tb.store(loc, t + 1, pt_kind=PTKind.KERNEL)
            init[loc] = 0
            pts.append(loc)
        tb.load(f"r{t}", 0x1000)
        tbs.append(tb)
    program = build_program(tbs, initial_memory=init, name="bmc-explosion")
    return WDRFSpec(program=program, kernel_pt_locs=tuple(pts))


def _time_wdrf_backend(backend: str) -> Dict[str, float]:
    """Time ``verify_wdrf`` on the explosion spec under one backend."""
    from repro.vrm.verifier import VerifyStats, verify_wdrf

    spec = bmc_explosion_spec()
    _fresh()
    stats = VerifyStats()
    with _env(
        REPRO_EXPLORE_CACHE="0",
        REPRO_BACKEND=backend,
        REPRO_BACKEND_CHECK="0",
        REPRO_SHARD="0",
    ):
        start = time.perf_counter()
        report = verify_wdrf(spec, collect=stats)
        wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "all_hold": report.all_hold,
        "explorations": stats.explorations,
        "states": stats.states_explored,
        "bmc_passes": stats.bmc_passes,
    }


def _time_bmc_litmus() -> Dict[str, float]:
    """Solve every encodable litmus test with the BMC backend alone."""
    from repro.litmus.catalog import full_corpus
    from repro.litmus.runner import SC_CFG, rm_config
    from repro.smt.backend import BmcStats, bmc_explore, bmc_supported
    from repro.smt.encode import Unsupported

    stats = BmcStats()
    solved = skipped = 0
    _fresh()
    with _env(REPRO_EXPLORE_CACHE="0"):
        start = time.perf_counter()
        for test in full_corpus():
            observe = sorted(loc for loc, _ in test.memory_condition)
            for cfg in (SC_CFG, rm_config(test.max_promises)):
                if bmc_supported(test.program, cfg) is not None:
                    skipped += 1
                    continue
                try:
                    bmc_explore(
                        test.program, cfg, observe, cache=False, stats=stats
                    )
                    solved += 1
                except Unsupported:
                    skipped += 1
        wall = time.perf_counter() - start
    out = stats.as_dict()
    out.update({
        "wall_seconds": wall,
        "queries_solved": solved,
        "queries_skipped": skipped,
        "clauses_per_second": stats.clauses / wall if wall else 0.0,
    })
    return out


def _time_serve(
    n_jobs: int = 60, unique: int = 6, clients: int = 8
) -> Dict:
    """The serving layer on a duplicate-heavy synthetic workload.

    Baseline: every job executed sequentially with the in-process memo
    cleared per job and all caches off — the cost profile of one
    ``verify`` CLI invocation per request (minus interpreter startup,
    so the comparison is conservative).  Served: the same job list over
    real HTTP against an in-process server with the hot tier on and the
    engine caches still off, so all the throughput comes from the
    serving layer's dedup (hot tier + coalescing + warm memo), none
    from the persistent engine cache.  Served verdicts are checked
    bit-identical (behavior digests) to the direct runs.
    """
    import asyncio

    from repro.serve.jobs import execute_job, parse_job
    from repro.serve.traffic import run_traffic, synthetic_workload

    jobs = synthetic_workload(n_jobs=n_jobs, unique=unique)
    with _env(
        REPRO_EXPLORE_CACHE="0",
        REPRO_SERVE_DISK="0",
        REPRO_SHARD="0",
    ):
        start = time.perf_counter()
        direct = []
        for job in jobs:
            _fresh()
            direct.append(execute_job(parse_job(job).payload))
        sequential_wall = time.perf_counter() - start

        async def _served():
            from repro.serve.server import ServeConfig, VerificationServer

            server = VerificationServer(ServeConfig(port=0, workers=0))
            await server.start()
            try:
                return await run_traffic(
                    server.config.host, server.port, jobs,
                    clients=clients, collect_results=True,
                )
            finally:
                await server.stop()

        _fresh()
        report = asyncio.run(_served())

    served = report.pop("results")
    verdicts_identical = all(
        body is not None
        and body.get("result", {}).get("behavior_digest")
        == direct[i]["behavior_digest"]
        for i, body in enumerate(served)
    )
    stats = report["server"]
    return {
        "jobs": n_jobs,
        "unique_specs": unique,
        "repeat_ratio": 1.0 - (unique / n_jobs),
        "clients": clients,
        "sequential": {
            "wall_seconds": sequential_wall,
            "jobs_per_second": _ratio(n_jobs, sequential_wall),
        },
        "served": {
            "wall_seconds": report["wall_seconds"],
            "jobs_per_second": report["throughput_jobs_per_s"],
            "p50_ms": report["p50_ms"],
            "p99_ms": report["p99_ms"],
            "failures": report["failures"],
        },
        "throughput_speedup": _ratio(
            report["throughput_jobs_per_s"], _ratio(n_jobs, sequential_wall)
        ),
        "cache_hit_rate": stats["cache_hit_rate"],
        "hot_hits": stats["counters"]["hot_hits"],
        "coalesced": stats["counters"]["coalesced"],
        "computed": stats["counters"]["computed"],
        "verdicts_identical": verdicts_identical,
    }


def _ratio(a: float, b: float) -> float:
    return a / b if b else 0.0


def _speedup(serial_wall: float, parallel_wall: float) -> Dict:
    """A v4 speedup record: the ratio plus the context that explains it.

    On a single-core runner a process fan-out cannot win, so a <1
    "speedup" there is the machine, not a regression — the record says
    so explicitly (``degraded``) instead of publishing a bare float
    that reads like a perf loss.
    """
    cpus = os.cpu_count() or 1
    out = {"ratio": _ratio(serial_wall, parallel_wall), "cpu_count": cpus}
    if cpus == 1:
        out["degraded"] = "single-core-runner"
    return out


def bench_exploration(
    jobs: int = 4,
    shard_jobs: Optional[int] = None,
    only: Optional[str] = None,
) -> Dict:
    """Measure the exploration engine end to end.

    Returns a JSON-ready dict (schema v8): litmus corpus serial vs.
    ``jobs``-way parallel, POR on vs. off (single-threaded),
    promise-heavy POR/memo effect plus ``shard_jobs``-way frontier
    sharding, ``verify_sekvm`` serial vs. parallel, the SAT/BMC
    backend (cost-routed vs. forced-exploration wall time on a
    state-explosion spec, plus a solver sweep over the litmus corpus),
    and the serving layer on a duplicate-heavy synthetic workload
    (throughput vs. sequential execution, latency percentiles, cache
    hit rate — :func:`_time_serve`), and the relaxed-virtual-memory
    section (the VM litmus families featured vs. gates-stripped plus
    one verdict-matrix build — :func:`_time_vm_corpus` /
    :func:`_time_vm_matrix`), and the model-portfolio section (the
    litmus corpus explored under SC/TSO/Arm with the containment chain
    certified in the same pass — :func:`_time_portability`).  Each
    parallel section records its own ``cpu_count`` and its speedups
    are dicts (:func:`_speedup`) so single-core numbers are annotated,
    not misread as regressions.  ``only`` restricts the run to one
    section (``litmus_corpus``/``promise_heavy``/``wdrf``/
    ``verify_sekvm``/``bmc``/``serve``/``vm``/``portability``) — the
    CI smoke path.
    """
    from repro.parallel.pool import plan_jobs, resolve_shard_jobs

    cpus = os.cpu_count() or 1
    shards = resolve_shard_jobs(shard_jobs)
    if shards <= 1:
        # Always track the sharded engine, even unrequested: use the
        # real fan-out on multi-core machines (capped at 4) so a
        # multi-core bench run publishes a genuine shard speedup, and
        # the 2-shard floor elsewhere (the _speedup record annotates
        # single-core results as degraded).
        shards = max(2, min(4, cpus))
    results: Dict = {
        "schema": "BENCH_exploration/v8",
        "cpu_count": cpus,
        "jobs": jobs,
        "shard_jobs": shards,
    }

    def wanted(section: str) -> bool:
        return only is None or only == section

    if wanted("litmus_corpus"):
        corpus_serial = _time_corpus(jobs=None, por=True)
        corpus_baseline = _time_corpus(jobs=None, por=False, intern=False)
        corpus_parallel = _time_corpus(jobs=jobs, por=True)
        results["litmus_corpus"] = {
            "cpu_count": cpus,
            "serial": corpus_serial,
            "serial_baseline": corpus_baseline,
            "parallel": corpus_parallel,
            "jobs_plan": plan_jobs(jobs, corpus_parallel["tests"])._asdict(),
            "parallel_speedup": _speedup(
                corpus_serial["wall_seconds"], corpus_parallel["wall_seconds"]
            ),
            # POR+interning runs single-threaded on both sides, so its
            # ratio is machine-independent — but the per-section
            # cpu_count rides along in v4 regardless.
            "por_speedup": {
                "ratio": _ratio(
                    corpus_baseline["wall_seconds"],
                    corpus_serial["wall_seconds"],
                ),
                "cpu_count": cpus,
            },
        }

    if wanted("promise_heavy"):
        # "optimized" = POR + interning + certification memo; "no_memo"
        # drops only the memo (isolating its effect); "baseline" drops
        # POR, interning, and memo (the v1 engine); "sharded" is the
        # optimized engine fanned out over shard workers.
        ph_optimized = _time_promise_heavy(por=True)
        ph_no_memo = _time_promise_heavy(por=True, memo=False)
        ph_base = _time_promise_heavy(por=False, intern=False, memo=False)
        ph_sharded = _time_promise_heavy(por=True, shard=shards)
        results["promise_heavy"] = {
            "cpu_count": cpus,
            "optimized": ph_optimized,
            "no_memo": ph_no_memo,
            "baseline": ph_base,
            "sharded": ph_sharded,
            "memo_speedup": _ratio(
                ph_no_memo["wall_seconds"], ph_optimized["wall_seconds"]
            ),
            "overall_speedup": _ratio(
                ph_base["wall_seconds"], ph_optimized["wall_seconds"]
            ),
            "overall_state_reduction": _ratio(
                ph_base["states"], ph_optimized["states"]
            ),
            "shard_speedup": _speedup(
                ph_optimized["wall_seconds"], ph_sharded["wall_seconds"]
            ),
        }

    if wanted("wdrf"):
        wdrf_fused = _time_wdrf(fuse=True)
        wdrf_unfused = _time_wdrf(fuse=False)
        results["wdrf"] = {
            "cpu_count": cpus,
            "fused": wdrf_fused,
            "unfused": wdrf_unfused,
            "fuse_speedup": _ratio(
                wdrf_unfused["wall_seconds"], wdrf_fused["wall_seconds"]
            ),
            "state_reduction": _ratio(
                wdrf_unfused["states"], wdrf_fused["states"]
            ),
        }

    if wanted("bmc"):
        bmc_auto = _time_wdrf_backend("auto")
        bmc_forced_explore = _time_wdrf_backend("explore")
        results["bmc"] = {
            "cpu_count": cpus,
            "explosion_spec": {
                "auto": bmc_auto,
                "explore": bmc_forced_explore,
                # Pure ratio, not a _speedup record: both sides run
                # single-threaded, so the machine cannot degrade it.
                "router_speedup": _ratio(
                    bmc_forced_explore["wall_seconds"],
                    bmc_auto["wall_seconds"],
                ),
            },
            "litmus_solver": _time_bmc_litmus(),
        }

    if wanted("serve"):
        results["serve"] = _time_serve()

    if wanted("vm"):
        vm_featured = _time_vm_corpus(featured=True)
        vm_stripped = _time_vm_corpus(featured=False)
        results["vm"] = {
            "cpu_count": cpus,
            "featured": vm_featured,
            "gates_stripped": vm_stripped,
            # Pure single-threaded ratio: what turning the feature
            # gates on costs on the programs built to exercise them.
            "feature_cost": _ratio(
                vm_featured["wall_seconds"], vm_stripped["wall_seconds"]
            ),
            "verdict_matrix": _time_vm_matrix(),
        }

    if wanted("portability"):
        results["portability"] = _time_portability()

    if wanted("verify_sekvm"):
        sekvm_serial = _time_sekvm(jobs=None)
        sekvm_parallel = _time_sekvm(jobs=jobs)
        results["verify_sekvm"] = {
            "cpu_count": cpus,
            "serial": sekvm_serial,
            "parallel": sekvm_parallel,
            "jobs_plan": plan_jobs(jobs, sekvm_parallel["cases"])._asdict(),
            "parallel_speedup": _speedup(
                sekvm_serial["wall_seconds"], sekvm_parallel["wall_seconds"]
            ),
        }

    return results


def write_bench_json(path: str, results: Dict) -> None:
    """Write benchmark *results* to *path* (pretty-printed, atomic)."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def _fmt_speedup(record) -> str:
    """Render a v4 speedup dict (or a legacy v3 float) for humans."""
    if isinstance(record, dict):
        tag = f"{record['ratio']:.2f}x"
        if record.get("degraded"):
            tag += f" [{record['degraded']}]"
        return tag
    return f"{record:.2f}x"


def format_bench(results: Dict) -> str:
    """Human-readable summary of :func:`bench_exploration` output.

    Tolerates partial results (``bench_exploration(only=...)``) by
    printing only the sections present.
    """
    lines = [
        f"exploration benchmark ({results['cpu_count']} CPUs, "
        f"jobs={results['jobs']}, "
        f"shard_jobs={results.get('shard_jobs', 1)})",
    ]
    corpus = results.get("litmus_corpus")
    if corpus is not None:
        lines += [
            f"  litmus corpus   serial {corpus['serial']['wall_seconds']:.2f}s "
            f"({corpus['serial']['states_per_second']:,.0f} states/s), "
            f"parallel {corpus['parallel']['wall_seconds']:.2f}s "
            f"(speedup {_fmt_speedup(corpus['parallel_speedup'])})",
            f"  POR+interning   {_fmt_speedup(corpus['por_speedup'])} wall "
            f"vs unreduced/uninterned serial corpus",
        ]
    ph = results.get("promise_heavy")
    if ph is not None:
        lines.append(
            f"  promise-heavy   optimized {ph['optimized']['wall_seconds']:.2f}s "
            f"vs no-memo {ph['no_memo']['wall_seconds']:.2f}s "
            f"(memo {ph['memo_speedup']:.2f}x) vs "
            f"baseline {ph['baseline']['wall_seconds']:.2f}s "
            f"(overall {ph['overall_speedup']:.2f}x, "
            f"{ph['overall_state_reduction']:.2f}x fewer states)"
        )
        if "sharded" in ph:
            lines.append(
                f"  frontier shards sharded "
                f"{ph['sharded']['wall_seconds']:.2f}s "
                f"(speedup {_fmt_speedup(ph['shard_speedup'])})"
            )
    wdrf = results.get("wdrf")
    if wdrf is not None:
        lines.append(
            f"  wdrf fusion     fused {wdrf['fused']['wall_seconds']:.2f}s "
            f"({wdrf['fused']['explorations']} passes) vs "
            f"unfused {wdrf['unfused']['wall_seconds']:.2f}s "
            f"({wdrf['unfused']['explorations']} passes): "
            f"{wdrf['fuse_speedup']:.2f}x wall, "
            f"{wdrf['state_reduction']:.2f}x fewer states"
        )
    bmc = results.get("bmc")
    if bmc is not None:
        exp = bmc["explosion_spec"]
        sweep = bmc["litmus_solver"]
        lines += [
            f"  bmc router      auto {exp['auto']['wall_seconds']:.2f}s "
            f"({exp['auto']['bmc_passes']} SAT pass(es)) vs forced-explore "
            f"{exp['explore']['wall_seconds']:.2f}s "
            f"({exp['explore']['states']} states): "
            f"{exp['router_speedup']:.1f}x on the explosion spec",
            f"  bmc solver      {sweep['queries_solved']} litmus queries in "
            f"{sweep['wall_seconds']:.2f}s "
            f"({sweep['clauses_per_second']:,.0f} clauses/s, "
            f"{sweep['outcomes']} outcomes enumerated)",
        ]
    serve = results.get("serve")
    if serve is not None:
        lines.append(
            f"  serve           {serve['jobs']} jobs "
            f"({serve['repeat_ratio']:.0%} repeats, "
            f"{serve['clients']} clients): "
            f"{serve['served']['wall_seconds']:.2f}s served vs "
            f"{serve['sequential']['wall_seconds']:.2f}s sequential "
            f"({serve['throughput_speedup']:.1f}x throughput, "
            f"hit rate {serve['cache_hit_rate']:.0%}, "
            f"p50 {serve['served']['p50_ms']:.1f}ms / "
            f"p99 {serve['served']['p99_ms']:.1f}ms, "
            f"verdicts identical: {serve['verdicts_identical']})"
        )
    vm = results.get("vm")
    if vm is not None:
        lines.append(
            f"  vm features     featured {vm['featured']['wall_seconds']:.2f}s "
            f"({vm['featured']['tests']} tests, "
            f"all passed: {vm['featured']['all_passed']}) vs "
            f"gates-stripped {vm['gates_stripped']['wall_seconds']:.2f}s "
            f"({vm['feature_cost']:.2f}x cost); verdict matrix "
            f"{vm['verdict_matrix']['rows']} rows in "
            f"{vm['verdict_matrix']['wall_seconds']:.2f}s"
        )
    portability = results.get("portability")
    if portability is not None:
        models = portability["models"]
        lines.append(
            f"  portability     {portability['tests']} litmus tests: "
            f"sc {models['sc']['wall_seconds']:.2f}s, "
            f"tso {models['tso']['wall_seconds']:.2f}s "
            f"({portability['tso_cost_vs_sc']:.2f}x sc), "
            f"arm {models['arm']['wall_seconds']:.2f}s "
            f"({portability['arm_cost_vs_tso']:.2f}x tso); "
            f"SC ⊆ TSO ⊆ Arm certified: "
            f"{portability['containment_certified']}"
        )
    sekvm = results.get("verify_sekvm")
    if corpus is not None and sekvm is not None:
        lines.append(
            f"  jobs plan       corpus: {corpus['jobs_plan']['workers']} "
            f"worker(s) ({corpus['jobs_plan']['reason']}), sekvm: "
            f"{sekvm['jobs_plan']['workers']} worker(s) "
            f"({sekvm['jobs_plan']['reason']})"
        )
    if sekvm is not None:
        lines.append(
            f"  verify_sekvm    serial {sekvm['serial']['wall_seconds']:.2f}s, "
            f"parallel {sekvm['parallel']['wall_seconds']:.2f}s "
            f"(speedup {_fmt_speedup(sekvm['parallel_speedup'])})"
        )
    return "\n".join(lines)
