"""Exploration-engine benchmark: POR, interning, memoization, fan-out.

Produces the numbers tracked across PRs in ``BENCH_exploration.json``:
wall time and states/second for the litmus corpus and ``verify_sekvm``,
serial vs. parallel, plus the single-threaded effect of partial-order
reduction and certification memoization on a promise-heavy workload.
Parallel entries record the :func:`repro.parallel.pool.plan_jobs`
decision so a disappointing "speedup" can be traced to the machine.
Used by the ``bench`` CLI subcommand and by
``benchmarks/test_checker_scalability.py``.

All measurements run with caching disabled (memo cleared, disk layer
off) so they time real exploration work, never cache hits.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Optional


@contextmanager
def _env(**overrides):
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update({k: v for k, v in overrides.items() if v is not None})
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _fresh() -> None:
    from repro.memory.cache import clear_memory_cache

    clear_memory_cache()


def promise_heavy_program():
    """A workload dominated by promise certification: one thread issues
    three promisable stores, the other reads them all."""
    from repro.ir import ThreadBuilder, build_program

    x, y, z, w = 0x10, 0x20, 0x30, 0x40
    t0 = ThreadBuilder(0)
    t0.store(x, 1).store(y, 1).store(z, 1).load("r0", w)
    t1 = ThreadBuilder(1)
    t1.store(w, 1).load("a", x).load("b", y).load("c", z)
    return build_program(
        [t0, t1],
        observed={0: ["r0"], 1: ["a", "b", "c"]},
        initial_memory={x: 0, y: 0, z: 0, w: 0},
    )


def _time_corpus(
    jobs: Optional[int], por: bool, intern: bool = True
) -> Dict[str, float]:
    from repro.litmus.catalog import full_corpus
    from repro.litmus.runner import run_corpus

    _fresh()
    with _env(
        REPRO_EXPLORE_CACHE="0",
        REPRO_POR="1" if por else "0",
        REPRO_INTERN="1" if intern else "0",
    ):
        start = time.perf_counter()
        outcomes = run_corpus(full_corpus(), jobs=jobs, cache=False)
        wall = time.perf_counter() - start
    states = sum(o.sc.states_explored + o.rm.states_explored for o in outcomes)
    return {
        "wall_seconds": wall,
        "states": states,
        "states_per_second": states / wall if wall else 0.0,
        "tests": len(outcomes),
        "all_passed": all(o.passed for o in outcomes),
    }


def _time_promise_heavy(
    por: bool, intern: bool = True, memo: bool = True
) -> Dict[str, float]:
    from repro.memory.exploration import explore
    from repro.memory.semantics import ModelConfig

    program = promise_heavy_program()
    cfg = ModelConfig(relaxed=True, max_promises_per_thread=3)
    with _env(
        REPRO_INTERN="1" if intern else "0",
        REPRO_CERT_MEMO="1" if memo else "0",
    ):
        start = time.perf_counter()
        result = explore(program, cfg, por=por)
        wall = time.perf_counter() - start
    out = {
        "wall_seconds": wall,
        "states": result.states_explored,
        "states_per_second": result.states_explored / wall if wall else 0.0,
        "behaviors": len(result.behaviors),
        "complete": result.complete,
    }
    if result.stats is not None:
        out["engine_stats"] = result.stats.as_dict()
    return out


def _time_sekvm(jobs: Optional[int]) -> Dict[str, float]:
    from repro.sekvm.verify import verify_sekvm

    _fresh()
    with _env(REPRO_EXPLORE_CACHE="0"):
        start = time.perf_counter()
        outcome = verify_sekvm(jobs=jobs)
        wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "cases": len(outcome.outcomes),
        "all_verified": outcome.all_verified,
    }


def _time_wdrf(fuse: bool) -> Dict[str, float]:
    """Time ``verify_wdrf`` over the SeKVM spec corpus, fused or not.

    ``fuse=False`` is the legacy pipeline — per-condition passes run to
    exhaustion, no monitor early-exit — so the ratio measures the whole
    streaming pipeline, not fusion alone.  Runs with the in-process
    memo *and* the disk cache off so both sides pay for every
    exploration (the memo would otherwise dedupe identical passes
    within the process and hide the fusion win), and includes the
    seeded-bug cases, where fail-fast monitors shine.
    """
    from repro.sekvm.ir_programs import kcore_buggy_cases, kcore_verified_cases
    from repro.vrm.verifier import VerifyStats, verify_wdrf

    cases = list(kcore_verified_cases(4)) + list(kcore_buggy_cases(4))
    _fresh()
    stats = VerifyStats()
    with _env(
        REPRO_EXPLORE_CACHE="0",
        REPRO_EXPLORE_MEMO="0",
        REPRO_FUSE_CHECK="0",
    ):
        start = time.perf_counter()
        reports = [
            verify_wdrf(case.spec, fuse=fuse, collect=stats)
            for case in cases
        ]
        wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "cases": len(cases),
        "as_expected": all(
            report.all_verified == case.should_verify
            for case, report in zip(cases, reports)
        ),
        "explorations": stats.explorations,
        "states": stats.states_explored,
        "states_per_second": stats.states_explored / wall if wall else 0.0,
        "fused_conditions": stats.fused_conditions,
        "monitor_stops": stats.monitor_stops,
        "stopped_early": stats.stopped_early,
    }


def bench_exploration(jobs: int = 4) -> Dict:
    """Measure the exploration engine end to end.

    Returns a JSON-ready dict: litmus corpus serial vs. ``jobs``-way
    parallel, POR on vs. off (single-threaded), promise-heavy POR
    effect, and ``verify_sekvm`` serial vs. parallel — with speedup
    ratios computed from the measured wall times.
    """
    from repro.parallel.pool import plan_jobs

    corpus_serial = _time_corpus(jobs=None, por=True)
    corpus_baseline = _time_corpus(jobs=None, por=False, intern=False)
    corpus_parallel = _time_corpus(jobs=jobs, por=True)
    ph_optimized = _time_promise_heavy(por=True)
    ph_no_memo = _time_promise_heavy(por=True, memo=False)
    ph_base = _time_promise_heavy(por=False, intern=False, memo=False)
    wdrf_fused = _time_wdrf(fuse=True)
    wdrf_unfused = _time_wdrf(fuse=False)
    sekvm_serial = _time_sekvm(jobs=None)
    sekvm_parallel = _time_sekvm(jobs=jobs)

    def ratio(a: float, b: float) -> float:
        return a / b if b else 0.0

    return {
        "schema": "BENCH_exploration/v3",
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "litmus_corpus": {
            "serial": corpus_serial,
            "serial_baseline": corpus_baseline,
            "parallel": corpus_parallel,
            "jobs_plan": plan_jobs(jobs, corpus_parallel["tests"])._asdict(),
            "parallel_speedup": ratio(
                corpus_serial["wall_seconds"], corpus_parallel["wall_seconds"]
            ),
            "por_speedup": ratio(
                corpus_baseline["wall_seconds"], corpus_serial["wall_seconds"]
            ),
        },
        # "optimized" = POR + interning + certification memo; "no_memo"
        # drops only the memo (isolating its effect); "baseline" drops
        # POR, interning, and memo (the v1 engine).
        "promise_heavy": {
            "optimized": ph_optimized,
            "no_memo": ph_no_memo,
            "baseline": ph_base,
            "memo_speedup": ratio(
                ph_no_memo["wall_seconds"], ph_optimized["wall_seconds"]
            ),
            "overall_speedup": ratio(
                ph_base["wall_seconds"], ph_optimized["wall_seconds"]
            ),
            "overall_state_reduction": ratio(
                ph_base["states"], ph_optimized["states"]
            ),
        },
        "wdrf": {
            "fused": wdrf_fused,
            "unfused": wdrf_unfused,
            "fuse_speedup": ratio(
                wdrf_unfused["wall_seconds"], wdrf_fused["wall_seconds"]
            ),
            "state_reduction": ratio(
                wdrf_unfused["states"], wdrf_fused["states"]
            ),
        },
        "verify_sekvm": {
            "serial": sekvm_serial,
            "parallel": sekvm_parallel,
            "jobs_plan": plan_jobs(jobs, sekvm_parallel["cases"])._asdict(),
            "parallel_speedup": ratio(
                sekvm_serial["wall_seconds"], sekvm_parallel["wall_seconds"]
            ),
        },
    }


def write_bench_json(path: str, results: Dict) -> None:
    """Write benchmark *results* to *path* (pretty-printed, atomic)."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


def format_bench(results: Dict) -> str:
    """Human-readable summary of :func:`bench_exploration` output."""
    corpus = results["litmus_corpus"]
    ph = results["promise_heavy"]
    wdrf = results["wdrf"]
    sekvm = results["verify_sekvm"]
    lines = [
        f"exploration benchmark ({results['cpu_count']} CPUs, "
        f"jobs={results['jobs']})",
        f"  litmus corpus   serial {corpus['serial']['wall_seconds']:.2f}s "
        f"({corpus['serial']['states_per_second']:,.0f} states/s), "
        f"parallel {corpus['parallel']['wall_seconds']:.2f}s "
        f"(speedup {corpus['parallel_speedup']:.2f}x)",
        f"  POR+interning   {corpus['por_speedup']:.2f}x wall "
        f"vs unreduced/uninterned serial corpus",
        f"  promise-heavy   optimized {ph['optimized']['wall_seconds']:.2f}s "
        f"vs no-memo {ph['no_memo']['wall_seconds']:.2f}s "
        f"(memo {ph['memo_speedup']:.2f}x) vs "
        f"baseline {ph['baseline']['wall_seconds']:.2f}s "
        f"(overall {ph['overall_speedup']:.2f}x, "
        f"{ph['overall_state_reduction']:.2f}x fewer states)",
        f"  wdrf fusion     fused {wdrf['fused']['wall_seconds']:.2f}s "
        f"({wdrf['fused']['explorations']} passes) vs "
        f"unfused {wdrf['unfused']['wall_seconds']:.2f}s "
        f"({wdrf['unfused']['explorations']} passes): "
        f"{wdrf['fuse_speedup']:.2f}x wall, "
        f"{wdrf['state_reduction']:.2f}x fewer states",
        f"  jobs plan       corpus: {corpus['jobs_plan']['workers']} worker(s) "
        f"({corpus['jobs_plan']['reason']}), sekvm: "
        f"{sekvm['jobs_plan']['workers']} worker(s) "
        f"({sekvm['jobs_plan']['reason']})",
        f"  verify_sekvm    serial {sekvm['serial']['wall_seconds']:.2f}s, "
        f"parallel {sekvm['parallel']['wall_seconds']:.2f}s "
        f"(speedup {sekvm['parallel_speedup']:.2f}x)",
    ]
    return "\n".join(lines)
