"""The process-pool primitive behind every ``jobs=N`` knob.

Design constraints, in order:

1. **Determinism.**  ``Pool.map`` preserves input order, so the merged
   result list is identical to the serial one no matter how the OS
   schedules workers.  Nothing here may reorder results.
2. **Graceful degradation.**  ``jobs<=1``, a single-item batch, or a
   platform without ``fork`` all run serially in-process; callers never
   branch on platform.
3. **Picklability.**  Workers must be module-level callables (or
   :func:`functools.partial` over one); exploration inputs and results
   are plain immutable dataclasses/named-tuples, picklable by design.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """The CLI's default parallelism: one worker per available CPU."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean serial (the library default — parallelism is
    opt-in); a negative count means "all CPUs" (what the CLI passes for
    its cpu-count default); anything else is taken literally.
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return default_jobs()
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Apply *fn* to every item, fanning out over *jobs* processes.

    Results come back in input order (deterministic merging).  Falls
    back to an in-process loop when *jobs* resolves to 1 or the batch is
    too small to amortize a pool.
    """
    batch = list(items)
    workers = min(resolve_jobs(jobs), len(batch))
    if workers <= 1 or len(batch) < 2:
        return [fn(item) for item in batch]
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else None
    ctx = multiprocessing.get_context(method)
    with ctx.Pool(processes=workers) as pool:
        return pool.map(fn, batch)
