"""The process-pool primitive behind every ``jobs=N`` knob.

Design constraints, in order:

1. **Determinism.**  ``Pool.map`` preserves input order, so the merged
   result list is identical to the serial one no matter how the OS
   schedules workers.  Nothing here may reorder results.
2. **Graceful degradation.**  ``jobs<=1``, a single-item batch, or a
   platform without ``fork`` all run serially in-process; callers never
   branch on platform.
3. **Picklability.**  Workers must be module-level callables (or
   :func:`functools.partial` over one); exploration inputs and results
   are plain immutable dataclasses/named-tuples, picklable by design.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
from typing import Callable, Iterable, List, NamedTuple, Optional, Sequence, TypeVar

from repro.obs import metrics

T = TypeVar("T")
R = TypeVar("R")

#: Below this many batch items per worker, forking a pool costs more
#: than it saves (process spawn + pickle round-trips dominate).
MIN_ITEMS_PER_WORKER = 2


def available_cpus() -> int:
    """CPUs this process may actually run on, re-read on every call.

    ``os.cpu_count()`` reports the machine, not the process: under a
    CPU-affinity mask (containers, ``taskset``, cgroup pinning) the
    usable count is ``sched_getaffinity``, which can also *change* while
    a long-lived server runs.  Nothing here is cached at import time —
    the serve layer's persistent workers and the tests must both see the
    value current at the moment a plan is made.
    """
    count = os.cpu_count() or 1
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is None:
        return count
    try:
        affinity = len(getaffinity(0))
    except OSError:
        return count
    return min(count, affinity) if affinity else count


def default_jobs() -> int:
    """The CLI's default parallelism: one worker per available CPU."""
    return available_cpus()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean serial (the library default — parallelism is
    opt-in); a negative count means "all CPUs" (what the CLI passes for
    its cpu-count default); anything else is taken literally.
    """
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return default_jobs()
    return jobs


def resolve_shard_jobs(shard_jobs: Optional[int] = None) -> int:
    """Normalize a ``--shard-jobs`` request to a concrete shard count.

    ``None`` falls back to the ``REPRO_SHARD`` environment knob (unset
    or empty means unsharded); the numeric conventions then mirror
    :func:`resolve_jobs` — ``0`` means serial, a negative count means
    "all CPUs", anything else is literal.
    """
    if shard_jobs is None:
        raw = os.environ.get("REPRO_SHARD", "").strip()
        if not raw:
            return 1
        try:
            shard_jobs = int(raw)
        except ValueError:
            return 1
    if shard_jobs == 0:
        return 1
    if shard_jobs < 0:
        return default_jobs()
    return shard_jobs


class JobPlan(NamedTuple):
    """The resolved fan-out decision for one :func:`parallel_map` batch.

    Recorded in benchmark output so a regression ("parallel" slower than
    serial) can be traced to the machine, not guessed at.
    """

    workers: int      # what the batch will actually run with
    requested: int    # resolve_jobs() of the caller's request
    cpus: int         # available_cpus() at decision time
    batch: int        # number of items
    reason: str       # why workers was chosen
    shard_jobs: int = 1          # intra-exploration shards per item
    shard_requested: int = 1     # resolve_shard_jobs() of the request
    shard_reason: str = "unsharded"  # why shard_jobs was chosen


#: A single exploration below this many (estimated) states cannot
#: amortize the shard setup cost (fork + shared filter + steal queue).
MIN_STATES_PER_SHARD = 2_000


def plan_jobs(
    jobs: Optional[int],
    batch_size: int,
    shard_jobs: Optional[int] = None,
    per_item_states: Optional[int] = None,
) -> JobPlan:
    """Resolve a ``jobs`` request against the machine and the batch.

    The auto heuristic exists because forking is not free: on a
    single-CPU machine a process pool is pure overhead (measured 0.40–
    0.82x "speedups"), and a batch with fewer than
    :data:`MIN_ITEMS_PER_WORKER` items per worker cannot amortize the
    spawn + pickle cost.  The plan therefore degrades a parallel request
    to fewer workers (or to serial) whenever the fan-out cannot win, and
    says why.

    The plan also splits the budget between corpus-level workers and
    intra-exploration shards (:mod:`repro.parallel.shard`): the two
    fan-outs multiply, so only one may engage per batch.  Corpus-level
    parallelism wins whenever it is viable (many independent items
    amortize better than one contended frontier); sharding engages when
    the batch degrades to serial — the one-big-spec shape — and the
    items are estimated big enough (``per_item_states``, when given,
    against :data:`MIN_STATES_PER_SHARD`) to amortize the shard setup.
    Every path returns a fully populated plan, including the shard
    fields (the "serial-requested" path once omitted them).
    """
    requested = resolve_jobs(jobs)
    shard_requested = resolve_shard_jobs(shard_jobs)
    cpus = available_cpus()

    def _plan(workers: int, reason: str) -> JobPlan:
        if workers > 1:
            shards, shard_reason = 1, "corpus-parallel"
        elif shard_requested <= 1:
            shards, shard_reason = 1, "unsharded"
        elif (
            per_item_states is not None
            and per_item_states < MIN_STATES_PER_SHARD
        ):
            shards, shard_reason = 1, "spec-too-small"
        else:
            shards, shard_reason = shard_requested, "intra-exploration"
        return JobPlan(
            workers, requested, cpus, batch_size, reason,
            shards, shard_requested, shard_reason,
        )

    if requested <= 1:
        return _plan(1, "serial-requested")
    if batch_size < 2:
        return _plan(1, "batch-too-small")
    if cpus == 1:
        return _plan(1, "single-cpu")
    workers = min(requested, cpus, batch_size)
    if batch_size < workers * MIN_ITEMS_PER_WORKER:
        workers = max(batch_size // MIN_ITEMS_PER_WORKER, 1)
        return _plan(max(workers, 1), "fork-amortization")
    reason = "parallel" if workers == requested else "capped-at-cpus"
    return _plan(workers, reason)


def _disable_sharding() -> None:
    """Pool-worker initializer: pin ``REPRO_SHARD=0`` in the child.

    Pool children are daemonic and cannot fork shard workers of their
    own (``maybe_shard_explore`` refuses on the daemon check already);
    this makes the refusal explicit so an inherited ``REPRO_SHARD``
    never even attempts it.  It must run *in the child, after fork* —
    mutating the parent's ``os.environ`` around the pool would race
    with concurrent explorations in other threads (silently unsharding
    them) and with concurrent ``parallel_map`` calls (whose interleaved
    save/restores can clobber the knob permanently)."""
    os.environ["REPRO_SHARD"] = "0"


def _run_with_metrics(fn: Callable[[T], R], item: T):
    """Pool worker wrapper shipping the child's metrics to the parent.

    The child's registry is **reset before** running the item: the
    worker was forked from a parent that may already hold accumulated
    metrics, and without the reset each worker would re-report the
    parent's pre-fork state once per item.  After running, the item's
    own metric deltas ride back alongside the result as a snapshot for
    the parent to merge.  Module-level (not a closure) so it pickles.
    """
    metrics.enable()
    metrics.REGISTRY.reset()
    result = fn(item)
    return result, metrics.REGISTRY.snapshot()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Apply *fn* to every item, fanning out over *jobs* processes.

    Results come back in input order (deterministic merging).  The
    fan-out follows :func:`plan_jobs`: serial when requested, when the
    machine has one CPU, or when the batch is too small to amortize the
    fork — parallel runs stay bit-identical to serial ones either way.

    When metrics are enabled (:func:`repro.obs.metrics.metrics_enabled`)
    each worker ships a per-item registry snapshot back with its result
    and the parent merges them, so ``--metrics-out`` totals cover the
    whole pool, not just the parent process.
    """
    batch = list(items)
    plan = plan_jobs(jobs, len(batch))
    if plan.workers <= 1:
        return [fn(item) for item in batch]
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else None
    ctx = multiprocessing.get_context(method)
    if metrics.metrics_enabled():
        wrapped = functools.partial(_run_with_metrics, fn)
        with ctx.Pool(
            processes=plan.workers, initializer=_disable_sharding
        ) as pool:
            pairs = pool.map(wrapped, batch)
        for _, snap in pairs:
            metrics.REGISTRY.merge(snap)
        metrics.REGISTRY.counter("pool.batches").inc()
        metrics.REGISTRY.counter("pool.items").inc(len(batch))
        metrics.REGISTRY.gauge("pool.workers").set(plan.workers)
        return [result for result, _ in pairs]
    with ctx.Pool(
        processes=plan.workers, initializer=_disable_sharding
    ) as pool:
        return pool.map(fn, batch)
