"""Multiprocess fan-out for independent verification jobs.

Litmus tests, per-condition wDRF checks, and per-interface SeKVM
verifications are embarrassingly parallel: each job explores its own
program and the results are merged by position.  :func:`parallel_map`
is the single primitive the verification layers build on — a
``multiprocessing`` pool behind a serial fallback, always returning
results in input order so parallel runs are bit-identical to serial
ones.

Libraries default to serial (``jobs=None``); the CLI resolves its
``--jobs`` flag with :func:`default_jobs`, which counts the CPUs the
process may actually run on (:func:`available_cpus` — affinity-mask
aware, re-read on every call, never cached at import time).

The second axis is *intra-exploration* parallelism
(:mod:`repro.parallel.shard`): one big exploration's frontier split
over work-stealing workers behind ``--shard-jobs``/``REPRO_SHARD``,
still bit-identical to serial.  :func:`plan_jobs` splits a budget
between the two axes — they multiply, so only one engages per batch.
"""

from repro.parallel.pool import (
    JobPlan,
    available_cpus,
    default_jobs,
    parallel_map,
    plan_jobs,
    resolve_jobs,
    resolve_shard_jobs,
)

__all__ = ["JobPlan", "available_cpus", "default_jobs", "parallel_map",
           "plan_jobs", "resolve_jobs", "resolve_shard_jobs"]
