"""Intra-exploration parallelism: work-stealing frontier shards.

Corpus-level :func:`repro.parallel.parallel_map` cannot help the shape
that actually dominates wall time — one big exploration (a promise-heavy
spec, a fused wDRF pass).  This module splits a *single* DFS across
worker processes:

1. **Seed phase** (parent): run the exact serial algorithm until the
   frontier is wide enough to split, recording every visited state in
   the shared filter.  Because the seed *is* the serial loop, a seed
   that drains the frontier (or hits the state budget) yields the
   bit-identical serial result with zero fork cost.
2. **Shards**: the seeded frontier is dealt round-robin to ``fork``-ed
   workers.  Each runs the same DFS over its slice, deduplicating
   through a :class:`SharedVisitedFilter`, and offloads the bottom of
   its stack (near-root subtrees) to a steal queue whenever some other
   worker is idle.
3. **Merge** (parent): behaviors union, per-state counters sum.

Bit-identity with the serial engine is the contract (which is why the
exploration-cache keys do not mention sharding at all):

* With push-time dedup, a *complete* exploration visits every reachable
  state exactly once in any order, so behaviors, ``states_explored``,
  ``cut_paths`` (deadlocks are per-state; memory cuts per-edge, and
  every edge is generated exactly once), and ``complete`` are
  order-independent — the merge is exact, not approximate.
* Monitored runs additionally depend on serial *visit order*
  (``ExplorationMonitor.stop()`` cuts the search early).  Workers
  therefore record the successor graph, and the parent **replays** the
  serial DFS order over the merged graph through the real monitor
  objects — reconstructing the same ``stopped_early`` report, the same
  ``states_explored`` prefix, and the same monitor counters the serial
  engine would produce.  Workers feed fork-copies of the monitors only
  speculatively, to abort the fan-out early when a cut is likely.
* Every order-dependent case the merge cannot reconstruct — the state
  budget ran out mid-fan-out, a speculative monitor stop, a worker
  crash, a replay gap, a saturated filter stripe — falls back to one
  serial :func:`~repro.memory.exploration._explore` call.  Slow path,
  never a wrong path.

The only observable differences are memo-locality ``EngineStats``
(``certify_memo_hits``, ``candidate_memo_hits``, ``interner_timelines``):
each worker owns its :class:`~repro.memory.semantics.CertMemo`, so
cross-subtree memo hits the serial run enjoys become misses.  Verdicts
are unaffected (the memo is a pure cache), and ``cert_budget_hits`` is
memo-invariant by design, so ``complete`` still merges exactly.

Interner codes are **not** shipped across processes, although the issue
that motivated this module suggested it: a
:class:`~repro.memory.state.StateInterner` code is "the order this
process first saw the timeline" — meaningless in any other process.
The shared filter keys on 128-bit content fingerprints
(:func:`~repro.memory.state.state_fingerprint`) instead — genuine
``blake2b`` digests of the state's canonical serialization, identical
in every process.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from queue import Empty
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import VerificationError
from repro.ir.program import Program
from repro.memory.datatypes import (
    Behavior,
    EngineStats,
    ExplorationMonitor,
    ExplorationResult,
)
from repro.memory.por import PORPlan, por_worthwhile
from repro.memory.semantics import CertMemo, ModelConfig, ProgramCache
from repro.memory.state import (
    ExecState,
    FingerprintMemo,
    StateInterner,
    initial_state,
    interning_enabled,
    state_fingerprint,
)
from repro.memory.exploration import (
    _explore,
    _is_terminal,
    _is_valid_terminal,
    _successors,
    behavior_of,
)
from repro.obs import metrics, tracer
from repro.parallel.pool import resolve_shard_jobs

__all__ = [
    "SharedVisitedFilter",
    "maybe_shard_explore",
    "shard_explore",
    "shard_check_enabled",
]


def shard_check_enabled() -> bool:
    """``REPRO_SHARD_CHECK=1`` re-runs every sharded exploration
    serially and diffs the results (the REPRO_POR_CHECK idiom)."""
    return os.environ.get("REPRO_SHARD_CHECK", "0") == "1"


def _steal_batch_size() -> int:
    """Steal granularity (``REPRO_SHARD_STEAL_BATCH``, default 8).

    Batched stealing amortizes queue/pickle overhead against the
    dominant per-state cost — promise certification — which makes even
    small batches of promise-heavy states worth shipping.
    """
    try:
        return max(1, int(os.environ.get("REPRO_SHARD_STEAL_BATCH", "8")))
    except ValueError:
        return 8


def _shard_timeout() -> float:
    """Optional wall-clock deadline for the fan-out
    (``REPRO_SHARD_TIMEOUT`` seconds; default 0 = no deadline).

    Dead workers are detected by liveness polling, but a worker that is
    alive yet wedged (stuck in native code, never reporting) would
    otherwise leave the parent draining the results queue forever.
    With a deadline set, expiry aborts the shards, gives them one crash
    grace window to report, then terminates the stragglers and falls
    back to the serial engine.  Off by default: a deadline short enough
    to catch hangs on small specs would kill legitimate long runs.
    """
    try:
        return max(0.0, float(os.environ.get("REPRO_SHARD_TIMEOUT", "0")))
    except ValueError:
        return 0.0


def _filter_slots() -> int:
    """Visited-filter capacity from ``REPRO_SHARD_FILTER_MB`` (16-byte
    slots; default 16 MiB ≈ 1M slots, ~6x the largest tracked run)."""
    try:
        mb = max(1, int(os.environ.get("REPRO_SHARD_FILTER_MB", "16")))
    except ValueError:
        mb = 16
    return (mb * 1024 * 1024) // 16


#: Name of the most recently created filter segment — a test seam for
#: asserting the segment was unlinked (re-attach must fail).
_LAST_FILTER_NAME: Optional[str] = None

_BUDGET_CHUNK = 256          # states reserved from the shared budget at once
_CRASH_GRACE_SECONDS = 5.0   # drain window after detecting a dead worker
_JOIN_TIMEOUT = 5.0          # per-process join wait before terminating
_SEED_TARGET_MIN = 16        # minimum frontier width before splitting
_SEED_TARGET_PER_SHARD = 4   # ... and per requested shard

# Successor-graph node kinds (monitored runs record the graph so the
# parent can replay serial DFS order through the real monitors).
_INTERIOR = 0
_TERMINAL_VALID = 1
_TERMINAL_INVALID = 2
_DEADLOCK = 3

_MASK64 = (1 << 64) - 1


class SharedVisitedFilter:
    """A cross-process open-addressing set of 128-bit fingerprints.

    One :mod:`multiprocessing.shared_memory` segment of 16-byte slots
    (two little-endian ``uint64``); the all-zero slot is the empty
    marker (fingerprints are never 0).  The table is divided into
    :data:`STRIPES` contiguous stripes, each guarded by its own lock,
    so concurrent :meth:`add` calls only contend when they hash into
    the same stripe.  Probing wraps *within* the stripe and gives up
    after :data:`PROBE_LIMIT` slots.

    The protocol is **conservative-miss, never false-hit**: a full
    probe window reports "new" (the caller explores the state, possibly
    again) rather than dropping a state.  A false hit is a soundness
    bug — a dropped subtree; a conservative miss is duplicated work the
    orchestrator detects via :attr:`full_misses` and repairs with a
    serial fallback, keeping results exact even under saturation.

    Lifecycle: the *parent* creates and (in ``finally``) closes +
    unlinks the segment.  ``fork``-ed workers inherit the mapped object
    and never close it — the OS reclaims their mappings at exit, and
    only the creating process ever unlinks, so crashes cannot leak
    segments past the orchestrator's ``finally``.

    :attr:`hits`/:attr:`full_misses` are process-local counters; shard
    workers ship theirs back in their result message.
    """

    STRIPES = 32
    PROBE_LIMIT = 64

    def __init__(self, nslots: Optional[int] = None, ctx=None) -> None:
        if ctx is None:
            ctx = multiprocessing.get_context("fork")
        if nslots is None:
            nslots = _filter_slots()
        # Round up so every stripe has the same whole number of slots.
        stripes = self.STRIPES
        nslots = ((max(nslots, stripes) + stripes - 1) // stripes) * stripes
        self.nslots = nslots
        self.span = nslots // stripes
        self._shm = shared_memory.SharedMemory(create=True, size=nslots * 16)
        self.name = self._shm.name
        self._view = memoryview(self._shm.buf).cast("Q")
        self._locks = [ctx.Lock() for _ in range(stripes)]
        self.hits = 0
        self.full_misses = 0
        global _LAST_FILTER_NAME
        _LAST_FILTER_NAME = self.name

    def add(self, fp: int) -> bool:
        """Claim *fp*: ``True`` if it was new (caller explores the
        state), ``False`` if already present.  Full stripe window:
        conservative ``True`` + :attr:`full_misses` bump."""
        hi = (fp >> 64) & _MASK64
        lo = fp & _MASK64
        span = self.span
        base_idx = fp % self.nslots
        stripe = base_idx // span
        stripe_base = stripe * span
        offset = base_idx - stripe_base
        view = self._view
        probes = min(self.PROBE_LIMIT, span)
        with self._locks[stripe]:
            for i in range(probes):
                slot = (stripe_base + (offset + i) % span) * 2
                s_hi = view[slot]
                s_lo = view[slot + 1]
                if s_hi == 0 and s_lo == 0:
                    view[slot] = hi
                    view[slot + 1] = lo
                    return True
                if s_hi == hi and s_lo == lo:
                    self.hits += 1
                    return False
        self.full_misses += 1
        return True

    def close(self) -> None:
        """Release the mapping and unlink the segment (parent only)."""
        self._view.release()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


@dataclass
class _WorkerOutput:
    """One shard worker's contribution, shipped over the results queue."""

    behaviors: Set[Behavior]
    states_explored: int
    cut_paths: int
    mem_complete: bool
    stats: EngineStats
    graph: Optional[Dict[int, Tuple]]
    steals: List[int] = field(default_factory=list)
    filter_hits: int = 0
    full_misses: int = 0
    speculative_stop: bool = False


class _SharedState:
    """The coordination block every worker shares (fork-inherited)."""

    def __init__(self, ctx, n_workers: int, budget_left: int) -> None:
        self.n_workers = n_workers
        self.budget = ctx.Value("q", budget_left)          # own lock
        self.steal_q = ctx.Queue()
        self.queued = ctx.Value("q", 0, lock=False)        # counts_lock
        self.idle = ctx.Value("i", 0, lock=False)          # counts_lock
        self.counts_lock = ctx.Lock()
        self.done = ctx.Event()
        self.abort = ctx.Event()


def _reserve(shared: _SharedState) -> int:
    """Take up to :data:`_BUDGET_CHUNK` states from the global budget."""
    with shared.budget.get_lock():
        take = min(_BUDGET_CHUNK, shared.budget.value)
        if take > 0:
            shared.budget.value -= take
        return max(take, 0)


def _refund(shared: _SharedState, leftover: int) -> None:
    if leftover > 0:
        with shared.budget.get_lock():
            shared.budget.value += leftover


def _acquire_work(shared: _SharedState):
    """Park as idle until a stolen batch, global completion, or abort.

    Termination protocol: ``queued`` counts batches *committed* to the
    steal queue (incremented under ``counts_lock`` **before** the
    ``put``, so a batch is never invisible to this check while riding
    the queue's feeder thread).  The run is done exactly when every
    worker is idle and no batch is committed — checked and latched
    under the same lock.
    """
    with shared.counts_lock:
        shared.idle.value += 1
        if shared.idle.value == shared.n_workers and shared.queued.value == 0:
            shared.done.set()
    while True:
        if shared.done.is_set() or shared.abort.is_set():
            return None
        try:
            batch = shared.steal_q.get(timeout=0.02)
        except Empty:
            continue
        with shared.counts_lock:
            shared.queued.value -= 1
            shared.idle.value -= 1
        return batch


def _worker_main(
    wid, cache, cfg, observe_locs, plan, frontier, vfilter, shared,
    spec_monitors, monitor_cut, record_graph, results_q,
) -> None:
    """Process entry point: run the body, always report, never hang."""
    # The fork-inherited heap (program cache, seed frontier, interned
    # timelines) is permanent for this worker's lifetime; freezing it
    # keeps every cyclic-GC pass from re-traversing it — and from
    # dirtying copy-on-write pages — while the worker's own allocations
    # (states, memo pins) remain collectable as usual.  The raised
    # thresholds then make young-generation passes ~70x rarer: the DFS
    # allocates immutable bottom-up tuples that cannot form cycles, so
    # frequent cycle hunts find nothing yet re-traverse the growing
    # memo/interner pins every time (measured ~20% of worker wall).
    # Collection stays enabled — monitors may allocate cyclic garbage —
    # and the process exit reclaims everything regardless.
    gc.freeze()
    gc.set_threshold(50_000, 25, 25)
    try:
        out = _worker_body(
            wid, cache, cfg, observe_locs, plan, frontier, vfilter,
            shared, spec_monitors, monitor_cut, record_graph,
        )
        results_q.put((wid, out, None))
    except BaseException as exc:  # noqa: BLE001 — must reach the parent
        shared.abort.set()
        try:
            results_q.put((wid, None, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        # The steal queue may still hold batches nobody will consume;
        # don't let its feeder thread block interpreter exit.
        shared.steal_q.cancel_join_thread()


def _worker_body(
    wid, cache, cfg, observe_locs, plan, frontier, vfilter, shared,
    spec_monitors, monitor_cut, record_graph,
) -> _WorkerOutput:
    """One shard's DFS: same expansion as the serial loop
    (:func:`~repro.memory.exploration._successors`), dedup through the
    shared filter, stack bottoms offloaded to idle peers."""
    stats = EngineStats()
    interner = StateInterner() if interning_enabled() else None
    memo = CertMemo(interner=interner, stats=stats)
    fp_memo = FingerprintMemo()
    sink = tracer.SINK
    steal_batch = _steal_batch_size()
    # The fork-inherited filter object carries the parent's process-local
    # counters from the seed phase; report deltas from this baseline so
    # the parent's aggregation doesn't double-count the seed once per
    # worker (which would also trip the filter-saturated fallback early).
    hits_base = vfilter.hits
    full_misses_base = vfilter.full_misses

    behaviors: Set[Behavior] = set()
    graph: Optional[Dict[int, Tuple]] = {} if record_graph else None
    active = list(spec_monitors or ())
    stack: List[Tuple[int, ExecState]] = list(frontier)
    # Local dedup: graph-recording runs key on fingerprints (every
    # successor is fingerprinted for the graph anyway); unmonitored
    # runs key on interner keys, so only locally-new states pay the
    # fingerprint cost of consulting the shared filter.
    if record_graph:
        local_seen: Set = {fp for fp, _ in stack}
    else:
        if interner is not None:
            state_key = interner.key
        else:
            state_key = lambda s: s  # noqa: E731
        local_seen = {state_key(s) for _, s in stack}
    steals: List[int] = []
    states_explored = 0
    cut_paths = 0
    mem_complete = True
    speculative_stop = False
    local_allow = 0

    while True:
        if shared.abort.is_set():
            break
        if not stack:
            _refund(shared, local_allow)
            local_allow = 0
            batch = _acquire_work(shared)
            if batch is None:
                break
            stack = list(batch)
            continue
        if len(stack) > 2 * steal_batch and shared.idle.value > 0:
            give, stack = stack[:steal_batch], stack[steal_batch:]
            with shared.counts_lock:
                shared.queued.value += 1
            shared.steal_q.put(give)
            steals.append(len(give))
            if sink is not None:
                sink.emit(tracer.SHARD_STEAL, worker=wid, batch=len(give))
        if local_allow == 0:
            local_allow = _reserve(shared)
            if local_allow == 0:
                # Budget exhausted with work remaining: the merge cannot
                # reconstruct serial's budget-cut prefix — abort, parent
                # falls back to one serial run.
                shared.abort.set()
                break
        fp, state = stack.pop()
        local_allow -= 1
        states_explored += 1

        if _is_terminal(state):
            if _is_valid_terminal(state):
                if graph is not None:
                    graph[fp] = (_TERMINAL_VALID, (), 0, 0, state)
                else:
                    behaviors.add(behavior_of(cache, state, observe_locs))
                if active:
                    for monitor in active:
                        monitor.observe(state, states_explored)
                    active = [m for m in active if not m.stopped]
                    if not active and monitor_cut:
                        speculative_stop = True
                        shared.abort.set()
                        break
            elif graph is not None:
                graph[fp] = (_TERMINAL_INVALID, (), 0, 0, None)
            continue

        cert_before = stats.cert_budget_hits
        successors = _successors(cache, state, cfg, memo, plan, stats, sink)
        cert_delta = stats.cert_budget_hits - cert_before

        if not successors:
            cut_paths += 1
            if graph is not None:
                graph[fp] = (_DEADLOCK, (), 0, cert_delta, None)
            continue

        kept: List[int] = []
        n_mem = 0
        for succ in successors:
            if len(succ.memory) > cfg.max_memory:
                cut_paths += 1
                n_mem += 1
                mem_complete = False
                continue
            if graph is not None:
                sfp = state_fingerprint(succ, fp_memo)
                kept.append(sfp)
                if sfp in local_seen:
                    continue
                if vfilter.add(sfp):
                    local_seen.add(sfp)
                    stack.append((sfp, succ))
                elif sink is not None:
                    sink.emit(tracer.VISITED_FILTER_HIT, worker=wid)
            else:
                key = state_key(succ)
                if key in local_seen:
                    continue
                local_seen.add(key)
                sfp = state_fingerprint(succ, fp_memo)
                if vfilter.add(sfp):
                    stack.append((sfp, succ))
                elif sink is not None:
                    sink.emit(tracer.VISITED_FILTER_HIT, worker=wid)
        if graph is not None:
            graph[fp] = (_INTERIOR, tuple(kept), n_mem, cert_delta, None)

    _refund(shared, local_allow)
    if interner is not None:
        stats.interner_timelines = len(interner)
    return _WorkerOutput(
        behaviors=behaviors,
        states_explored=states_explored,
        cut_paths=cut_paths,
        mem_complete=mem_complete,
        stats=stats,
        graph=graph,
        steals=steals,
        filter_hits=vfilter.hits - hits_base,
        full_misses=vfilter.full_misses - full_misses_base,
        speculative_stop=speculative_stop,
    )


@dataclass
class _SeedResult:
    """What the parent's serial seed phase produced."""

    behaviors: Set[Behavior]
    states_explored: int
    cut_paths: int
    mem_complete: bool
    frontier: List[Tuple[int, ExecState]]
    graph: Optional[Dict[int, Tuple]]
    finished: bool      # frontier drained or budget hit: no fan-out needed
    budget_cut: bool


def _seed_phase(
    program, cache, cfg, observe_locs, plan, stats, interner, memo,
    vfilter, target, record_graph, sink,
) -> Tuple[_SeedResult, int]:
    """Run the exact serial DFS until the frontier is *target* wide.

    This is the serial loop of :func:`~repro.memory.exploration._explore`
    verbatim (same LIFO order, same interner-key dedup, same budget
    check), so a seed that finishes — drained frontier or budget cut —
    already *is* the serial result.  Every state it pushes is also
    claimed in the shared filter so shard workers never re-explore the
    seeded prefix.
    """
    start = initial_state(len(program.threads), cfg.initial_ownership)
    fp_memo = FingerprintMemo()
    start_fp = state_fingerprint(start, fp_memo)
    if interner is not None:
        state_key = interner.key
    else:
        state_key = lambda s: s  # noqa: E731
    visited = {state_key(start)}
    vfilter.add(start_fp)
    stack: List[Tuple[int, ExecState]] = [(start_fp, start)]
    behaviors: Set[Behavior] = set()
    graph: Optional[Dict[int, Tuple]] = {} if record_graph else None
    states_explored = 0
    cut_paths = 0
    mem_complete = True
    budget_cut = False

    while stack and len(stack) < target:
        if states_explored >= cfg.max_states:
            budget_cut = True
            break
        fp, state = stack.pop()
        states_explored += 1

        if _is_terminal(state):
            if _is_valid_terminal(state):
                if graph is not None:
                    graph[fp] = (_TERMINAL_VALID, (), 0, 0, state)
                else:
                    behaviors.add(behavior_of(cache, state, observe_locs))
            elif graph is not None:
                graph[fp] = (_TERMINAL_INVALID, (), 0, 0, None)
            continue

        cert_before = stats.cert_budget_hits
        successors = _successors(cache, state, cfg, memo, plan, stats, sink)
        cert_delta = stats.cert_budget_hits - cert_before

        if not successors:
            cut_paths += 1
            if graph is not None:
                graph[fp] = (_DEADLOCK, (), 0, cert_delta, None)
            continue

        kept: List[int] = []
        n_mem = 0
        for succ in successors:
            if len(succ.memory) > cfg.max_memory:
                cut_paths += 1
                n_mem += 1
                mem_complete = False
                continue
            key = state_key(succ)
            if graph is not None:
                sfp = state_fingerprint(succ, fp_memo)
                kept.append(sfp)
            elif key in visited:
                continue
            else:
                sfp = state_fingerprint(succ, fp_memo)
            if key not in visited:
                visited.add(key)
                vfilter.add(sfp)
                stack.append((sfp, succ))
        if graph is not None:
            graph[fp] = (_INTERIOR, tuple(kept), n_mem, cert_delta, None)

    seed = _SeedResult(
        behaviors=behaviors,
        states_explored=states_explored,
        cut_paths=cut_paths,
        mem_complete=mem_complete,
        frontier=stack,
        graph=graph,
        finished=budget_cut or not stack,
        budget_cut=budget_cut,
    )
    return seed, start_fp


class _ReplayIncomplete(Exception):
    """The merged successor graph misses a node the serial order needs."""


def _replay(
    cache, cfg, observe_locs, graph, start_fp, monitors, monitor_cut,
    merged_stats, sink,
) -> Tuple[Set[Behavior], bool, int, int, bool]:
    """Walk the merged successor graph in serial DFS order, feeding the
    *real* monitors.

    The graph maps fingerprints to deterministic per-state records
    (kind, successor fingerprints in generation order, memory-cut and
    cert-budget deltas), so this walk reproduces exactly what the
    serial engine would have seen: same visit order, same
    ``ExplorationMonitor.stop()`` point, same ``states_explored``
    prefix, same behaviors-up-to-cut, same ``complete`` flag (memory
    and cert-budget deltas are summed over the replayed prefix only).
    The walk's correctness does not depend on *why* the graph exists —
    a partial graph from an aborted fan-out replays fine as long as
    every node the serial order touches is present; a gap raises
    :class:`_ReplayIncomplete` and the caller falls back to the serial
    engine.
    """
    active = [m for m in (monitors or ()) if not m.stopped]
    visited = {start_fp}
    stack = [start_fp]
    behaviors: Set[Behavior] = set()
    states_explored = 0
    cut_paths = 0
    complete = True
    stopped_early = False
    cert_total = 0

    while stack:
        if states_explored >= cfg.max_states:
            complete = False
            break
        fp = stack.pop()
        states_explored += 1
        node = graph.get(fp)
        if node is None:
            raise _ReplayIncomplete(hex(fp))
        kind, succs, n_mem, cert_delta, payload = node
        cert_total += cert_delta

        if kind == _TERMINAL_VALID:
            behaviors.add(behavior_of(cache, payload, observe_locs))
            if active:
                still_watching = []
                for monitor in active:
                    monitor.observe(payload, states_explored)
                    if monitor.stopped:
                        merged_stats.monitor_stops += 1
                        if sink is not None:
                            sink.emit(
                                tracer.MONITOR_STOP,
                                monitor=type(monitor).__name__,
                                states=states_explored,
                            )
                    else:
                        still_watching.append(monitor)
                active = still_watching
                if not active and monitor_cut:
                    stopped_early = True
                    break
            continue
        if kind == _TERMINAL_INVALID:
            continue
        if kind == _DEADLOCK:
            cut_paths += 1
            continue
        if n_mem:
            cut_paths += n_mem
            complete = False
        for sfp in succs:
            if sfp not in visited:
                visited.add(sfp)
                stack.append(sfp)

    if cert_total:
        complete = False
    return behaviors, complete, states_explored, cut_paths, stopped_early


def _collect(procs, results_q, shared, jobs):
    """Drain worker results; detect hard-dead workers (no result, no
    exception message) and abort the rest instead of hanging.

    Two failure clocks: liveness polling catches workers that *died*
    without reporting, and the optional :func:`_shard_timeout` deadline
    catches workers that are alive but wedged.  Either one aborts the
    shards, then allows a :data:`_CRASH_GRACE_SECONDS` drain window for
    the survivors' results before giving up on the stragglers (the
    caller terminates them and runs the serial fallback)."""
    outputs: Dict[int, _WorkerOutput] = {}
    errors: List[str] = []
    pending = set(range(jobs))
    timeout = _shard_timeout()
    overall_deadline = time.monotonic() + timeout if timeout else None
    timed_out = False
    grace_deadline = None
    while pending:
        now = time.monotonic()
        if grace_deadline is not None and now > grace_deadline:
            why = (
                f"timed out after {timeout:g}s"
                if timed_out else "died without reporting"
            )
            for wid in sorted(pending):
                errors.append(f"worker {wid} {why}")
            break
        if overall_deadline is not None and now > overall_deadline:
            timed_out = True
            overall_deadline = None
            shared.abort.set()
            if grace_deadline is None:
                grace_deadline = now + _CRASH_GRACE_SECONDS
        try:
            wid, out, err = results_q.get(timeout=0.1)
        except Empty:
            if grace_deadline is None and any(
                not procs[w].is_alive() for w in pending
            ):
                shared.abort.set()
                grace_deadline = time.monotonic() + _CRASH_GRACE_SECONDS
            continue
        if err is not None:
            errors.append(f"worker {wid}: {err}")
        elif out is not None:
            outputs[wid] = out
        pending.discard(wid)
    return outputs, errors


def shard_explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    por: bool = True,
    monitors: Optional[Sequence[ExplorationMonitor]] = None,
    monitor_cut: bool = True,
    jobs: int = 2,
) -> ExplorationResult:
    """One exploration, fanned out over *jobs* work-stealing shards.

    Returns the bit-identical result (behaviors, ``complete``,
    ``states_explored``, ``cut_paths``, ``stopped_early``, monitor
    outcomes) the serial engine would produce — by exact merge, by
    serial-order replay, or, for the order-dependent corner cases, by
    actually running the serial engine (see the module docstring).
    """
    ctx = multiprocessing.get_context("fork")
    cache = ProgramCache(program)
    if observe_locs is None:
        observe_locs = sorted(cache.initial_memory)
    else:
        observe_locs = list(observe_locs)

    stats = EngineStats()
    sink = tracer.SINK
    span_id = None
    if sink is not None:
        span_id = sink.begin_span(
            "shard_explore", program=program.name, relaxed=cfg.relaxed,
            por=por, shards=jobs,
        )

    plan = None
    if por:
        if por_worthwhile(program, cfg):
            plan = PORPlan(cache, cfg)
            if not plan.eligible:
                plan = None
        else:
            stats.por_gate_skips += 1

    active = [m for m in (monitors or ()) if not m.stopped]
    stats.fused_conditions = max(0, len(active) - 1)
    record_graph = bool(active)
    interner = StateInterner() if interning_enabled() else None
    memo = CertMemo(interner=interner, stats=stats)

    def finish(result: ExplorationResult, outcome: str) -> ExplorationResult:
        if sink is not None:
            sink.end_span(
                span_id, "shard_explore", program=program.name,
                outcome=outcome, states=result.states_explored,
                behaviors=len(result.behaviors), complete=result.complete,
                stopped_early=result.stopped_early,
            )
        return result

    def fallback(reason: str) -> ExplorationResult:
        if metrics.ENABLED:
            metrics.REGISTRY.counter("shard.fallbacks").inc()
        result = _explore(
            program, cfg, observe_locs, False, por, monitors, monitor_cut,
        )
        return finish(result, f"serial-fallback:{reason}")

    def emit_merged_metrics(result: ExplorationResult, merged: EngineStats,
                            steals: int, filter_hits: int) -> None:
        # Mirrors the serial engine's tail so dashboards see one
        # exploration either way, plus the shard-only counters.
        if not metrics.ENABLED:
            return
        metrics.absorb_engine_stats(merged)
        reg = metrics.REGISTRY
        reg.counter("explore.states_explored").inc(result.states_explored)
        reg.counter("explore.cut_paths").inc(result.cut_paths)
        reg.histogram("explore.behaviors").observe(len(result.behaviors))
        reg.histogram("explore.states").observe(result.states_explored)
        reg.counter("shard.explorations").inc()
        reg.counter("shard.steals").inc(steals)
        reg.counter("shard.filter_hits").inc(filter_hits)
        reg.gauge("shard.workers").set(jobs)

    target = max(_SEED_TARGET_MIN, jobs * _SEED_TARGET_PER_SHARD)
    vfilter = SharedVisitedFilter(ctx=ctx)
    try:
        seed, start_fp = _seed_phase(
            program, cache, cfg, observe_locs, plan, stats, interner,
            memo, vfilter, target, record_graph, sink,
        )
        if interner is not None:
            stats.interner_timelines = len(interner)

        if seed.finished:
            # The seed is the serial loop, so this already *is* the
            # serial result (budget cuts included) — no fan-out ran.
            if record_graph:
                behaviors, complete, states, cuts, stopped = _replay(
                    cache, cfg, observe_locs, seed.graph, start_fp,
                    monitors, monitor_cut, stats, sink,
                )
            else:
                behaviors = seed.behaviors
                states = seed.states_explored
                cuts = seed.cut_paths
                stopped = False
                complete = (
                    not seed.budget_cut
                    and seed.mem_complete
                    and stats.cert_budget_hits == 0
                )
            result = ExplorationResult(
                behaviors=frozenset(behaviors),
                complete=complete,
                states_explored=states,
                cut_paths=cuts,
                terminal_states=(),
                stats=stats,
                stopped_early=stopped,
            )
            emit_merged_metrics(result, stats, 0, vfilter.hits)
            return finish(result, "seed-only")

        shards = [seed.frontier[i::jobs] for i in range(jobs)]
        budget_left = max(cfg.max_states - seed.states_explored, 0)
        shared = _SharedState(ctx, jobs, budget_left)
        results_q = ctx.Queue()
        procs = []
        for wid in range(jobs):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    wid, cache, cfg, observe_locs, plan, shards[wid],
                    vfilter, shared, active if record_graph else None,
                    monitor_cut, record_graph, results_q,
                ),
                daemon=True,
            )
            proc.start()
            procs.append(proc)

        outputs, errors = _collect(procs, results_q, shared, jobs)
        for proc in procs:
            proc.join(timeout=_JOIN_TIMEOUT)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT)
        shared.steal_q.cancel_join_thread()
        shared.steal_q.close()
        results_q.close()

        if errors or len(outputs) < jobs:
            return fallback("worker-failure")

        merged = stats
        for out in outputs.values():
            merged.add(out.stats)
        total_steals = sum(len(out.steals) for out in outputs.values())
        total_hits = vfilter.hits + sum(
            out.filter_hits for out in outputs.values()
        )
        total_full_misses = vfilter.full_misses + sum(
            out.full_misses for out in outputs.values()
        )
        if sink is not None:
            for wid in sorted(outputs):
                for batch_len in outputs[wid].steals:
                    sink.emit(tracer.SHARD_STEAL, worker=wid,
                              batch=batch_len)
            sink.emit(tracer.VISITED_FILTER_HIT, hits=total_hits,
                      full_misses=total_full_misses, aggregate=True)

        if record_graph:
            # Serial-order replay through the real monitors; sound for
            # partial graphs too (abort paths) — a gap falls back.  An
            # abandoned replay has already delivered a callback prefix,
            # so the monitors must be rewound before the serial engine
            # feeds them from scratch (double delivery would inflate
            # their counters).
            graph = dict(seed.graph)
            for out in outputs.values():
                graph.update(out.graph)
            pre_replay = [m.snapshot() for m in (monitors or ())]
            try:
                behaviors, complete, states, cuts, stopped = _replay(
                    cache, cfg, observe_locs, graph, start_fp,
                    monitors, monitor_cut, merged, sink,
                )
            except _ReplayIncomplete:
                for monitor, snap in zip(monitors or (), pre_replay):
                    monitor.restore(snap)
                return fallback("replay-gap")
            result = ExplorationResult(
                behaviors=frozenset(behaviors),
                complete=complete,
                states_explored=states,
                cut_paths=cuts,
                terminal_states=(),
                stats=merged,
                stopped_early=stopped,
            )
            emit_merged_metrics(result, merged, total_steals, total_hits)
            return finish(result, "sharded-replay")

        # Unmonitored: the merge is exact only for complete, duplicate-
        # free explorations — anything order-dependent reruns serially.
        if shared.abort.is_set():
            return fallback("budget-exhausted")
        if total_full_misses:
            return fallback("filter-saturated")
        behaviors = set(seed.behaviors)
        states = seed.states_explored
        cuts = seed.cut_paths
        mem_complete = seed.mem_complete
        for out in outputs.values():
            behaviors |= out.behaviors
            states += out.states_explored
            cuts += out.cut_paths
            mem_complete = mem_complete and out.mem_complete
        result = ExplorationResult(
            behaviors=frozenset(behaviors),
            complete=mem_complete and merged.cert_budget_hits == 0,
            states_explored=states,
            cut_paths=cuts,
            terminal_states=(),
            stats=merged,
            stopped_early=False,
        )
        emit_merged_metrics(result, merged, total_steals, total_hits)
        return finish(result, "sharded")
    finally:
        vfilter.close()


def _checked(
    program, cfg, observe_locs, por, monitors, monitor_cut, jobs,
) -> ExplorationResult:
    """``REPRO_SHARD_CHECK=1``: run sharded, rerun serial, diff.

    ``EngineStats`` memo-locality counters legitimately differ (each
    worker owns its memo), so the diff covers the verification-visible
    fields and the monitor outcomes, not whole-result equality.
    """
    monitor_list = list(monitors or ())
    init_snaps = [m.snapshot() for m in monitor_list]
    sharded = shard_explore(
        program, cfg, observe_locs, por, monitor_list, monitor_cut, jobs,
    )
    post_snaps = [m.snapshot() for m in monitor_list]
    for monitor, snap in zip(monitor_list, init_snaps):
        monitor.restore(snap)
    serial = _explore(
        program, cfg, observe_locs, False, por, monitor_list, monitor_cut,
    )
    serial_snaps = [m.snapshot() for m in monitor_list]

    problems = []
    for field_name in ("behaviors", "complete", "states_explored",
                       "cut_paths", "stopped_early"):
        got = getattr(sharded, field_name)
        want = getattr(serial, field_name)
        if got != want:
            problems.append(f"{field_name}: sharded={got!r} serial={want!r}")
    for monitor, got, want in zip(monitor_list, post_snaps, serial_snaps):
        if got != want:
            problems.append(
                f"monitor {type(monitor).__name__}: "
                f"sharded={got!r} serial={want!r}"
            )
    if problems:
        raise VerificationError(
            f"shard cross-check failed for {program.name!r} "
            f"(jobs={jobs}): " + "; ".join(problems)
        )
    return sharded


def maybe_shard_explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    por: bool,
    monitors: Optional[Sequence[ExplorationMonitor]],
    monitor_cut: bool,
) -> Optional[ExplorationResult]:
    """The ``REPRO_SHARD`` entry point :func:`repro.memory.exploration.
    explore` dispatches through; ``None`` means "run serial".

    Declines when sharding cannot run: shard count <= 1, no ``fork``
    start method, or inside a daemonic pool child (corpus-level
    parallelism already owns the budget there — see ``plan_jobs``).
    """
    jobs = resolve_shard_jobs(None)
    if jobs <= 1:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    if multiprocessing.current_process().daemon:
        return None
    if shard_check_enabled():
        return _checked(
            program, cfg, observe_locs, por, monitors, monitor_cut, jobs,
        )
    return shard_explore(
        program, cfg, observe_locs, por, monitors, monitor_cut, jobs,
    )
