"""Structured event tracing for the exploration/verification pipeline.

The engine's hot paths emit *typed events* into a process-wide sink.
The design is built around one invariant: **tracing off must be free**.
The global sink defaults to ``None`` and every emission site is written

.. code-block:: python

    from repro.obs import tracer
    ...
    if tracer.SINK is not None:
        tracer.SINK.emit(tracer.PROMISE_MADE, tid=t, loc=loc, ts=ts)

— a single module-attribute load and ``is None`` test on the no-op
path, far below the 2% overhead budget the ``promise_heavy`` benchmark
guards (see ``docs/OBSERVABILITY.md``).  Long-running loops may hoist
``tracer.SINK`` into a local at loop entry; a sink installed mid-loop
is then picked up by the next loop, which is the documented contract.

Event kinds are plain strings (module constants below) and payloads are
keyword arguments — JSON-serializable values only, so a recorded trace
dumps straight to disk for the ``--trace FILE`` CLI flag and the CI
artifacts.  Spans bracket phases (one exploration, one fused wDRF pass,
one fuzzed program) with matched ``span_begin``/``span_end`` events
carrying a shared span id.

The default sink is process-local; worker processes inherit it through
``fork`` but their recorded events stay in the worker (tracing is a
debugging instrument — cross-process aggregation is the metrics
registry's job, see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import contextlib
import itertools
import json
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Tuple

# --- event kinds (the typed vocabulary of the engine) ------------------

#: A thread appended a certified promise to the timeline.
PROMISE_MADE = "promise_made"
#: A certification search returned (verdict + memo accounting).
PROMISE_CERTIFIED = "promise_certified"
#: A barrier instruction executed (kind + frontier movement).
BARRIER = "barrier"
#: A thread's view frontier advanced (vrn/vwn after a barrier).
VIEW_ADVANCE = "view_advance"
#: A TLBI executed (invalidated vpn + new walker floor).
TLB_INVALIDATE = "tlb_invalidate"
#: The walker wrote hardware access/dirty bits into a leaf entry (``had``).
WALKER_AD_WRITE = "walker_ad_write"
#: A streaming monitor called ``stop()`` during an exploration.
MONITOR_STOP = "monitor_stop"
#: The POR plan scheduled a single ample thread for a state.
POR_AMPLE = "por_ample"
#: An exploration-cache lookup hit (memo or disk layer).
CACHE_HIT = "cache_hit"
#: An exploration-cache lookup missed and the pass ran for real.
CACHE_MISS = "cache_miss"
#: A phase opened (exploration, wDRF pass, fuzzed program).
SPAN_BEGIN = "span_begin"
#: A phase closed.
SPAN_END = "span_end"
#: A shard worker offloaded a frontier batch to the steal queue.
SHARD_STEAL = "shard_steal"
#: The shared visited filter rejected an already-claimed state (per-event
#: in workers; re-emitted as one aggregate event by the orchestrator).
VISITED_FILTER_HIT = "visited_filter_hit"


class TraceEvent(NamedTuple):
    """One emitted event: a monotone sequence number, a kind, a payload."""

    seq: int
    kind: str
    data: Tuple[Tuple[str, Any], ...]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by ``--trace FILE`` and tests)."""
        out: Dict[str, Any] = {"seq": self.seq, "kind": self.kind}
        out.update(self.data)
        return out

    def get(self, field: str, default: Any = None) -> Any:
        """Payload field lookup (events are tiny; linear scan is fine)."""
        for key, value in self.data:
            if key == field:
                return value
        return default


class TraceSink:
    """Base sink: receives every emitted event; subclasses store them.

    The base class implements span bookkeeping so subclasses only
    override :meth:`emit`.  A sink is process-local and not thread-safe
    by design (the engine is single-threaded per process).
    """

    def __init__(self) -> None:
        self._seq = itertools.count()
        self._span_ids = itertools.count()

    def emit(self, kind: str, **data: Any) -> None:
        """Receive one event.  Subclasses override; the base discards."""

    def next_seq(self) -> int:
        """The next event sequence number (monotone per sink)."""
        return next(self._seq)

    def begin_span(self, name: str, **data: Any) -> int:
        """Open a span: emits ``span_begin``, returns the span id.

        For call sites where a ``with`` block does not fit the control
        flow (e.g. the exploration loop); pair with :meth:`end_span`.
        """
        span_id = next(self._span_ids)
        self.emit(SPAN_BEGIN, span=span_id, name=name, **data)
        return span_id

    def end_span(self, span_id: int, name: str, **data: Any) -> None:
        """Close a span opened by :meth:`begin_span`."""
        self.emit(SPAN_END, span=span_id, name=name, **data)

    @contextlib.contextmanager
    def span(self, name: str, **data: Any) -> Iterator[int]:
        """Bracket a phase with ``span_begin``/``span_end`` events.

        Yields the span id so nested emissions can reference it.
        """
        span_id = self.begin_span(name, **data)
        try:
            yield span_id
        finally:
            self.end_span(span_id, name)


class NullSink(TraceSink):
    """A sink that swallows everything.

    Installing a ``NullSink`` (rather than leaving ``SINK`` as ``None``)
    exercises every emission site while keeping results bit-identical —
    the configuration the no-op bit-identity tests run under.
    """

    def emit(self, kind: str, **data: Any) -> None:
        """Discard the event (but burn a sequence number, like any sink)."""
        self.next_seq()


class RecordingSink(TraceSink):
    """A sink that records events in memory, up to a cap.

    ``max_events`` bounds memory on pathological runs (a traced
    exploration can emit one ``por_ample`` event per state); events past
    the cap are counted in :attr:`dropped` instead of stored, so a
    truncated trace is detectable rather than silently short.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        super().__init__()
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def emit(self, kind: str, **data: Any) -> None:
        """Record one event (or count it as dropped past the cap)."""
        seq = self.next_seq()
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(seq, kind, tuple(sorted(data.items()))))

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """The recorded events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """``{kind: count}`` over the recorded events."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def as_json(self) -> Dict[str, Any]:
        """JSON-ready dump: events plus truncation accounting."""
        return {
            "schema": "repro.obs.trace/v1",
            "events": [e.as_dict() for e in self.events],
            "dropped": self.dropped,
        }

    def write(self, path: str) -> None:
        """Write the trace as pretty-printed JSON to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


#: The process-wide sink.  ``None`` (the default) means tracing is off
#: and emission sites reduce to one ``is None`` check.  Read it as
#: ``tracer.SINK`` (module attribute) so :func:`install` takes effect
#: everywhere at once.
SINK: Optional[TraceSink] = None


def sink() -> Optional[TraceSink]:
    """The currently installed sink, or ``None`` when tracing is off."""
    return SINK


def install(new_sink: TraceSink) -> TraceSink:
    """Install *new_sink* as the process-wide sink; returns it."""
    global SINK
    SINK = new_sink
    return new_sink


def uninstall() -> None:
    """Remove the installed sink (tracing back to the free no-op path)."""
    global SINK
    SINK = None


@contextlib.contextmanager
def recording(max_events: int = 100_000) -> Iterator[RecordingSink]:
    """Context manager: install a :class:`RecordingSink` for the block.

    The previously installed sink (usually ``None``) is restored on
    exit, so tests and CLI commands can trace without leaking state.
    """
    global SINK
    previous = SINK
    rec = RecordingSink(max_events=max_events)
    SINK = rec
    try:
        yield rec
    finally:
        SINK = previous
