"""Observability layer: structured tracing, metrics, and explanations.

``repro.obs`` is the zero-dependency instrumentation substrate the rest
of the engine emits into.  It has three parts, each usable alone:

* :mod:`repro.obs.tracer` — a structured event tracer.  Engine code
  emits typed events (promise made/certified, barrier, view advance,
  TLB invalidate, monitor stop, POR ample-set choice, cache hit/miss)
  and brackets phases in spans.  The default sink is ``None`` — every
  emission site is a single ``is None`` check, so the untraced engine
  pays nothing measurable (<2% on the promise-heavy benchmark, guarded
  in CI).
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms.  It absorbs :class:`repro.memory.datatypes.
  EngineStats` from every exploration, aggregates across worker
  processes (:func:`repro.parallel.parallel_map` ships worker snapshots
  back to the parent), and serializes to JSON for ``BENCH_*`` files and
  the ``--metrics-out`` CLI flag.
* :mod:`repro.obs.render` — the execution-explanation renderer: it
  turns a failing exploration, a shrunk conformance witness, or a
  failing wDRF check into a step-by-step textual/JSON account of the
  execution — per-thread views, promises and their certification, and
  the per-location coherence order.  Wired into ``repro trace``.

Nothing in this package imports the engine at module level (the
renderer imports lazily), so instrumented modules can import ``obs``
without cycles.  See ``docs/OBSERVABILITY.md`` for the guide.
"""

from repro.obs.tracer import (
    NullSink,
    RecordingSink,
    TraceEvent,
    TraceSink,
    install,
    recording,
    sink,
    uninstall,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_enabled,
    registry,
)

__all__ = [
    "NullSink",
    "RecordingSink",
    "TraceEvent",
    "TraceSink",
    "install",
    "recording",
    "sink",
    "uninstall",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_enabled",
    "registry",
]
