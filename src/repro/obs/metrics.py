"""Process-wide metrics registry: counters, gauges, histograms.

The registry absorbs and extends :class:`repro.memory.datatypes.
EngineStats`: every exploration already accumulates an ``EngineStats``;
when metrics are enabled the engine folds it into the registry at the
end of the run (:func:`absorb_engine_stats`), and subsystems add their
own cold-path counters (cache hits, fuzz findings, verifier passes) on
top.  Everything serializes to plain JSON for ``BENCH_*`` files and the
``--metrics-out`` CLI flag.

Like the tracer, collection is **off by default** and the hot paths
never touch the registry per-state — only per-exploration and at other
cold call sites, each behind :func:`metrics_enabled` (a module-global
flag, settable by :func:`enable`/:func:`disable` or the
``REPRO_METRICS=1`` environment knob read at import).

Multiprocess aggregation: :func:`repro.parallel.pool.parallel_map`
wraps each work item so the child resets its registry before running
and ships a :meth:`MetricsRegistry.snapshot` back alongside the result;
the parent :meth:`MetricsRegistry.merge`\\ s the snapshots.  The
child-side reset is what makes this correct under ``fork`` — without it
the stats the parent accumulated before forking would be counted once
per worker.
"""

from __future__ import annotations

import bisect
import json
import os
from typing import Any, Dict, List, Optional

#: Fixed histogram bucket upper bounds (powers of two up to 1M, then
#: +inf).  Fixed buckets keep snapshots mergeable across processes.
BUCKET_BOUNDS: List[float] = [2.0 ** k for k in range(21)] + [float("inf")]


class Counter:
    """A monotonically increasing count (events, states, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"type": "counter", "value": n}``."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (pool size, interner population)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"type": "gauge", "value": x}``."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution over fixed power-of-two buckets.

    Tracks count/sum/min/max plus per-bucket counts, so percentile
    estimates survive JSON round-trips and cross-process merges.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * len(BUCKET_BOUNDS)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1

    def mean(self) -> float:
        """The running mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form with non-empty buckets keyed by upper bound."""
        nonzero = {
            ("inf" if bound == float("inf") else repr(bound)): n
            for bound, n in zip(BUCKET_BOUNDS, self.buckets)
            if n
        }
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "buckets": nonzero,
        }


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metric names are dotted paths (``explore.certify_calls``,
    ``cache.disk_hits``, ``fuzz.findings``).  Lookup methods create on
    first use, so call sites never pre-register.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named *name*, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named *name*, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram named *name*, created on first use."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def reset(self) -> None:
        """Drop every metric (workers call this right after receiving
        a work item, so fork-inherited parent state is not re-counted)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable copy of the current state.

        The snapshot is what workers ship back to the parent and what
        ``--metrics-out`` writes; :meth:`merge` consumes the same shape.
        """
        return {
            "schema": "repro.obs.metrics/v1",
            "metrics": self.as_dict(),
        }

    def as_dict(self) -> Dict[str, Any]:
        """``{name: metric.as_dict()}`` over every registered metric."""
        out: Dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.as_dict()
        for name, g in self._gauges.items():
            out[name] = g.as_dict()
        for name, h in self._histograms.items():
            out[name] = h.as_dict()
        return out

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Counters and histograms add; gauges keep the incoming value
        (last-writer-wins — gauges are point-in-time by definition).
        """
        for name, m in snap.get("metrics", {}).items():
            kind = m.get("type")
            if kind == "counter":
                self.counter(name).inc(m["value"])
            elif kind == "gauge":
                self.gauge(name).set(m["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                h.count += m["count"]
                h.total += m["sum"]
                if m["min"] is not None:
                    h.min = m["min"] if h.min is None else min(h.min, m["min"])
                if m["max"] is not None:
                    h.max = m["max"] if h.max is None else max(h.max, m["max"])
                for key, n in m.get("buckets", {}).items():
                    bound = float("inf") if key == "inf" else float(key)
                    h.buckets[bisect.bisect_left(BUCKET_BOUNDS, bound)] += n

    def write(self, path: str) -> None:
        """Write :meth:`snapshot` as pretty-printed JSON to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")


#: The process-wide registry.  Always present (so call sites never
#: None-check the object itself); whether anything *writes* to it is
#: gated by :func:`metrics_enabled`.
REGISTRY = MetricsRegistry()

#: Collection flag.  Off by default; ``REPRO_METRICS=1`` turns it on at
#: import, :func:`enable`/:func:`disable` at runtime.
ENABLED = os.environ.get("REPRO_METRICS", "0") == "1"


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return REGISTRY


def metrics_enabled() -> bool:
    """Whether metric collection is on (cold call sites check this)."""
    return ENABLED


def enable() -> None:
    """Turn metric collection on for this process."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn metric collection off (the registry keeps its contents)."""
    global ENABLED
    ENABLED = False


def absorb_engine_stats(stats: Any, prefix: str = "explore") -> None:
    """Fold one exploration's ``EngineStats`` into the registry.

    Called once at the end of each exploration (never per-state), and
    only when :func:`metrics_enabled` — the caller guards.  Each
    ``EngineStats`` field becomes a counter ``<prefix>.<field>`` and the
    exploration itself bumps ``<prefix>.explorations``.
    """
    REGISTRY.counter(prefix + ".explorations").inc()
    for field, value in stats.as_dict().items():
        if value:
            REGISTRY.counter(prefix + "." + field).inc(value)
