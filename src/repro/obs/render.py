"""Execution explanations: from witness to step-by-step account.

A raw counterexample — a conformance-corpus entry or a failed wDRF
check — names an outcome but not the mechanism.  This module finds a
concrete execution reaching the outcome (via
:func:`repro.memory.trace.find_execution`) and renders it as the paper's
Figure 3 does a Promising-model run: the step sequence with each CPU's
view frontiers after its step, the promises made and their
certification outcomes, the per-location coherence order, and the final
observable behavior.  :func:`render_explanation` produces the textual
form, :func:`explanation_json` the machine-readable one; both are wired
into ``repro trace``.

Engine modules are imported lazily inside functions: ``repro.memory``
imports :mod:`repro.obs.tracer`, so a module-level import here would
cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import tracer

#: Oracles whose witness is a cross-model behavior disagreement: the
#: explanation is an RM execution reaching a behavior SC cannot.
#: ``backend`` belongs here: its disagreement is a behavior-set diff
#: between the SAT backend and exploration, and a relaxed execution of
#: the program is the right witness to render.
_MODEL_DIFF_ORACLES = ("containment", "equivalence", "axiomatic", "backend")

#: Oracles about engine-configuration identity (POR on/off, memo
#: on/off, pool vs serial, fused vs per-condition): the witness program
#: is interesting as a whole, so any relaxed execution is shown.
_CONFIG_ORACLES = ("por", "memo", "jobs", "fuse")

#: Oracles whose witness only exists under the relaxed-virtual-memory
#: feature families: the explanation runs the featured configuration so
#: the walk-level mechanism (BBM window, cached intermediate entry,
#: hardware A/D write) is visible in the rendered steps.
_VM_ORACLES = ("vm",)


def _thread_index(program, tid: int) -> Optional[int]:
    """Map a CPU id to its index in ``state.threads`` (None if unknown)."""
    if program is None:
        return None
    for idx, thread in enumerate(program.threads):
        if thread.tid == tid:
            return idx
    return None


def _views_line(ctx) -> str:
    """One thread's view frontiers, rendered compactly."""
    coh = " ".join(f"{loc:#x}@{ts}" for loc, ts in sorted(ctx.coh))
    line = (
        f"vrn={ctx.vrn} vwn={ctx.vwn} vro={ctx.vro} vwo={ctx.vwo} "
        f"vctrl={ctx.vctrl}"
    )
    if coh:
        line += f"  coh: {coh}"
    if ctx.promises:
        line += f"  outstanding promises: {list(ctx.promises)}"
    if ctx.wbuf:
        buffered = ", ".join(f"[{loc:#x}]:={val}" for loc, val in ctx.wbuf)
        line += f"  store buffer: {buffered}"
    return line


def _views_dict(ctx) -> Dict[str, Any]:
    """One thread's view frontiers as JSON-ready data."""
    return {
        "vrn": ctx.vrn,
        "vwn": ctx.vwn,
        "vro": ctx.vro,
        "vwo": ctx.vwo,
        "vctrl": ctx.vctrl,
        "coh": {f"{loc:#x}": ts for loc, ts in sorted(ctx.coh)},
        "outstanding_promises": list(ctx.promises),
        "store_buffer": [[loc, val] for loc, val in ctx.wbuf],
    }


def _value_before(program, state, loc: int) -> int:
    """The committed value of *loc* in *state* (initial memory included)."""
    for msg in reversed(state.memory):
        if msg.loc == loc and not msg.promised:
            return msg.val
    if program is not None:
        return program.initial_memory.get(loc, 0)
    return 0


def _walk_notes(program, before, after, event) -> List[str]:
    """Walk-level annotations for one step (empty for MMU-free steps).

    Explains the three mechanisms the VM feature families introduce:
    hardware A/D writes riding on a translation, intermediate walk
    entries entering/leaving the walk cache, and the break-before-make
    window around page-table stores (including its violation, the
    live -> live overwrite whose old descriptor stays walkable).
    """
    notes: List[str] = []
    if event.new_message and "(hw A/D update)" in event.new_message:
        notes.append(
            "hardware walker wrote access/dirty bits into the stage-1 "
            "leaf — an ordinary coherence-participating write"
        )
    gained = set(after.walk_cache) - set(before.walk_cache)
    lost = set(before.walk_cache) - set(after.walk_cache)
    for (cpu, loc), val in sorted(gained):
        notes.append(
            f"walker cached intermediate descriptor [{loc:#x}] = {val:#x} "
            f"for CPU {cpu} — later walks may hit it without re-reading "
            f"memory"
        )
    if lost:
        notes.append(
            f"TLBI flushed {len(lost)} cached intermediate walk "
            f"descriptor(s)"
        )
    if (
        event.kind == "exec"
        and event.new_message
        and "-pt L" in event.instruction
        and "(write)" in event.new_message
    ):
        msg = after.memory[-1]
        old = _value_before(program, before, msg.loc)
        if msg.val == 0:
            notes.append(
                "break: page-table entry invalidated — racing walks fault "
                "until the remade entry is published (BBM window open)"
            )
        elif old == 0:
            notes.append(
                "make: entry published over an invalid entry "
                "(break-before-make respected)"
            )
        else:
            notes.append(
                "live -> live page-table overwrite: under the `bbm` "
                "feature the old descriptor remains a walker candidate "
                "(amalgamation) — the break-before-make protocol was "
                "skipped"
            )
    return notes


def _coherence_order(trace) -> Dict[int, List[Any]]:
    """Per-location write order: the global timeline grouped by location."""
    order: Dict[int, List[Any]] = {}
    for msg in trace.final_state.memory:
        order.setdefault(msg.loc, []).append(msg)
    return order


def _promise_ledger(trace) -> List[Dict[str, Any]]:
    """The promises of the execution with their certification outcomes.

    Every promise appearing in a found execution was admitted by the
    thread-local certification search (``promise_steps`` discards
    uncertifiable candidates), and a *valid* terminal state has no
    outstanding promises — so each ledger entry records the certified
    promise and the step that later fulfilled it.
    """
    ledger: List[Dict[str, Any]] = []
    for step, event in enumerate(trace.events, 1):
        if event.kind == "promise":
            ledger.append({
                "step": step,
                "tid": event.tid,
                "message": event.new_message,
                "certified": True,
                "fulfilled_at_step": None,
            })
        elif event.kind == "fulfill":
            for entry in ledger:
                if (
                    entry["fulfilled_at_step"] is None
                    and entry["tid"] == event.tid
                ):
                    entry["fulfilled_at_step"] = step
                    break
    return ledger


def render_explanation(
    trace,
    program=None,
    title: Optional[str] = None,
    notes: Sequence[str] = (),
) -> str:
    """Render an :class:`~repro.memory.trace.ExecutionTrace` step by step.

    Shows, per step, what the CPU did (with read-from / promise /
    fulfill annotations) and the acting thread's view frontiers after
    the step; then the promise ledger with certification outcomes, the
    per-location coherence order, final per-thread views, and the
    observable outcome.  ``program`` maps CPU ids to thread indices for
    the view lookups (without it, ``tid == index`` is assumed, which
    holds for every generated program in this repo).  ``notes`` are
    context lines (oracle, detail) printed under the title.
    """
    from repro.memory.semantics import env_model

    lines: List[str] = []
    lines.append(title or f"execution explanation: {trace.program_name!r}")
    model = env_model()
    if model != "arm":
        lines.append(f"  model: {model} (REPRO_MODEL)")
    for note in notes:
        lines.append(f"  {note}")
    lines.append("")
    lines.append("step-by-step (views shown after each step):")
    have_states = len(trace.states) == len(trace.events) + 1
    for i, event in enumerate(trace.events):
        lines.append(f"  {i + 1:>3}. {event.render()}")
        if have_states:
            idx = _thread_index(program, event.tid)
            if idx is None:
                idx = event.tid
            state = trace.states[i + 1]
            if 0 <= idx < len(state.threads):
                lines.append(
                    f"       CPU {event.tid} views: "
                    + _views_line(state.threads[idx])
                )
            for note in _walk_notes(
                program, trace.states[i], state, event
            ):
                lines.append(f"       walk: {note}")
    ledger = _promise_ledger(trace)
    lines.append("")
    if ledger:
        lines.append("promises (all certified by the thread-local search):")
        for entry in ledger:
            fulfilled = (
                f"fulfilled at step {entry['fulfilled_at_step']}"
                if entry["fulfilled_at_step"] is not None
                else "outstanding"
            )
            lines.append(
                f"  step {entry['step']:>3}: CPU {entry['tid']} promised "
                f"{entry['message']} — certified, {fulfilled}"
            )
    else:
        lines.append("promises: none (no store was promoted ahead of "
                     "program order)")
    lines.append("")
    lines.append("coherence order (per-location write order):")
    for loc, msgs in sorted(_coherence_order(trace).items()):
        chain = " -> ".join(
            f"({m.ts}) CPU {m.tid} := {m.val}" for m in msgs
        )
        lines.append(f"  [{loc:#x}]: init -> {chain}")
    lines.append("")
    lines.append("final per-thread views:")
    threads = trace.final_state.threads
    for idx, ctx in enumerate(threads):
        tid = program.threads[idx].tid if program is not None else idx
        lines.append(f"  CPU {tid}: " + _views_line(ctx))
    if trace.final_state.panic is not None:
        lines.append("")
        lines.append(f"PANIC: {trace.final_state.panic}")
    lines.append("")
    lines.append(f"outcome: {trace.behavior.pretty()}")
    return "\n".join(lines)


def explanation_json(
    trace, program=None, notes: Sequence[str] = ()
) -> Dict[str, Any]:
    """The machine-readable form of :func:`render_explanation`."""
    from repro.memory.semantics import env_model

    have_states = len(trace.states) == len(trace.events) + 1
    steps: List[Dict[str, Any]] = []
    for i, event in enumerate(trace.events):
        step: Dict[str, Any] = {
            "step": i + 1,
            "tid": event.tid,
            "kind": event.kind,
            "instruction": event.instruction,
            "message": event.new_message,
            "read": event.read_note,
        }
        if have_states:
            idx = _thread_index(program, event.tid)
            if idx is None:
                idx = event.tid
            state = trace.states[i + 1]
            if 0 <= idx < len(state.threads):
                step["views"] = _views_dict(state.threads[idx])
            walk = _walk_notes(program, trace.states[i], state, event)
            if walk:
                step["walk"] = walk
        steps.append(step)
    threads = trace.final_state.threads
    final_views = {}
    for idx, ctx in enumerate(threads):
        tid = program.threads[idx].tid if program is not None else idx
        final_views[str(tid)] = _views_dict(ctx)
    return {
        "schema": "repro.obs.explanation/v1",
        "program": trace.program_name,
        "model": env_model(),
        "notes": list(notes),
        "steps": steps,
        "promises": _promise_ledger(trace),
        "coherence": {
            f"{loc:#x}": [
                {"ts": m.ts, "tid": m.tid, "value": m.val} for m in msgs
            ]
            for loc, msgs in sorted(_coherence_order(trace).items())
        },
        "final_views": final_views,
        "panic": trace.final_state.panic,
        "outcome": trace.behavior.pretty(),
    }


def explain_drf_violation(
    program,
    shared_locs,
    initial_ownership=(),
    **overrides,
):
    """Find a panicking execution witnessing a wDRF (DRF-Kernel) failure.

    Runs the traced search on the push/pull Promising model — the
    configuration :func:`repro.vrm.drf_kernel.check_drf_kernel` fails
    on — and returns the :class:`~repro.memory.trace.ExecutionTrace` of
    the first ownership-violation panic, or ``None`` when the program
    actually satisfies the discipline.
    """
    from repro.memory.pushpull import pushpull_config
    from repro.memory.trace import find_execution

    cfg = pushpull_config(
        relaxed=True,
        owned_access_required=frozenset(shared_locs),
        initial_ownership=tuple(initial_ownership),
        **overrides,
    )
    return find_execution(
        program, cfg, lambda b: b.panic is not None, observe_locs=[]
    )


def explain_conformance_entry(entry: Dict[str, Any]):
    """Turn one corpus counterexample entry into an explained execution.

    Returns ``(trace, program, notes)``; ``trace`` is ``None`` when no
    execution illustrating the disagreement could be found within the
    budget.  The shrunk genome is preferred (it is the 1-minimal
    witness).  The execution searched for depends on the oracle:

    * behavior oracles (containment/equivalence/axiomatic) — an RM
      execution reaching a behavior outside the SC set, the concrete
      relaxed-memory effect behind the disagreement;
    * monitor/fuse disagreements on ``sync`` genomes — a push/pull
      execution reaching a DRF panic;
    * engine-configuration oracles (por/memo/jobs) and everything else —
      a representative relaxed execution of the witness program.
    """
    from repro.conformance.genome import Genome, build, shared_locations
    from repro.memory.behaviors import compare_models
    from repro.memory.semantics import PROMISING_ARM
    from repro.memory.trace import find_execution

    genome_json = entry.get("shrunk_genome") or entry["genome"]
    genome = Genome.from_json(genome_json)
    program = build(genome)
    oracle = str(entry.get("oracle", ""))
    notes = [
        f"oracle: {oracle}",
        f"detail: {entry.get('detail', '')}",
        f"genome: {genome.name} ({genome.profile}, {genome.size()} ops"
        + (", shrunk)" if entry.get("shrunk_genome") else ")"),
    ]

    if genome.profile == "vm" or oracle in _VM_ORACLES:
        from dataclasses import replace

        from repro.conformance.genome import VM_NEW_VAL, VM_PROFILE_FEATURES
        from repro.memory import explore

        cfg = replace(PROMISING_ARM, vm_features=VM_PROFILE_FEATURES)
        featured = explore(program, cfg)
        stale = sorted(
            b for b in featured.behaviors
            if b.panic is None
            and not any(f.tid == 1 for f in b.faults)
            and any(
                t == 1 and r == "r_chk" and v != VM_NEW_VAL
                for t, r, v in b.registers
            )
        )
        if stale:
            notes.append(
                f"witness: stale-translation behavior {stale[0].pretty()} "
                f"under VM features {sorted(VM_PROFILE_FEATURES)}"
            )
            target = stale[0]
        elif featured.behaviors:
            notes.append(
                "witness: representative execution under VM features "
                f"{sorted(VM_PROFILE_FEATURES)} (the oracle disagreement "
                "is a walk-level property, not a plain behavior diff)"
            )
            target = sorted(featured.behaviors)[0]
        else:
            return None, program, notes
        trace = find_execution(program, cfg, lambda b: b == target)
        return trace, program, notes

    if genome.profile == "sync" and oracle not in _MODEL_DIFF_ORACLES:
        trace = explain_drf_violation(program, shared_locations(genome))
        if trace is not None:
            notes.append(
                "witness: an execution panicking under the push/pull "
                "ownership discipline"
            )
            return trace, program, notes

    comparison = compare_models(program)
    target = None
    if comparison.rm_only:
        target = sorted(comparison.rm_only)[0]
        notes.append(
            f"witness: RM-only behavior {target.pretty()} "
            f"({len(comparison.rm_only)} RM-only behavior(s) total)"
        )
    elif comparison.rm.behaviors:
        target = sorted(comparison.rm.behaviors)[0]
        notes.append(
            "witness: representative relaxed execution (the oracle "
            "disagreement is about engine configuration, not behavior)"
        )
    if target is None:
        return None, program, notes
    trace = find_execution(program, PROMISING_ARM, lambda b: b == target)
    return trace, program, notes


def explained_certifications(rec: "tracer.RecordingSink") -> Dict[str, int]:
    """Summarize certification outcomes from a recorded trace.

    Counts the ``promise_certified`` events a traced search emitted:
    how many candidate promises were considered, certified, and
    rejected — the search-wide context around the specific promises the
    rendered execution kept.
    """
    considered = rejected = 0
    for event in rec.by_kind(tracer.PROMISE_CERTIFIED):
        considered += 1
        if not event.get("ok"):
            rejected += 1
    return {
        "candidates_considered": considered,
        "candidates_certified": considered - rejected,
        "candidates_rejected": rejected,
    }
