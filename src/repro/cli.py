"""Command-line interface: ``python -m repro <command>``.

Subcommands map one-to-one onto the library's entry points:

* ``litmus``        — run the litmus corpus (classic / paper / all).
* ``show``          — print a litmus program's IR listing.
* ``explain``       — find and render a relaxed execution reaching an
  outcome (``python -m repro explain LB t0_r0=1 t1_r1=1``).
* ``verify-sekvm``  — the Section 5 verification (optionally all 16
  versions and/or the seeded-bug suite).
* ``verify-locks``  — the synchronization-primitive sweep.
* ``table1`` / ``table3`` / ``figure8`` / ``figure9`` — regenerate the
  evaluation artifacts.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence


def _add_parallel_flags(parser: argparse.ArgumentParser) -> None:
    """``--jobs N`` / ``--no-cache`` for the exploration-heavy commands.

    ``--jobs`` defaults to -1, which :func:`repro.parallel.resolve_jobs`
    expands to ``os.cpu_count()``; ``--jobs 1`` forces serial.
    """
    parser.add_argument(
        "--jobs", "-j", type=int, default=-1, metavar="N",
        help="worker processes (default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--shard-jobs", type=int, default=None, metavar="N",
        help="split each single exploration's frontier over N "
        "work-stealing shards (sets REPRO_SHARD; default: unsharded; "
        "-1 = all CPUs; results are bit-identical to serial)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the persistent exploration cache",
    )
    parser.add_argument(
        "--no-memo", action="store_true",
        help="disable certification memoization (sets REPRO_CERT_MEMO=0; "
        "results are identical, only slower — a debugging/benchmark knob)",
    )
    parser.add_argument(
        "--no-fuse", action="store_true",
        help="run every wDRF condition as its own exploration pass "
        "(sets REPRO_FUSE=0; reports are identical, only slower — a "
        "debugging/benchmark knob)",
    )
    parser.add_argument(
        "--backend", choices=("explore", "bmc", "auto"), default=None,
        help="verification backend (sets REPRO_BACKEND): 'explore' "
        "enumerates interleavings, 'bmc' compiles encodable queries to "
        "SAT, 'auto' routes each query by predicted cost "
        "(default: REPRO_BACKEND or 'explore')",
    )
    parser.add_argument(
        "--model", choices=("arm", "tso", "sc"), default=None,
        help="target architecture for relaxed explorations (sets "
        "REPRO_MODEL): 'arm' is the Promising Arm model, 'tso' the "
        "store-buffer TSO model, 'sc' sequential consistency "
        "(default: REPRO_MODEL or 'arm'; see docs/PORTABILITY.md)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """``--trace FILE`` / ``--metrics-out FILE`` observability flags.

    ``--trace`` installs a recording sink for the whole command and
    writes the structured event trace as JSON; ``--metrics-out`` enables
    the metrics registry (aggregated across worker processes) and writes
    its snapshot.  Both default to off, which costs nothing (see
    ``docs/OBSERVABILITY.md``).
    """
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record a structured event trace of this command to FILE "
        "(JSON; spans + promise/barrier/TLB/POR/cache events)",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE",
        help="collect engine metrics (counters/gauges/histograms, "
        "aggregated across --jobs workers) and write them to FILE as JSON",
    )


def _apply_cache_flag(args: argparse.Namespace) -> bool:
    """Honor ``--no-cache`` / ``--no-memo`` / ``--no-fuse`` /
    ``--shard-jobs``; returns the ``cache=`` value for libraries."""
    if getattr(args, "no_memo", False):
        os.environ["REPRO_CERT_MEMO"] = "0"
    if getattr(args, "no_fuse", False):
        os.environ["REPRO_FUSE"] = "0"
    if getattr(args, "shard_jobs", None) is not None:
        os.environ["REPRO_SHARD"] = str(args.shard_jobs)
    if getattr(args, "backend", None) is not None:
        os.environ["REPRO_BACKEND"] = args.backend
    if getattr(args, "model", None) is not None:
        os.environ["REPRO_MODEL"] = args.model
    if getattr(args, "no_cache", False):
        os.environ["REPRO_EXPLORE_CACHE"] = "0"
        return False
    return True


def _cmd_litmus(args: argparse.Namespace) -> int:
    from repro.litmus import (
        classic_corpus,
        corpus_report,
        full_corpus,
        paper_examples,
        run_corpus,
    )

    corpus = {
        "classic": classic_corpus,
        "paper": paper_examples,
        "all": full_corpus,
    }[args.corpus]()
    cache = _apply_cache_flag(args)
    outcomes = run_corpus(corpus, jobs=args.jobs, cache=cache,
                          model=args.model)
    print(corpus_report(outcomes))
    return 0 if all(o.passed for o in outcomes) else 1


def _find_test(name: str):
    from repro.litmus import full_corpus

    for test in full_corpus():
        if test.name.lower() == name.lower():
            return test
    matches = [t for t in full_corpus() if name.lower() in t.name.lower()]
    if len(matches) == 1:
        return matches[0]
    available = ", ".join(t.name for t in full_corpus())
    raise SystemExit(f"unknown litmus test {name!r}; available: {available}")


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.ir import format_program

    test = _find_test(args.name)
    print(format_program(test.program))
    condition = ", ".join(f"{k}={v}" for k, v in test.condition.items())
    print(f"postcondition: {condition}")
    tso = test.expected_tso
    print(
        f"allowed on SC: {test.allowed_sc}; on TSO: "
        f"{'unpinned' if tso is None else tso}; "
        f"on relaxed Arm: {test.allowed_rm}"
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.memory import explain_outcome
    from repro.memory.semantics import ModelConfig

    test = _find_test(args.name)
    constraints = {}
    for item in args.constraints or []:
        key, _, value = item.partition("=")
        constraints[key] = int(value, 0)
    if not constraints:
        constraints = dict(test.condition)
    cfg = ModelConfig(relaxed=not args.sc,
                      max_promises_per_thread=test.max_promises)
    trace = explain_outcome(test.program, cfg, **constraints)
    if trace is None:
        model = "SC" if args.sc else "Promising Arm"
        print(f"outcome unreachable on the {model} model")
        return 1
    print(trace.render())
    return 0


def _cmd_verify_sekvm(args: argparse.Namespace) -> int:
    from repro.sekvm import verify_all_versions, verify_sekvm

    _apply_cache_flag(args)
    if args.all_versions:
        outcomes = verify_all_versions(include_buggy=args.buggy,
                                       jobs=args.jobs)
    else:
        outcomes = [verify_sekvm(include_buggy=args.buggy, jobs=args.jobs)]
    ok = True
    for outcome in outcomes:
        print(outcome.describe())
        ok &= outcome.all_as_expected
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.parallel import resolve_jobs
    from repro.parallel.bench import (
        bench_exploration,
        format_bench,
        write_bench_json,
    )

    _apply_cache_flag(args)
    results = bench_exploration(
        jobs=resolve_jobs(args.jobs),
        shard_jobs=getattr(args, "shard_jobs", None),
        only=getattr(args, "only", None),
    )
    print(format_bench(results))
    if args.output:
        write_bench_json(args.output, results)
        print(f"wrote {args.output}")
    return 0


def _cmd_verify_locks(args: argparse.Namespace) -> int:
    from repro.sync import verify_all

    ok = True
    for result in verify_all(n_cpus=args.cpus):
        print(result.describe())
        ok &= result.as_expected
    return 0 if ok else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.report import format_table1, loc_table

    print(format_table1(loc_table()))
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.perf import format_table3, run_table3

    print(format_table3(run_table3(linux=args.linux)))
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    from repro.perf import format_figure8, run_figure8
    from repro.report import grouped_bars

    results = run_figure8()
    print(format_figure8(results))
    if args.chart:
        groups = {}
        for r in results:
            if r.linux != "4.18":
                continue
            groups.setdefault(f"{r.workload}/{r.machine}", {})[
                r.hypervisor
            ] = r.normalized_perf
        print()
        print(grouped_bars(groups, ("KVM", "SeKVM"),
                           title="Figure 8 (normalized to native, 4.18)"))
    return 0


def _cmd_figure9(args: argparse.Namespace) -> int:
    from repro.perf import VM_COUNTS, format_figure9, run_figure9
    from repro.report import series_chart

    points = run_figure9()
    print(format_figure9(points))
    if args.chart:
        table = {
            (p.workload, p.hypervisor, p.vms): p.normalized_perf
            for p in points
        }
        for workload in sorted({p.workload for p in points}):
            series = {
                hyp: [table[(workload, hyp, n)] for n in VM_COUNTS]
                for hyp in ("KVM", "SeKVM")
            }
            print()
            print(series_chart(list(VM_COUNTS), series,
                               title=f"Figure 9: {workload} (m400)"))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.conformance import (
        PROFILES,
        FuzzConfig,
        fuzz_parallel,
        run_fuzz,
    )

    _apply_cache_flag(args)
    profiles = tuple(args.profiles.split(",")) if args.profiles else PROFILES
    unknown = [p for p in profiles if p not in PROFILES]
    if unknown:
        print(f"unknown profile(s): {', '.join(unknown)}; "
              f"available: {', '.join(PROFILES)}")
        return 2
    budget = args.budget
    if budget is None and args.minutes is None:
        budget = 50
    config = FuzzConfig(
        seed=args.seed,
        budget=budget,
        minutes=args.minutes,
        profiles=profiles,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
    )
    if args.minutes is None and args.jobs != 1:
        report = fuzz_parallel(config, jobs=args.jobs)
    else:
        report = run_fuzz(config)
    print(report.describe())
    if report.findings and args.corpus:
        print(f"counterexamples written to {args.corpus}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the verification job server until interrupted."""
    import asyncio

    from repro.serve.server import ServeConfig, run_server

    overrides = {
        name: value
        for name, value in (
            ("host", args.host),
            ("port", args.port),
            ("workers", args.workers),
            ("queue_limit", args.queue_limit),
            ("batch", args.batch),
            ("hot_entries", args.hot_entries),
            ("hot_mb", args.hot_mb),
            ("tenant_rate", args.tenant_rate),
            ("tenant_burst", args.tenant_burst),
        )
        if value is not None
    }
    try:
        asyncio.run(run_server(ServeConfig.from_env(**overrides)))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the persistent caches (engine + serve layers)."""
    import json

    from repro.memory.cache import clear_disk_cache, disk_stats, lookup_stats

    if args.action == "clear":
        removed = clear_disk_cache()
        print(f"removed {removed} cache file(s) from {disk_stats()['dir']}")
        return 0
    stats = disk_stats()
    lookups = lookup_stats()
    if args.json:
        print(json.dumps({"disk": stats, "lookups": lookups},
                         indent=2, sort_keys=True))
        return 0
    print(f"cache dir: {stats['dir']}")
    for layer in ("engine", "serve"):
        info = stats[layer]
        line = (f"  {layer:<8} {info['entries']} entries, "
                f"{info['bytes']:,} bytes")
        if info["stale_tmp"]:
            line += f", {info['stale_tmp']} stale tmp file(s)"
        print(line)
    layers = sorted(set(lookups["hits"]) | set(lookups["misses"]))
    if layers:
        print("lookups (this process):")
        for layer in layers:
            hits = lookups["hits"].get(layer, 0)
            misses = lookups["misses"].get(layer, 0)
            total = hits + misses
            rate = hits / total if total else 0.0
            print(f"  {layer:<8} {hits} hit(s), {misses} miss(es) "
                  f"({rate:.0%} hit rate)")
    else:
        print("lookups (this process): none recorded")
    return 0


def _find_sekvm_case(name: str):
    """Resolve a KCore primitive case by (fuzzy) name, like litmus tests."""
    from repro.sekvm.ir_programs import kcore_buggy_cases, kcore_verified_cases

    cases = list(kcore_verified_cases()) + list(kcore_buggy_cases())
    for case in cases:
        if case.name.lower() == name.lower():
            return case
    matches = [c for c in cases if name.lower() in c.name.lower()]
    if len(matches) == 1:
        return matches[0]
    available = ", ".join(c.name for c in cases)
    raise SystemExit(f"unknown SeKVM case {name!r}; available: {available}")


def _emit_explanation(args, trace, program, notes) -> None:
    """Print (or write) the rendered/JSON explanation per the flags."""
    import json

    from repro.obs.render import explanation_json, render_explanation

    if args.json:
        text = json.dumps(
            explanation_json(trace, program, notes=notes),
            indent=2, sort_keys=True,
        )
    else:
        text = render_explanation(trace, program, notes=notes)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Explain a counterexample: corpus witness or failing wDRF check."""
    from repro.obs.render import explain_conformance_entry, explain_drf_violation

    _apply_cache_flag(args)
    if args.wdrf:
        case = _find_sekvm_case(args.wdrf)
        spec = case.spec
        trace = explain_drf_violation(
            spec.program, spec.shared_locs, spec.initial_ownership,
            **spec.overrides(),
        )
        if trace is None:
            print(
                f"{case.name}: no push/pull panic is reachable — the "
                f"program satisfies the ownership discipline"
            )
            return 0 if case.should_verify else 1
        notes = [
            f"subject: {case.name} (paper ref: {case.paper_ref or 'n/a'})",
            "witness: an execution panicking under the push/pull "
            "ownership discipline (DRF-Kernel / No-Barrier-Misuse failure)",
        ]
        _emit_explanation(args, trace, spec.program, notes)
        return 0
    if not args.witness:
        print("trace: provide a counterexample witness file or --wdrf NAME")
        return 2
    from repro.conformance.corpus import load_entry

    entry = load_entry(args.witness)
    trace, program, notes = explain_conformance_entry(entry)
    if trace is None:
        print(
            f"{args.witness}: no execution illustrating the disagreement "
            f"was found within the exploration budget"
        )
        for note in notes:
            print(f"  {note}")
        return 1
    _emit_explanation(args, trace, program, notes)
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.vrm.repair import repair_barriers

    test = _find_test(args.name)
    result = repair_barriers(test.program, max_fixes=args.max_fixes)
    print(result.describe(test.program))
    return 0


def _cmd_portability(args: argparse.Namespace) -> int:
    """Re-verify the corpus under SC, TSO, and Arm; print the matrix."""
    from repro.vrm.portability import build_matrix, render_matrix

    cache = _apply_cache_flag(args)
    matrix = build_matrix(cache=cache)
    print(render_matrix(matrix))
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(matrix, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    ok = all(
        row["sc_subset_tso"] and row["tso_subset_arm"]
        for section in ("litmus", "sekvm")
        for row in matrix[section]
    )
    return 0 if ok else 1


def _cmd_contention(args: argparse.Namespace) -> int:
    from repro.perf.contention import format_contention, run_contention_study

    print(format_contention(run_contention_study()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the complete reproduction report in one shot."""
    from repro.litmus import corpus_report, run_corpus
    from repro.perf import (
        format_figure8,
        format_figure9,
        format_table3,
        run_figure8,
        run_figure9,
        run_table3,
    )
    from repro.perf.contention import format_contention, run_contention_study
    from repro.report import format_table1, loc_table
    from repro.sekvm import verify_sekvm
    from repro.sync import verify_all

    banner = "=" * 72
    print(banner)
    print("VRM reproduction — complete report")
    print(banner)

    print("\n[1/7] Table 1 — verification effort breakdown")
    print(format_table1(loc_table()))

    print("\n[2/7] Table 3 — microbenchmarks (cycles)")
    print(format_table3(run_table3()))

    print("\n[3/7] Figure 8 — single-VM application performance")
    print(format_figure8(run_figure8()))

    print("\n[4/7] Figure 9 — multi-VM scalability")
    print(format_figure9(run_figure9()))

    print("\n[5/7] Litmus corpus (Examples 1-7 + classics)")
    print(corpus_report(run_corpus()))

    print("\n[6/7] SeKVM wDRF verification (original configuration)")
    print(verify_sekvm(include_buggy=True).describe())

    print("\n[7/7] Synchronization-primitive sweep + lock contention")
    for result in verify_all():
        print("  " + result.describe())
    print(format_contention(run_contention_study()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "VRM reproduction: verify concurrent kernel code on relaxed "
            "memory and regenerate the paper's evaluation"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("litmus", help="run the litmus corpus")
    p.add_argument("--corpus", choices=("classic", "paper", "all"),
                   default="all")
    _add_parallel_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_litmus)

    p = sub.add_parser("show", help="print a litmus program listing")
    p.add_argument("name")
    p.set_defaults(fn=_cmd_show)

    p = sub.add_parser("explain", help="render an execution reaching an outcome")
    p.add_argument("name")
    p.add_argument("constraints", nargs="*",
                   help="t<tid>_<reg>=<value> (default: the test's condition)")
    p.add_argument("--sc", action="store_true",
                   help="search the SC model instead of Promising Arm")
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_explain)

    p = sub.add_parser("verify-sekvm", help="run the wDRF verification of SeKVM")
    p.add_argument("--all-versions", action="store_true")
    p.add_argument("--buggy", action="store_true",
                   help="include the seeded-bug variants")
    _add_parallel_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_verify_sekvm)

    p = sub.add_parser(
        "bench", help="benchmark the exploration engine (POR/cache/parallel)"
    )
    p.add_argument("--output", "-o", metavar="FILE",
                   help="also write the results as JSON (BENCH_exploration)")
    p.add_argument("--only", metavar="SECTION", default=None,
                   choices=("litmus_corpus", "promise_heavy", "wdrf",
                            "verify_sekvm", "bmc", "serve", "vm",
                            "portability"),
                   help="measure a single section (the CI smoke path)")
    _add_parallel_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("verify-locks", help="verify synchronization primitives")
    p.add_argument("--cpus", type=int, default=2)
    p.set_defaults(fn=_cmd_verify_locks)

    p = sub.add_parser("table1", help="regenerate table1")
    p.set_defaults(fn=_cmd_table1)

    for name, fn in (
        ("figure8", _cmd_figure8),
        ("figure9", _cmd_figure9),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--chart", action="store_true",
                       help="also render an ASCII chart")
        p.set_defaults(fn=fn)

    p = sub.add_parser("table3", help="regenerate table3")
    p.add_argument("--linux", default="4.18")
    p.set_defaults(fn=_cmd_table3)

    p = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing across models and engine "
        "configurations",
    )
    p.add_argument("--seed", "--start", dest="seed", type=int, default=0,
                   help="root seed; program i derives its own RNG stream "
                   "from (seed, i)")
    p.add_argument("--budget", "--count", dest="budget", type=int,
                   default=None, metavar="N",
                   help="number of programs to generate (default 50 "
                   "unless --minutes is given)")
    p.add_argument("--minutes", type=float, default=None,
                   help="wall-clock budget; overrides the default program "
                   "budget")
    p.add_argument("--corpus", metavar="DIR",
                   help="persist shrunk counterexamples to this directory")
    p.add_argument("--profiles", metavar="P1,P2,...",
                   help="generation profiles "
                        "(default: plain,fenced,mmu,sync,vm)")
    p.add_argument("--no-shrink", action="store_true",
                   help="record raw counterexamples without delta-debugging")
    _add_parallel_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "trace",
        help="explain a counterexample step by step (per-thread views, "
        "promises, certification outcomes, coherence order)",
    )
    p.add_argument("witness", nargs="?",
                   help="a conformance-corpus counterexample JSON file")
    p.add_argument("--wdrf", metavar="NAME",
                   help="explain the DRF failure of a SeKVM case instead "
                   "(e.g. 'gen_vmid[no-barriers]'; fuzzy names accepted)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable explanation")
    p.add_argument("--out", metavar="FILE",
                   help="write the explanation to FILE instead of stdout")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the persistent "
                   "exploration cache")
    p.set_defaults(fn=_cmd_trace, no_memo=False, no_fuse=False)

    p = sub.add_parser(
        "serve",
        help="run the verification job server (content-addressed dedup, "
        "persistent workers, SSE progress streams)",
    )
    p.add_argument("--host", default=None,
                   help="bind address (default: REPRO_SERVE_HOST or "
                   "127.0.0.1)")
    p.add_argument("--port", type=int, default=None,
                   help="bind port; 0 picks an ephemeral port "
                   "(default: REPRO_SERVE_PORT or 8044)")
    p.add_argument("--workers", type=int, default=None,
                   help="persistent pre-forked workers; 0 runs jobs "
                   "inline on a server thread (default: "
                   "REPRO_SERVE_WORKERS or 1)")
    p.add_argument("--queue-limit", type=int, default=None,
                   help="bounded cold-job queue; on overflow the oldest "
                   "queued job is shed with a typed 429 (default: "
                   "REPRO_SERVE_QUEUE or 64)")
    p.add_argument("--batch", type=int, default=None,
                   help="max jobs handed to a worker per dispatch, "
                   "grouped by content-key affinity (default: "
                   "REPRO_SERVE_BATCH or 4)")
    p.add_argument("--hot-entries", type=int, default=None,
                   help="hot-tier result cache entry cap; 0 disables "
                   "(default: REPRO_SERVE_HOT_ENTRIES or 1024)")
    p.add_argument("--hot-mb", type=float, default=None,
                   help="hot-tier byte cap in MiB (default: "
                   "REPRO_SERVE_HOT_MB or 64)")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="cold jobs/second each tenant may submit; 0 "
                   "disables throttling (default: "
                   "REPRO_SERVE_TENANT_RATE or 0)")
    p.add_argument("--tenant-burst", type=float, default=None,
                   help="tenant token-bucket burst ceiling (default: "
                   "REPRO_SERVE_TENANT_BURST or 20)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the persistent exploration/result caches",
    )
    p.add_argument("action", choices=("stats", "clear"),
                   help="'stats' reports entry counts, bytes on disk, and "
                   "per-layer hit rates; 'clear' removes all entries")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable stats")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "portability",
        help="certify the SC ⊆ TSO ⊆ Arm model-portfolio containment "
        "over the litmus catalog and the SeKVM corpus",
    )
    p.add_argument("--output", "-o", metavar="FILE",
                   help="also write the verdict matrix as JSON "
                   "(the tests/corpus/portability_verdicts.json schema)")
    _add_parallel_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=_cmd_portability)

    p = sub.add_parser("contention", help="lock-contention study")
    p.set_defaults(fn=_cmd_contention)

    p = sub.add_parser(
        "repair", help="find the minimal barrier fix for a litmus program"
    )
    p.add_argument("name")
    p.add_argument("--max-fixes", type=int, default=2)
    p.set_defaults(fn=_cmd_repair)

    p = sub.add_parser("report", help="regenerate the complete report")
    p.set_defaults(fn=_cmd_report)

    return parser


def _run_with_obs(args: argparse.Namespace) -> int:
    """Run the selected command under the requested observability.

    ``--trace FILE`` wraps the command in a recording sink and writes
    the event trace; ``--metrics-out FILE`` enables metric collection
    (workers ship their snapshots back through the pool) and writes the
    merged registry.  Without either flag the command runs on the
    zero-cost default path.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    if not trace_path and not metrics_path:
        return args.fn(args)
    from repro.obs import metrics, tracer

    if metrics_path:
        metrics.enable()
        metrics.REGISTRY.reset()
    try:
        if trace_path:
            with tracer.recording(max_events=1_000_000) as rec:
                code = args.fn(args)
            rec.write(trace_path)
            print(f"wrote {len(rec.events)} trace events to {trace_path}"
                  + (f" ({rec.dropped} dropped)" if rec.dropped else ""))
        else:
            code = args.fn(args)
    finally:
        if metrics_path:
            metrics.REGISTRY.write(metrics_path)
            metrics.disable()
            print(f"wrote metrics to {metrics_path}")
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    try:
        return _run_with_obs(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout: stop
        # quietly instead of tracing back, and point stdout at devnull
        # so the interpreter's exit-time flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
