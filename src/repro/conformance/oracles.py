"""Executable conformance oracles: the paper's relations as assertions.

Each oracle takes a :class:`~repro.conformance.genome.Genome`, runs the
engine some number of ways, and returns :class:`Disagreement` records
for every relation that failed to hold.  The oracles are chosen so that
each is *sound for its profile* — it can only fire on a genuine engine
bug, never on an expected relaxed-memory effect:

``containment``
    SC ⊆ RM on the same program: the SC model's scheduler/read choices
    are a subset of the relaxed model's, so every SC behavior must be
    reachable relaxed.  Holds for arbitrary programs (not under the
    push/pull models, whose barrier-fulfillment panics exist only on
    the relaxed side — hence skipped for ``sync`` genomes).
``portability``
    The model-portfolio refinement of ``containment``: SC ⊆ TSO and
    TSO ⊆ Arm on the same program (:func:`repro.vrm.portability.
    check_portability`).  Sound for the same reason containment is,
    with the TSO model as the middle rung; kills the seeded
    ``lost-flush`` and ``read-skips-own-buffer`` store-buffer mutants.
``equivalence``
    RM = SC on ``fenced`` genomes: a full barrier after every access
    makes the program data-race-free by construction, so by the
    theorem the relaxed behaviors must collapse onto the SC set.  This
    is the executable form of the paper's guarantee on *random*
    programs rather than the curated corpus.
``axiomatic``
    Operational = axiomatic outcome sets on programs the simplified
    Armv8 axiomatic model accepts (straight-line, non-RMW).
``por`` / ``memo`` / ``jobs``
    Engine configurations are behavior-preserving: partial-order
    reduction on/off, certification memoization on/off, and process-
    pool vs. serial evaluation must each produce bit-identical behavior
    sets.
``fuse``
    :func:`repro.vrm.verifier.verify_wdrf` with fused streaming passes
    produces a report bit-identical to the legacy per-condition
    layout.
``monitor``
    The streaming :class:`~repro.vrm.drf_kernel.DRFKernelMonitor`'s
    verdict agrees with ground truth recomputed from a monitor-free
    exhaustive exploration's panic set — the oracle that catches a
    checker which silently swallows violations.
``backend``
    The SAT/BMC backend (:mod:`repro.smt`) enumerates exactly the
    exploration engine's behavior sets on both models, for every
    program inside the encodable fragment — the relation that keeps
    the second verification backend honest (and kills the seeded
    ``bmc-*`` encoder mutants).
``vm``
    Property-based checks on ``vm`` genomes (the fixed break-before-make
    skeleton run under the ``bbm``/``walk-cache``/``had`` features):
    after the updater's honest remap handshake, the accessor's checked
    load reaches the *new* frame or faults inside the remap window —
    never the old frame — and every fault-free behavior leaves a
    dirty leaf entry behind the probe store.  Sound for arbitrary
    accessor fragments because the skeleton's protocol is honest by
    construction; fires on the seeded ``bbm-skipped``,
    ``stale-intermediate-walk`` and ``lost-dirty-bit`` mutants.

:func:`check_genome` selects the sound subset for a genome's profile
(plus the expensive ``fuse``/``jobs`` oracles when asked) and is the
single entry point used by the fuzzing engine, the shrinker, and the
corpus replayer.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.conformance.genome import (
    VM_NEW_VAL,
    VM_PROFILE_FEATURES,
    VM_T_NEW,
    VM_T_OLD,
    VM_VPN_B,
    Genome,
    build,
    shared_locations,
)
from repro.ir.program import Program
from repro.memory.axiomatic import axiomatic_outcomes, eligible
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import PROMISING_ARM, PTE_DIRTY, SC
from repro.smt.backend import bmc_explore, bmc_supported
from repro.smt.encode import Unsupported
from repro.parallel import parallel_map
from repro.vrm.conditions import ConditionResult
from repro.vrm.drf_kernel import check_drf_kernel, plan_drf_kernel
from repro.vrm.verifier import WDRFSpec, verify_wdrf

__all__ = [
    "ORACLES",
    "Disagreement",
    "check_genome",
    "oracles_for",
]

#: All oracle names, in the order :func:`check_genome` runs them.
ORACLES: Tuple[str, ...] = (
    "containment",
    "equivalence",
    "axiomatic",
    "backend",
    "monitor",
    "vm",
    "por",
    "memo",
    "portability",
    "fuse",
    "jobs",
)

#: The sound, always-on oracle subset per generation profile.
#: ``portability`` runs after the single-model oracles so a mutant that
#: breaks the default model keeps its historical attribution; only the
#: TSO-specific mutants fall through to it.
_PROFILE_ORACLES = {
    "plain": ("containment", "axiomatic", "backend", "por", "memo",
              "portability"),
    "fenced": ("containment", "equivalence", "backend", "por", "memo",
               "portability"),
    "mmu": ("containment", "por", "memo", "portability"),
    "sync": ("monitor",),
    "vm": ("vm",),
}

#: Expensive oracles added when the caller opts into a heavy check.
_HEAVY_ORACLES = {
    "plain": ("jobs",),
    "fenced": ("jobs",),
    "mmu": ("jobs",),
    "sync": ("fuse",),
    "vm": ("jobs",),
}


@dataclass(frozen=True)
class Disagreement:
    """One violated conformance relation, with a human-readable diff."""

    oracle: str
    detail: str

    def describe(self) -> str:
        """One line naming the oracle and its verdict."""
        return f"[{self.oracle}] {self.detail}"


def oracles_for(profile: str, heavy: bool = False) -> Tuple[str, ...]:
    """The oracle names :func:`check_genome` runs for *profile*."""
    names = _PROFILE_ORACLES[profile]
    if heavy:
        names = names + _HEAVY_ORACLES[profile]
    return names


@contextlib.contextmanager
def _env(name: str, value: str) -> Iterator[None]:
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def _behaviors_diff(
    label_a: str, a: ExplorationResult, label_b: str, b: ExplorationResult
) -> Optional[str]:
    """A readable description of the symmetric difference, or None."""
    only_a = a.behaviors - b.behaviors
    only_b = b.behaviors - a.behaviors
    if not only_a and not only_b:
        return None
    parts = []
    for label, extra in ((label_a, only_a), (label_b, only_b)):
        if extra:
            shown = ", ".join(_pretty_sorted(extra)[:3])
            more = f" (+{len(extra) - 3} more)" if len(extra) > 3 else ""
            parts.append(f"{label}-only: {shown}{more}")
    return "; ".join(parts)


def _pretty_sorted(behaviors) -> List[str]:
    # Behaviors sort by rendered text: raw tuple ordering can compare
    # None register values / panic strings against ints and raise.
    return sorted(b.pretty() for b in behaviors)


def _observe(program: Program) -> List[int]:
    return sorted(program.initial_memory)


def _explore_raw(args) -> ExplorationResult:
    """Module-level (picklable) uncached exploration job for the pool."""
    program, cfg, observe = args
    return cached_explore(program, cfg, observe_locs=observe, cache=False)


# ----------------------------------------------------------------------
# the oracles
# ----------------------------------------------------------------------

def _check_containment(program: Program) -> List[Disagreement]:
    observe = _observe(program)
    sc = cached_explore(program, SC, observe_locs=observe)
    rm = cached_explore(program, PROMISING_ARM, observe_locs=observe)
    missing = sc.behaviors - rm.behaviors
    if not missing:
        return []
    shown = ", ".join(_pretty_sorted(missing)[:3])
    return [Disagreement(
        oracle="containment",
        detail=f"SC ⊄ RM: {len(missing)} SC behavior(s) unreachable on "
        f"the relaxed model, e.g. {shown}",
    )]


def _check_portability(program: Program) -> List[Disagreement]:
    from repro.vrm.portability import check_portability

    return [
        Disagreement(oracle="portability", detail=problem)
        for problem in check_portability(program)
    ]


def _check_equivalence(program: Program) -> List[Disagreement]:
    observe = _observe(program)
    sc = cached_explore(program, SC, observe_locs=observe)
    rm = cached_explore(program, PROMISING_ARM, observe_locs=observe)
    rm_only = rm.behaviors - sc.behaviors
    if not rm_only:
        return []
    shown = ", ".join(_pretty_sorted(rm_only)[:3])
    return [Disagreement(
        oracle="equivalence",
        detail=f"fully fenced program shows {len(rm_only)} RM-only "
        f"behavior(s): {shown}",
    )]


def _check_axiomatic(program: Program) -> List[Disagreement]:
    if not eligible(program):
        return []
    ax = axiomatic_outcomes(program)
    op = cached_explore(
        program, PROMISING_ARM, observe_locs=_observe(program)
    )
    operational = {(b.registers, b.memory) for b in op.behaviors}
    if ax == operational:
        return []
    only_ax = len(ax - operational)
    only_op = len(operational - ax)
    return [Disagreement(
        oracle="axiomatic",
        detail=f"axiomatic/operational disagreement: {only_ax} "
        f"axiomatic-only, {only_op} operational-only outcome(s)",
    )]


def _check_backend(program: Program) -> List[Disagreement]:
    out: List[Disagreement] = []
    for label, cfg in (("SC", SC), ("RM", PROMISING_ARM)):
        if bmc_supported(program, cfg) is not None:
            continue
        observe = _observe(program)
        try:
            solved = bmc_explore(program, cfg, observe, cache=False)
        except Unsupported:
            continue  # domain blow-up found during encoding
        explored = cached_explore(program, cfg, observe_locs=observe)
        diff = _behaviors_diff("bmc", solved, "exploration", explored)
        if diff:
            out.append(Disagreement(
                oracle="backend",
                detail=f"BMC changed the {label} behavior set: {diff}",
            ))
    return out


def _check_vm(program: Program) -> List[Disagreement]:
    """The ``vm`` profile's translation-soundness properties.

    On the relaxed model with the ``vm`` feature set enabled: (a) every
    fault-free behavior's checked load sees the *new* frame (the updater
    break-before-made honestly before the handshake, so no stale
    translation may survive it), and (b) every fault-free behavior's
    probe store left a dirty leaf entry for vpn B (hardware A/D updates
    are coherence-participating writes).
    """
    cfg = dataclasses.replace(
        PROMISING_ARM, vm_features=VM_PROFILE_FEATURES
    )
    result = cached_explore(program, cfg, observe_locs=_observe(program))
    stale: List[object] = []
    undirty = 0
    for b in result.behaviors:
        if any(f.tid == 1 for f in b.faults) or b.panic is not None:
            continue
        regs = {(t, r): v for t, r, v in b.registers}
        r_chk = regs.get((1, "r_chk"))
        if r_chk != VM_NEW_VAL:
            stale.append(r_chk)
        memory = dict(b.memory)
        leaves = (
            memory.get(VM_T_OLD + VM_VPN_B),
            memory.get(VM_T_NEW + VM_VPN_B),
        )
        if not any(v is not None and v & PTE_DIRTY for v in leaves):
            undirty += 1
    out: List[Disagreement] = []
    if stale:
        shown = sorted(set(stale), key=repr)[:3]
        out.append(Disagreement(
            oracle="vm",
            detail=f"{len(stale)} fault-free behavior(s) read a stale "
            f"translation after an honest break-before-make handshake "
            f"(r_chk in {shown}, expected {VM_NEW_VAL})",
        ))
    if undirty:
        out.append(Disagreement(
            oracle="vm",
            detail=f"{undirty} fault-free behavior(s) finished the probe "
            f"store without a dirty vpn-B leaf entry (hardware "
            f"dirty-bit update lost)",
        ))
    return out


def _check_por(program: Program) -> List[Disagreement]:
    out: List[Disagreement] = []
    for label, cfg in (("SC", SC), ("RM", PROMISING_ARM)):
        observe = _observe(program)
        reduced = cached_explore(
            program, cfg, observe_locs=observe, por=True
        )
        full = cached_explore(
            program, cfg, observe_locs=observe, por=False
        )
        diff = _behaviors_diff("reduced", reduced, "unreduced", full)
        if diff:
            out.append(Disagreement(
                oracle="por",
                detail=f"POR changed the {label} behavior set: {diff}",
            ))
    return out


def _check_memo(program: Program) -> List[Disagreement]:
    observe = _observe(program)
    with _env("REPRO_CERT_MEMO", "1"):
        on = _explore_raw((program, PROMISING_ARM, observe))
    with _env("REPRO_CERT_MEMO", "0"):
        off = _explore_raw((program, PROMISING_ARM, observe))
    diff = _behaviors_diff("memoized", on, "unmemoized", off)
    if diff:
        return [Disagreement(
            oracle="memo",
            detail=f"certification memo changed the RM behavior set: "
            f"{diff}",
        )]
    return []


def _check_jobs(program: Program) -> List[Disagreement]:
    # Four items so plan_jobs actually forks with two workers (two items
    # amortize to a serial plan); duplicates are fine — both sides run
    # uncached, so every position is an honest recomputation.
    observe = _observe(program)
    items = [
        (program, SC, observe),
        (program, PROMISING_ARM, observe),
        (program, SC, observe),
        (program, PROMISING_ARM, observe),
    ]
    pooled = parallel_map(_explore_raw, items, jobs=2)
    serial = [_explore_raw(item) for item in items]
    for idx, (p, s) in enumerate(zip(pooled, serial)):
        diff = _behaviors_diff("pooled", p, "serial", s)
        if diff:
            return [Disagreement(
                oracle="jobs",
                detail=f"pool/serial divergence on item {idx}: {diff}",
            )]
    return []


def _check_fuse(program: Program, shared: Tuple[int, ...]) -> List[Disagreement]:
    spec = WDRFSpec(program=program, shared_locs=shared)
    fused = verify_wdrf(spec, fuse=True)
    unfused = verify_wdrf(spec, fuse=False)
    diffs = []
    conditions = set(fused.results) | set(unfused.results)
    for cond in sorted(conditions, key=lambda c: c.value):
        a = fused.results.get(cond)
        b = unfused.results.get(cond)
        if a != b:
            diffs.append(f"{cond.value}: fused {a!r} != per-condition {b!r}")
    if diffs:
        return [Disagreement(
            oracle="fuse",
            detail="fused report differs from per-condition report: "
            + "; ".join(diffs),
        )]
    return []


def _check_monitor(
    program: Program, shared: Tuple[int, ...]
) -> List[Disagreement]:
    plan = plan_drf_kernel(program, shared)
    if isinstance(plan, ConditionResult):
        # No exploration was planned (uninstrumented program): nothing
        # for the streaming monitor to diverge from.  Genome validity
        # keeps fuzzed sync programs out of this branch.
        return []
    verdict = check_drf_kernel(program, shared)
    truth = cached_explore(program, plan.cfg, observe_locs=[])
    panics = sorted({
        b.panic for b in truth.behaviors
        if b.panic is not None and (
            "DRF violation" in b.panic or "push/pull violation" in b.panic
        )
    })
    truth_holds = not panics
    if verdict.holds == truth_holds:
        return []
    if verdict.holds:
        detail = (
            f"monitor verdict holds=True but a monitor-free exhaustive "
            f"exploration reaches {len(panics)} ownership panic(s), "
            f"e.g. {panics[0]!r}"
        )
    else:
        detail = (
            "monitor verdict holds=False but no ownership panic is "
            "reachable in a monitor-free exhaustive exploration"
        )
    return [Disagreement(oracle="monitor", detail=detail)]


def check_genome(
    genome: Genome,
    oracles: Optional[Sequence[str]] = None,
    heavy: bool = False,
) -> List[Disagreement]:
    """Run the conformance oracles for *genome*; [] means full agreement.

    ``oracles`` overrides the profile-derived selection (used by the
    shrinker and corpus replay, which chase one specific relation);
    ``heavy=True`` adds the expensive cross-checks (``jobs`` for data
    profiles, ``fuse`` for ``sync``) on top of the defaults.
    """
    if oracles is None:
        oracles = oracles_for(genome.profile, heavy=heavy)
    program = build(genome)
    shared = shared_locations(genome)
    out: List[Disagreement] = []
    for name in ORACLES:
        if name not in oracles:
            continue
        if name == "containment":
            out.extend(_check_containment(program))
        elif name == "portability":
            out.extend(_check_portability(program))
        elif name == "equivalence":
            out.extend(_check_equivalence(program))
        elif name == "axiomatic":
            out.extend(_check_axiomatic(program))
        elif name == "backend":
            out.extend(_check_backend(program))
        elif name == "monitor":
            out.extend(_check_monitor(program, shared))
        elif name == "vm":
            out.extend(_check_vm(program))
        elif name == "por":
            out.extend(_check_por(program))
        elif name == "memo":
            out.extend(_check_memo(program))
        elif name == "fuse":
            out.extend(_check_fuse(program, shared))
        elif name == "jobs":
            out.extend(_check_jobs(program))
        else:
            raise ValueError(f"unknown oracle {name!r}")
    return out
