"""Delta-debugging counterexample shrinker for conformance findings.

When an oracle fires on a fuzzed genome, the raw program is rarely the
story: most of its operations are bystanders.  :func:`shrink` reduces
the genome to a *1-minimal* one — removing any single remaining
operation (or thread) makes the disagreement vanish — using the classic
ddmin chunk schedule followed by a singleton fixpoint, then simplifies
the surviving operands (values to 1, locations toward index 0).

The predicate is "the same oracle still fires", evaluated through
:func:`repro.conformance.oracles.check_genome` restricted to the
triggering oracle, so shrinking never wanders onto a *different* bug.
Everything is deterministic — candidate order is fixed and the oracles
themselves are deterministic — and bounded by ``max_evals`` predicate
evaluations so a pathological genome cannot stall a fuzzing run.
Profile validity (:func:`repro.conformance.genome.valid`) is enforced
on every candidate: the shrinker will not, for example, delete a sync
genome's last ``pull`` and "minimize" the finding into the checker's
uninstrumented early-return.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.conformance.genome import Genome, valid
from repro.conformance.oracles import check_genome

__all__ = ["ShrinkResult", "oracle_predicate", "shrink"]

Predicate = Callable[[Genome], bool]


@dataclass(frozen=True)
class ShrinkResult:
    """The minimized genome plus the search's effort accounting."""

    genome: Genome
    evals: int
    removed_ops: int

    @property
    def size(self) -> int:
        """Size of the candidate genome (the shrinker minimizes this)."""
        return self.genome.size()


def oracle_predicate(oracle: str) -> Predicate:
    """The standard predicate: does *oracle* still fire on the genome?"""

    def predicate(genome: Genome) -> bool:
        """True when the candidate still reproduces the finding."""
        return any(
            d.oracle == oracle
            for d in check_genome(genome, oracles=(oracle,))
        )

    return predicate


def _positions(genome: Genome) -> List[Tuple[int, int]]:
    return [
        (t, i)
        for t, ops in enumerate(genome.threads)
        for i in range(len(ops))
    ]


def _without(genome: Genome, removed: Sequence[Tuple[int, int]]) -> Genome:
    """The genome with the given (thread, index) positions deleted
    (empty threads are kept so thread indices stay stable)."""
    gone = set(removed)
    threads = tuple(
        tuple(op for i, op in enumerate(ops) if (t, i) not in gone)
        for t, ops in enumerate(genome.threads)
    )
    return Genome(
        profile=genome.profile,
        threads=threads,
        n_locations=genome.n_locations,
        name=genome.name + "-shrunk",
    )


class _Budget:
    def __init__(self, predicate: Predicate, max_evals: int):
        self._predicate = predicate
        self._max = max_evals
        self.evals = 0

    def holds(self, genome: Genome) -> bool:
        """Check a candidate against the original failure, memoized."""
        if self.exhausted or not valid(genome):
            return False
        self.evals += 1
        return self._predicate(genome)

    @property
    def exhausted(self) -> bool:
        """True when every smaller candidate has been tried."""
        return self.evals >= self._max


def _ddmin_ops(genome: Genome, budget: _Budget) -> Genome:
    """Classic ddmin over the flat operation list."""
    positions = _positions(genome)
    chunk = max(1, len(positions) // 2)
    while chunk >= 1 and not budget.exhausted:
        shrunk = False
        start = 0
        while start < len(positions):
            removed = positions[start:start + chunk]
            candidate = _without(genome, removed)
            if budget.holds(candidate):
                genome = candidate
                positions = _positions(genome)
                shrunk = True
                # Restart the sweep on the smaller genome.
                start = 0
            else:
                start += chunk
        if not shrunk:
            chunk //= 2
    return genome


def _singleton_fixpoint(genome: Genome, budget: _Budget) -> Genome:
    """Drop single ops (then whole threads) until 1-minimal."""
    changed = True
    while changed and not budget.exhausted:
        changed = False
        for pos in _positions(genome):
            candidate = _without(genome, [pos])
            if budget.holds(candidate):
                genome = candidate
                changed = True
                break
        if changed:
            continue
        for t, ops in enumerate(genome.threads):
            if not ops:
                continue
            candidate = _without(genome, [(t, i) for i in range(len(ops))])
            if budget.holds(candidate):
                genome = candidate
                changed = True
                break
    return genome


def _simplify_operands(genome: Genome, budget: _Budget) -> Genome:
    """Canonicalize surviving operands: values to 1, locations to 0."""
    for t, i in _positions(genome):
        op = genome.threads[t][i]
        for simplified in (
            replace(op, val=1, loc=0),
            replace(op, val=1),
            replace(op, loc=0),
        ):
            if simplified == op:
                continue
            threads = [list(ops) for ops in genome.threads]
            threads[t][i] = simplified
            candidate = Genome(
                profile=genome.profile,
                threads=tuple(tuple(ops) for ops in threads),
                n_locations=genome.n_locations,
                name=genome.name,
            )
            if budget.holds(candidate):
                genome = candidate
                break
    return genome


def shrink(
    genome: Genome,
    predicate: Optional[Predicate] = None,
    oracle: Optional[str] = None,
    max_evals: int = 400,
) -> ShrinkResult:
    """Minimize *genome* while *predicate* (or ``oracle`` firing) holds.

    Exactly one of ``predicate``/``oracle`` must be given.  The input
    genome is required to satisfy the predicate; the result is
    1-minimal with respect to single-operation deletion unless the
    ``max_evals`` budget ran out first (the partially shrunk genome is
    still returned — it satisfies the predicate at every step).
    """
    if (predicate is None) == (oracle is None):
        raise ValueError("pass exactly one of predicate= or oracle=")
    if predicate is None:
        predicate = oracle_predicate(oracle)
    budget = _Budget(predicate, max_evals)
    original_size = genome.size()
    genome = _ddmin_ops(genome, budget)
    genome = _singleton_fixpoint(genome, budget)
    genome = _simplify_operands(genome, budget)
    return ShrinkResult(
        genome=genome,
        evals=budget.evals,
        removed_ops=original_size - genome.size(),
    )
