"""Behavior-set digests: the regression fingerprint of the engine.

A conformance harness compares the engine against *itself* in different
configurations; digests compare it against *its own past*.  For every
program in the litmus catalog we record a SHA-256 of the complete
behavior set under the SC, TSO, and relaxed configurations the litmus
runner uses (observing every initialized location, not just the
postcondition's, so drift anywhere in the outcome space is caught).
``tests/test_corpus_regression.py`` recomputes the digests on every
run and fails — naming the offending program — if any differ from the
checked-in ``tests/corpus/litmus_digests.json``.

Regenerate after an *intentional* semantics change with::

    PYTHONPATH=src python -m repro.conformance.digests tests/corpus/litmus_digests.json

and review the diff: every changed digest is a program whose behavior
set moved, which the commit message should be able to explain.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Dict

from repro.litmus.catalog import full_corpus
from repro.litmus.runner import litmus_configs, tso_config
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult

__all__ = ["behavior_digest", "litmus_digests", "write_digests"]


def behavior_digest(result: ExplorationResult) -> str:
    """A stable hash of a behavior set (and its completeness flag).

    Behaviors are rendered with :meth:`~repro.memory.datatypes.Behavior.
    pretty` and sorted as text — raw tuple ordering would compare None
    against ints — so the digest is independent of set iteration order.
    """
    h = hashlib.sha256()
    h.update(b"complete=1" if result.complete else b"complete=0")
    for line in sorted(b.pretty() for b in result.behaviors):
        h.update(b"\x00")
        h.update(line.encode())
    return h.hexdigest()


def litmus_digests() -> Dict[str, Dict[str, str]]:
    """``{test name: {"sc"|"tso"|"rm": digest}}`` over the catalog."""
    digests: Dict[str, Dict[str, str]] = {}
    for test in full_corpus():
        # Use the exact runner configs — tests carrying ``vm_features``
        # are digested under them, everything else under the seed pair.
        sc_cfg, rm_cfg = litmus_configs(test)
        observe = sorted(test.program.initial_memory)
        sc = cached_explore(test.program, sc_cfg, observe_locs=observe)
        rm = cached_explore(test.program, rm_cfg, observe_locs=observe)
        tso = cached_explore(
            test.program, tso_config(test), observe_locs=observe
        )
        digests[test.name] = {
            "sc": behavior_digest(sc),
            "tso": behavior_digest(tso),
            "rm": behavior_digest(rm),
        }
    return digests


def write_digests(path: str) -> None:
    """Write the corpus digest file used by conformance CI."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(litmus_digests(), fh, indent=2, sort_keys=True)
        fh.write("\n")


if __name__ == "__main__":  # pragma: no cover
    target = sys.argv[1] if len(sys.argv) > 1 else "tests/corpus/litmus_digests.json"
    write_digests(target)
    print(f"wrote {target}")
