"""Structural coverage accounting for the conformance fuzzer.

Random program generation plateaus quickly: after a few hundred draws,
most new programs exercise instruction shapes the oracles have already
agreed on.  The fuzzing engine therefore tracks *structural* coverage
of the genome space and feeds genomes that reached new territory back
into the mutation pool — the standard coverage-guided loop, with the
coverage domain chosen to mirror what actually distinguishes memory-
model behaviors:

* **adjacent kind pairs** per thread (with ``^``/``$`` boundary
  markers) — the reordering candidates;
* **barrier contexts** — which access kinds a barrier separates, the
  thing barrier semantics is *about*;
* **cross-thread communication pairs** — (writer kind, reader kind)
  over a shared location, the axis of every litmus test;
* **program shapes** — (profile, thread count, sorted thread lengths).

The map also aggregates the engine's own
:class:`~repro.memory.datatypes.EngineStats` counters from every
exploration the oracles ran, so a fuzzing report shows not just how
many programs were generated but how hard the engine worked (states
explored, POR ample hits, certification memo traffic, ...).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.conformance.genome import Genome
from repro.memory.datatypes import EngineStats, ExplorationResult

__all__ = ["CoverageMap"]

_WRITERS = ("store", "store_rel", "faa", "cas", "pt_store")
_READERS = ("load", "load_acq", "faa", "cas")
_BARRIERS = ("barrier_full", "barrier_ld", "barrier_st")


class CoverageMap:
    """Accumulates structural coverage and engine counters."""

    def __init__(self) -> None:
        self.kind_pairs: Set[Tuple[str, str, str]] = set()
        self.barrier_contexts: Set[Tuple[str, str, str]] = set()
        self.comm_pairs: Set[Tuple[str, str, str]] = set()
        self.shapes: Set[Tuple[str, int, Tuple[int, ...]]] = set()
        self.programs = 0
        self.explorations = 0
        self.states_explored = 0
        self.engine = EngineStats()

    # ------------------------------------------------------------------
    # genome-side coverage
    # ------------------------------------------------------------------
    def observe(self, genome: Genome) -> bool:
        """Fold a genome in; True iff it reached any new coverage."""
        self.programs += 1
        new = False
        profile = genome.profile
        for ops in genome.threads:
            kinds = ["^"] + [op.kind for op in ops] + ["$"]
            for a, b in zip(kinds, kinds[1:]):
                new |= self._add(self.kind_pairs, (profile, a, b))
            for i, op in enumerate(ops):
                if op.kind in _BARRIERS:
                    prev = kinds[i]  # kinds is offset by the "^" marker
                    nxt = kinds[i + 2]
                    new |= self._add(
                        self.barrier_contexts, (prev, op.kind, nxt)
                    )
        writers: Dict[int, Set[str]] = {}
        readers: Dict[int, Set[str]] = {}
        for ops in genome.threads:
            for op in ops:
                if op.kind in _WRITERS:
                    writers.setdefault(op.loc, set()).add(op.kind)
                if op.kind in _READERS:
                    readers.setdefault(op.loc, set()).add(op.kind)
        for loc, wkinds in writers.items():
            for rkind in readers.get(loc, ()):
                for wkind in wkinds:
                    new |= self._add(self.comm_pairs, (profile, wkind, rkind))
        shape = (
            profile,
            len(genome.threads),
            tuple(sorted(len(ops) for ops in genome.threads)),
        )
        new |= self._add(self.shapes, shape)
        return new

    @staticmethod
    def _add(target: Set, item) -> bool:
        if item in target:
            return False
        target.add(item)
        return True

    # ------------------------------------------------------------------
    # engine-side counters
    # ------------------------------------------------------------------
    def record_exploration(self, result: Optional[ExplorationResult]) -> None:
        """Fold one exploration's figures into the coverage map."""
        if result is None:
            return
        self.explorations += 1
        self.states_explored += result.states_explored
        if result.stats is not None:
            self.engine.add(result.stats)

    # ------------------------------------------------------------------
    # merging (parallel fuzzing chunks)
    # ------------------------------------------------------------------
    def merge(self, other: "CoverageMap") -> None:
        """Merge another worker's coverage snapshot into this one."""
        self.kind_pairs |= other.kind_pairs
        self.barrier_contexts |= other.barrier_contexts
        self.comm_pairs |= other.comm_pairs
        self.shapes |= other.shapes
        self.programs += other.programs
        self.explorations += other.explorations
        self.states_explored += other.states_explored
        self.engine.add(other.engine)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form of the coverage map."""
        return {
            "programs": self.programs,
            "kind_pairs": len(self.kind_pairs),
            "barrier_contexts": len(self.barrier_contexts),
            "comm_pairs": len(self.comm_pairs),
            "shapes": len(self.shapes),
            "explorations": self.explorations,
            "states_explored": self.states_explored,
            "engine": self.engine.as_dict(),
        }

    def fingerprint(self) -> Tuple[int, int, int, int]:
        """A compact determinism witness for tests."""
        return (
            len(self.kind_pairs),
            len(self.barrier_contexts),
            len(self.comm_pairs),
            len(self.shapes),
        )

    def summary(self) -> str:
        """One-line human-readable coverage summary."""
        lines: List[str] = [
            f"coverage: {len(self.kind_pairs)} kind pairs, "
            f"{len(self.barrier_contexts)} barrier contexts, "
            f"{len(self.comm_pairs)} communication pairs, "
            f"{len(self.shapes)} program shapes",
            f"engine:   {self.explorations} explorations, "
            f"{self.states_explored} states explored",
        ]
        return "\n".join(lines)
