"""Replayable counterexample corpus for the conformance harness.

Every disagreement the fuzzer finds is persisted as one JSON file
containing everything needed to reproduce it from scratch: the full
genome (and its shrunk form), the oracle that fired, the root seed and
program index it was generated from, and an *engine fingerprint* — the
source digests the exploration cache keys on plus the active mutant
set — so a replay can tell whether it is running against the same
engine that produced the finding.

The format is deliberately flat JSON (no pickles): corpus entries are
meant to be read by humans in code review, diffed in git, and uploaded
as CI artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.conformance.genome import Genome
from repro.conformance.oracles import Disagreement, check_genome
from repro.memory import mutants
from repro.memory.cache import code_fingerprint, monitor_code_fingerprint

__all__ = [
    "engine_fingerprint",
    "iter_corpus",
    "load_entry",
    "replay_entry",
    "save_finding",
]

_FORMAT_VERSION = 1


def engine_fingerprint() -> Dict[str, str]:
    """Identity of the engine that produced (or is replaying) a finding."""
    return {
        "code": code_fingerprint(),
        "monitors": monitor_code_fingerprint(),
        "mutants": mutants.fingerprint(),
    }


def save_finding(
    corpus_dir: str,
    seed: int,
    index: int,
    genome: Genome,
    disagreement: Disagreement,
    shrunk: Optional[Genome] = None,
) -> str:
    """Write one counterexample entry; returns the file path."""
    os.makedirs(corpus_dir, exist_ok=True)
    entry = {
        "version": _FORMAT_VERSION,
        "seed": seed,
        "index": index,
        "oracle": disagreement.oracle,
        "detail": disagreement.detail,
        "genome": genome.to_json(),
        "shrunk_genome": None if shrunk is None else shrunk.to_json(),
        "engine": engine_fingerprint(),
    }
    path = os.path.join(
        corpus_dir,
        f"counterexample-{seed}-{index}-{disagreement.oracle}.json",
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_entry(path: str) -> Dict[str, object]:
    """Load one saved counterexample entry from *path*."""
    with open(path, "r", encoding="utf-8") as fh:
        entry = json.load(fh)
    if entry.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported corpus format version "
            f"{entry.get('version')!r}"
        )
    return entry


def iter_corpus(corpus_dir: str) -> Iterator[Tuple[str, Dict[str, object]]]:
    """Yield ``(path, entry)`` for every counterexample in a directory."""
    if not os.path.isdir(corpus_dir):
        return
    for fname in sorted(os.listdir(corpus_dir)):
        if fname.startswith("counterexample-") and fname.endswith(".json"):
            path = os.path.join(corpus_dir, fname)
            yield path, load_entry(path)


def replay_entry(
    entry: Dict[str, object], use_shrunk: bool = True
) -> List[Disagreement]:
    """Re-run the entry's oracle on its (shrunk, by default) genome.

    An empty list means the disagreement no longer reproduces — either
    the bug was fixed or the engine changed; compare the entry's
    ``engine`` fingerprint against :func:`engine_fingerprint` to tell
    which story the replay is telling.
    """
    genome_json = None
    if use_shrunk:
        genome_json = entry.get("shrunk_genome")
    if genome_json is None:
        genome_json = entry["genome"]
    genome = Genome.from_json(genome_json)
    return check_genome(genome, oracles=(str(entry["oracle"]),))
