"""Serializable program genomes for the differential conformance harness.

The fuzzer does not mutate :class:`~repro.ir.program.Program` objects
directly: IR programs are rich (labels, expressions, spaces, MMU
configs) and most random edits would be meaningless or ill-formed.
Instead every generated program is described by a :class:`Genome` — a
flat, JSON-serializable list of per-thread :class:`OpSpec` entries drawn
from a *profile*'s operation alphabet — and :func:`build` lowers a
genome to a real program deterministically.  Everything downstream
(oracles, the shrinker, the corpus) operates on genomes, which makes
counterexamples replayable from a few lines of JSON and makes
delta-debugging a matter of deleting list entries.

Profiles
--------

Each profile pairs an operation alphabet with the oracle set that is
*sound* for it (see :mod:`repro.conformance.oracles`):

``plain``
    The full data alphabet: plain/acquire loads, plain/release stores,
    RMWs (``faa``/``cas``) and all three barrier kinds.  Arbitrary racy
    programs — only the one-directional SC ⊆ RM containment (and
    axiomatic agreement, engine-config agreement) can be asserted.
``fenced``
    Loads and stores only; :func:`build` inserts a ``dmb sy`` after
    every access.  Fully fenced programs are data-race-free by
    construction, so the paper's guarantee becomes testable on random
    programs: RM behaviors must *equal* SC behaviors.
``mmu``
    Data accesses plus stage-2 page-table stores and TLB invalidations —
    exercises the walker-floor and TLB bookkeeping that the plain
    alphabet never touches.
``sync``
    Loads/stores interleaved with ``Pull``/``Push`` ownership
    instrumentation over a shared-location footprint: the input language
    of the DRF-Kernel checker, used by the monitor-truth oracle.
    :func:`valid` requires at least one ``pull`` so the checker plans a
    real exploration instead of early-returning.
``vm``
    Accessor fragments around a *fixed* break-before-make skeleton, run
    under the ``bbm``/``walk-cache``/``had`` relaxed-virtual-memory
    features: a kernel updater honestly break-before-makes the non-leaf
    root entry from the old to the new translation table and releases a
    flag; the genome's first thread is the user accessor's pre-handshake
    phase, the remaining threads its post-handshake phase, and the build
    appends a leaf-only TLBI, a checked ``vload`` and a dirty-bit-probe
    ``vstore``.  The ``vm`` oracle asserts the post-handshake load can
    only reach the new frame (or fault inside the remap window) and that
    a completed store leaves a dirty leaf entry.  :func:`valid` requires
    a virtual access in the pre-phase so the walk cache actually gets
    primed with the stale intermediate descriptor.

Determinism
-----------

All randomness flows through explicitly threaded
:class:`random.Random` instances; :func:`derive_rng` (re-exported from
:mod:`repro.litmus.generate`) derives independent streams from a root
seed and a label path, so program *i* of a fuzzing run is a pure
function of ``(root_seed, i)`` regardless of how many oracles ran in
between.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import ThreadBuilder, build_program
from repro.ir.instructions import PTKind
from repro.ir.program import MMUConfig, Program
from repro.litmus.generate import derive_rng

__all__ = [
    "DATA_BASE",
    "PT_BASE",
    "PROFILES",
    "PROFILE_OPS",
    "VM_PROFILE_FEATURES",
    "Genome",
    "OpSpec",
    "build",
    "data_locations",
    "derive_rng",
    "mutate",
    "random_genome",
    "shared_locations",
    "valid",
]

#: Base addresses of the data and page-table location pools.  Disjoint
#: so MMU genomes can never alias a page-table entry with plain data.
DATA_BASE = 0x100
PT_BASE = 0x200
_STRIDE = 8

#: Generation profiles in round-robin order.
PROFILES: Tuple[str, ...] = ("plain", "fenced", "mmu", "sync", "vm")

#: Fixed geometry of the ``vm`` profile's break-before-make skeleton:
#: a two-level walk rooted at ``VM_ROOT`` whose level-0 entry is remapped
#: from table ``VM_T_OLD`` to ``VM_T_NEW``; vpn ``VM_VPN_A`` changes
#: frames across the remap, vpn ``VM_VPN_B`` keeps frame ``VM_FRAME_B``
#: in both tables (the dirty-bit probe target).
VM_ROOT = 0x400
VM_T_OLD, VM_T_NEW = 0x410, 0x420
VM_FRAME_OLD, VM_FRAME_NEW, VM_FRAME_B = 0x300, 0x310, 0x320
VM_FLAG = 0x500
VM_VPN_A, VM_VPN_B = 0, 1
#: Frame values distinguishing the old and new mapping of vpn A.
VM_OLD_VAL, VM_NEW_VAL = 1, 2
#: The relaxed-virtual-memory features the ``vm`` profile runs under.
VM_PROFILE_FEATURES = frozenset({"bbm", "walk-cache", "had"})

#: Op kinds that translate through the MMU (prime the walk cache).
_VM_VIRTUAL_OPS = ("vload_a", "vload_b", "vstore_b")

#: Per-profile operation alphabet with generation weights.
PROFILE_OPS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "plain": (
        ("load", 5),
        ("load_acq", 2),
        ("store", 5),
        ("store_rel", 2),
        ("faa", 2),
        ("cas", 1),
        ("barrier_full", 1),
        ("barrier_ld", 1),
        ("barrier_st", 1),
    ),
    "fenced": (
        ("load", 1),
        ("store", 1),
    ),
    "mmu": (
        ("load", 4),
        ("store", 4),
        ("pt_store", 2),
        ("tlbi", 1),
        ("barrier_full", 1),
    ),
    "sync": (
        ("load", 3),
        ("store", 3),
        ("pull", 2),
        ("push", 2),
    ),
    "vm": (
        ("vload_a", 3),
        ("vload_b", 2),
        ("vstore_b", 2),
        ("load", 2),
        ("store", 2),
        ("barrier_full", 1),
        ("nop", 1),
    ),
}

#: Cap on per-thread length: random generation stays below it and the
#: mutation operators never push a thread past it, keeping exploration
#: cost bounded no matter how a genome evolved.
MAX_OPS_PER_THREAD = 6


@dataclass(frozen=True)
class OpSpec:
    """One abstract operation: a kind plus its location/value operands.

    ``loc`` is an *index* into the genome's location pool (reduced
    modulo ``n_locations`` at build time, so mutations can never
    produce a dangling address), and ``val`` is the stored/compared
    value for kinds that take one.  Kinds without operands (barriers,
    ``tlbi``) simply ignore both fields, which keeps the shrinker's
    "simplify operands" passes trivially safe.
    """

    kind: str
    loc: int = 0
    val: int = 1

    def to_json(self) -> List[object]:
        """JSON-ready form of this operation."""
        return [self.kind, self.loc, self.val]

    @classmethod
    def from_json(cls, data: Sequence[object]) -> "OpSpec":
        """Rebuild an operation from its to_json() form."""
        kind, loc, val = data
        return cls(kind=str(kind), loc=int(loc), val=int(val))


@dataclass(frozen=True)
class Genome:
    """A complete program description: profile + per-thread op lists."""

    profile: str
    threads: Tuple[Tuple[OpSpec, ...], ...]
    n_locations: int = 2
    name: str = "genome"

    def size(self) -> int:
        """Total operation count across all threads."""
        return sum(len(ops) for ops in self.threads)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready form of this genome (round-trips via from_json)."""
        return {
            "profile": self.profile,
            "n_locations": self.n_locations,
            "name": self.name,
            "threads": [
                [op.to_json() for op in ops] for ops in self.threads
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Genome":
        """Rebuild a genome from its to_json() form."""
        return cls(
            profile=str(data["profile"]),
            n_locations=int(data["n_locations"]),
            name=str(data.get("name", "genome")),
            threads=tuple(
                tuple(OpSpec.from_json(op) for op in ops)
                for ops in data["threads"]
            ),
        )


def data_locations(genome: Genome) -> List[int]:
    """Locations the genome's data operations touch."""
    return [DATA_BASE + _STRIDE * i for i in range(genome.n_locations)]


def pt_locations(genome: Genome) -> List[int]:
    """Locations reserved for page-table operations."""
    return [PT_BASE + _STRIDE * i for i in range(genome.n_locations)]


def shared_locations(genome: Genome) -> Tuple[int, ...]:
    """The DRF-Kernel shared-data footprint of a ``sync`` genome: every
    data location (pull/push windows decide which accesses are legal)."""
    return tuple(data_locations(genome))


def valid(genome: Genome) -> bool:
    """Is the genome well-formed for its profile?

    Structural well-formedness is guaranteed by construction (``loc``
    wraps, unknown kinds cannot be built); the only semantic
    requirement is that ``sync`` genomes carry at least one ``pull`` —
    an uninstrumented program makes :func:`repro.vrm.drf_kernel.
    plan_drf_kernel` early-return without exploring, which would leave
    the monitor-truth oracle nothing to compare.
    """
    if genome.profile not in PROFILE_OPS:
        return False
    if genome.size() == 0:
        return False
    if any(len(ops) > MAX_OPS_PER_THREAD for ops in genome.threads):
        return False
    if genome.profile == "sync":
        return any(
            op.kind == "pull" for ops in genome.threads for op in ops
        )
    if genome.profile == "vm":
        # The pre-handshake phase must contain a virtual access, or the
        # walk cache is never primed and the stale-intermediate behavior
        # family (and its seeded mutant) is unreachable.
        return any(op.kind in _VM_VIRTUAL_OPS for op in genome.threads[0])
    return True


def build(genome: Genome) -> Program:
    """Lower a genome to a concrete :class:`Program`.

    Deterministic: identical genomes produce identical programs (and
    therefore identical exploration-cache keys).  Loaded registers are
    observed, data (and for ``mmu``, page-table) locations are
    initialized to zero, and the ``fenced`` profile appends a full
    barrier after every access.
    """
    if genome.profile == "vm":
        return _build_vm(genome)
    data = data_locations(genome)
    pts = pt_locations(genome)
    fenced = genome.profile == "fenced"
    builders = []
    observed: Dict[int, List[str]] = {}
    uses_pt = False
    for tid, ops in enumerate(genome.threads):
        b = ThreadBuilder(tid)
        regs: List[str] = []
        for i, op in enumerate(ops):
            loc = data[op.loc % len(data)]
            val = max(1, op.val)
            reg = f"r{i}"
            if op.kind == "load":
                b.load(reg, loc)
                regs.append(reg)
            elif op.kind == "load_acq":
                b.load(reg, loc, acquire=True)
                regs.append(reg)
            elif op.kind == "store":
                b.store(loc, val)
            elif op.kind == "store_rel":
                b.store(loc, val, release=True)
            elif op.kind == "faa":
                b.faa(reg, loc)
                regs.append(reg)
            elif op.kind == "cas":
                b.cas(reg, loc, 0, val)
                regs.append(reg)
            elif op.kind == "barrier_full":
                b.barrier("full")
            elif op.kind == "barrier_ld":
                b.barrier("ld")
            elif op.kind == "barrier_st":
                b.barrier("st")
            elif op.kind == "pt_store":
                uses_pt = True
                b.pt_store(
                    pts[op.loc % len(pts)], val,
                    kind=PTKind.STAGE2, level=1,
                )
            elif op.kind == "tlbi":
                b.tlbi()
            elif op.kind == "pull":
                b.pull(loc)
            elif op.kind == "push":
                b.push(loc)
            else:
                raise ValueError(f"unknown op kind {op.kind!r}")
            if fenced and op.kind in ("load", "store"):
                b.barrier("full")
        observed[tid] = regs
        builders.append(b)
    init = {loc: 0 for loc in data}
    if uses_pt:
        init.update({loc: 0 for loc in pts})
    return build_program(
        builders, observed=observed, initial_memory=init,
        name=f"{genome.profile}[{genome.name}]",
    )


def _build_vm(genome: Genome) -> Program:
    """Lower a ``vm`` genome around the fixed break-before-make skeleton.

    Thread 0 of the genome is the accessor's pre-handshake phase, the
    remaining threads are concatenated into the post-handshake phase.
    The updater and the accessor's trailing probe sequence (leaf-only
    TLBI, checked load of vpn A, dirty-bit store to vpn B) are fixed, so
    every ``vm`` program is a valid input of the property-based ``vm``
    oracle regardless of how the genome evolved.
    """
    data = data_locations(genome)
    u = ThreadBuilder(0, "updater")
    u.bbm_remap(VM_ROOT + 0, VM_T_NEW, vpn=VM_VPN_A,
                kind=PTKind.STAGE2, level=0)
    u.store(VM_FLAG, 1, release=True)

    a = ThreadBuilder(1, "accessor", is_kernel=False)
    regs: List[str] = []

    def emit(op: OpSpec, reg: str) -> None:
        """Lower one genome op into the accessor thread."""
        loc = data[op.loc % len(data)]
        val = max(1, op.val)
        if op.kind == "vload_a":
            a.vload(reg, VM_VPN_A)
            regs.append(reg)
        elif op.kind == "vload_b":
            a.vload(reg, VM_VPN_B)
            regs.append(reg)
        elif op.kind == "vstore_b":
            a.vstore(VM_VPN_B, val)
        elif op.kind == "load":
            a.load(reg, loc)
            regs.append(reg)
        elif op.kind == "store":
            a.store(loc, val)
        elif op.kind == "barrier_full":
            a.barrier("full")
        elif op.kind == "nop":
            a.nop()
        else:
            raise ValueError(f"unknown vm op kind {op.kind!r}")

    for i, op in enumerate(genome.threads[0]):
        emit(op, f"a{i}")
    a.spin_until_eq("f", VM_FLAG, 1, acquire=True)
    post = [op for ops in genome.threads[1:] for op in ops]
    for i, op in enumerate(post):
        emit(op, f"b{i}")
    a.tlbi(VM_VPN_A, leaf_only=True)
    a.vload("r_chk", VM_VPN_A)
    regs.append("r_chk")
    a.vstore(VM_VPN_B, 9)

    init = {loc: 0 for loc in data}
    init.update({
        VM_ROOT: VM_T_OLD,
        VM_T_OLD + VM_VPN_A: VM_FRAME_OLD,
        VM_T_OLD + VM_VPN_B: VM_FRAME_B,
        VM_T_NEW + VM_VPN_A: VM_FRAME_NEW,
        VM_T_NEW + VM_VPN_B: VM_FRAME_B,
        VM_FRAME_OLD: VM_OLD_VAL,
        VM_FRAME_NEW: VM_NEW_VAL,
        VM_FRAME_B: 0,
        VM_FLAG: 0,
    })
    return build_program(
        [u, a], observed={1: regs}, initial_memory=init,
        mmu=MMUConfig(root=VM_ROOT),
        name=f"vm[{genome.name}]",
    )


def random_genome(
    profile: str,
    rng: random.Random,
    n_threads: int = 2,
    min_ops: int = 2,
    max_ops: int = 4,
    n_locations: int = 2,
    name: str = "random",
) -> Genome:
    """Draw a fresh genome from the profile's weighted alphabet."""
    kinds, weights = zip(*PROFILE_OPS[profile])
    threads = []
    for _tid in range(n_threads):
        n_ops = rng.randint(min_ops, max_ops)
        ops = tuple(
            OpSpec(
                kind=rng.choices(kinds, weights=weights)[0],
                loc=rng.randrange(n_locations),
                val=rng.randrange(1, 4),
            )
            for _ in range(n_ops)
        )
        threads.append(ops)
    genome = Genome(
        profile=profile, threads=tuple(threads),
        n_locations=n_locations, name=name,
    )
    return _repair(genome, rng)


#: Mutation operator names (coverage-guided stage); each is a small,
#: genome-level edit preserving profile validity.
MUTATIONS: Tuple[str, ...] = (
    "insert", "delete", "rekind", "retarget", "revalue", "swap", "dup",
)

#: Extra walk-aware operator for ``vm`` genomes: ``hoist`` moves an
#: operation across the handshake (between the pre- and post-phase op
#: lists), the edit that turns a walk-cache-priming access into a
#: post-remap one and vice versa.  Kept out of :data:`MUTATIONS` so the
#: other profiles' fixed-seed mutation draws are unchanged.
_VM_MUTATIONS: Tuple[str, ...] = MUTATIONS + ("hoist",)


def _mutations_for(profile: str) -> Tuple[str, ...]:
    """The mutation operator set for *profile*."""
    return _VM_MUTATIONS if profile == "vm" else MUTATIONS


def mutate(genome: Genome, rng: random.Random, name: str = "mut") -> Genome:
    """One random structural edit of *genome* (always profile-valid)."""
    kinds, weights = zip(*PROFILE_OPS[genome.profile])
    threads = [list(ops) for ops in genome.threads]
    op_positions = [
        (t, i) for t, ops in enumerate(threads) for i in range(len(ops))
    ]
    choice = rng.choice(_mutations_for(genome.profile))
    if choice == "insert" or not op_positions:
        t = rng.randrange(len(threads))
        if len(threads[t]) < MAX_OPS_PER_THREAD:
            i = rng.randint(0, len(threads[t]))
            threads[t].insert(i, OpSpec(
                kind=rng.choices(kinds, weights=weights)[0],
                loc=rng.randrange(genome.n_locations),
                val=rng.randrange(1, 4),
            ))
    elif choice == "delete":
        t, i = rng.choice(op_positions)
        del threads[t][i]
    elif choice == "rekind":
        t, i = rng.choice(op_positions)
        threads[t][i] = replace(
            threads[t][i], kind=rng.choices(kinds, weights=weights)[0]
        )
    elif choice == "retarget":
        t, i = rng.choice(op_positions)
        threads[t][i] = replace(
            threads[t][i], loc=rng.randrange(genome.n_locations)
        )
    elif choice == "revalue":
        t, i = rng.choice(op_positions)
        threads[t][i] = replace(threads[t][i], val=rng.randrange(1, 4))
    elif choice == "swap":
        t, i = rng.choice(op_positions)
        if i + 1 < len(threads[t]):
            threads[t][i], threads[t][i + 1] = (
                threads[t][i + 1], threads[t][i]
            )
    elif choice == "dup":
        t, i = rng.choice(op_positions)
        if len(threads[t]) < MAX_OPS_PER_THREAD:
            threads[t].insert(i, threads[t][i])
    elif choice == "hoist":
        t, i = rng.choice(op_positions)
        dest = rng.randrange(len(threads))
        if dest != t and len(threads[dest]) < MAX_OPS_PER_THREAD:
            op = threads[t].pop(i)
            threads[dest].insert(rng.randint(0, len(threads[dest])), op)
    mutated = Genome(
        profile=genome.profile,
        threads=tuple(tuple(ops) for ops in threads),
        n_locations=genome.n_locations,
        name=name,
    )
    return _repair(mutated, rng)


def _repair(genome: Genome, rng: random.Random) -> Genome:
    """Restore profile validity after generation/mutation."""
    if valid(genome):
        return genome
    threads = [list(ops) for ops in genome.threads]
    if genome.size() == 0:
        threads[0].append(OpSpec(kind="load", loc=0, val=1))
    if genome.profile == "sync" and not any(
        op.kind == "pull" for ops in threads for op in ops
    ):
        t = rng.randrange(len(threads))
        if len(threads[t]) >= MAX_OPS_PER_THREAD:
            threads[t].pop()
        threads[t].insert(0, OpSpec(kind="pull", loc=0, val=1))
    if genome.profile == "vm" and not any(
        op.kind in _VM_VIRTUAL_OPS for op in threads[0]
    ):
        if len(threads[0]) >= MAX_OPS_PER_THREAD:
            threads[0].pop()
        threads[0].insert(0, OpSpec(kind="vload_a", loc=0, val=1))
    return Genome(
        profile=genome.profile,
        threads=tuple(tuple(ops) for ops in threads),
        n_locations=genome.n_locations,
        name=genome.name,
    )
