"""The coverage-guided differential fuzzing loop.

:func:`run_fuzz` ties the harness together: it draws genomes (fresh
random ones, or mutations of genomes that previously reached new
structural coverage), runs each through the profile's conformance
oracles, shrinks any disagreement to a 1-minimal counterexample, and
persists it to the corpus directory.  The loop is a pure function of
``FuzzConfig.seed`` when budget-bounded: program *i* is generated from
the RNG stream ``derive_rng(seed, "gen", i)`` regardless of pool state
or oracle order, so CI failures replay locally with the same seed.

Heavy oracles (``fuse`` for sync genomes, pool-vs-serial ``jobs``
agreement for data genomes) run every ``heavy_every`` programs rather
than on each one: they multiply exploration cost without widening the
input space, so they are sampled.  The ``jobs`` oracle additionally
only runs from a top-level (non-pooled) engine, as it spawns its own
worker pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.conformance.corpus import save_finding
from repro.conformance.coverage import CoverageMap
from repro.conformance.genome import (
    PROFILES,
    Genome,
    build,
    derive_rng,
    mutate,
    random_genome,
    shared_locations,
)
from repro.conformance.oracles import check_genome
from repro.conformance.shrink import shrink
from repro.memory.cache import cached_explore
from repro.memory.semantics import PROMISING_ARM, SC
from repro.obs import metrics, tracer
from repro.vrm.conditions import PassRequest
from repro.vrm.drf_kernel import plan_drf_kernel

__all__ = [
    "FuzzConfig", "FuzzFinding", "FuzzReport", "fuzz_parallel", "run_fuzz",
]

#: Cap on the mutation pool so a long run's pool stays representative
#: of *recent* coverage frontiers rather than growing without bound.
_POOL_CAP = 64


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzzing run."""

    seed: int = 0
    budget: Optional[int] = 50
    minutes: Optional[float] = None
    profiles: Tuple[str, ...] = PROFILES
    corpus_dir: Optional[str] = None
    shrink: bool = True
    shrink_max_evals: int = 400
    heavy_every: int = 8
    jobs_oracle: bool = True
    mutation_rate: float = 0.5
    max_findings: int = 10
    start_index: int = 0


@dataclass(frozen=True)
class FuzzFinding:
    """One persisted disagreement: where it came from and what survived
    shrinking."""

    seed: int
    index: int
    profile: str
    oracle: str
    detail: str
    genome: Genome
    shrunk: Optional[Genome]
    corpus_path: Optional[str]

    def describe(self) -> str:
        """One line naming the program and the failed oracle."""
        size = self.genome.size()
        shrunk = (
            f", shrunk to {self.shrunk.size()} ops"
            if self.shrunk is not None else ""
        )
        return (
            f"seed {self.seed} program {self.index} ({self.profile}, "
            f"{size} ops{shrunk}): [{self.oracle}] {self.detail}"
        )


@dataclass
class FuzzReport:
    """Everything a fuzzing run learned."""

    config: FuzzConfig
    programs: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no oracle disagreed on any program."""
        return not self.findings

    def describe(self) -> str:
        """Human-readable run summary (programs, findings, coverage)."""
        lines = [
            f"conformance fuzz: {self.programs} programs "
            f"(seed {self.config.seed}, profiles "
            f"{'/'.join(self.config.profiles)}) in {self.elapsed:.1f}s",
            self.coverage.summary(),
        ]
        if self.findings:
            lines.append(f"{len(self.findings)} DISAGREEMENT(S):")
            lines.extend("  " + f.describe() for f in self.findings)
        else:
            lines.append(
                "all oracles agreed: containment, portability, "
                "equivalence, axiomatic agreement, engine-config "
                "identity, monitor truth, vm discipline"
            )
        return "\n".join(lines)


def _record_principal_explorations(
    genome: Genome, coverage: CoverageMap
) -> None:
    """Fold the genome's principal exploration stats into the coverage
    report.  The oracles already ran these passes, so each call here is
    a memo hit — pure accounting, no extra search."""
    program = build(genome)
    if genome.profile == "sync":
        plan = plan_drf_kernel(program, shared_locations(genome))
        if isinstance(plan, PassRequest):
            coverage.record_exploration(
                cached_explore(program, plan.cfg, observe_locs=[])
            )
        return
    observe = sorted(program.initial_memory)
    coverage.record_exploration(
        cached_explore(program, SC, observe_locs=observe)
    )
    coverage.record_exploration(
        cached_explore(program, PROMISING_ARM, observe_locs=observe)
    )


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run the differential conformance fuzzer.

    Stops at ``budget`` programs, at the ``minutes`` deadline, or when
    ``max_findings`` disagreements have been recorded — whichever comes
    first.  With ``minutes`` unset the run is fully deterministic in
    ``config.seed``.
    """
    budget = config.budget
    if budget is None and config.minutes is None:
        budget = 50
    deadline = (
        time.monotonic() + config.minutes * 60.0
        if config.minutes is not None else None
    )
    started = time.monotonic()
    report = FuzzReport(config=config)
    pool: List[Genome] = []
    index = config.start_index
    while True:
        if budget is not None and index >= config.start_index + budget:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        if len(report.findings) >= config.max_findings:
            break
        profile = config.profiles[index % len(config.profiles)]
        rng = derive_rng(config.seed, "gen", index)
        pool_candidates = [g for g in pool if g.profile == profile]
        if pool_candidates and rng.random() < config.mutation_rate:
            genome = mutate(
                rng.choice(pool_candidates), rng, name=f"s{config.seed}i{index}"
            )
        else:
            genome = random_genome(
                profile, rng, name=f"s{config.seed}i{index}"
            )
        if report.coverage.observe(genome):
            pool.append(genome)
            if len(pool) > _POOL_CAP:
                pool.pop(0)
        heavy = config.heavy_every > 0 and index % config.heavy_every == 0
        oracles = None
        if heavy and not config.jobs_oracle:
            # Heavy minus the pool-spawning oracle (nested-pool guard).
            from repro.conformance.oracles import oracles_for

            oracles = tuple(
                o for o in oracles_for(profile, heavy=True) if o != "jobs"
            )
        if tracer.SINK is not None:
            with tracer.SINK.span(
                "fuzz_program", index=index, profile=profile,
                genome=genome.name,
            ):
                disagreements = check_genome(
                    genome, oracles=oracles, heavy=heavy
                )
        else:
            disagreements = check_genome(genome, oracles=oracles, heavy=heavy)
        _record_principal_explorations(genome, report.coverage)
        if metrics.ENABLED:
            metrics.REGISTRY.counter("fuzz.programs").inc()
            if disagreements:
                metrics.REGISTRY.counter("fuzz.findings").inc(
                    len(disagreements)
                )
        for disagreement in disagreements:
            shrunk: Optional[Genome] = None
            if config.shrink:
                shrunk = shrink(
                    genome,
                    oracle=disagreement.oracle,
                    max_evals=config.shrink_max_evals,
                ).genome
            path = None
            if config.corpus_dir:
                path = save_finding(
                    config.corpus_dir, config.seed, index, genome,
                    disagreement, shrunk,
                )
            report.findings.append(FuzzFinding(
                seed=config.seed,
                index=index,
                profile=profile,
                oracle=disagreement.oracle,
                detail=disagreement.detail,
                genome=genome,
                shrunk=shrunk,
                corpus_path=path,
            ))
        report.programs += 1
        index += 1
    report.elapsed = time.monotonic() - started
    return report


def _run_chunk(config: FuzzConfig) -> FuzzReport:
    """Module-level (picklable) worker: one index range of a run."""
    return run_fuzz(config)


def fuzz_parallel(config: FuzzConfig, jobs: Optional[int]) -> FuzzReport:
    """Fan a budget-bounded run out over the process pool.

    The index range ``[start_index, start_index + budget)`` is split
    into contiguous chunks, one fuzzing loop per worker.  Because every
    program's RNG stream is addressed by its global index, the set of
    *fresh* genomes is identical to the serial run's; only the
    mutation-feedback genomes differ (each chunk grows its own coverage
    pool).  The result is still fully deterministic for a fixed
    ``(seed, budget, jobs)``.  The pool-spawning ``jobs`` oracle is
    disabled inside workers (no nested pools) — run it from a serial
    fuzz or rely on this fan-out itself exercising the pool.
    """
    from repro.parallel import parallel_map, resolve_jobs

    budget = config.budget if config.budget is not None else 50
    workers = resolve_jobs(jobs)
    if workers <= 1 or budget < 2 * workers or config.minutes is not None:
        return run_fuzz(config)
    chunk = (budget + workers - 1) // workers
    configs = []
    start = config.start_index
    while start < config.start_index + budget:
        size = min(chunk, config.start_index + budget - start)
        configs.append(replace(
            config, budget=size, start_index=start, jobs_oracle=False,
            minutes=None,
        ))
        start += size
    merged = FuzzReport(config=config)
    for part in parallel_map(_run_chunk, configs, jobs=workers):
        merged.programs += part.programs
        merged.findings.extend(part.findings)
        merged.coverage.merge(part.coverage)
        merged.elapsed = max(merged.elapsed, part.elapsed)
    merged.findings.sort(key=lambda f: f.index)
    return merged
