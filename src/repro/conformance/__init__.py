"""Differential conformance harness: the paper's relations as fuzzing
oracles.

The verification stack rests on relations between engines that are
proved on paper but merely *implemented* here: SC behaviors embed into
Promising Arm behaviors, wDRF programs behave identically on both, the
operational executor matches the axiomatic model, and every engine
optimization (POR, certification memoization, pass fusion, the process
pool) is behavior-preserving.  This package turns each relation into an
executable oracle and drives coverage-guided random programs through
all of them (:mod:`~repro.conformance.engine`), shrinks any
disagreement to a minimal replayable counterexample
(:mod:`~repro.conformance.shrink`, :mod:`~repro.conformance.corpus`),
and pins the litmus catalog's behavior sets against drift
(:mod:`~repro.conformance.digests`).

The mutation-killing suite (``tests/test_mutation_killing.py``) closes
the loop: seeded engine bugs (:mod:`repro.memory.mutants`) must each be
detected by these oracles within a bounded budget, which is the
evidence that "the fuzzer found nothing" means something.
"""

from repro.conformance.genome import (
    PROFILES,
    Genome,
    OpSpec,
    build,
    derive_rng,
    mutate,
    random_genome,
    valid,
)
from repro.conformance.oracles import (
    ORACLES,
    Disagreement,
    check_genome,
    oracles_for,
)
from repro.conformance.shrink import ShrinkResult, oracle_predicate, shrink
from repro.conformance.coverage import CoverageMap
from repro.conformance.corpus import (
    engine_fingerprint,
    iter_corpus,
    load_entry,
    replay_entry,
    save_finding,
)
from repro.conformance.engine import (
    FuzzConfig,
    FuzzFinding,
    FuzzReport,
    fuzz_parallel,
    run_fuzz,
)
from repro.conformance.digests import (
    behavior_digest,
    litmus_digests,
    write_digests,
)

__all__ = [
    "PROFILES",
    "Genome",
    "OpSpec",
    "build",
    "derive_rng",
    "mutate",
    "random_genome",
    "valid",
    "ORACLES",
    "Disagreement",
    "check_genome",
    "oracles_for",
    "ShrinkResult",
    "oracle_predicate",
    "shrink",
    "CoverageMap",
    "engine_fingerprint",
    "iter_corpus",
    "load_entry",
    "replay_entry",
    "save_finding",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "fuzz_parallel",
    "run_fuzz",
    "behavior_digest",
    "litmus_digests",
    "write_digests",
]
