"""Plain-text table rendering shared by benches and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
