"""Reporting: LoC inventory (Table 1 analogue) and table rendering."""

from repro.report.loc import (
    COMPONENTS,
    LocRow,
    PAPER_TABLE1,
    condition_to_security_ratio,
    count_loc,
    format_table1,
    loc_table,
)
from repro.report.tables import render_table
from repro.report.charts import grouped_bars, hbar_chart, series_chart

__all__ = [
    "COMPONENTS",
    "LocRow",
    "PAPER_TABLE1",
    "condition_to_security_ratio",
    "count_loc",
    "format_table1",
    "loc_table",
    "render_table",
    "grouped_bars",
    "hbar_chart",
    "series_chart",
]
