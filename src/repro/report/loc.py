"""Table 1 analogue: lines-of-code inventory of the reproduction.

The paper's Table 1 breaks the Coq proof effort into (1) the VRM
framework (sufficiency of the wDRF conditions), (2) the proofs that
SeKVM satisfies the conditions, and (3) SeKVM's SC security proofs.
The executable analogue measures the same decomposition over this
repository's source: the framework (memory models + condition checkers
+ theorems), the SeKVM-satisfies-wDRF layer (the IR programs and the
verification pipeline), and the SeKVM system + security model.

The paper's headline observation — condition-checking effort is roughly
an order of magnitude smaller than the security-proof effort, and the
framework is a reusable one-time cost — is re-checked as a ratio over
these counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

import repro

#: The Table-1 rows mapped to subpackages/modules of this repository.
COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "VRM framework (models + wDRF sufficiency)": (
        "memory",
        "vrm",
    ),
    "SeKVM satisfies wDRF (programs + pipeline)": (
        "sekvm/ir_programs.py",
        "sekvm/verify.py",
        "sekvm/versions.py",
    ),
    "SeKVM system + security model": (
        "sekvm/kcore.py",
        "sekvm/kserv.py",
        "sekvm/hypercalls.py",
        "sekvm/hypervisor.py",
        "sekvm/security.py",
        "sekvm/s2page.py",
        "sekvm/s2pt.py",
        "sekvm/smmupt.py",
        "sekvm/el2pt.py",
        "sekvm/vcpu.py",
        "sekvm/vgic.py",
        "sekvm/vm.py",
        "sekvm/snapshot.py",
        "sekvm/scheduler.py",
        "sekvm/locks.py",
        "sekvm/physmem.py",
        "mmu",
    ),
}

#: Paper Table 1 (Coq LOC), for the side-by-side column.
PAPER_TABLE1: Dict[str, int] = {
    "VRM framework (models + wDRF sufficiency)": 3_400,
    "SeKVM satisfies wDRF (programs + pipeline)": 3_800,
    "SeKVM system + security model": 34_200,
}


@dataclass(frozen=True)
class LocRow:
    component: str
    files: int
    loc: int
    paper_coq_loc: int


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


def count_loc(path: Path) -> int:
    """Count non-blank, non-comment-only source lines."""
    loc = 0
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                loc += 1
    return loc


def _files_for(targets: Sequence[str]) -> List[Path]:
    root = _package_root()
    files: List[Path] = []
    for target in targets:
        path = root / target
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
    return files


def loc_table() -> List[LocRow]:
    rows: List[LocRow] = []
    for component, targets in COMPONENTS.items():
        files = _files_for(targets)
        rows.append(
            LocRow(
                component=component,
                files=len(files),
                loc=sum(count_loc(f) for f in files),
                paper_coq_loc=PAPER_TABLE1[component],
            )
        )
    return rows


def condition_to_security_ratio(rows: Sequence[LocRow]) -> float:
    """The paper's 'almost an order of magnitude less' observation:
    condition-layer size over security-model size."""
    by_name = {r.component: r.loc for r in rows}
    conditions = by_name["SeKVM satisfies wDRF (programs + pipeline)"]
    security = by_name["SeKVM system + security model"]
    return conditions / security


def format_table1(rows: Sequence[LocRow]) -> str:
    lines = [
        "Table 1. Code breakdown (this reproduction vs paper's Coq LOC)",
        f"{'Component':<48} {'files':>6} {'LoC':>8} {'paper Coq':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row.component:<48} {row.files:>6} {row.loc:>8} "
            f"{row.paper_coq_loc:>10}"
        )
    return "\n".join(lines)
