"""ASCII chart rendering for the evaluation figures.

The paper's Figures 8 and 9 are bar/line charts; the CLI renders their
reproduced data as monospace charts so the shapes (per-workload bars,
per-VM-count decay, KVM/SeKVM tracking) are visible without a plotting
stack.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def hbar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    max_value: float = 1.0,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bars, one per labelled value."""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label, _ in rows), default=0)
    for label, value in rows:
        filled = int(round(width * min(value, max_value) / max_value))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{label:<{label_width}} |{bar}| {value:.2f}{unit}")
    return "\n".join(lines)


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    series_order: Sequence[str],
    width: int = 40,
    max_value: float = 1.0,
    title: str = "",
) -> str:
    """Per-group bars for multiple series (e.g. KVM vs SeKVM per app)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(
        (len(f"{g} {s}") for g in groups for s in series_order), default=0
    )
    for group, series in groups.items():
        for name in series_order:
            if name not in series:
                continue
            value = series[name]
            filled = int(round(width * min(value, max_value) / max_value))
            bar = "█" * filled + "·" * (width - filled)
            lines.append(
                f"{group + ' ' + name:<{label_width}} |{bar}| {value:.2f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def series_chart(
    x_values: Sequence[int],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    max_value: float = 1.0,
    title: str = "",
) -> str:
    """A small scatter/line chart: one glyph per series.

    X positions are spread evenly (the paper's VM counts are log-spaced
    powers of two, so even spacing matches its axis).
    """
    glyphs = "oxv*+#"
    width = max(len(x_values) * 6, 24)
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        for i, value in enumerate(values):
            x = int(i * (width - 1) / max(1, len(x_values) - 1))
            y = height - 1 - int(
                round((height - 1) * min(value, max_value) / max_value)
            )
            grid[y][x] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_idx, row in enumerate(grid):
        level = max_value * (height - 1 - row_idx) / (height - 1)
        lines.append(f"{level:>5.2f} |" + "".join(row))
    axis = "      +" + "-" * width
    lines.append(axis)
    labels = [" "] * width
    for i, x_val in enumerate(x_values):
        x = int(i * (width - 1) / max(1, len(x_values) - 1))
        text = str(x_val)
        for j, ch in enumerate(text):
            if x + j < width:
                labels[x + j] = ch
    lines.append("       " + "".join(labels))
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"       {legend}")
    return "\n".join(lines)
