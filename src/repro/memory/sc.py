"""The sequentially consistent hardware model (facade).

SC is the model on which the bulk of SeKVM's security proofs were carried
out; VRM's job is to show when SC results transfer to relaxed hardware.
This module wraps the shared executor with the SC configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import SC, ModelConfig


def explore_sc(
    program: Program,
    observe_locs: Optional[Sequence[int]] = None,
    **overrides,
) -> ExplorationResult:
    """All observable behaviors of *program* on the SC model."""
    cfg = SC if not overrides else ModelConfig(relaxed=False, **overrides)
    return cached_explore(program, cfg, observe_locs)
