"""Seeded semantic mutants (test-only hooks) for the conformance harness.

The differential conformance oracles in :mod:`repro.conformance` claim to
detect soundness bugs in the engine: a weakened barrier semantics, a
verification monitor that swallows violations, a partial-order reduction
applied outside its soundness gate.  That claim is itself testable only
if such bugs can be *introduced on demand* — the classic
mutation-killing discipline.  This module is the single registry of
those seeded bug classes.

Each mutant is off by default and can only be enabled explicitly
(normally via the :func:`seeded` context manager in a test).  The hook
sites live in production code but reduce to one dictionary probe when no
mutant is active:

* ``weaken-barrier-full`` — ``dmb sy`` becomes a no-op in
  :func:`repro.memory.semantics._apply_barrier`: the full barrier no
  longer raises the thread's read/write frontiers, so fully fenced
  programs regain relaxed behaviors.  Killed by the RM ⊆ SC equivalence
  oracle on the ``fenced`` generation profile.
* ``weaken-drf-monitor`` — the streaming
  :class:`~repro.vrm.drf_kernel.DRFKernelMonitor` ignores ownership
  panics, so DRF-Kernel "verifies" racy programs.  Killed by the
  monitor-vs-exhaustive oracle, which recomputes the verdict from a
  monitor-free exploration's panic set.
* ``skip-por-gate`` — :func:`repro.memory.por.por_eligible` and
  :func:`~repro.memory.por.por_worthwhile` answer True for every
  program, applying the ample-set reduction to programs with RMWs,
  barriers, acquire/release accesses, and push/pull ownership — exactly
  the cases where steps stop commuting.  Killed by the engine-config
  agreement oracle (POR on vs. off).
* ``bbm-skipped`` — :meth:`repro.ir.builder.ThreadBuilder.bbm_remap`
  drops the break phase: a live page-table entry is rewritten directly
  to the new live value (store/DMB/TLBI, no invalid intermediate).
  Under the ``bbm`` VM feature the overwritten translation stays a
  permanent walker candidate, so accessors can keep using the old
  mapping after the updater's release fence — killed by the ``vm``
  conformance oracle's post-handshake translation check.
* ``stale-intermediate-walk`` — :func:`repro.memory.semantics._exec_tlbi`
  stops expelling cached intermediate (non-leaf) walk entries on
  non-leaf-scoped stage-1 TLBIs, so a stale level-1 descriptor cached
  under the ``walk-cache`` VM feature redirects walks forever.  Killed
  by the ``vm`` oracle: the accessor still reaches the unmapped old
  frame after a full break-before-make remap.
* ``lost-dirty-bit`` — :func:`repro.memory.semantics._hw_ad_update`
  omits ``PTE_DIRTY`` on stores (sets only the access flag), breaking
  the ``had`` VM feature's guarantee that a completed store through a
  mapping leaves its leaf entry dirty.  Killed by the ``vm`` oracle's
  final-state dirty-bit check.
* ``lost-flush`` — :func:`repro.memory.semantics.tso_flush_steps` pops
  the TSO store buffer's head without appending it to memory: the write
  simply vanishes.  Killed by the ``portability`` oracle — the SC
  behavior where the store lands becomes unreachable under TSO, so
  SC ⊆ TSO fails (and the value-less final state violates TSO ⊆ Arm).
* ``read-skips-own-buffer`` —
  :func:`repro.memory.semantics._read_candidates` stops forwarding from
  the thread's own store buffer, so a TSO thread can read a value *older
  than its own latest store* — a behavior no Arm coherence order admits.
  Killed by the ``portability`` oracle's TSO ⊆ Arm containment check.

Active mutants are part of every exploration cache key (see
:func:`repro.memory.cache.exploration_key`), so a mutated engine can
never poison — or be masked by — results cached from the honest one.
"""

from __future__ import annotations

import contextlib
from typing import FrozenSet, Iterator, Set, Tuple

#: The seeded bug classes the mutation-killing suite must detect.
KNOWN_MUTANTS: Tuple[str, ...] = (
    "weaken-barrier-full",
    "weaken-drf-monitor",
    "skip-por-gate",
    "bmc-drop-clause",
    "bmc-off-by-one-bound",
    "bbm-skipped",
    "stale-intermediate-walk",
    "lost-dirty-bit",
    "lost-flush",
    "read-skips-own-buffer",
)

_active: Set[str] = set()


def enable(name: str) -> None:
    """Switch a seeded bug on (test-only; prefer :func:`seeded`)."""
    if name not in KNOWN_MUTANTS:
        raise ValueError(
            f"unknown mutant {name!r}; known: {', '.join(KNOWN_MUTANTS)}"
        )
    _active.add(name)


def disable(name: str) -> None:
    _active.discard(name)


def disable_all() -> None:
    _active.clear()


def enabled(name: str) -> bool:
    """Is the named mutant active?  (The hook-site fast path.)"""
    return name in _active


def active() -> FrozenSet[str]:
    """The currently active mutants (cache-key material)."""
    return frozenset(_active)


def fingerprint() -> str:
    """Stable cache-key component describing the active mutants."""
    return ",".join(sorted(_active)) if _active else ""


@contextlib.contextmanager
def seeded(*names: str) -> Iterator[None]:
    """Enable the named mutants for the duration of a ``with`` block."""
    for name in names:
        enable(name)
    try:
        yield
    finally:
        for name in names:
            disable(name)
