"""Persistent memoization of exploration results.

The verification layers re-explore the same kernel fragments over and
over: every wDRF condition explores its own instrumentation of the same
program, the SeKVM pipeline verifies 30+ interfaces whose hot fragments
repeat across versions, and benchmark/CI runs repeat the whole litmus
corpus.  :func:`cached_explore` memoizes :func:`repro.memory.exploration.
explore` keyed by a fingerprint of *everything the result depends on*:

* the program (threads, instructions, initial memory, spaces, MMU),
* the :class:`ModelConfig` (all fields, frozensets canonicalized),
* the observation request (``observe_locs`` **in order** — behavior
  tuples are order-sensitive — and ``keep_terminal_states``),
* the reduction mode (``por``), and
* a fingerprint of the memory-model sources themselves, so a cache
  populated by an older engine can never serve a newer one.

Results live in a per-process dict and, across processes, in pickle
files under ``REPRO_EXPLORE_CACHE_DIR`` (default
``~/.cache/vrm-repro/explore``).  Disk traffic is strictly best-effort:
any OS or unpickling error silently degrades to a recomputation.
``REPRO_EXPLORE_CACHE=0`` disables persistence entirely;
``REPRO_EXPLORE_MEMO=0`` additionally bypasses the in-process dict (a
benchmarking knob: it makes repeated explorations pay full price).

Monitored (fused) passes cache too: :func:`cached_explore` with
``monitors=`` stores the :class:`ExplorationResult` *plus* each
monitor's verdict snapshot, keyed by the exploration key extended with
the monitors' fingerprints and a digest of the checker sources
(``src/repro/vrm``), so edited checker logic can never replay a stale
verdict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.ir.program import Program
from repro.memory import mutants
from repro.memory.datatypes import ExplorationMonitor, ExplorationResult
from repro.memory.exploration import explore, por_default_enabled
from repro.memory.semantics import (
    ModelConfig,
    resolve_model,
    resolve_vm_features,
)
from repro.obs import metrics, tracer


#: Process-local lookup accounting, always on (a dict increment per
#: cache lookup is noise next to the exploration it guards).  Keys are
#: hit layers (``memo``/``disk``) and miss layers (``explore``/
#: ``monitored``/``bmc``); see :func:`lookup_stats`.
_lookup_stats: Dict[str, Dict[str, int]] = {"hits": {}, "misses": {}}


def lookup_stats() -> Dict[str, Dict[str, int]]:
    """Per-layer lookup counts recorded by ``_record_lookup``.

    Returns ``{"hits": {layer: n}, "misses": {layer: n}}`` for this
    process since start (or the last :func:`reset_lookup_stats`).  Hit
    layers are ``memo`` and ``disk``; miss layers name the computation
    that had to run (``explore``, ``monitored``, ``bmc``).  The serve
    layer ships workers' deltas back per job, and ``repro cache stats``
    reports the rates.
    """
    return {
        "hits": dict(_lookup_stats["hits"]),
        "misses": dict(_lookup_stats["misses"]),
    }


def reset_lookup_stats() -> None:
    """Zero the per-process lookup accounting (tests, serve workers)."""
    _lookup_stats["hits"].clear()
    _lookup_stats["misses"].clear()


def _record_lookup(hit: bool, layer: str, key: str) -> None:
    """Cold-path observability for one cache lookup outcome.

    Emits a ``cache_hit``/``cache_miss`` trace event and bumps the
    ``cache.<layer>_hits``/``cache.misses`` counters; free when neither
    tracing nor metrics is on.  Always feeds the process-local
    :func:`lookup_stats` tallies.
    """
    bucket = _lookup_stats["hits" if hit else "misses"]
    bucket[layer] = bucket.get(layer, 0) + 1
    if tracer.SINK is not None:
        tracer.SINK.emit(
            tracer.CACHE_HIT if hit else tracer.CACHE_MISS,
            layer=layer, key=key[:16],
        )
    if metrics.ENABLED:
        name = "cache.%s_hits" % layer if hit else "cache.misses"
        metrics.REGISTRY.counter(name).inc()

_CACHE_VERSION = 1

_memory_cache: Dict[str, object] = {}

_code_fingerprint: Optional[str] = None

_monitor_code_fingerprint: Optional[str] = None

_smt_code_fingerprint: Optional[str] = None


class MonitorPassEntry(NamedTuple):
    """Cached outcome of one monitored exploration pass."""

    result: ExplorationResult
    snapshots: Tuple[Dict[str, object], ...]


class BmcEntry(NamedTuple):
    """Cached answer of one BMC query (a behavior set or verdicts)."""

    payload: object


def cache_enabled() -> bool:
    """Persistent caching is on unless ``REPRO_EXPLORE_CACHE=0``."""
    return os.environ.get("REPRO_EXPLORE_CACHE", "1") != "0"


def memo_enabled() -> bool:
    """The in-process memo is on unless ``REPRO_EXPLORE_MEMO=0``."""
    return os.environ.get("REPRO_EXPLORE_MEMO", "1") != "0"


def cache_dir() -> str:
    """Directory holding on-disk exploration results."""
    configured = os.environ.get("REPRO_EXPLORE_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "vrm-repro", "explore"
    )


def _source_digest(subdirs: Sequence[str]) -> str:
    h = hashlib.sha256(str(_CACHE_VERSION).encode())
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for subdir in subdirs:
        folder = os.path.join(pkg_root, subdir)
        if not os.path.isdir(folder):
            continue
        for fname in sorted(os.listdir(folder)):
            if fname.endswith(".py"):
                path = os.path.join(folder, fname)
                h.update(fname.encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
    return h.hexdigest()


def code_fingerprint() -> str:
    """Hash of the memory-model implementation itself.

    Any edit to the semantics, the explorer, or the IR invalidates every
    cached result, so a stale cache can never mask an engine change.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        _code_fingerprint = _source_digest(("memory", "ir", "mmu"))
    return _code_fingerprint


def monitor_code_fingerprint() -> str:
    """Hash of the checker sources (``src/repro/vrm``).

    Monitored passes cache checker *verdicts*, which depend on the
    monitor implementations living outside the memory package; this
    digest keeps edited checker logic from replaying stale verdicts.
    """
    global _monitor_code_fingerprint
    if _monitor_code_fingerprint is None:
        _monitor_code_fingerprint = _source_digest(("vrm",))
    return _monitor_code_fingerprint


def smt_code_fingerprint() -> str:
    """Hash of the SAT/BMC backend sources (``src/repro/smt``).

    BMC answers depend on the encoder and solver, which live outside
    both the memory package and the checker package; this digest keeps
    edited solver logic from replaying stale verdicts.
    """
    global _smt_code_fingerprint
    if _smt_code_fingerprint is None:
        _smt_code_fingerprint = _source_digest(("smt",))
    return _smt_code_fingerprint


def _config_fingerprint(cfg: ModelConfig) -> str:
    parts = []
    for f in dataclasses.fields(cfg):
        value = getattr(cfg, f.name)
        if isinstance(value, frozenset):
            value = tuple(sorted(value))
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def _program_fingerprint(program: Program) -> str:
    mem = tuple(sorted(program.initial_memory.items()))
    spaces = tuple(sorted((k, v.value) for k, v in program.spaces.items()))
    return (
        f"threads={program.threads!r};mem={mem!r};"
        f"spaces={spaces!r};mmu={program.mmu!r}"
    )


def program_fingerprint(program: Program) -> str:
    """Canonical text identity of a program (threads, memory, MMU).

    Deliberately excludes the display name, so two differently labelled
    but semantically identical programs share every cache key — the
    property the serving layer's content-addressed dedup relies on.
    """
    return _program_fingerprint(program)


def exploration_key(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    keep_terminal_states: bool,
    por: bool,
    backend: str = "explore",
) -> str:
    """The cache key: a digest of everything the result depends on.

    ``backend`` names the engine that produced the result ("explore"
    or "bmc"); the axis keeps solver-derived answers from ever
    replaying as exploration results or vice versa.
    """
    # Resolve VM features and the architecture selection exactly like
    # the explorer does, so a run under REPRO_VM_FEATURES or REPRO_MODEL
    # can never share a key with (or replay) a default-model result.
    cfg = resolve_model(resolve_vm_features(cfg))
    observed = None if observe_locs is None else tuple(observe_locs)
    text = "\x00".join(
        (
            code_fingerprint(),
            # Seeded semantic mutants change engine behavior at runtime
            # without touching sources; key them so a mutated engine can
            # never replay (or poison) honest results.
            mutants.fingerprint(),
            _program_fingerprint(program),
            _config_fingerprint(cfg),
            repr(observed),
            repr(bool(keep_terminal_states)),
            repr(bool(por)),
            f"backend={backend}",
        )
    )
    return hashlib.sha256(text.encode()).hexdigest()


def monitored_exploration_key(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    por: bool,
    monitors: Sequence[ExplorationMonitor],
    monitor_cut: bool = True,
) -> str:
    """Cache key of a monitored pass: exploration key × monitor identity.

    ``monitor_cut`` is part of the key because a cut and an exhaustive
    pass report different ``states_explored``/``stopped_early`` even
    though the verdict snapshots coincide.
    """
    text = "\x00".join(
        (
            exploration_key(program, cfg, observe_locs, False, por),
            monitor_code_fingerprint(),
            repr(bool(monitor_cut)),
            *[m.fingerprint() for m in monitors],
        )
    )
    return hashlib.sha256(text.encode()).hexdigest()


def _disk_load(key: str, expect: type = ExplorationResult):
    """Load one disk entry, treating anything unreadable as a miss.

    An entry that fails to unpickle (or holds an unexpected type) is
    *deleted*, not just skipped: before writes were atomic a killed
    worker could leave a truncated pickle behind, and without the
    delete that one corpse would poison every future load of its key
    while :func:`_disk_store`'s write-once discipline keeps the good
    entry from ever being rewritten over it.
    """
    path = os.path.join(cache_dir(), key + ".pkl")
    try:
        with open(path, "rb") as fh:
            result = pickle.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, pickle.PickleError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        _discard(path)
        return None
    if not isinstance(result, expect):
        _discard(path)
        return None
    return result


def _discard(path: str) -> None:
    """Best-effort removal of a corrupt or stale cache file."""
    try:
        os.unlink(path)
    except OSError:
        pass


def _disk_store(key: str, result) -> None:
    """Atomically publish one disk entry (crash- and multi-process-safe).

    The pickle is written to a private temp file in the cache directory
    and ``os.replace``\\ d into place, so a concurrent reader observes
    either the old complete entry or the new complete entry — never a
    partial write — and a killed process leaves at worst an orphaned
    ``.tmp`` file, never a truncated ``.pkl``.  Any failure (including
    an unpicklable result) degrades to a no-op with the temp file
    cleaned up.
    """
    folder = cache_dir()
    tmp = None
    try:
        os.makedirs(folder, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=folder, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, os.path.join(folder, key + ".pkl"))
        tmp = None
    except (OSError, pickle.PickleError, TypeError, AttributeError):
        pass
    finally:
        if tmp is not None:
            _discard(tmp)


def disk_stats() -> Dict[str, object]:
    """Entry counts and bytes on disk for every persistent layer.

    Scans :func:`cache_dir` (engine results: exploration, monitored,
    BMC pickles) and its ``serve/`` subdirectory (rendered job results
    the serving layer persists) without loading anything; unreadable
    directories count as empty.
    """
    folder = cache_dir()
    stats: Dict[str, object] = {"dir": folder}
    for label, path, suffix in (
        ("engine", folder, ".pkl"),
        ("serve", os.path.join(folder, "serve"), ".json"),
    ):
        entries = total = stale_tmp = 0
        try:
            names = os.listdir(path)
        except OSError:
            names = []
        for name in names:
            full = os.path.join(path, name)
            try:
                size = os.path.getsize(full)
            except OSError:
                continue
            if name.endswith(suffix):
                entries += 1
                total += size
            elif name.endswith(".tmp"):
                stale_tmp += 1
        stats[label] = {
            "entries": entries, "bytes": total, "stale_tmp": stale_tmp,
        }
    return stats


def clear_disk_cache() -> int:
    """Delete every persistent cache entry; returns the files removed.

    Removes engine pickles, serve-layer result JSONs, and any orphaned
    ``.tmp`` files, leaving the directories in place.  Safe to run
    concurrently with readers/writers — both sides treat a vanished
    file as a plain miss.
    """
    folder = cache_dir()
    removed = 0
    for path in (folder, os.path.join(folder, "serve")):
        try:
            names = os.listdir(path)
        except OSError:
            continue
        for name in names:
            if name.endswith((".pkl", ".json", ".tmp")):
                try:
                    os.unlink(os.path.join(path, name))
                    removed += 1
                except OSError:
                    pass
    return removed


def clear_memory_cache() -> None:
    """Drop the in-process memo (used by tests and benchmarks)."""
    _memory_cache.clear()


def cached_explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    keep_terminal_states: bool = False,
    por: Optional[bool] = None,
    cache: bool = True,
    monitors: Optional[Sequence[ExplorationMonitor]] = None,
    monitor_cut: bool = True,
) -> ExplorationResult:
    """:func:`~repro.memory.exploration.explore`, memoized.

    Identical inputs (per :func:`exploration_key`) return the previously
    computed :class:`ExplorationResult`; pass ``cache=False`` (or set
    ``REPRO_EXPLORE_CACHE=0`` for the disk layer) to force recomputation.

    With ``monitors=``, the pass streams terminal states through the
    given :class:`ExplorationMonitor` objects; on a cache hit their
    verdict snapshots are restored instead of re-exploring, so callers
    may unconditionally ``finalize()`` their monitors afterwards.
    ``monitor_cut=False`` forwards the legacy exhaustive mode (see
    :func:`~repro.memory.exploration.explore`).
    """
    if por is None:
        por = por_default_enabled()
    if monitors:
        return _cached_monitor_explore(
            program, cfg, observe_locs, por, list(monitors), cache,
            monitor_cut,
        )
    if not cache:
        return explore(program, cfg, observe_locs, keep_terminal_states, por)
    key = exploration_key(program, cfg, observe_locs, keep_terminal_states, por)
    if memo_enabled():
        result = _memory_cache.get(key)
        if isinstance(result, ExplorationResult):
            _record_lookup(True, "memo", key)
            return result
    if cache_enabled():
        result = _disk_load(key)
        if result is not None:
            _record_lookup(True, "disk", key)
            if memo_enabled():
                _memory_cache[key] = result
            return result
    _record_lookup(False, "explore", key)
    result = explore(program, cfg, observe_locs, keep_terminal_states, por)
    if memo_enabled():
        _memory_cache[key] = result
    if cache_enabled():
        _disk_store(key, result)
    return result


def _cached_monitor_explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    por: bool,
    monitors: List[ExplorationMonitor],
    cache: bool,
    monitor_cut: bool,
) -> ExplorationResult:
    if not cache:
        return explore(
            program, cfg, observe_locs, False, por, monitors, monitor_cut
        )
    key = monitored_exploration_key(
        program, cfg, observe_locs, por, monitors, monitor_cut
    )
    entry = _memory_cache.get(key) if memo_enabled() else None
    hit_layer = "memo" if isinstance(entry, MonitorPassEntry) else None
    if not isinstance(entry, MonitorPassEntry) and cache_enabled():
        entry = _disk_load(key, MonitorPassEntry)
        if isinstance(entry, MonitorPassEntry):
            hit_layer = "disk"
    if isinstance(entry, MonitorPassEntry) and len(entry.snapshots) == len(
        monitors
    ):
        _record_lookup(True, hit_layer or "memo", key)
        for monitor, snap in zip(monitors, entry.snapshots):
            monitor.restore(snap)
        if memo_enabled():
            _memory_cache[key] = entry
        return entry.result
    _record_lookup(False, "monitored", key)
    result = explore(
        program, cfg, observe_locs, False, por, monitors, monitor_cut
    )
    entry = MonitorPassEntry(
        result=result, snapshots=tuple(m.snapshot() for m in monitors)
    )
    if memo_enabled():
        _memory_cache[key] = entry
    if cache_enabled():
        _disk_store(key, entry)
    return result


def bmc_query_key(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    query: str,
) -> str:
    """Cache key of one BMC query (behavior enumeration or verdicts).

    Builds on :func:`exploration_key` with ``backend="bmc"`` so solver
    answers and exploration results can never shadow each other, and
    folds in the solver/encoder source digest plus the checker-source
    digest (verdict shapes follow ``vrm`` code) and the query
    descriptor (depth and induction knobs included by the caller).
    """
    text = "\x00".join(
        (
            exploration_key(
                program, cfg, observe_locs, False, False, backend="bmc"
            ),
            smt_code_fingerprint(),
            monitor_code_fingerprint(),
            query,
        )
    )
    return hashlib.sha256(text.encode()).hexdigest()


def cached_bmc_query(key: str, compute):
    """Memoize one BMC answer under *key* through both cache layers.

    *compute* is a zero-argument callable producing a picklable
    payload; the same memo/disk discipline as :func:`cached_explore`
    applies (``REPRO_EXPLORE_MEMO=0`` / ``REPRO_EXPLORE_CACHE=0``
    bypass the respective layer).
    """
    if memo_enabled():
        entry = _memory_cache.get(key)
        if isinstance(entry, BmcEntry):
            _record_lookup(True, "memo", key)
            return entry.payload
    if cache_enabled():
        entry = _disk_load(key, BmcEntry)
        if isinstance(entry, BmcEntry):
            _record_lookup(True, "disk", key)
            if memo_enabled():
                _memory_cache[key] = entry
            return entry.payload
    _record_lookup(False, "bmc", key)
    payload = compute()
    entry = BmcEntry(payload=payload)
    if memo_enabled():
        _memory_cache[key] = entry
    if cache_enabled():
        _disk_store(key, entry)
    return payload


def peek_exploration_states(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    por: Optional[bool] = None,
    monitors: Optional[Sequence[ExplorationMonitor]] = None,
    monitor_cut: bool = True,
) -> Optional[int]:
    """``states_explored`` of a previously cached identical exploration.

    A read-only probe for the backend router: returns the state count
    a cache hit would replay (so routing can prefer the free answer),
    or None when neither cache layer has the entry.  Never computes,
    never restores monitor snapshots, never records a lookup.
    """
    if por is None:
        por = por_default_enabled()
    if monitors:
        key = monitored_exploration_key(
            program, cfg, observe_locs, por, list(monitors), monitor_cut
        )
        entry = _memory_cache.get(key) if memo_enabled() else None
        if not isinstance(entry, MonitorPassEntry) and cache_enabled():
            entry = _disk_load(key, MonitorPassEntry)
        if isinstance(entry, MonitorPassEntry):
            return entry.result.states_explored
        return None
    key = exploration_key(program, cfg, observe_locs, False, por)
    entry = _memory_cache.get(key) if memo_enabled() else None
    if not isinstance(entry, ExplorationResult) and cache_enabled():
        entry = _disk_load(key)
    if isinstance(entry, ExplorationResult):
        return entry.states_explored
    return None
