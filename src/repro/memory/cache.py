"""Persistent memoization of exploration results.

The verification layers re-explore the same kernel fragments over and
over: every wDRF condition explores its own instrumentation of the same
program, the SeKVM pipeline verifies 30+ interfaces whose hot fragments
repeat across versions, and benchmark/CI runs repeat the whole litmus
corpus.  :func:`cached_explore` memoizes :func:`repro.memory.exploration.
explore` keyed by a fingerprint of *everything the result depends on*:

* the program (threads, instructions, initial memory, spaces, MMU),
* the :class:`ModelConfig` (all fields, frozensets canonicalized),
* the observation request (``observe_locs`` **in order** — behavior
  tuples are order-sensitive — and ``keep_terminal_states``),
* the reduction mode (``por``), and
* a fingerprint of the memory-model sources themselves, so a cache
  populated by an older engine can never serve a newer one.

Results live in a per-process dict and, across processes, in pickle
files under ``REPRO_EXPLORE_CACHE_DIR`` (default
``~/.cache/vrm-repro/explore``).  Disk traffic is strictly best-effort:
any OS or unpickling error silently degrades to a recomputation.
``REPRO_EXPLORE_CACHE=0`` disables persistence entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from typing import Dict, Optional, Sequence

from repro.ir.program import Program
from repro.memory.datatypes import ExplorationResult
from repro.memory.exploration import explore, por_default_enabled
from repro.memory.semantics import ModelConfig

_CACHE_VERSION = 1

_memory_cache: Dict[str, ExplorationResult] = {}

_code_fingerprint: Optional[str] = None


def cache_enabled() -> bool:
    """Persistent caching is on unless ``REPRO_EXPLORE_CACHE=0``."""
    return os.environ.get("REPRO_EXPLORE_CACHE", "1") != "0"


def cache_dir() -> str:
    """Directory holding on-disk exploration results."""
    configured = os.environ.get("REPRO_EXPLORE_CACHE_DIR")
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "vrm-repro", "explore"
    )


def code_fingerprint() -> str:
    """Hash of the memory-model implementation itself.

    Any edit to the semantics, the explorer, or the IR invalidates every
    cached result, so a stale cache can never mask an engine change.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        h = hashlib.sha256(str(_CACHE_VERSION).encode())
        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for subdir in ("memory", "ir", "mmu"):
            folder = os.path.join(pkg_root, subdir)
            if not os.path.isdir(folder):
                continue
            for fname in sorted(os.listdir(folder)):
                if fname.endswith(".py"):
                    path = os.path.join(folder, fname)
                    h.update(fname.encode())
                    with open(path, "rb") as fh:
                        h.update(fh.read())
        _code_fingerprint = h.hexdigest()
    return _code_fingerprint


def _config_fingerprint(cfg: ModelConfig) -> str:
    parts = []
    for f in dataclasses.fields(cfg):
        value = getattr(cfg, f.name)
        if isinstance(value, frozenset):
            value = tuple(sorted(value))
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def _program_fingerprint(program: Program) -> str:
    mem = tuple(sorted(program.initial_memory.items()))
    spaces = tuple(sorted((k, v.value) for k, v in program.spaces.items()))
    return (
        f"threads={program.threads!r};mem={mem!r};"
        f"spaces={spaces!r};mmu={program.mmu!r}"
    )


def exploration_key(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    keep_terminal_states: bool,
    por: bool,
) -> str:
    """The cache key: a digest of everything the result depends on."""
    observed = None if observe_locs is None else tuple(observe_locs)
    text = "\x00".join(
        (
            code_fingerprint(),
            _program_fingerprint(program),
            _config_fingerprint(cfg),
            repr(observed),
            repr(bool(keep_terminal_states)),
            repr(bool(por)),
        )
    )
    return hashlib.sha256(text.encode()).hexdigest()


def _disk_load(key: str) -> Optional[ExplorationResult]:
    try:
        with open(os.path.join(cache_dir(), key + ".pkl"), "rb") as fh:
            result = pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None
    return result if isinstance(result, ExplorationResult) else None


def _disk_store(key: str, result: ExplorationResult) -> None:
    folder = cache_dir()
    try:
        os.makedirs(folder, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=folder, suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, os.path.join(folder, key + ".pkl"))
    except OSError:
        pass


def clear_memory_cache() -> None:
    """Drop the in-process memo (used by tests and benchmarks)."""
    _memory_cache.clear()


def cached_explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    keep_terminal_states: bool = False,
    por: Optional[bool] = None,
    cache: bool = True,
) -> ExplorationResult:
    """:func:`~repro.memory.exploration.explore`, memoized.

    Identical inputs (per :func:`exploration_key`) return the previously
    computed :class:`ExplorationResult`; pass ``cache=False`` (or set
    ``REPRO_EXPLORE_CACHE=0`` for the disk layer) to force recomputation.
    """
    if por is None:
        por = por_default_enabled()
    if not cache:
        return explore(program, cfg, observe_locs, keep_terminal_states, por)
    key = exploration_key(program, cfg, observe_locs, keep_terminal_states, por)
    result = _memory_cache.get(key)
    if result is not None:
        return result
    if cache_enabled():
        result = _disk_load(key)
        if result is not None:
            _memory_cache[key] = result
            return result
    result = explore(program, cfg, observe_locs, keep_terminal_states, por)
    _memory_cache[key] = result
    if cache_enabled():
        _disk_store(key, result)
    return result
