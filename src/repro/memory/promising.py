"""The Promising Arm relaxed hardware model (facade).

This is the bottom layer of VRM's multi-layer hardware model: the
operational model proven equivalent to the Armv8 axiomatic specification,
extended here with the system features (MMU walkers, TLBs) the paper's
framework adds on top of the user-level model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import PROMISING_ARM, ModelConfig


def explore_promising(
    program: Program,
    observe_locs: Optional[Sequence[int]] = None,
    **overrides,
) -> ExplorationResult:
    """All observable behaviors of *program* on the Promising Arm model."""
    cfg = (
        PROMISING_ARM
        if not overrides
        else ModelConfig(relaxed=True, **overrides)
    )
    return cached_explore(program, cfg, observe_locs)
