"""Independence-based partial-order reduction for the explorer.

The DFS in :mod:`repro.memory.exploration` enumerates every scheduler
interleaving.  Most of those interleavings are redundant: steps of
different threads that touch disjoint locations *commute exactly* — the
machine state after ``a;b`` equals the state after ``b;a`` — so exploring
one order is enough.  This module implements an ample-set (sleep-set
style) reduction built on two commutation facts of the single-timeline
Promising model:

1. **Local steps commute with everything.**  ``Label``/``Nop``/``Mov``/
   ``Jump``/conditional branches read and write only the acting thread's
   context.  They never append to the timeline, can never be disabled,
   and are deterministic, so a thread whose next instruction is local can
   be scheduled *exclusively* without losing any state.

2. **Reads of quiescent locations commute with everything.**  A plain
   ``Load`` of a location that no *other* thread can ever write again
   (and whose own thread performs no further stores, so it has no
   promise steps to defer) has a read-candidate set that is unaffected
   by every other thread's steps, and it affects only its own context.
   Scheduling the loading thread exclusively preserves the exact set of
   reachable terminal states.

Both facts are *state-level* commutations (not merely behavioral), so
the reduced search reaches the identical set of terminal machine states,
and therefore the identical behavior set, bit for bit.

Soundness gate
--------------

The commutation arguments above break in the presence of global side
channels: panics freeze the whole machine (making local steps
observable), barriers and acquire/release accesses couple thread views
to global timestamps, RMWs both read and write, page-table stores and
TLB invalidations feed the walker floor, and push/pull transfers
ownership between threads.  :func:`por_eligible` therefore admits only
programs built from plain loads, plain stores, and local control flow,
run without the push/pull discipline; everything else falls back to the
full (unreduced) exploration.  The ``REPRO_POR_CHECK=1`` environment
switch makes :func:`repro.memory.exploration.explore` run both searches
and assert the behavior sets coincide.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ir.expr import Imm
from repro.ir.instructions import (
    BranchIfNonZero,
    BranchIfZero,
    Jump,
    Label,
    Load,
    Mov,
    Nop,
    Store,
)
from repro.ir.program import Thread
from repro.memory import mutants

#: Instructions that read and write only the acting thread's context.
LOCAL_INSTRS = (Label, Nop, Mov, Jump, BranchIfZero, BranchIfNonZero)

#: The only instructions a POR-eligible program may contain.
_SAFE_INSTRS = LOCAL_INSTRS + (Load, Store)

#: Sentinel for "may write any location" (register-dependent address).
TOP = None

Footprint = Optional[FrozenSet[int]]  # frozenset of locations, or TOP


#: Below this many total instructions, a non-relaxed exploration is so
#: small that building the :class:`PORPlan` (footprint fixpoints) and
#: running the per-state ample checks cost more than the interleavings
#: they prune — the litmus corpus measured a net 0.98x "speedup" with
#: the reduction unconditionally on.  Relaxed explorations are never
#: gated: promise steps blow the state space up enough that the
#: reduction always pays for itself.
POR_GATE_MIN_INSTRS = 16


def por_worthwhile(program, cfg) -> bool:
    """Cheap static gate: is the reduction worth its bookkeeping?

    Skipping is always behavior-preserving (the reduction itself is);
    this gate is purely a cost call.  The explorer records a skip in
    :class:`~repro.memory.datatypes.EngineStats` as ``por_gate_skips``.
    """
    if mutants.enabled("skip-por-gate"):  # seeded bug class
        return True
    if cfg.relaxed:
        return True
    total = sum(len(t.instrs) for t in program.threads)
    return total >= POR_GATE_MIN_INSTRS


def por_eligible(program, cfg) -> bool:
    """May *program* under *cfg* be explored with the reduction?

    Falls back (returns False) whenever barriers, acquire/release
    accesses, RMWs, exclusives, push/pull ownership transfers,
    page-table stores, TLB invalidations, virtual accesses, oracle
    reads, or explicit panics are in play — the cases where steps stop
    commuting exactly.
    """
    if mutants.enabled("skip-por-gate"):  # seeded bug class
        return True
    if cfg.pushpull or cfg.owned_access_required:
        return False
    if cfg.tso:
        # Store buffers break the commutation facts: a plain store no
        # longer appends to the timeline (it mutates only its own
        # context), but its later *flush* races every other thread's
        # reads, so neither fact covers it.
        return False
    for thread in program.threads:
        for instr in thread.instrs:
            if not isinstance(instr, _SAFE_INSTRS):
                return False
            if isinstance(instr, Load) and instr.acquire:
                return False
            if isinstance(instr, Store) and (
                instr.release or instr.pt_kind is not None
            ):
                return False
    return True


def _instr_successors(thread: Thread, labels: Dict[str, int], pc: int) -> List[int]:
    """Control-flow successors of the instruction at *pc* (may fall off
    the end of the thread, which means halt)."""
    instr = thread.instrs[pc]
    if isinstance(instr, Jump):
        return [labels[instr.target]]
    if isinstance(instr, (BranchIfZero, BranchIfNonZero)):
        return [labels[instr.target], pc + 1]
    return [pc + 1]


def _store_footprints(thread: Thread, labels: Dict[str, int]) -> List[Footprint]:
    """Per-pc may-write sets: the locations any store reachable from
    ``pc`` (inclusive) can target.  ``TOP`` when some reachable store has
    a register-dependent address.  Index ``len(instrs)`` is the halted
    suffix (writes nothing)."""
    n = len(thread.instrs)
    own: List[Footprint] = []
    for instr in thread.instrs:
        if isinstance(instr, Store):
            if isinstance(instr.addr, Imm):
                own.append(frozenset((instr.addr.value,)))
            else:
                own.append(TOP)
        else:
            own.append(frozenset())
    reach: List[Footprint] = own[:] + [frozenset()]
    changed = True
    while changed:
        changed = False
        for pc in range(n - 1, -1, -1):
            acc = reach[pc]
            for succ in _instr_successors(thread, labels, pc):
                nxt = reach[min(succ, n)]
                if acc is TOP:
                    break
                if nxt is TOP:
                    acc = TOP
                elif not (nxt <= acc):
                    acc = acc | nxt
            if acc != reach[pc]:
                reach[pc] = acc
                changed = True
    return reach


class PORPlan:
    """Per-exploration reduction plan: the eligibility verdict plus the
    precomputed per-(thread, pc) store footprints."""

    __slots__ = ("eligible", "footprints", "_thread_lens")

    def __init__(self, cache, cfg):
        self.eligible = por_eligible(cache.program, cfg)
        self.footprints: List[List[Footprint]] = []
        self._thread_lens: List[int] = []
        if self.eligible:
            for tidx, thread in enumerate(cache.threads):
                self.footprints.append(
                    _store_footprints(thread, cache.labels[tidx])
                )
                self._thread_lens.append(len(thread.instrs))

    def _may_write(self, tidx: int, pc: int, loc: int) -> bool:
        fp = self.footprints[tidx][min(pc, self._thread_lens[tidx])]
        return fp is TOP or loc in fp

    def ample_thread(self, cache, state, stats=None) -> Optional[int]:
        """A thread index safe to schedule exclusively at *state*, or
        ``None`` when the full successor expansion is required.

        Selection is deterministic (lowest-index eligible thread, local
        steps first) so explorations stay reproducible.  When the caller
        passes the exploration's :class:`~repro.memory.datatypes.
        EngineStats`, every ample selection bumps ``por_ample_hits``.
        """
        if not self.eligible:
            return None
        threads = state.threads
        # Pass 1: a thread at a local (context-only) instruction.
        for tidx, ctx in enumerate(threads):
            if ctx.halted:
                continue
            if ctx.pc >= self._thread_lens[tidx]:
                if stats is not None:
                    stats.por_ample_hits += 1
                return tidx  # halt-normalization step: local by nature
            if isinstance(cache.instr_at(tidx, ctx.pc), LOCAL_INSTRS):
                if stats is not None:
                    stats.por_ample_hits += 1
                return tidx
        # Pass 2: a thread loading a location no other thread can still
        # write, with no stores (hence no promise steps) of its own left.
        for tidx, ctx in enumerate(threads):
            if ctx.halted:
                continue
            instr = cache.instr_at(tidx, ctx.pc)
            if not isinstance(instr, Load):
                continue
            own = self.footprints[tidx][ctx.pc]
            if own is TOP or own:
                continue
            try:
                loc = instr.addr.eval(dict(ctx.regs))
            except Exception:
                continue
            if any(
                self._may_write(other, threads[other].pc, loc)
                for other in range(len(threads))
                if other != tidx and not threads[other].halted
            ):
                continue
            if stats is not None:
                stats.por_ample_hits += 1
            return tidx
        return None
