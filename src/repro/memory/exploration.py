"""Exhaustive state-space exploration of kernel programs under a model.

The explorer drives :mod:`repro.memory.semantics` to a fixpoint with a
depth-first search over all scheduler interleavings, read choices, walker
choices, oracle draws, and promise certificates, deduplicating identical
machine states.  Spin loops terminate the search naturally: spinning
without observing a new message revisits an identical state.

Two engine-level optimizations keep the search tractable at corpus
scale, both behavior-preserving:

* **Partial-order reduction** (:mod:`repro.memory.por`): when the
  program passes the static soundness gate, threads whose next step
  commutes exactly with every other thread's steps are scheduled
  exclusively, skipping redundant interleavings.  ``REPRO_POR=0``
  disables the reduction; ``REPRO_POR_CHECK=1`` runs every exploration
  both ways and asserts the behavior sets are identical.
* **Canonical state interning** (:class:`repro.memory.state.StateInterner`):
  the visited set stores compact hash-consed keys instead of deep nested
  tuples, so duplicate detection costs O(changed components) per
  successor rather than O(whole state).

The result records whether the exploration was *complete* — no path was
cut by the memory-growth or state-count budget — which the verification
checkers require before claiming a condition holds.

Verification checkers observe the search through **streaming monitors**
(:class:`~repro.memory.datatypes.ExplorationMonitor`): each valid
terminal state is delivered to every attached monitor as it is popped,
a monitor may ``stop()`` once it has a verdict, and when all monitors
have stopped the search is cut (``stopped_early`` — distinct from budget
incompleteness).  This replaces ``keep_terminal_states`` buffering on
the verification hot path and lets counterexample searches exit at the
first violation instead of exhausting the state space.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ExplorationBudgetExceeded, VerificationError
from repro.ir.program import Program
from repro.memory.datatypes import (
    Behavior,
    EngineStats,
    ExplorationMonitor,
    ExplorationResult,
    latest_write_ts,
    value_at,
)
from repro.memory.por import PORPlan, por_worthwhile
from repro.obs import metrics, tracer
from repro.memory.semantics import (
    CertMemo,
    ModelConfig,
    ProgramCache,
    execute_instruction,
    promise_steps,
    resolve_model,
    resolve_vm_features,
    tso_check_enabled,
    tso_flush_steps,
    vm_check_enabled,
    vm_neutral_program,
)
from repro.memory.state import (
    ExecState,
    StateInterner,
    initial_state,
    interning_enabled,
    tget,
)


def por_default_enabled() -> bool:
    """Partial-order reduction is on unless ``REPRO_POR=0``."""
    return os.environ.get("REPRO_POR", "1") != "0"


def por_check_enabled() -> bool:
    """Cross-check mode: run reduced and unreduced searches, compare."""
    return os.environ.get("REPRO_POR_CHECK", "0") == "1"


def behavior_of(
    cache: ProgramCache,
    state: ExecState,
    observe_locs: Sequence[int],
) -> Behavior:
    """Project a terminal machine state onto its observable behavior."""
    registers: List[Tuple[int, str, int]] = []
    for tidx, thread in enumerate(cache.threads):
        ctx = state.threads[tidx]
        for reg in thread.observed:
            registers.append((thread.tid, reg, tget(ctx.regs, reg, None)))
    memory: List[Tuple[int, int]] = []
    for loc in observe_locs:
        ts = latest_write_ts(state.memory, loc)
        memory.append((loc, value_at(state.memory, loc, ts, cache.init_value(loc))))
    return Behavior(
        registers=tuple(registers),
        memory=tuple(memory),
        faults=tuple(sorted(state.faults)),
        panic=state.panic,
    )


def _is_terminal(state: ExecState) -> bool:
    # A TSO execution is only over once every store buffer has drained
    # (``wbuf`` is always empty outside the TSO model).
    return state.panic is not None or all(
        t.halted and not t.wbuf for t in state.threads
    )


def _successors(
    cache: ProgramCache,
    state: ExecState,
    cfg: ModelConfig,
    memo: CertMemo,
    plan,
    stats: EngineStats,
    sink,
) -> List[ExecState]:
    """Expand one non-terminal state: the full scheduler/promise fan-out,
    or the single ample thread when the POR plan offers one.

    Shared by the serial DFS loop and the shard workers
    (:mod:`repro.parallel.shard`) so both expand a given state into the
    byte-identical successor list — the property the frontier-sharding
    merge relies on.
    """
    successors: Optional[List[ExecState]] = None
    if plan is not None:
        ample = plan.ample_thread(cache, state, stats=stats)
        if ample is not None:
            if sink is not None:
                sink.emit(tracer.POR_AMPLE, thread=ample)
            successors = execute_instruction(cache, state, ample, cfg)
            if not successors:
                successors = None  # blocked: fall back to full expansion
    if successors is None:
        successors = []
        threads = state.threads
        relaxed = cfg.relaxed
        tso = cfg.tso
        for tidx in range(len(threads)):
            if tso and threads[tidx].wbuf:
                # The internal flush step — generated before the halted
                # fast path, since a halted thread's leftover buffered
                # writes must still drain into memory.
                successors.extend(tso_flush_steps(cache, state, tidx, cfg))
            if threads[tidx].halted:
                continue  # fast path: no steps, no promises
            successors.extend(execute_instruction(cache, state, tidx, cfg))
            if relaxed:
                successors.extend(promise_steps(cache, state, tidx, cfg, memo))
    stats.successors_generated += len(successors)
    return successors


def _is_valid_terminal(state: ExecState) -> bool:
    """Panic states are always observable; normal termination requires all
    promises fulfilled (an unfulfillable promise is not an execution)."""
    if state.panic is not None:
        return True
    return not any(t.promises for t in state.threads)


def explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    keep_terminal_states: bool = False,
    por: Optional[bool] = None,
    monitors: Optional[Sequence[ExplorationMonitor]] = None,
    monitor_cut: bool = True,
) -> ExplorationResult:
    """Enumerate every observable behavior of *program* under *cfg*.

    ``observe_locs`` selects the shared locations whose final values are
    part of the behavior; it defaults to all locations with declared
    initial values.  ``keep_terminal_states`` retains the full terminal
    machine states (message timelines included) — a debugging aid; the
    streaming alternative is ``monitors``, a sequence of
    :class:`~repro.memory.datatypes.ExplorationMonitor` objects that
    receive every valid terminal state as it is reached and may cut the
    search early once all of them have their verdict (the result is then
    marked ``stopped_early``; ``complete`` is untouched).
    ``monitor_cut=False`` keeps delivering the full search even after
    every monitor has stopped — the legacy exhaustive behavior the
    fusion cross-check and benchmark compare against; a stopped
    monitor's counters freeze at its stop point either way, so verdicts
    are bit-identical in both modes.
    ``por`` overrides the partial-order-reduction default (``REPRO_POR``);
    reduction only ever engages on programs passing the soundness gate,
    so behavior sets are identical either way.
    """
    cfg = resolve_model(resolve_vm_features(cfg))
    if por is None:
        por = por_default_enabled()
    if cfg.tso and tso_check_enabled() and vm_neutral_program(program):
        # Model-strength cross-check (REPRO_TSO_CHECK=1): the TSO
        # behavior set must sit between SC and Promising Arm.  Limited
        # to MMU-free programs, where the three models share one walker
        # story and the containment argument is unconditional.
        # ``_explore`` is called directly so the derived configurations
        # cannot be re-targeted from the environment.
        from dataclasses import replace as _replace

        tso_res = _explore(program, cfg, observe_locs, False, por)
        sc_res = _explore(
            program, _replace(cfg, tso=False, relaxed=False),
            observe_locs, False, por,
        )
        arm_res = _explore(
            program, _replace(cfg, tso=False, relaxed=True),
            observe_locs, False, por,
        )
        if sc_res.complete and tso_res.complete:
            missing = sc_res.behaviors - tso_res.behaviors
            if missing:
                raise VerificationError(
                    f"TSO cross-check failed for {program.name!r}: "
                    f"{len(missing)} SC behavior(s) are not TSO behaviors "
                    f"(SC ⊆ TSO violated)"
                )
        if tso_res.complete and arm_res.complete:
            extra = tso_res.behaviors - arm_res.behaviors
            if extra:
                raise VerificationError(
                    f"TSO cross-check failed for {program.name!r}: "
                    f"{len(extra)} TSO behavior(s) are not Arm behaviors "
                    f"(TSO ⊆ Arm violated)"
                )
    if cfg.vm_features and vm_check_enabled() and vm_neutral_program(program):
        # Bit-identity cross-check (REPRO_VM_CHECK=1): the VM feature
        # families may only change programs that actually exercise the
        # MMU.  For MMU-free programs, explore with the features on and
        # off and require identical behavior sets.  ``_explore`` is
        # called directly so the stripped config cannot be re-filled
        # from the environment.
        from dataclasses import replace as _replace

        featured = _explore(program, cfg, observe_locs, False, por)
        stripped = _explore(
            program, _replace(cfg, vm_features=frozenset()),
            observe_locs, False, por,
        )
        if featured.complete and stripped.complete:
            if featured.behaviors != stripped.behaviors:
                raise VerificationError(
                    f"VM-feature cross-check failed for {program.name!r}: "
                    f"features {sorted(cfg.vm_features)} changed the "
                    f"behavior set of an MMU-free program "
                    f"({len(featured.behaviors)} vs "
                    f"{len(stripped.behaviors)} behaviors)"
                )
    if por_check_enabled():
        # The comparison must see full behavior sets, so both cross-check
        # searches run monitor-free; the caller's monitors are then fed
        # by a third search in the requested mode.
        reduced = _explore(program, cfg, observe_locs, keep_terminal_states, True)
        baseline = _explore(program, cfg, observe_locs, keep_terminal_states, False)
        if reduced.complete and baseline.complete:
            if reduced.behaviors != baseline.behaviors:
                raise VerificationError(
                    f"POR cross-check failed for {program.name!r}: "
                    f"reduced search found {len(reduced.behaviors)} behaviors, "
                    f"unreduced {len(baseline.behaviors)}"
                )
        if monitors:
            return _explore(
                program, cfg, observe_locs, keep_terminal_states, por,
                monitors, monitor_cut,
            )
        return reduced if por else baseline
    if (
        not keep_terminal_states
        and os.environ.get("REPRO_SHARD", "0") not in ("", "0", "1")
    ):
        # Intra-exploration frontier sharding (REPRO_SHARD).  The gate
        # lives here — not in the cache key inputs — because a sharded
        # run is bit-identical to the serial one, so cached results are
        # valid across shard configurations.  ``keep_terminal_states``
        # runs are excluded: the terminal-state *tuple order* is a
        # serial-DFS artifact the merge does not reconstruct (it is a
        # debugging aid, not a verification path).
        from repro.parallel.shard import maybe_shard_explore

        sharded = maybe_shard_explore(
            program, cfg, observe_locs, por, monitors, monitor_cut,
        )
        if sharded is not None:
            return sharded
    return _explore(
        program, cfg, observe_locs, keep_terminal_states, por, monitors,
        monitor_cut,
    )


def _explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]],
    keep_terminal_states: bool,
    por: bool,
    monitors: Optional[Sequence[ExplorationMonitor]] = None,
    monitor_cut: bool = True,
) -> ExplorationResult:
    cache = ProgramCache(program)
    if observe_locs is None:
        observe_locs = sorted(cache.initial_memory)
    start = initial_state(len(program.threads), cfg.initial_ownership)

    behaviors: Set[Behavior] = set()
    terminal_states: List[ExecState] = []
    stats = EngineStats()

    # Hoisted once per exploration: the no-op path pays one module-attribute
    # load here and a single local ``is None`` test per loop iteration.
    sink = tracer.SINK
    span_id = None
    if sink is not None:
        span_id = sink.begin_span(
            "explore", program=program.name, relaxed=cfg.relaxed, por=por,
        )

    plan = None
    if por:
        if por_worthwhile(program, cfg):
            plan = PORPlan(cache, cfg)
            if not plan.eligible:
                plan = None
        else:
            stats.por_gate_skips += 1

    active: List[ExplorationMonitor] = [
        m for m in (monitors or ()) if not m.stopped
    ]
    stats.fused_conditions = max(0, len(active) - 1)
    stopped_early = False
    if interning_enabled():
        interner: Optional[StateInterner] = StateInterner()
        state_key = interner.key
    else:  # benchmark baseline: hash whole states
        interner = None
        state_key = lambda s: s  # noqa: E731
    # One certification memo — and one interner — for the whole run: the
    # outer DFS and every nested certification search share them.
    memo = CertMemo(interner=interner, stats=stats)
    visited = {state_key(start)}
    stack: List[ExecState] = [start]
    states_explored = 0
    cut_paths = 0
    complete = True

    while stack:
        if states_explored >= cfg.max_states:
            complete = False
            break
        state = stack.pop()
        states_explored += 1

        if _is_terminal(state):
            if _is_valid_terminal(state):
                behaviors.add(behavior_of(cache, state, observe_locs))
                if keep_terminal_states:
                    terminal_states.append(state)
                if active:
                    still_watching: List[ExplorationMonitor] = []
                    for monitor in active:
                        monitor.observe(state, states_explored)
                        if monitor.stopped:
                            stats.monitor_stops += 1
                            if sink is not None:
                                sink.emit(
                                    tracer.MONITOR_STOP,
                                    monitor=type(monitor).__name__,
                                    states=states_explored,
                                )
                        else:
                            still_watching.append(monitor)
                    active = still_watching
                    if not active and monitor_cut:
                        # Every monitor has its verdict: a chosen early
                        # exit, not a budget cut.
                        stopped_early = True
                        break
            continue

        successors = _successors(cache, state, cfg, memo, plan, stats, sink)

        if not successors:
            # Deadlock: some thread blocked forever (e.g. an RMW stuck
            # behind an unfulfillable promise).  Not a valid execution.
            cut_paths += 1
            continue

        for succ in successors:
            if len(succ.memory) > cfg.max_memory:
                cut_paths += 1
                complete = False
                continue
            key = state_key(succ)
            if key not in visited:
                visited.add(key)
                stack.append(succ)

    if interner is not None:
        stats.interner_timelines = len(interner)
    if stats.cert_budget_hits:
        # A budget-cut certification may have wrongly rejected a promise:
        # the behavior set could be an under-approximation, and an
        # incomplete certification must not masquerade as a smaller
        # behavior set.
        complete = False

    if sink is not None:
        sink.end_span(
            span_id, "explore", program=program.name,
            states=states_explored, behaviors=len(behaviors),
            complete=complete, stopped_early=stopped_early,
        )
    if metrics.ENABLED:
        metrics.absorb_engine_stats(stats)
        reg = metrics.REGISTRY
        reg.counter("explore.states_explored").inc(states_explored)
        reg.counter("explore.cut_paths").inc(cut_paths)
        reg.histogram("explore.behaviors").observe(len(behaviors))
        reg.histogram("explore.states").observe(states_explored)

    return ExplorationResult(
        behaviors=frozenset(behaviors),
        complete=complete,
        states_explored=states_explored,
        cut_paths=cut_paths,
        terminal_states=tuple(terminal_states),
        stats=stats,
        stopped_early=stopped_early,
    )


def explore_or_raise(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    keep_terminal_states: bool = False,
    por: Optional[bool] = None,
    monitors: Optional[Sequence[ExplorationMonitor]] = None,
    monitor_cut: bool = True,
) -> ExplorationResult:
    """Like :func:`explore` but refuses incomplete explorations.

    Forwards the full :func:`explore` signature, so monitored (fused)
    passes can use the raising wrapper too.  A monitor-cut search
    (``stopped_early``) is *not* incomplete — the monitors chose to
    stop — and passes through without raising.
    """
    result = explore(
        program, cfg, observe_locs, keep_terminal_states, por, monitors,
        monitor_cut,
    )
    if not result.complete:
        stats = result.stats
        cert_note = ""
        if stats is not None and stats.cert_budget_hits:
            cert_note = (
                f"; {stats.cert_budget_hits} certification searches hit "
                f"cert_max_states={cfg.cert_max_states}, so the behavior "
                f"set may be an under-approximation"
            )
        raise ExplorationBudgetExceeded(
            f"exploration of {program.name!r} exceeded its budget "
            f"({result.states_explored} states, {result.cut_paths} cut paths"
            f"{cert_note})"
        )
    return result
