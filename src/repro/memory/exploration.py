"""Exhaustive state-space exploration of kernel programs under a model.

The explorer drives :mod:`repro.memory.semantics` to a fixpoint with a
depth-first search over all scheduler interleavings, read choices, walker
choices, oracle draws, and promise certificates, deduplicating identical
machine states.  Spin loops terminate the search naturally: spinning
without observing a new message revisits an identical state.

The result records whether the exploration was *complete* — no path was
cut by the memory-growth or state-count budget — which the verification
checkers require before claiming a condition holds.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ExplorationBudgetExceeded
from repro.ir.program import Program
from repro.memory.datatypes import (
    Behavior,
    ExplorationResult,
    latest_write_ts,
    value_at,
)
from repro.memory.semantics import (
    ModelConfig,
    ProgramCache,
    execute_instruction,
    promise_steps,
)
from repro.memory.state import ExecState, initial_state, tget


def behavior_of(
    cache: ProgramCache,
    state: ExecState,
    observe_locs: Sequence[int],
) -> Behavior:
    """Project a terminal machine state onto its observable behavior."""
    registers: List[Tuple[int, str, int]] = []
    for tidx, thread in enumerate(cache.threads):
        ctx = state.threads[tidx]
        for reg in thread.observed:
            registers.append((thread.tid, reg, tget(ctx.regs, reg, None)))
    memory: List[Tuple[int, int]] = []
    for loc in observe_locs:
        ts = latest_write_ts(state.memory, loc)
        memory.append((loc, value_at(state.memory, loc, ts, cache.init_value(loc))))
    return Behavior(
        registers=tuple(registers),
        memory=tuple(memory),
        faults=tuple(sorted(state.faults)),
        panic=state.panic,
    )


def _is_terminal(state: ExecState) -> bool:
    return state.panic is not None or all(t.halted for t in state.threads)


def _is_valid_terminal(state: ExecState) -> bool:
    """Panic states are always observable; normal termination requires all
    promises fulfilled (an unfulfillable promise is not an execution)."""
    if state.panic is not None:
        return True
    return not any(t.promises for t in state.threads)


def explore(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    keep_terminal_states: bool = False,
) -> ExplorationResult:
    """Enumerate every observable behavior of *program* under *cfg*.

    ``observe_locs`` selects the shared locations whose final values are
    part of the behavior; it defaults to all locations with declared
    initial values.  ``keep_terminal_states`` retains the full terminal
    machine states (message timelines included) for auditing checkers.
    """
    cache = ProgramCache(program)
    if observe_locs is None:
        observe_locs = sorted(cache.initial_memory)
    start = initial_state(len(program.threads), cfg.initial_ownership)

    behaviors: Set[Behavior] = set()
    terminal_states: List[ExecState] = []
    visited: Set[ExecState] = {start}
    stack: List[ExecState] = [start]
    states_explored = 0
    cut_paths = 0
    complete = True

    while stack:
        state = stack.pop()
        states_explored += 1
        if states_explored > cfg.max_states:
            complete = False
            break

        if _is_terminal(state):
            if _is_valid_terminal(state):
                behaviors.add(behavior_of(cache, state, observe_locs))
                if keep_terminal_states:
                    terminal_states.append(state)
            continue

        successors: List[ExecState] = []
        for tidx in range(len(program.threads)):
            successors.extend(execute_instruction(cache, state, tidx, cfg))
            successors.extend(promise_steps(cache, state, tidx, cfg))

        if not successors:
            # Deadlock: some thread blocked forever (e.g. an RMW stuck
            # behind an unfulfillable promise).  Not a valid execution.
            cut_paths += 1
            continue

        for succ in successors:
            if len(succ.memory) > cfg.max_memory:
                cut_paths += 1
                complete = False
                continue
            if succ not in visited:
                visited.add(succ)
                stack.append(succ)

    return ExplorationResult(
        behaviors=frozenset(behaviors),
        complete=complete,
        states_explored=states_explored,
        cut_paths=cut_paths,
        terminal_states=tuple(terminal_states),
    )


def explore_or_raise(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
) -> ExplorationResult:
    """Like :func:`explore` but refuses incomplete explorations."""
    result = explore(program, cfg, observe_locs)
    if not result.complete:
        raise ExplorationBudgetExceeded(
            f"exploration of {program.name!r} exceeded its budget "
            f"({result.states_explored} states, {result.cut_paths} cut paths)"
        )
    return result
