"""Comparing behavior sets across hardware models.

The executable content of the paper's theorems is set containment:
Theorem 1 says every behavior of a wDRF kernel program on the Promising
Arm model is also a behavior on the SC model.  These helpers compute the
containment and produce readable diffs when it fails (which is how the
litmus suite demonstrates Examples 1-7).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import Behavior, ExplorationResult
from repro.memory.semantics import ModelConfig, PROMISING_ARM, SC
from repro.parallel import parallel_map

_REGISTER_KEY = re.compile(r"^t(\d+)_(\w+)$")


def parse_register_key(key: str) -> Tuple[int, str]:
    """Split a ``t{tid}_{reg}`` litmus-condition key into ``(tid, reg)``.

    Accepts multi-digit thread ids (``t10_r1`` → ``(10, "r1")``) and
    raises a descriptive :class:`ValueError` on anything malformed
    rather than mis-parsing it.
    """
    m = _REGISTER_KEY.match(key)
    if m is None:
        raise ValueError(
            f"malformed register key {key!r}: expected 't<tid>_<reg>', "
            f"e.g. 't0_r1' or 't10_flag'"
        )
    return int(m.group(1)), m.group(2)


@dataclass(frozen=True)
class BehaviorComparison:
    """The result of comparing a program's behaviors on two models."""

    program_name: str
    sc: ExplorationResult
    rm: ExplorationResult

    @property
    def rm_only(self) -> FrozenSet[Behavior]:
        """Behaviors observable on relaxed hardware but not on SC — the
        relaxed-memory bugs the paper's Section 2 is about."""
        return self.rm.behaviors - self.sc.behaviors

    @property
    def sc_only(self) -> FrozenSet[Behavior]:
        return self.sc.behaviors - self.rm.behaviors

    @property
    def equivalent(self) -> bool:
        """RM ⊆ SC: the guarantee of the wDRF theorem.

        (SC ⊆ RM holds by construction — the SC model's choices are a
        subset of the relaxed model's — so equivalence and containment
        coincide; we still only check the direction the theorem states.)
        """
        return not self.rm_only

    @property
    def complete(self) -> bool:
        return self.sc.complete and self.rm.complete

    def describe(self) -> str:
        lines = [
            f"program {self.program_name!r}:",
            f"  SC behaviors: {len(self.sc.behaviors)}"
            f" ({'complete' if self.sc.complete else 'incomplete'})",
            f"  RM behaviors: {len(self.rm.behaviors)}"
            f" ({'complete' if self.rm.complete else 'incomplete'})",
        ]
        if self.rm_only:
            lines.append("  RM-only behaviors (relaxed-memory effects):")
            for b in sorted(self.rm_only):
                lines.append("    " + b.pretty())
        else:
            lines.append("  no RM-only behaviors: SC proofs transfer")
        return "\n".join(lines)


def _explore_job(args) -> ExplorationResult:
    program, cfg, observe_locs = args
    return cached_explore(program, cfg, observe_locs)


def compare_models(
    program: Program,
    sc_cfg: ModelConfig = SC,
    rm_cfg: ModelConfig = PROMISING_ARM,
    observe_locs: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> BehaviorComparison:
    """Explore *program* under both models and compare outcomes.

    ``jobs`` >= 2 (or negative for all CPUs) runs the two explorations
    in separate processes; the comparison itself is order-fixed, so the
    result is identical to the serial one.
    """
    sc, rm = parallel_map(
        _explore_job,
        [(program, sc_cfg, observe_locs), (program, rm_cfg, observe_locs)],
        jobs=jobs,
    )
    return BehaviorComparison(program_name=program.name, sc=sc, rm=rm)


def admits(result: ExplorationResult, **register_values: int) -> bool:
    """Does any behavior assign these register values?

    Register keys use ``t{tid}_{reg}`` form, e.g. ``admits(res, t0_r0=1,
    t1_r1=1)`` asks whether some behavior has thread 0's ``r0`` = 1 and
    thread 1's ``r1`` = 1 simultaneously — the standard litmus-test
    postcondition query.
    """
    wanted = {}
    for key, value in register_values.items():
        wanted[parse_register_key(key)] = value
    for behavior in result.behaviors:
        assignment = {(t, r): v for t, r, v in behavior.registers}
        if all(assignment.get(k) == v for k, v in wanted.items()):
            return True
    return False
