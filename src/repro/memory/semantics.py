"""The step relation shared by the SC, Promising Arm, and push/pull models.

One executor implements all three hardware models of the paper:

* **SC** (``relaxed=False``): threads interleave; every read returns the
  globally latest write; there are no promises; MMU walkers read the
  latest page-table contents.  This is the model the bulk of SeKVM's
  proofs are carried out on.
* **Promising Arm** (``relaxed=True``): the operational relaxed model of
  Section 4 — reads may return stale messages subject to per-location
  coherence, dependency views, and barrier floors; stores may be
  *promised* ahead of program order subject to thread-local
  certification; MMU walkers read stale page-table entries unless a
  barrier-ordered TLBI has raised the walker floor.
* **push/pull Promising** (``pushpull=True`` on top of either): adds the
  ownership discipline of Section 4.1 — ``Pull`` panics on a location
  that is owned or whose last ``Push`` is not yet covered by this CPU's
  barrier frontier (the "fulfilled by barriers" requirement encoding
  No-Barrier-Misuse), ``Push`` panics without ownership, and plain kernel
  accesses to registered shared locations panic unless owned.

The functions here generate *all* successor states of a configuration;
:mod:`repro.memory.exploration` drives them to a fixpoint.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, ProgramError, VerificationError
from repro.ir.expr import Expr
from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    BranchIfNonZero,
    BranchIfZero,
    CompareAndSwap,
    FetchAndInc,
    Instruction,
    Jump,
    Label,
    Load,
    LoadExclusive,
    StoreExclusive,
    MemSpace,
    Mov,
    Nop,
    OracleRead,
    Panic,
    Pull,
    Push,
    Store,
    TLBInvalidate,
    VLoad,
    VStore,
)
from repro.ir.program import Program, Thread
from repro.memory import mutants
from repro.obs import tracer
from repro.memory.datatypes import (
    EngineStats,
    Fault,
    Message,
    last_write_ts,
    latest_write_ts,
    value_at,
)
from repro.memory.state import (
    ExecState,
    StateInterner,
    ThreadCtx,
    interning_enabled,
    tdel,
    tget,
    tset,
)


@dataclass(frozen=True)
class ModelConfig:
    """Which hardware model to run and with what exploration budgets.

    ``owned_access_required`` lists shared-data locations whose kernel
    accesses must happen under push/pull ownership (the instrumented
    critical-section footprints); accesses outside ownership panic, which
    is how the DRF-Kernel check becomes panic-freedom.
    ``initial_ownership`` seeds the ownership map (e.g. a vCPU context
    starts owned by the CPU currently running the vCPU).
    ``vm_features`` enables the relaxed-virtual-memory behavior families
    of :data:`VM_FEATURES`; empty (the default) is the seed MMU model,
    bit-identical to every pre-feature result.
    ``tso`` selects the x86/SPARC-style total-store-order model: the SC
    step relation plus per-thread FIFO store buffers (see
    :mod:`repro.memory.tso`).  Only meaningful with ``relaxed=False`` —
    the promising machinery stays off and TSO's extra weakness comes
    entirely from the buffers.
    """

    relaxed: bool = True
    pushpull: bool = False
    tso: bool = False
    max_promises_per_thread: int = 1
    promise_depth: int = 3
    cert_max_states: int = 4000
    max_memory: int = 64
    max_states: int = 400_000
    owned_access_required: FrozenSet[int] = frozenset()
    initial_ownership: Tuple[Tuple[int, int], ...] = ()
    oracle_sequences: Tuple[Tuple[int, ...], ...] = ()
    vm_features: FrozenSet[str] = frozenset()

    @property
    def check_barrier_fulfillment(self) -> bool:
        return self.relaxed and self.pushpull


#: Shorthand configurations for the three models of the paper.
SC = ModelConfig(relaxed=False)
PROMISING_ARM = ModelConfig(relaxed=True)
PUSH_PULL_SC = ModelConfig(relaxed=False, pushpull=True)
PUSH_PULL_PROMISING = ModelConfig(relaxed=True, pushpull=True)
#: x86/SPARC total store order: SC plus per-thread FIFO store buffers.
TSO = ModelConfig(relaxed=False, tso=True)


# ---------------------------------------------------------------------------
# architecture selection (REPRO_MODEL)
# ---------------------------------------------------------------------------

#: The three selectable architectures, strongest-admitting first:
#: ``arm`` (Promising Arm), ``tso`` (store-buffer TSO), ``sc``.  Every
#: TSO behavior of a program is an Arm behavior, and every SC behavior
#: is a TSO behavior — the containment :mod:`repro.vrm.portability`
#: certifies.
MODEL_NAMES: Tuple[str, ...] = ("arm", "tso", "sc")


def model_config(name: str) -> ModelConfig:
    """The shorthand configuration for one :data:`MODEL_NAMES` entry."""
    if name == "arm":
        return PROMISING_ARM
    if name == "tso":
        return TSO
    if name == "sc":
        return SC
    raise ProgramError(
        f"unknown model {name!r}; known: {', '.join(MODEL_NAMES)}"
    )


def env_model() -> str:
    """The ``REPRO_MODEL`` environment selection (default ``arm``)."""
    name = os.environ.get("REPRO_MODEL", "arm").strip() or "arm"
    if name not in MODEL_NAMES:
        raise ProgramError(
            f"unknown REPRO_MODEL {name!r}; known: {', '.join(MODEL_NAMES)}"
        )
    return name


def resolve_model(cfg: ModelConfig) -> ModelConfig:
    """Re-target a *relaxed* configuration to the ``REPRO_MODEL`` choice.

    The knob selects which architecture stands in for "the weak model"
    everywhere a relaxed exploration is requested — litmus RM columns,
    the fused wDRF monitor passes, conformance oracles, the serve job
    server.  Explicitly strong configurations (SC, TSO) express a model
    choice of their own and pass through untouched, so baselines and
    containment checks keep their meaning; ``arm`` (the default) is a
    no-op.  Applied identically by the explorer and by
    :func:`repro.memory.cache.exploration_key`, so a re-targeted run can
    never share a cache key with a default-model result.
    """
    if not cfg.relaxed or cfg.tso:
        return cfg
    name = env_model()
    if name == "arm":
        return cfg
    if name == "tso":
        return replace(cfg, relaxed=False, tso=True)
    return replace(cfg, relaxed=False)


def tso_check_enabled() -> bool:
    """Cross-check mode (``REPRO_TSO_CHECK=1``): TSO explorations of
    MMU-free programs are sandwiched between the other two models —
    every SC behavior must be a TSO behavior and every TSO behavior an
    Arm behavior — and any containment violation raises.  The executable
    form of the model-strength hierarchy, continuously checked."""
    return os.environ.get("REPRO_TSO_CHECK", "0") == "1"


# ---------------------------------------------------------------------------
# relaxed-virtual-memory feature families (Simner et al., "Relaxed virtual
# memory in Armv8-A")
# ---------------------------------------------------------------------------

#: The four modeled VM behavior families, each individually switchable:
#:
#: * ``bbm`` — break-before-make violations become observable: changing a
#:   live page-table entry directly to another live value (without the
#:   break/TLBI/make sequence) leaves the *old* translation as a permanent
#:   additional walker candidate — the model's reading of Arm's
#:   CONSTRAINED UNPREDICTABLE "amalgamation" of old and new entries.
#:   Honest break-before-make sequences (write invalid, DMB, TLBI, DMB,
#:   write new) never create a live-to-live transition and are unaffected.
#: * ``walk-cache`` — partial TLB caching of intermediate (non-leaf) walk
#:   entries: a walker that read a level-N table descriptor may keep
#:   serving it to later walks until a non-leaf-scoped stage-1 TLBI, so a
#:   stale intermediate descriptor can redirect a walk even after the
#:   leaf entry was invalidated (``leaf_only`` TLBIs preserve it).
#: * ``had`` — hardware access/dirty-bit management: every successful
#:   translation appends a walker-originated atomic update OR-ing
#:   :data:`PTE_AF` (and :data:`PTE_DIRTY` for stores) into the stage-1
#:   leaf entry; the update is an ordinary message participating in
#:   coherence, and walkers interpret entries modulo the attribute bits.
#: * ``stage2`` — two-stage translation: when the program's
#:   :class:`~repro.ir.program.MMUConfig` sets ``stage2_root``, every
#:   stage-1 table-entry address and the final output page are themselves
#:   stage-2 translated (one flat stage-2 table indexed by IPA), with
#:   per-stage TLBI scope (``TLBInvalidate.stage``) raising only the
#:   matching walker floor.
VM_FEATURES: Tuple[str, ...] = ("bbm", "had", "stage2", "walk-cache")

#: Hardware-managed attribute bits of a stage-1 leaf entry under ``had``.
#: They sit far above any address the test corpus uses, so masking them
#: off recovers the output page.
PTE_AF = 1 << 20
PTE_DIRTY = 1 << 21
PTE_VALUE_MASK = PTE_AF - 1


def parse_vm_features(text: str) -> FrozenSet[str]:
    """Parse a comma-separated feature list (``all`` enables every one)."""
    names = [part.strip() for part in text.split(",") if part.strip()]
    if "all" in names:
        return frozenset(VM_FEATURES)
    unknown = [n for n in names if n not in VM_FEATURES]
    if unknown:
        raise ProgramError(
            f"unknown VM feature(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(VM_FEATURES)} (or 'all')"
        )
    return frozenset(names)


def env_vm_features() -> FrozenSet[str]:
    """The ``REPRO_VM_FEATURES`` environment selection (empty default)."""
    return parse_vm_features(os.environ.get("REPRO_VM_FEATURES", ""))


def resolve_vm_features(cfg: ModelConfig) -> ModelConfig:
    """Fill ``cfg.vm_features`` from the environment when unset.

    An explicitly configured feature set always wins; the environment
    knob only upgrades the default-empty config, so programmatic callers
    (cross-checks, the verdict matrix) are immune to ambient state.
    """
    if cfg.vm_features:
        return cfg
    env = env_vm_features()
    if env:
        return replace(cfg, vm_features=env)
    return cfg


def vm_check_enabled() -> bool:
    """Cross-check mode (``REPRO_VM_CHECK=1``): explorations of
    VM-feature-free programs run with and without the enabled features
    and any behavior difference raises — the bit-identity guarantee the
    feature gates promise, continuously checked."""
    return os.environ.get("REPRO_VM_CHECK", "0") == "1"


def vm_neutral_program(program: Program) -> bool:
    """True when no thread of *program* uses the MMU (no virtual access
    and no TLBI) — the programs whose behavior the VM features must not
    change."""
    for thread in program.threads:
        for instr in thread.instrs:
            if isinstance(instr, (VLoad, VStore, TLBInvalidate)):
                return False
    return True


class ProgramCache:
    """Per-program precomputation shared by every exploration state."""

    def __init__(self, program: Program):
        self.program = program
        self.threads: Tuple[Thread, ...] = program.threads
        self.labels: List[Dict[str, int]] = [t.labels() for t in program.threads]
        self.initial_memory = dict(program.initial_memory)
        self._promisable: List[Optional[List[bool]]] = [None] * len(
            program.threads
        )

    def init_value(self, loc: int) -> int:
        return self.initial_memory.get(loc, 0)

    def instr_at(self, tidx: int, pc: int) -> Instruction:
        return self.threads[tidx].instrs[pc]

    def thread_len(self, tidx: int) -> int:
        return len(self.threads[tidx].instrs)

    def label_index(self, tidx: int, name: str) -> int:
        try:
            return self.labels[tidx][name]
        except KeyError:
            raise ProgramError(
                f"unknown label {name!r} in thread {self.threads[tidx].tid}"
            ) from None

    def promisable_from(self, tidx: int, pc: int) -> bool:
        """Can any plain (non-release) ``Store`` still execute from *pc*?

        Static control-flow reachability over the thread's instruction
        stream (branch targets are labels, hence static).  When False,
        the promise-candidate lookahead is provably empty — only plain
        ``Store`` instructions ever contribute candidates — so
        :func:`promise_steps` skips the whole nested search.
        """
        reach = self._promisable[tidx]
        if reach is None:
            reach = self._compute_promisable(tidx)
            self._promisable[tidx] = reach
        return 0 <= pc < len(reach) and reach[pc]

    def _compute_promisable(self, tidx: int) -> List[bool]:
        instrs = self.threads[tidx].instrs
        labels = self.labels[tidx]
        n = len(instrs)
        succs: List[Tuple[int, ...]] = []
        for pc, instr in enumerate(instrs):
            if isinstance(instr, Jump):
                succs.append((labels.get(instr.target, n),))
            elif isinstance(instr, (BranchIfZero, BranchIfNonZero)):
                succs.append((labels.get(instr.target, n), pc + 1))
            elif isinstance(instr, Panic):
                succs.append(())
            else:
                succs.append((pc + 1,))
        reach = [
            isinstance(instr, Store) and not instr.release for instr in instrs
        ]
        changed = True
        while changed:
            changed = False
            for pc in range(n - 1, -1, -1):
                if reach[pc]:
                    continue
                if any(s < n and reach[s] for s in succs[pc]):
                    reach[pc] = True
                    changed = True
        return reach


# ---------------------------------------------------------------------------
# small helpers
# ---------------------------------------------------------------------------

def _regs_dict(ctx: ThreadCtx) -> Dict[str, int]:
    return dict(ctx.regs)


def _dep_view(ctx: ThreadCtx, expr: Expr) -> int:
    """The dependency view (max register view) feeding *expr*."""
    view = 0
    for reg in expr.registers():
        view = max(view, tget(ctx.rv, reg, 0))
    return view


def _advance(cache: ProgramCache, tidx: int, ctx: ThreadCtx, pc: int) -> ThreadCtx:
    # Positional construction: ~3x cheaper than NamedTuple._replace on
    # this hot path (one per executed instruction).
    return ThreadCtx(
        pc, pc >= cache.thread_len(tidx), ctx.regs, ctx.rv, ctx.coh,
        ctx.vrn, ctx.vwn, ctx.vro, ctx.vwo, ctx.vctrl, ctx.promises,
        ctx.monitor, ctx.wbuf,
    )


def _own_promise_ts(ctx: ThreadCtx) -> FrozenSet[int]:
    return frozenset(ctx.promises)


def _read_candidates(
    state: ExecState,
    cache: ProgramCache,
    cfg: ModelConfig,
    ctx: ThreadCtx,
    loc: int,
    addr_dep: int,
) -> List[Tuple[int, int]]:
    """Messages a thread's read of *loc* may return, as (ts, value).

    SC: only the latest write.  Promising: any write at or after the floor
    ``max(coh[loc], last-write-before(max(addr_dep, vrn)))`` — stale reads
    within coherence, the essence of relaxed behavior on multicopy-atomic
    Arm.  A thread never reads its own unfulfilled promise.
    """
    init = cache.init_value(loc)
    own = ctx.promises  # tiny tuple: membership beats building a frozenset
    if cfg.tso and ctx.wbuf and not mutants.enabled("read-skips-own-buffer"):
        # TSO store forwarding: a read returns the youngest buffered
        # write to the location when one exists — the thread sees its
        # own stores early, before any other agent does.  Other threads
        # never observe the buffer (the mandatory-forwarding rule of
        # x86-TSO / SPARC TSO); the returned timestamp is the current
        # memory-latest one, which under ``relaxed=False`` only feeds
        # bookkeeping views, never read choice.
        for bloc, bval in reversed(ctx.wbuf):
            if bloc == loc:
                return [(latest_write_ts(state.memory, loc), bval)]
    if not cfg.relaxed:
        ts = latest_write_ts(state.memory, loc)
        if ts in own:
            return []  # blocked: own promise is the latest write (SC: none)
        return [(ts, value_at(state.memory, loc, ts, init))]
    view_floor = max(addr_dep, ctx.vrn)
    floor = max(tget(ctx.coh, loc, 0), last_write_ts(state.memory, loc, view_floor))
    out: List[Tuple[int, int]] = []
    if floor == 0:
        out.append((0, init))
    for ts in range(max(floor, 1), len(state.memory) + 1):
        msg = state.memory[ts - 1]
        if msg.loc == loc and ts not in own:
            out.append((ts, msg.val))
    return out


def _walker_candidates(
    state: ExecState,
    cache: ProgramCache,
    cfg: ModelConfig,
    loc: int,
    cpu_tidx: int,
    stage2: bool = False,
) -> List[Tuple[int, int]]:
    """Values an MMU walker read of page-table location *loc* may see.

    The walker is an independent hardware agent: it has no thread views
    and may read stale entries, bounded below only by the global walker
    floor raised by barrier-ordered TLB invalidations.  It never observes
    its own CPU's unfulfilled promises (the CPU's page-table store has not
    architecturally happened for its own walker until fulfilled).

    ``stage2=True`` reads a stage-2 table entry, bounded by the separate
    ``s2_walker_floor`` (per-stage TLBI scope).  Under the ``bbm``
    feature, any live-to-live rewrite of the entry additionally keeps the
    overwritten value as a permanent candidate (amalgamation).
    """
    init = cache.init_value(loc)
    if not cfg.relaxed:
        ts = latest_write_ts(state.memory, loc)
        return [(ts, value_at(state.memory, loc, ts, init))]
    own = state.threads[cpu_tidx].promises
    floor_view = state.s2_walker_floor if stage2 else state.walker_floor
    floor = last_write_ts(state.memory, loc, floor_view)
    out: List[Tuple[int, int]] = []
    if floor == 0:
        out.append((0, init))
    for ts in range(max(floor, 1), len(state.memory) + 1):
        msg = state.memory[ts - 1]
        if msg.loc == loc and ts not in own:
            out.append((ts, msg.val))
    if not stage2 and "bbm" in cfg.vm_features:
        out = _bbm_amalgamate(state, cfg, loc, init, own, out)
    return out


def _bbm_amalgamate(
    state: ExecState,
    cfg: ModelConfig,
    loc: int,
    init: int,
    own: Tuple[int, ...],
    out: List[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Add permanently-poisoned candidates for break-before-make breaks.

    Arm leaves the result of changing a live (valid) translation entry
    directly to a different live value CONSTRAINED UNPREDICTABLE: TLBs
    may have formed an amalgam of the two entries, and no later TLBI is
    guaranteed to expel it.  The model reads that as: for every adjacent
    live-to-live pair in the entry's write history, the overwritten value
    stays a walker candidate forever — no floor clears it.  An honest
    break-before-make sequence interposes the invalid (0) entry between
    the two live values and is unaffected.
    """
    history: List[Tuple[int, int]] = [(0, init)]
    for ts in range(1, len(state.memory) + 1):
        msg = state.memory[ts - 1]
        if msg.loc == loc and ts not in own:
            history.append((ts, msg.val))
    had = "had" in cfg.vm_features
    mask = PTE_VALUE_MASK if had else -1
    extra: Dict[int, int] = {}
    for (ts0, v0), (_ts1, v1) in zip(history, history[1:]):
        if (v0 & mask) != 0 and (v1 & mask) != 0 and v0 != v1:
            extra[ts0] = v0
    if not extra:
        return out
    seen_ts = {ts for ts, _ in out}
    merged = out + [(ts, v) for ts, v in extra.items() if ts not in seen_ts]
    merged.sort()
    return merged


def _panic_state(state: ExecState, reason: str) -> ExecState:
    return state._replace(panic=reason)


def _ownership_check(
    state: ExecState,
    cfg: ModelConfig,
    thread: Thread,
    space: MemSpace,
    loc: int,
    is_write: bool,
) -> Optional[str]:
    """Push/pull access discipline; returns a panic reason or None.

    Only kernel threads' data accesses are checked: synchronization
    variables, page-table memory, and user memory are exactly the
    exemptions the wDRF conditions carve out of DRF-Kernel.
    """
    if not cfg.pushpull or not thread.is_kernel:
        return None
    if space is not MemSpace.KERNEL:
        return None
    owner = tget(state.ownership, loc, None)
    if owner is not None and owner != thread.tid:
        return (
            f"DRF violation: CPU {thread.tid} accessed location {loc:#x} "
            f"owned by CPU {owner}"
        )
    if loc in cfg.owned_access_required and owner != thread.tid:
        return (
            f"DRF violation: CPU {thread.tid} accessed shared location "
            f"{loc:#x} without pulling it"
        )
    return None


# ---------------------------------------------------------------------------
# instruction execution
# ---------------------------------------------------------------------------

def execute_instruction(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
) -> List[ExecState]:
    """All successor states from thread *tidx* executing its next
    instruction (one state per nondeterministic choice)."""
    ctx = state.threads[tidx]
    if ctx.halted or state.panic is not None:
        return []
    if ctx.pc >= cache.thread_len(tidx):
        # Normalize an (initially) empty or exhausted thread to halted.
        return [state.with_thread(tidx, ctx._replace(halted=True))]
    thread = cache.threads[tidx]
    instr = cache.instr_at(tidx, ctx.pc)

    # Register-free instructions first: no regs dict to materialize.
    if isinstance(instr, (Label, Nop)):
        return [state.with_thread(tidx, _advance(cache, tidx, ctx, ctx.pc + 1))]

    if isinstance(instr, Barrier):
        if (
            cfg.tso
            and ctx.wbuf
            and instr.kind in (BarrierKind.FULL, BarrierKind.ST)
        ):
            # TSO fences order stores with later accesses by waiting for
            # the buffer to drain (flush steps empty it one write at a
            # time, so every interleaving with other threads' steps is
            # still reachable).  Load-only barriers and ISB never
            # interact with the buffer.
            return []
        new = _apply_barrier(ctx, instr.kind)
        if tracer.SINK is not None:
            tracer.SINK.emit(
                tracer.BARRIER, tid=thread.tid, barrier=instr.kind.name,
                pc=ctx.pc,
            )
            if new.vrn != ctx.vrn or new.vwn != ctx.vwn:
                tracer.SINK.emit(
                    tracer.VIEW_ADVANCE, tid=thread.tid,
                    vrn=(ctx.vrn, new.vrn), vwn=(ctx.vwn, new.vwn),
                )
        return [state.with_thread(tidx, _advance(cache, tidx, new, ctx.pc + 1))]

    if isinstance(instr, Jump):
        target = cache.label_index(tidx, instr.target)
        return [state.with_thread(tidx, _advance(cache, tidx, ctx, target))]

    if isinstance(instr, Panic):
        return [_panic_state(state, instr.reason)]

    regs = _regs_dict(ctx)

    if isinstance(instr, Mov):
        value = instr.src.eval(regs)
        pc1 = ctx.pc + 1
        new = ThreadCtx(
            pc1, pc1 >= cache.thread_len(tidx),
            tset(ctx.regs, instr.dst, value),
            tset(ctx.rv, instr.dst, _dep_view(ctx, instr.src)),
            ctx.coh, ctx.vrn, ctx.vwn, ctx.vro, ctx.vwo, ctx.vctrl,
            ctx.promises, ctx.monitor, ctx.wbuf,
        )
        return [state.with_thread(tidx, new)]

    if isinstance(instr, Load):
        return _exec_load(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, Store):
        return _exec_store(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, FetchAndInc):
        return _exec_faa(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, CompareAndSwap):
        return _exec_cas(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, LoadExclusive):
        return _exec_ldxr(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, StoreExclusive):
        return _exec_stxr(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, (BranchIfZero, BranchIfNonZero)):
        cond = instr.cond.eval(regs)
        taken = (cond == 0) if isinstance(instr, BranchIfZero) else (cond != 0)
        target = cache.label_index(tidx, instr.target) if taken else ctx.pc + 1
        new = ctx._replace(vctrl=max(ctx.vctrl, _dep_view(ctx, instr.cond)))
        return [state.with_thread(tidx, _advance(cache, tidx, new, target))]

    if isinstance(instr, VLoad):
        return _exec_virtual(cache, state, tidx, cfg, instr, regs, is_store=False)

    if isinstance(instr, VStore):
        return _exec_virtual(cache, state, tidx, cfg, instr, regs, is_store=True)

    if isinstance(instr, TLBInvalidate):
        return _exec_tlbi(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, Pull):
        return _exec_pull(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, Push):
        return _exec_push(cache, state, tidx, cfg, instr, regs)

    if isinstance(instr, OracleRead):
        out = []
        adep = _dep_view(ctx, instr.addr)
        for choice in instr.choices:
            new = ctx._replace(
                regs=tset(ctx.regs, instr.dst, choice),
                rv=tset(ctx.rv, instr.dst, adep),
            )
            out.append(state.with_thread(tidx, _advance(cache, tidx, new, ctx.pc + 1)))
        return out

    raise ExecutionError(f"unhandled instruction {instr!r}")


def _exec_load(cache, state, tidx, cfg, instr: Load, regs) -> List[ExecState]:
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    loc = instr.addr.eval(regs)
    reason = _ownership_check(state, cfg, thread, instr.space, loc, is_write=False)
    if reason is not None:
        return [_panic_state(state, reason)]
    adep = _dep_view(ctx, instr.addr)
    pc1 = ctx.pc + 1
    halted = pc1 >= cache.thread_len(tidx)
    dst = instr.dst
    coh0 = tget(ctx.coh, loc, 0)
    acquire = instr.acquire
    out: List[ExecState] = []
    for ts, val in _read_candidates(state, cache, cfg, ctx, loc, adep):
        vrn, vwn = ctx.vrn, ctx.vwn
        if acquire:
            vrn = max(vrn, ts)
            vwn = max(vwn, ts)
        new = ThreadCtx(
            pc1, halted,
            tset(ctx.regs, dst, val),
            tset(ctx.rv, dst, max(adep, ts)),
            tset(ctx.coh, loc, max(coh0, ts)),
            vrn, vwn,
            max(ctx.vro, ts),
            ctx.vwo, ctx.vctrl, ctx.promises, ctx.monitor, ctx.wbuf,
        )
        out.append(state.with_thread(tidx, new))
    return out


def _store_floor(ctx: ThreadCtx, loc: int, dep: int, release: bool) -> int:
    floor = max(tget(ctx.coh, loc, 0), ctx.vwn, dep, ctx.vctrl)
    if release:
        floor = max(floor, ctx.vro, ctx.vwo)
    return floor


def _exec_store(cache, state, tidx, cfg, instr: Store, regs) -> List[ExecState]:
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    loc = instr.addr.eval(regs)
    val = instr.value.eval(regs)
    reason = _ownership_check(state, cfg, thread, instr.space, loc, is_write=True)
    if reason is not None:
        return [_panic_state(state, reason)]
    dep = max(_dep_view(ctx, instr.addr), _dep_view(ctx, instr.value))
    floor = _store_floor(ctx, loc, dep, instr.release)
    pc1 = ctx.pc + 1
    halted = pc1 >= cache.thread_len(tidx)
    out: List[ExecState] = []

    if cfg.tso:
        if instr.release:
            # A release store publishes: it waits for the buffer to
            # drain (flush steps empty it) and then writes to memory
            # directly — the x86 mapping of a releasing store followed
            # by the buffer discipline, strictly stronger than a plain
            # buffered store (stronger-is-safe for TSO ⊆ Arm).
            if ctx.wbuf:
                return []
            ts = len(state.memory) + 1
            new_state = state.append_message(
                Message(ts, loc, val, thread.tid, False)
            )
            new_ctx = ThreadCtx(
                pc1, halted, ctx.regs, ctx.rv,
                tset(ctx.coh, loc, ts),
                ctx.vrn, ctx.vwn, ctx.vro,
                max(ctx.vwo, ts),
                ctx.vctrl, ctx.promises, ctx.monitor, ctx.wbuf,
            )
            return [new_state.with_thread(tidx, new_ctx)]
        # Plain TSO store: enqueue on the FIFO store buffer.  The write
        # becomes globally visible only when a later flush step (see
        # :func:`tso_flush_steps`) pops it into the timeline.
        new_ctx = ThreadCtx(
            pc1, halted, ctx.regs, ctx.rv, ctx.coh,
            ctx.vrn, ctx.vwn, ctx.vro, ctx.vwo,
            ctx.vctrl, ctx.promises, ctx.monitor,
            ctx.wbuf + ((loc, val),),
        )
        return [state.with_thread(tidx, new_ctx)]

    # Option 1: append a fresh message at the end of the timeline.
    ts = len(state.memory) + 1
    new_state = state.append_message(Message(ts, loc, val, thread.tid, False))
    new_ctx = ThreadCtx(
        pc1, halted, ctx.regs, ctx.rv,
        tset(ctx.coh, loc, ts),
        ctx.vrn, ctx.vwn, ctx.vro,
        max(ctx.vwo, ts),
        ctx.vctrl, ctx.promises, ctx.monitor, ctx.wbuf,
    )
    out.append(new_state.with_thread(tidx, new_ctx))

    # Option 2: fulfill one of this thread's outstanding promises.
    if not instr.release:
        for p in ctx.promises:
            msg = state.memory[p - 1]
            if msg.loc == loc and msg.val == val and p > floor:
                fulfilled = state.fulfill(p)
                new_ctx = ThreadCtx(
                    pc1, halted, ctx.regs, ctx.rv,
                    tset(ctx.coh, loc, max(tget(ctx.coh, loc, 0), p)),
                    ctx.vrn, ctx.vwn, ctx.vro,
                    max(ctx.vwo, p),
                    ctx.vctrl,
                    tuple(q for q in ctx.promises if q != p),
                    ctx.monitor, ctx.wbuf,
                )
                succ = fulfilled.with_thread(tidx, new_ctx)
                if not (succ.threads[tidx].halted and succ.threads[tidx].promises):
                    out.append(succ)
    # Halting with unfulfilled promises is not a valid execution.
    out = [
        s
        for s in out
        if not (s.threads[tidx].halted and s.threads[tidx].promises)
    ]
    return out


def _exec_faa(cache, state, tidx, cfg, instr: FetchAndInc, regs) -> List[ExecState]:
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    loc = instr.addr.eval(regs)
    reason = _ownership_check(state, cfg, thread, instr.space, loc, is_write=True)
    if reason is not None:
        return [_panic_state(state, reason)]
    if cfg.tso and ctx.wbuf:
        return []  # TSO: a locked RMW waits for the store buffer to drain
    adep = _dep_view(ctx, instr.addr)
    ts_last = latest_write_ts(state.memory, loc)
    if ts_last in ctx.promises:
        return []  # blocked behind own unfulfilled promise
    old = value_at(state.memory, loc, ts_last, cache.init_value(loc))
    ts_new = len(state.memory) + 1
    new_state = state.append_message(
        Message(ts_new, loc, old + instr.amount, thread.tid, False)
    )
    new_ctx = ctx._replace(
        regs=tset(ctx.regs, instr.dst, old),
        rv=tset(ctx.rv, instr.dst, max(adep, ts_last)),
        coh=tset(ctx.coh, loc, ts_new),
        vro=max(ctx.vro, ts_last),
        vwo=max(ctx.vwo, ts_new),
    )
    if instr.acquire:
        new_ctx = new_ctx._replace(
            vrn=max(new_ctx.vrn, ts_last), vwn=max(new_ctx.vwn, ts_last)
        )
    succ = new_state.with_thread(tidx, _advance(cache, tidx, new_ctx, ctx.pc + 1))
    if succ.threads[tidx].halted and succ.threads[tidx].promises:
        return []
    return [succ]


def _exec_cas(
    cache, state, tidx, cfg, instr: CompareAndSwap, regs
) -> List[ExecState]:
    """Atomic compare-and-swap: reads the coherence-latest value and,
    on a match, appends the new value adjacently (like the RMW)."""
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    loc = instr.addr.eval(regs)
    reason = _ownership_check(state, cfg, thread, instr.space, loc, is_write=True)
    if reason is not None:
        return [_panic_state(state, reason)]
    if cfg.tso and ctx.wbuf:
        return []  # TSO: a locked RMW waits for the store buffer to drain
    adep = _dep_view(ctx, instr.addr)
    vdep = max(_dep_view(ctx, instr.expected), _dep_view(ctx, instr.desired))
    ts_last = latest_write_ts(state.memory, loc)
    if ts_last in ctx.promises:
        return []  # blocked behind own unfulfilled promise
    old = value_at(state.memory, loc, ts_last, cache.init_value(loc))
    expected = instr.expected.eval(regs)
    desired = instr.desired.eval(regs)

    new_ctx = ctx._replace(
        regs=tset(ctx.regs, instr.dst, old),
        rv=tset(ctx.rv, instr.dst, max(adep, vdep, ts_last)),
        vro=max(ctx.vro, ts_last),
        coh=tset(ctx.coh, loc, max(tget(ctx.coh, loc, 0), ts_last)),
    )
    new_state = state
    if old == expected:
        ts_new = len(state.memory) + 1
        new_state = state.append_message(
            Message(ts_new, loc, desired, thread.tid, False)
        )
        new_ctx = new_ctx._replace(
            coh=tset(new_ctx.coh, loc, ts_new),
            vwo=max(new_ctx.vwo, ts_new),
        )
    if instr.acquire:
        new_ctx = new_ctx._replace(
            vrn=max(new_ctx.vrn, ts_last), vwn=max(new_ctx.vwn, ts_last)
        )
    succ = new_state.with_thread(tidx, _advance(cache, tidx, new_ctx, ctx.pc + 1))
    if succ.threads[tidx].halted and succ.threads[tidx].promises:
        return []
    return [succ]


def _exec_ldxr(
    cache, state, tidx, cfg, instr: LoadExclusive, regs
) -> List[ExecState]:
    """Load-exclusive: an ordinary (possibly stale) read that also arms
    the exclusive monitor with the observed write's timestamp."""
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    loc = instr.addr.eval(regs)
    reason = _ownership_check(state, cfg, thread, instr.space, loc, is_write=False)
    if reason is not None:
        return [_panic_state(state, reason)]
    if cfg.tso and ctx.wbuf:
        # TSO has no native LL/SC; the exclusive pair is a locked
        # primitive, so it too waits for the store buffer to drain —
        # the monitor must be armed with a real memory timestamp.
        return []
    adep = _dep_view(ctx, instr.addr)
    pc1 = ctx.pc + 1
    halted = pc1 >= cache.thread_len(tidx)
    coh0 = tget(ctx.coh, loc, 0)
    out: List[ExecState] = []
    for ts, val in _read_candidates(state, cache, cfg, ctx, loc, adep):
        vrn, vwn = ctx.vrn, ctx.vwn
        if instr.acquire:
            vrn = max(vrn, ts)
            vwn = max(vwn, ts)
        new = ThreadCtx(
            pc1, halted,
            tset(ctx.regs, instr.dst, val),
            tset(ctx.rv, instr.dst, max(adep, ts)),
            tset(ctx.coh, loc, max(coh0, ts)),
            vrn, vwn,
            max(ctx.vro, ts),
            ctx.vwo, ctx.vctrl, ctx.promises,
            (loc, ts), ctx.wbuf,
        )
        out.append(state.with_thread(tidx, new))
    return out


def _exec_stxr(
    cache, state, tidx, cfg, instr: StoreExclusive, regs
) -> List[ExecState]:
    """Store-exclusive: succeeds (status 0) only if the monitored write
    is still the coherence-latest for the location — i.e. no intervening
    write — making the LL/SC pair atomic."""
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    loc = instr.addr.eval(regs)
    reason = _ownership_check(state, cfg, thread, instr.space, loc, is_write=True)
    if reason is not None:
        return [_panic_state(state, reason)]
    if cfg.tso and ctx.wbuf:
        return []  # TSO: a locked RMW waits for the store buffer to drain
    val = instr.value.eval(regs)
    monitored = ctx.monitor if ctx.monitor and ctx.monitor[0] == loc else None
    success = (
        monitored is not None
        and latest_write_ts(state.memory, loc) == monitored[1]
    )
    if success:
        ts_new = len(state.memory) + 1
        new_state = state.append_message(
            Message(ts_new, loc, val, thread.tid, False)
        )
        new_ctx = ctx._replace(
            regs=tset(ctx.regs, instr.status, 0),
            rv=tset(ctx.rv, instr.status, 0),
            coh=tset(ctx.coh, loc, ts_new),
            vwo=max(ctx.vwo, ts_new),
            monitor=(),
        )
    else:
        new_state = state
        new_ctx = ctx._replace(
            regs=tset(ctx.regs, instr.status, 1),
            rv=tset(ctx.rv, instr.status, 0),
            monitor=(),
        )
    succ = new_state.with_thread(tidx, _advance(cache, tidx, new_ctx, ctx.pc + 1))
    if succ.threads[tidx].halted and succ.threads[tidx].promises:
        return []
    return [succ]


def _apply_barrier(ctx: ThreadCtx, kind: BarrierKind) -> ThreadCtx:
    if kind is BarrierKind.FULL:
        if mutants.enabled("weaken-barrier-full"):  # seeded bug class
            return ctx
        frontier = max(ctx.vro, ctx.vwo)
        return ctx._replace(vrn=max(ctx.vrn, frontier), vwn=max(ctx.vwn, frontier))
    if kind is BarrierKind.LD:
        return ctx._replace(vrn=max(ctx.vrn, ctx.vro), vwn=max(ctx.vwn, ctx.vro))
    if kind is BarrierKind.ST:
        return ctx._replace(vwn=max(ctx.vwn, ctx.vwo))
    if kind is BarrierKind.ISB:
        return ctx._replace(vrn=max(ctx.vrn, ctx.vctrl))
    raise ExecutionError(f"unknown barrier kind {kind!r}")


def tso_flush_steps(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
) -> List[ExecState]:
    """The internal TSO step: thread *tidx*'s store buffer flushes its
    oldest write into memory.

    Flushes are nondeterministic hardware steps, so they are generated
    alongside instruction steps by every search loop (the explorer's
    ``_successors``, the shard workers, the traced search) — including
    for *halted* threads, whose leftover buffered writes must still
    reach memory before the execution can terminate.  One write per
    step keeps every interleaving with other threads reachable.
    """
    if not cfg.tso or state.panic is not None:
        return []
    ctx = state.threads[tidx]
    if not ctx.wbuf:
        return []
    (loc, val), rest = ctx.wbuf[0], ctx.wbuf[1:]
    if mutants.enabled("lost-flush"):  # seeded bug class
        return [state.with_thread(tidx, ctx._replace(wbuf=rest))]
    ts = len(state.memory) + 1
    new_state = state.append_message(
        Message(ts, loc, val, cache.threads[tidx].tid, False)
    )
    new_ctx = ctx._replace(
        wbuf=rest,
        coh=tset(ctx.coh, loc, ts),
        vwo=max(ctx.vwo, ts),
    )
    return [new_state.with_thread(tidx, new_ctx)]


# ---------------------------------------------------------------------------
# virtual memory (MMU walker + TLB)
# ---------------------------------------------------------------------------

def _translations(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    vpn: int,
) -> List[Tuple[Optional[int], Optional[int], ExecState]]:
    """All translation outcomes for *vpn* on thread *tidx*'s CPU.

    Returns ``(ppage, leaf_loc, state)`` triples; ``ppage=None`` is a
    translation fault.  Outcomes include a TLB hit (if an entry exists)
    and every combination of stale/fresh walker reads; a successful walk
    refills the TLB.  ``leaf_loc`` — the physical location of the stage-1
    leaf entry the translation came through — is only tracked under the
    ``had`` feature (it is the target of the hardware access/dirty-bit
    update) and stays ``None`` otherwise, so flag-off deduplication is
    exactly the seed's.
    """
    mmu = cache.program.mmu
    if mmu is None:
        raise ExecutionError("virtual access in a program with no MMUConfig")
    thread = cache.threads[tidx]
    feats = cfg.vm_features
    had = "had" in feats
    use_wc = "walk-cache" in feats and cfg.relaxed
    s2_root = mmu.stage2_root if "stage2" in feats else None
    val_mask = PTE_VALUE_MASK if had else -1
    results: List[Tuple[Optional[int], Optional[int], ExecState]] = []

    cached = tget(state.tlb, (thread.tid, vpn), None)
    if cached is not None:
        if had:
            results.append((cached[0], cached[1], state))
        else:
            results.append((cached, None, state))

    # Hardware walk (also models eviction: taken even when an entry exists).
    mask = (1 << mmu.va_bits_per_level) - 1

    def s2_resolve(ipa: int, st: ExecState, cont) -> None:
        """Stage-2 translate *ipa* (a table address or output page) and
        feed each resulting physical address to *cont*; a zero stage-2
        entry is a stage-2 fault.  Pass-through when stage 2 is off."""
        if s2_root is None:
            cont(ipa, st)
            return
        s2_entry_loc = s2_root + ipa
        for _ts, entry in _walker_candidates(
            st, cache, cfg, s2_entry_loc, tidx, stage2=True
        ):
            if entry & val_mask == 0:
                results.append((None, None, st))
            else:
                cont(entry & val_mask, st)

    def consume(level: int, entry_loc: int, entry: int, st: ExecState) -> None:
        """Interpret one stage-1 descriptor read at *entry_loc*."""
        val = entry & val_mask
        if val == 0:
            results.append((None, None, st))
        elif level + 1 == mmu.levels:
            def leaf_done(ppage: int, st2: ExecState) -> None:
                tlb_val = (ppage, entry_loc) if had else ppage
                refilled = st2._replace(
                    tlb=tset(st2.tlb, (thread.tid, vpn), tlb_val)
                )
                results.append(
                    (ppage, entry_loc if had else None, refilled)
                )

            s2_resolve(val, st, leaf_done)
        else:
            walk(level + 1, val, st)

    def walk(level: int, table_loc: int, st: ExecState) -> None:
        shift = mmu.va_bits_per_level * (mmu.levels - 1 - level)
        entry_ipa = table_loc + ((vpn >> shift) & mask)

        def read_entry(entry_loc: int, st1: ExecState) -> None:
            is_leaf = level + 1 == mmu.levels
            if use_wc and not is_leaf:
                cached_entry = tget(
                    st1.walk_cache, (thread.tid, entry_loc), None
                )
                if cached_entry is not None:
                    consume(level, entry_loc, cached_entry, st1)
            for _ts, entry in _walker_candidates(
                st1, cache, cfg, entry_loc, tidx
            ):
                st2 = st1
                if use_wc and not is_leaf:
                    st2 = st1._replace(
                        walk_cache=tset(
                            st1.walk_cache, (thread.tid, entry_loc), entry
                        )
                    )
                consume(level, entry_loc, entry, st2)

        s2_resolve(entry_ipa, st, read_entry)

    walk(0, mmu.root, state)
    # Deduplicate identical outcomes (stale choices often coincide).
    seen = set()
    unique: List[Tuple[Optional[int], Optional[int], ExecState]] = []
    for ppage, leaf_loc, st in results:
        key = (ppage, leaf_loc, st)
        if key not in seen:
            seen.add(key)
            unique.append((ppage, leaf_loc, st))
    return unique


def _hw_ad_update(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    leaf_loc: int,
    is_store: bool,
) -> ExecState:
    """Hardware access/dirty-bit update: a walker-originated atomic RMW.

    On a successful translation the walker ORs :data:`PTE_AF` (and
    :data:`PTE_DIRTY` for stores) into the stage-1 leaf entry, appending
    an ordinary coherence-participating message authored by the
    translating CPU — but updating no thread views, because the CPU's
    instruction stream never observed the write.  Skipped when the entry
    is currently invalid (broken concurrently), already carries the bits,
    or its latest write is this CPU's own unfulfilled promise.
    """
    ts_last = latest_write_ts(state.memory, leaf_loc)
    if ts_last in state.threads[tidx].promises:
        return state
    cur = value_at(state.memory, leaf_loc, ts_last, cache.init_value(leaf_loc))
    if cur & PTE_VALUE_MASK == 0:
        return state
    bits = PTE_AF
    if is_store and not mutants.enabled("lost-dirty-bit"):
        bits |= PTE_DIRTY
    if cur & bits == bits:
        return state
    ts = len(state.memory) + 1
    if tracer.SINK is not None:
        tracer.SINK.emit(
            tracer.WALKER_AD_WRITE, tid=cache.threads[tidx].tid,
            loc=leaf_loc, bits=bits, ts=ts,
        )
    return state.append_message(
        Message(ts, leaf_loc, cur | bits, cache.threads[tidx].tid, False)
    )


def _exec_virtual(
    cache, state, tidx, cfg, instr, regs, is_store: bool
) -> List[ExecState]:
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    vpn = instr.vaddr.eval(regs)
    out: List[ExecState] = []
    for ppage, leaf_loc, st in _translations(cache, state, tidx, cfg, vpn):
        if ppage is None:
            faulted = st._replace(faults=st.faults + (Fault(thread.tid, vpn),))
            halted_ctx = st.threads[tidx]._replace(halted=True)
            if halted_ctx.promises:
                continue  # faulting with unfulfilled promises: invalid
            out.append(faulted.with_thread(tidx, halted_ctx))
            continue
        if leaf_loc is not None:
            st = _hw_ad_update(cache, st, tidx, cfg, leaf_loc, is_store)
        if is_store:
            phys = Store(
                addr=_const(ppage), value=instr.value, space=instr.space
            )
            out.extend(_exec_store(cache, st, tidx, cfg, phys, regs))
        else:
            phys = Load(dst=instr.dst, addr=_const(ppage), space=instr.space)
            out.extend(_exec_load(cache, st, tidx, cfg, phys, regs))
    return out


def _const(value: int):
    from repro.ir.expr import Imm

    return Imm(value)


def _exec_tlbi(cache, state, tidx, cfg, instr: TLBInvalidate, regs) -> List[ExecState]:
    ctx = state.threads[tidx]
    vpn = instr.vaddr.eval(regs) if instr.vaddr is not None else None
    tlb = tuple(
        ((cpu, entry_vpn), ppage)
        for (cpu, entry_vpn), ppage in state.tlb
        if vpn is not None and entry_vpn != vpn
    )
    # Per-stage scope: stage=None invalidates both stages; stage=1/2
    # raises only the matching walker floor.  The combined leaf TLB drops
    # on a vpn match regardless of stage (a cached leaf translation folds
    # both stages together, so either stage's TLBI must expel it).
    drop_s1 = instr.stage in (None, 1)
    drop_s2 = instr.stage in (None, 2)
    # A TLBI forces walkers to observe every prior store that this CPU has
    # *ordered* (covered by its write frontier).  Without a barrier between
    # the page-table store and the TLBI, vwn does not cover the store and
    # walkers may keep reading the stale entry — Example 6.
    floor = state.walker_floor
    if cfg.relaxed and drop_s1:
        floor = max(floor, ctx.vwn)
    s2_floor = state.s2_walker_floor
    if cfg.relaxed and drop_s2 and "stage2" in cfg.vm_features:
        s2_floor = max(s2_floor, ctx.vwn)
    walk_cache = state.walk_cache
    if (
        walk_cache
        and drop_s1
        and not instr.leaf_only
        and not mutants.enabled("stale-intermediate-walk")
    ):
        # A non-leaf-scoped stage-1 TLBI expels cached intermediate walk
        # entries too; a ``leaf_only`` TLBI leaves them live — the stale
        # intermediate-descriptor behavior of the ``walk-cache`` feature.
        walk_cache = ()
    if tracer.SINK is not None:
        tracer.SINK.emit(
            tracer.TLB_INVALIDATE, tid=cache.threads[tidx].tid, vpn=vpn,
            walker_floor=(state.walker_floor, floor),
        )
    new_state = state._replace(
        tlb=tlb, walker_floor=floor, walk_cache=walk_cache,
        s2_walker_floor=s2_floor,
    )
    return [new_state.with_thread(tidx, _advance(cache, tidx, ctx, ctx.pc + 1))]


# ---------------------------------------------------------------------------
# push/pull ownership primitives
# ---------------------------------------------------------------------------

def _owner_releases_without_access(
    cache: ProgramCache, state: ExecState, owner_idx: int, loc: int
) -> bool:
    """Will the current owner push *loc* without touching it again?

    Structural scan of the owner's remaining instruction stream: if a
    ``Push`` covering *loc* appears before any (potential) access to
    *loc*, the owner has logically finished with the location — its push
    promise is already implied, and an early transfer to a puller that
    observed the (promoted) unlock write is architecturally sound.
    Unknown (register-dependent) addresses are conservatively treated as
    accesses.
    """
    from repro.ir.expr import Imm

    ctx = state.threads[owner_idx]
    for instr in cache.threads[owner_idx].instrs[ctx.pc:]:
        if isinstance(instr, Push):
            for expr in instr.locs:
                if isinstance(expr, Imm) and expr.value == loc:
                    return True
        elif isinstance(instr, (Load, Store, FetchAndInc)):
            addr = instr.addr
            if not isinstance(addr, Imm) or addr.value == loc:
                return False
        elif isinstance(instr, (VLoad, VStore)):
            return False  # translated target unknown: conservative
    return False


def _exec_pull(cache, state, tidx, cfg, instr: Pull, regs) -> List[ExecState]:
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    if not cfg.pushpull:
        return [state.with_thread(tidx, _advance(cache, tidx, ctx, ctx.pc + 1))]
    ownership = state.ownership
    pending = state.pending_release
    push_ts = state.push_ts
    for expr in instr.locs:
        loc = expr.eval(regs)
        owner = tget(ownership, loc, None)
        if owner is not None:
            # The owner may have *promised* its push: its unlock write
            # became visible (and was legitimately observed by this
            # puller) before the Push pseudo-instruction executed.  That
            # is sound exactly when the owner will push the location
            # without accessing it again.
            owner_idx = next(
                i for i, t in enumerate(cache.threads) if t.tid == owner
            )
            if owner == thread.tid or not _owner_releases_without_access(
                cache, state, owner_idx, loc
            ):
                return [
                    _panic_state(
                        state,
                        f"push/pull violation: CPU {thread.tid} pulled "
                        f"location {loc:#x} owned by CPU {owner}",
                    )
                ]
            frontier = tget(state.threads[owner_idx].coh, loc, 0)
            if cfg.check_barrier_fulfillment and ctx.vrn < frontier:
                return [
                    _panic_state(
                        state,
                        f"No-Barrier-Misuse violation: CPU {thread.tid} "
                        f"pulled location {loc:#x} without a barrier "
                        f"covering the owner's accesses",
                    )
                ]
            pending = tset(pending, loc, owner)
            ownership = tset(ownership, loc, thread.tid)
            continue
        if cfg.check_barrier_fulfillment and ctx.vrn < tget(push_ts, loc, 0):
            return [
                _panic_state(
                    state,
                    f"No-Barrier-Misuse violation: CPU {thread.tid} pulled "
                    f"location {loc:#x} without a barrier covering its last push",
                )
            ]
        ownership = tset(ownership, loc, thread.tid)
    new_state = state._replace(ownership=ownership, pending_release=pending)
    return [new_state.with_thread(tidx, _advance(cache, tidx, ctx, ctx.pc + 1))]


def _exec_push(cache, state, tidx, cfg, instr: Push, regs) -> List[ExecState]:
    ctx = state.threads[tidx]
    thread = cache.threads[tidx]
    if not cfg.pushpull:
        return [state.with_thread(tidx, _advance(cache, tidx, ctx, ctx.pc + 1))]
    if cfg.tso and ctx.wbuf:
        # A push publishes the location to the next owner; under TSO it
        # waits for the store buffer to drain so the owner's writes are
        # in memory before the transfer.
        return []
    ownership = state.ownership
    push_ts = state.push_ts
    pending = state.pending_release
    for expr in instr.locs:
        loc = expr.eval(regs)
        if tget(pending, loc, None) == thread.tid:
            # This push was promised early and the location has already
            # been transferred to the next owner; the pseudo-instruction
            # is now a no-op fulfillment.
            pending = tdel(pending, loc)
            continue
        owner = tget(ownership, loc, None)
        if owner != thread.tid:
            return [
                _panic_state(
                    state,
                    f"push/pull violation: CPU {thread.tid} pushed location "
                    f"{loc:#x} it does not own (owner: {owner})",
                )
            ]
        ownership = tdel(ownership, loc)
        # Record the pusher's coherence frontier on the location: the
        # next pull's barrier frontier must cover everything the pusher
        # did to it ("the pull promise is fulfilled by a barrier" that
        # observed the push).  Using the per-location frontier (rather
        # than the global timeline length) keeps unrelated concurrent
        # writes from falsely failing correctly-fenced unlocks.
        push_ts = tset(push_ts, loc, tget(ctx.coh, loc, 0))
    new_state = state._replace(
        ownership=ownership, push_ts=push_ts, pending_release=pending
    )
    return [new_state.with_thread(tidx, _advance(cache, tidx, ctx, ctx.pc + 1))]


# ---------------------------------------------------------------------------
# promises
# ---------------------------------------------------------------------------

def cert_memo_enabled() -> bool:
    """Certification memoization is on unless ``REPRO_CERT_MEMO=0``.

    Like ``REPRO_POR`` / ``REPRO_INTERN``, the switch exists to measure
    (and cross-check) the engine against its own unoptimized baseline —
    memoization never changes results, only the cost of re-certifying.
    """
    return os.environ.get("REPRO_CERT_MEMO", "1") != "0"


def cert_memo_check_enabled() -> bool:
    """Cross-check mode (``REPRO_CERT_MEMO_CHECK=1``): every memo hit is
    recomputed from scratch and any disagreement raises."""
    return os.environ.get("REPRO_CERT_MEMO_CHECK", "0") == "1"


class CertMemo:
    """Per-exploration memo for the certification searches.

    The certification step — "can thread *t*, running alone, fulfill all
    its promises?" — is a pure function of (a) the thread index, (b) the
    message timeline, (c) that thread's own context, and (d) the fields
    an isolated run can read: the TLB, the walker floor, and the panic
    flag.  Ownership, push timestamps, pending releases, and the *other*
    threads' contexts cannot influence it: certification runs with the
    push/pull discipline disabled and never steps another thread.  The
    same argument covers promise-candidate collection, which runs the
    identical single-thread step relation.  ``CertMemo`` therefore caches
    both by exactly that key, with the timeline compressed to its
    hash-consed interner code.

    One memo — and one :class:`~repro.memory.state.StateInterner` — is
    shared between the outer exploration and every nested certification
    search, replacing the fresh-interner-per-call scheme that dominated
    promise-heavy workloads.  The memo is scoped to a single
    (program, :class:`ModelConfig`) exploration: neither is part of the
    key, so never reuse an instance across explorations.

    Budget-cut searches are remembered as such: replaying a verdict whose
    computation hit ``cert_max_states`` re-counts ``cert_budget_hits``,
    so the counter is invariant under memoization and the explorer can
    refuse to call a budget-cut behavior set complete.
    """

    __slots__ = ("interner", "stats", "enabled", "check", "_verdicts",
                 "_candidates")

    def __init__(
        self,
        interner: Optional[StateInterner] = None,
        stats: Optional[EngineStats] = None,
    ) -> None:
        if interner is None and interning_enabled():
            interner = StateInterner()
        self.interner = interner
        self.stats = stats if stats is not None else EngineStats()
        self.enabled = cert_memo_enabled()
        self.check = cert_memo_check_enabled()
        self._verdicts: Dict[Tuple, Tuple[bool, bool]] = {}
        self._candidates: Dict[Tuple, Tuple[FrozenSet, bool]] = {}

    def thread_key(self, state: ExecState, tidx: int) -> Tuple:
        """The memo key: everything a single-thread search depends on."""
        if self.interner is not None:
            timeline = self.interner.timeline_code(state.memory)
        else:
            timeline = state.memory
        return (
            tidx,
            timeline,
            state.threads[tidx],
            state.tlb,
            state.walker_floor,
            state.panic,
            state.walk_cache,
            state.s2_walker_floor,
        )


def _single_thread_key(memo: Optional[CertMemo]):
    """The visited-set key function for a nested single-thread search."""
    if memo is not None and memo.interner is not None:
        return memo.interner.key
    if interning_enabled():
        return StateInterner().key
    return lambda s: s


def _collect_search(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    memo: Optional[CertMemo],
) -> Tuple[FrozenSet[Tuple[int, int]], bool]:
    """The candidate lookahead proper; returns (candidates, hit_budget)."""
    candidates: set = set()
    local_cfg = replace(cfg, pushpull=False)  # lookahead ignores ownership
    stack: List[Tuple[ExecState, int]] = [(state, 0)]
    state_key = _single_thread_key(memo)
    seen = {state_key(state)}
    budget = cfg.cert_max_states
    while stack and budget > 0:
        st, depth = stack.pop()
        budget -= 1
        ctx = st.threads[tidx]
        if (
            ctx.halted
            or st.panic is not None
            or depth >= cfg.promise_depth
            or ctx.pc >= cache.thread_len(tidx)
        ):
            continue
        instr = cache.instr_at(tidx, ctx.pc)
        is_plain_store = isinstance(instr, Store) and not instr.release
        if is_plain_store:
            regs = _regs_dict(ctx)
            try:
                loc = instr.addr.eval(regs)
                val = instr.value.eval(regs)
                candidates.add((loc, val))
            except Exception:
                pass
        next_depth = depth + (1 if is_plain_store else 0)
        for succ in execute_instruction(cache, st, tidx, local_cfg):
            if len(succ.memory) > cfg.max_memory:
                continue
            key = state_key(succ)
            if key not in seen:
                seen.add(key)
                stack.append((succ, next_depth))
    return frozenset(candidates), bool(stack)


def _certify_search(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    memo: Optional[CertMemo],
) -> Tuple[bool, bool]:
    """The certification DFS proper; returns (verdict, hit_budget)."""
    local_cfg = replace(cfg, pushpull=False)
    stack = [state]
    state_key = _single_thread_key(memo)
    seen = {state_key(state)}
    budget = cfg.cert_max_states
    while stack and budget > 0:
        st = stack.pop()
        budget -= 1
        ctx = st.threads[tidx]
        if not ctx.promises:
            return True, False
        if ctx.halted or st.panic is not None:
            continue
        for succ in execute_instruction(cache, st, tidx, local_cfg):
            if len(succ.memory) > cfg.max_memory:
                continue
            key = state_key(succ)
            if key not in seen:
                seen.add(key)
                stack.append(succ)
    return False, bool(stack)


def collect_promise_candidates(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    memo: Optional[CertMemo] = None,
) -> FrozenSet[Tuple[int, int]]:
    """(loc, value) pairs of stores thread *tidx* could perform soon.

    A bounded thread-local lookahead: run only this thread forward (with
    every read choice) and record the first ``promise_depth`` stores along
    each path.  Release stores are never promisable (Arm's STLR is ordered
    after all program-order-earlier accesses, so promoting it early is
    architecturally impossible).  With a :class:`CertMemo`, results are
    cached per (thread, context, timeline) and the exploration's shared
    interner backs the visited set.
    """
    stats = memo.stats if memo is not None else None
    if stats is not None:
        stats.candidate_calls += 1
    use_memo = memo is not None and memo.enabled
    if use_memo:
        key = memo.thread_key(state, tidx)
        entry = memo._candidates.get(key)
        if entry is not None:
            candidates, hit_budget = entry
            stats.candidate_memo_hits += 1
            if hit_budget:
                stats.cert_budget_hits += 1
            if memo.check:
                fresh, _ = _collect_search(cache, state, tidx, cfg, memo)
                if fresh != candidates:
                    raise VerificationError(
                        f"certification-memo cross-check failed: cached "
                        f"promise candidates {sorted(candidates)} != "
                        f"recomputed {sorted(fresh)} for thread {tidx}"
                    )
            return candidates
    candidates, hit_budget = _collect_search(cache, state, tidx, cfg, memo)
    if stats is not None and hit_budget:
        stats.cert_budget_hits += 1
    if use_memo:
        memo._candidates[key] = (candidates, hit_budget)
    return candidates


def certify(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    memo: Optional[CertMemo] = None,
) -> bool:
    """Can thread *tidx*, running alone, fulfill all its promises?

    This is the certification step of the Promising model: a promise may
    only be made if the thread can, in isolation against the current
    memory, reach a configuration with no outstanding promises.  With a
    :class:`CertMemo`, verdicts are cached per (thread, context,
    timeline) and the exploration's shared interner backs the visited
    set; ``REPRO_CERT_MEMO=0`` disables the cache and
    ``REPRO_CERT_MEMO_CHECK=1`` recomputes every hit from scratch.
    """
    stats = memo.stats if memo is not None else None
    if stats is not None:
        stats.certify_calls += 1
    use_memo = memo is not None and memo.enabled
    if use_memo:
        key = memo.thread_key(state, tidx)
        entry = memo._verdicts.get(key)
        if entry is not None:
            verdict, hit_budget = entry
            stats.certify_memo_hits += 1
            if hit_budget:
                stats.cert_budget_hits += 1
            if memo.check:
                fresh, _ = _certify_search(cache, state, tidx, cfg, memo)
                if fresh != verdict:
                    raise VerificationError(
                        f"certification-memo cross-check failed: cached "
                        f"verdict {verdict} != recomputed {fresh} for "
                        f"thread {tidx}"
                    )
            return verdict
    verdict, hit_budget = _certify_search(cache, state, tidx, cfg, memo)
    if stats is not None and hit_budget:
        stats.cert_budget_hits += 1
    if use_memo:
        memo._verdicts[key] = (verdict, hit_budget)
    return verdict


def promise_steps(
    cache: ProgramCache,
    state: ExecState,
    tidx: int,
    cfg: ModelConfig,
    memo: Optional[CertMemo] = None,
) -> List[ExecState]:
    """Successor states where thread *tidx* promises a future store.

    Candidates are iterated in sorted order so the successor list — and
    therefore the outer DFS — is deterministic and identical with the
    certification memo on or off.
    """
    ctx = state.threads[tidx]
    if (
        not cfg.relaxed
        or ctx.halted
        or state.panic is not None
        or len(ctx.promises) >= cfg.max_promises_per_thread
        or len(state.memory) >= cfg.max_memory
        # Fast path: no plain store is control-flow-reachable from here,
        # so the candidate lookahead is provably empty.
        or not cache.promisable_from(tidx, ctx.pc)
    ):
        return []
    thread = cache.threads[tidx]
    out: List[ExecState] = []
    for loc, val in sorted(
        collect_promise_candidates(cache, state, tidx, cfg, memo)
    ):
        ts = len(state.memory) + 1
        promised = state.append_message(Message(ts, loc, val, thread.tid, True))
        promised = promised.with_thread(
            tidx, ctx._replace(promises=ctx.promises + (ts,))
        )
        certified = certify(cache, promised, tidx, cfg, memo)
        if tracer.SINK is not None:
            tracer.SINK.emit(
                tracer.PROMISE_CERTIFIED, tid=thread.tid, loc=loc, value=val,
                ts=ts, ok=certified,
            )
            if certified:
                tracer.SINK.emit(
                    tracer.PROMISE_MADE, tid=thread.tid, loc=loc, value=val,
                    ts=ts,
                )
        if certified:
            out.append(promised)
    return out
