"""A (simplified) Armv8 axiomatic model, for cross-validation.

The paper's soundness chain bottoms out in the proven equivalence of
Promising Arm and the Armv8 *axiomatic* model (Pulte et al. 2017/2019).
We reproduce a slice of that equivalence empirically: this module
implements the axiomatic style — enumerate candidate executions
(reads-from ``rf`` and per-location coherence orders ``co``), keep those
satisfying the consistency axioms, and extract their outcomes — and the
test suite checks it agrees *exactly* with the operational executor on
every eligible program in the corpus.

Axioms checked (branch-free, fixed-size, non-RMW fragment):

* **internal** (sc-per-location): ``po-loc ∪ rf ∪ co ∪ fr`` is acyclic;
* **external**: ``ppo ∪ rfe ∪ coe ∪ fre`` is acyclic, where ``ppo`` is
  the statically preserved program order (data/address dependencies,
  barrier- and acquire/release-induced order, control-to-store order)
  from :mod:`repro.ir.dependencies`.

Eligibility: straight-line threads of plain/acquire/release loads and
stores, barriers and register moves.  Addresses and store values may
depend on loaded registers (that is what makes dependency litmus tests
meaningful); the candidate's value assignment is computed by evaluating
the rf-induced dataflow, which consistency guarantees is acyclic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import VerificationError
from repro.ir.dependencies import preserved_program_order
from repro.ir.instructions import (
    Barrier,
    Instruction,
    Label,
    Load,
    Mov,
    Nop,
    Store,
)
from repro.ir.program import Program

#: An event id: (thread index, instruction index).
Event = Tuple[int, int]
#: The initial write to every location.
INIT: Event = (-1, -1)


@dataclass(frozen=True)
class _Access:
    event: Event
    is_read: bool
    instr: Instruction


def eligible(program: Program) -> bool:
    """Can this program be checked axiomatically?

    Straight-line Load/Store/Mov/Barrier threads only (no branches,
    atomics, MMU accesses, or push/pull).
    """
    for thread in program.threads:
        for instr in thread.instrs:
            if not isinstance(instr, (Load, Store, Mov, Barrier, Label, Nop)):
                return False
    return True


def _accesses(program: Program) -> List[_Access]:
    out = []
    for tidx, thread in enumerate(program.threads):
        for iidx, instr in enumerate(thread.instrs):
            if isinstance(instr, Load):
                out.append(_Access((tidx, iidx), True, instr))
            elif isinstance(instr, Store):
                out.append(_Access((tidx, iidx), False, instr))
    return out


def _acyclic(edges: Set[Tuple[Event, Event]], nodes: Sequence[Event]) -> bool:
    adj: Dict[Event, List[Event]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Event, int] = {n: WHITE for n in nodes}

    def visit(node: Event) -> bool:
        color[node] = GRAY
        for nxt in adj.get(node, ()):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                return False
            if c == WHITE and not visit(nxt):
                return False
        color[node] = BLACK
        return True

    for node in nodes:
        if color[node] == WHITE and not visit(node):
            return False
    return True


def _evaluate(
    program: Program,
    accesses: List[_Access],
    rf: Dict[Event, Event],
) -> Optional[Tuple[Dict[Event, int], Dict[Event, int]]]:
    """Compute every access's location and every event's value under an
    rf assignment, by iterating thread evaluation to a fixpoint.

    Returns (locations, values) keyed by event, or None if the dataflow
    does not converge (a genuine causality cycle, which the external
    axiom rejects anyway).
    """
    by_event = {a.event: a for a in accesses}
    values: Dict[Event, int] = {INIT: 0}
    locations: Dict[Event, int] = {}

    for _round in range(len(accesses) + 2):
        changed = False
        for tidx, thread in enumerate(program.threads):
            regs: Dict[str, int] = {}
            for iidx, instr in enumerate(thread.instrs):
                event = (tidx, iidx)
                if isinstance(instr, Mov):
                    try:
                        regs[instr.dst] = instr.src.eval(regs)
                    except Exception:
                        return None
                    continue
                if event not in by_event:
                    continue
                access = by_event[event]
                try:
                    loc = (
                        access.instr.addr.eval(regs)
                        if not isinstance(access.instr, Mov)
                        else 0
                    )
                except Exception:
                    return None
                if locations.get(event) != loc:
                    locations[event] = loc
                    changed = True
                if access.is_read:
                    writer = rf[event]
                    value = (
                        program.initial_value(loc)
                        if writer == INIT
                        else values.get(writer, 0)
                    )
                    regs[access.instr.dst] = value
                    if values.get(event) != value:
                        values[event] = value
                        changed = True
                else:
                    try:
                        value = access.instr.value.eval(regs)
                    except Exception:
                        return None
                    if values.get(event) != value:
                        values[event] = value
                        changed = True
        if not changed:
            return locations, values
    return locations, values  # converged within bound or stable enough


def axiomatic_outcomes(
    program: Program,
) -> FrozenSet[Tuple[Tuple[Tuple[int, str, int], ...], Tuple[Tuple[int, int], ...]]]:
    """All consistent outcomes: (observed registers, final memory).

    Enumerates rf (each read from any write or the initial state) and co
    (per-location write permutations); a candidate whose read maps to a
    differently-located write, or which fails an axiom, is discarded.
    """
    if not eligible(program):
        raise VerificationError(
            "axiomatic checking supports straight-line load/store programs"
        )
    accesses = _accesses(program)
    reads = [a for a in accesses if a.is_read]
    writes = [a for a in accesses if not a.is_read]
    nodes = [a.event for a in accesses] + [INIT]
    ppo: Set[Tuple[Event, Event]] = set()
    for tidx, thread in enumerate(program.threads):
        for (i, j) in preserved_program_order(thread):
            ppo.add(((tidx, i), (tidx, j)))

    write_candidates = [INIT] + [w.event for w in writes]
    outcomes = set()

    for rf_combo in itertools.product(write_candidates, repeat=len(reads)):
        rf = {read.event: rf_combo[k] for k, read in enumerate(reads)}
        evaluated = _evaluate(program, accesses, rf)
        if evaluated is None:
            continue
        locations, values = evaluated
        # rf must relate same-location events.
        ok = True
        for read in reads:
            writer = rf[read.event]
            if writer == INIT:
                continue
            if locations[writer] != locations[read.event]:
                ok = False
                break
        if not ok:
            continue

        # Enumerate co: per location, a permutation of its writes.
        locs = sorted({locations[w.event] for w in writes})
        per_loc_writes = {
            loc: [w.event for w in writes if locations[w.event] == loc]
            for loc in locs
        }
        for perm_combo in itertools.product(
            *(itertools.permutations(per_loc_writes[loc]) for loc in locs)
        ):
            co_order: Dict[int, List[Event]] = {
                loc: [INIT] + list(perm)
                for loc, perm in zip(locs, perm_combo)
            }
            if _consistent(program, accesses, locations, rf, co_order, ppo, nodes):
                registers = _observed_registers(program, values)
                memory = _final_memory(program, co_order, values, locations)
                outcomes.add((registers, memory))
    return frozenset(outcomes)


def _relation_edges(
    accesses: List[_Access],
    locations: Dict[Event, int],
    rf: Dict[Event, Event],
    co_order: Dict[int, List[Event]],
):
    """Build rf / co / fr edge sets (with internal/external split)."""
    rf_edges = {(w, r) for r, w in rf.items()}
    co_edges: Set[Tuple[Event, Event]] = set()
    position: Dict[Event, Tuple[int, int]] = {}
    for loc, order in co_order.items():
        for i, w in enumerate(order):
            position[w] = (loc, i)
            for later in order[i + 1:]:
                co_edges.add((w, later))
    fr_edges: Set[Tuple[Event, Event]] = set()
    for r, w in rf.items():
        loc = locations[r]
        order = co_order.get(loc, [INIT])
        if w in order:
            idx = order.index(w)
            for later in order[idx + 1:]:
                fr_edges.add((r, later))
    return rf_edges, co_edges, fr_edges


def _consistent(
    program: Program,
    accesses: List[_Access],
    locations: Dict[Event, int],
    rf: Dict[Event, Event],
    co_order: Dict[int, List[Event]],
    ppo: Set[Tuple[Event, Event]],
    nodes: Sequence[Event],
) -> bool:
    rf_edges, co_edges, fr_edges = _relation_edges(
        accesses, locations, rf, co_order
    )
    # Internal: po-loc ∪ rf ∪ co ∪ fr acyclic.
    po_loc: Set[Tuple[Event, Event]] = set()
    by_thread: Dict[int, List[_Access]] = {}
    for a in accesses:
        by_thread.setdefault(a.event[0], []).append(a)
    for thread_accesses in by_thread.values():
        for i, a in enumerate(thread_accesses):
            for b in thread_accesses[i + 1:]:
                if locations[a.event] == locations[b.event]:
                    po_loc.add((a.event, b.event))
    internal = po_loc | rf_edges | co_edges | fr_edges
    if not _acyclic(internal, nodes):
        return False
    # External: ppo ∪ rfe ∪ coe ∪ fre acyclic (external = cross-thread).
    def external(edges):
        return {
            (a, b) for a, b in edges
            if a == INIT or b == INIT or a[0] != b[0]
        }

    ob = set(ppo) | external(rf_edges) | external(co_edges) | external(fr_edges)
    return _acyclic(ob, nodes)


def _observed_registers(program: Program, values: Dict[Event, int]):
    registers = []
    for tidx, thread in enumerate(program.threads):
        reg_values: Dict[str, int] = {}
        for iidx, instr in enumerate(thread.instrs):
            if isinstance(instr, Load):
                reg_values[instr.dst] = values.get((tidx, iidx), 0)
        for reg in thread.observed:
            registers.append((thread.tid, reg, reg_values.get(reg)))
    return tuple(registers)


def _final_memory(program, co_order, values, locations):
    memory = []
    for loc in sorted(program.initial_memory):
        order = co_order.get(loc)
        if not order or order[-1] == INIT:
            memory.append((loc, program.initial_value(loc)))
        else:
            memory.append((loc, values[order[-1]]))
    return tuple(memory)
