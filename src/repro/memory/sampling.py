"""Randomized (sampled) exploration for programs too large to exhaust.

The checkers require exhaustive exploration — only an exhaustive pass
counts as verified — but for *bug hunting* on larger kernel fragments a
random walk over the same step relation finds relaxed-memory violations
quickly without visiting the whole state space.  Every behavior sampled
is, by construction, a real behavior of the model (sampling is sound for
refutation, never for verification).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Set

from repro.ir.program import Program
from repro.memory.datatypes import Behavior, ExplorationResult
from repro.memory.exploration import (
    _is_terminal,
    _is_valid_terminal,
    behavior_of,
)
from repro.memory.semantics import (
    CertMemo,
    ModelConfig,
    ProgramCache,
    execute_instruction,
    promise_steps,
)
from repro.memory.state import initial_state


def sample_behaviors(
    program: Program,
    cfg: ModelConfig,
    runs: int = 100,
    seed: int = 0,
    observe_locs: Optional[Sequence[int]] = None,
    max_steps_per_run: int = 10_000,
    rng: Optional[random.Random] = None,
) -> ExplorationResult:
    """Random-walk *runs* executions; returns the sampled behavior set.

    The result is always marked incomplete — sampled exploration can
    refute (exhibit a violating behavior) but never verify.  All
    randomness comes from the explicit *rng* (default: a fresh
    ``random.Random(seed)``), never from the global generator, so a
    sampling session replayed from a persisted seed is bit-identical.
    """
    cache = ProgramCache(program)
    if observe_locs is None:
        observe_locs = sorted(cache.initial_memory)
    rng = rng if rng is not None else random.Random(seed)
    behaviors: Set[Behavior] = set()
    states_seen = 0
    cut = 0
    # Walks revisit the same certification questions constantly; share
    # one memo (and interner) across all runs of this sampling session.
    memo = CertMemo()

    for _ in range(runs):
        state = initial_state(len(program.threads), cfg.initial_ownership)
        for _step in range(max_steps_per_run):
            states_seen += 1
            if _is_terminal(state):
                break
            successors = []
            for tidx in range(len(program.threads)):
                successors.extend(
                    execute_instruction(cache, state, tidx, cfg)
                )
                # Promises are rare events: sample them occasionally so
                # walks stay cheap but relaxed behaviors remain reachable.
                if cfg.relaxed and rng.random() < 0.3:
                    successors.extend(
                        promise_steps(cache, state, tidx, cfg, memo)
                    )
            successors = [
                s for s in successors if len(s.memory) <= cfg.max_memory
            ]
            if not successors:
                cut += 1
                break
            state = rng.choice(successors)
        if _is_terminal(state) and _is_valid_terminal(state):
            behaviors.add(behavior_of(cache, state, observe_locs))

    return ExplorationResult(
        behaviors=frozenset(behaviors),
        complete=False,
        states_explored=states_seen,
        cut_paths=cut,
    )
