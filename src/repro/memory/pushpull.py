"""The push/pull Promising hardware model (facade).

Section 4.1's instrumented model: ``Pull``/``Push`` pseudo-instructions
acquire and release logical ownership of shared locations, and the model
panics on (i) pulling an owned location, (ii) pushing an unowned one,
(iii) accessing a registered shared location without owning it, and
(iv) a pull whose preceding push is not covered by this CPU's barrier
frontier — the operational reading of "push/pull promises must be
fulfilled by barriers".

A program satisfies DRF-Kernel and No-Barrier-Misuse iff its push/pull
exploration on the *relaxed* base model is panic-free.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import ModelConfig


def pushpull_config(
    relaxed: bool = True,
    owned_access_required: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ModelConfig:
    """Build a push/pull model configuration.

    ``owned_access_required`` are the shared-data locations kernel code
    may only touch while owning (the critical-section footprints);
    ``initial_ownership`` is ``(loc, tid)`` pairs held at program start.
    """
    return ModelConfig(
        relaxed=relaxed,
        pushpull=True,
        owned_access_required=frozenset(owned_access_required),
        initial_ownership=tuple(sorted(initial_ownership)),
        **overrides,
    )


def explore_pushpull(
    program: Program,
    owned_access_required: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    relaxed: bool = True,
    observe_locs: Optional[Sequence[int]] = None,
    **overrides,
) -> ExplorationResult:
    """Explore *program* on the push/pull Promising model."""
    cfg = pushpull_config(
        relaxed=relaxed,
        owned_access_required=owned_access_required,
        initial_ownership=initial_ownership,
        **overrides,
    )
    return cached_explore(program, cfg, observe_locs)
