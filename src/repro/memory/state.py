"""Immutable machine states for the exploration engines.

A :class:`ExecState` captures everything the step relation needs: the
global message timeline, per-thread contexts (program counter, registers,
views, outstanding promises), per-CPU TLBs, the global walker floor, and
the push/pull ownership map.  States are plain nested tuples so they hash
and compare fast; functional updates go through small helpers.

Mapping-like fields (registers, views-per-register, coherence-per-
location, ownership) are stored as sorted tuples of pairs, looked up and
updated with :func:`tget`/:func:`tset`/:func:`tdel` via binary search —
O(log n) probes and O(n) copying updates with no re-sort, while keeping
the trivially correct hashing/equality of plain tuples.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from hashlib import blake2b
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.memory.datatypes import Fault, Message


def interning_enabled() -> bool:
    """Canonical state interning is on unless ``REPRO_INTERN=0``.

    The switch exists for benchmarking (measuring the engine against
    its own unoptimized baseline) — interning never changes results,
    only the cost of duplicate detection.
    """
    return os.environ.get("REPRO_INTERN", "1") != "0"


def _canonical_bytes(obj) -> bytes:
    """A canonical serialization of one state component.

    ``repr`` *is* canonical for states: every component is nested named
    tuples whose leaves are ints, bools, ``None``, and plain strings,
    so its repr is deterministic (no hash-ordered containers, no object
    addresses) and injective (strings are quoted, fields are named) —
    equal values repr equally, distinct values differently.
    """
    return repr(obj).encode("utf-8", "surrogatepass")


def _component_digest(obj) -> bytes:
    """16-byte ``blake2b`` digest of one state component.

    The component is viewed as a plain tuple first: CPython's C-level
    tuple repr is several times faster than a named tuple's
    ``%``-formatting Python ``__repr__``, and the positional view stays
    injective because every fingerprint frame holds one fixed layout
    (``Message`` in the timeline frame, ``ThreadCtx`` in the per-thread
    frames) with no nested named tuples inside.
    """
    return blake2b(
        repr(tuple(obj)).encode("utf-8", "surrogatepass"), digest_size=16
    ).digest()


def _tail_digest(tail: Tuple) -> bytes:
    """16-byte digest of the scalar tail ``state[2:]``.

    The tail is a plain tuple (sliced off the state), so its repr is
    already C-level; digesting it down to a fixed 16-byte frame lets a
    :class:`FingerprintMemo` key it by component identity — the tail's
    components (TLBs, ownership map, fault log, ...) change far more
    rarely than the timeline or thread contexts, so across a run the
    same handful of tails recur by identity almost every step.
    """
    return blake2b(_canonical_bytes(tail), digest_size=16).digest()


def _timeline_digest(
    memory: Tuple[Message, ...], msg_digest=_component_digest
) -> bytes:
    """Digest of a timeline, composed from per-message digests.

    Composed (rather than one digest of the whole tuple's bytes) so a
    memo can reuse the per-message work: a store/promise step appends
    to the timeline — a *new* tuple, so an identity-keyed timeline
    cache misses on every such successor — but the message objects
    inside are shared with the predecessor, so their digests all hit.
    The 16-byte blocks self-frame (distinct lengths, distinct inputs).
    """
    h = blake2b(digest_size=16)
    for msg in memory:
        h.update(msg_digest(msg))
    return h.digest()


class FingerprintMemo:
    """Identity-keyed cache of component digests for one exploration.

    The message timeline is shared *by identity* between a state and
    most of its successors, all but one ``ThreadCtx`` survive every
    step untouched, and every ``Message`` outlives the timeline append
    that copies the tuple around it (the same sharing
    :class:`StateInterner` exploits) — so their digests are worth
    memoizing by ``id()``.  Every cached object is pinned to keep its
    ``id`` from being recycled, which is why a memo must be scoped to
    one exploration, like an interner.  Unlike interner codes, the
    cached values are content-based, so memos in different processes
    always agree.
    """

    __slots__ = ("_by_id", "_pins")

    def __init__(self) -> None:
        # Keyed by id(component) for timelines/contexts/messages, and
        # by a tuple of component ids for state tails — an int key can
        # never equal a tuple key, so the two families cannot collide.
        self._by_id: Dict[object, bytes] = {}
        self._pins: List[object] = []

    def digest(self, obj) -> bytes:
        d = self._by_id.get(id(obj))
        if d is None:
            d = _component_digest(obj)
            self._by_id[id(obj)] = d
            self._pins.append(obj)
        return d

    def timeline_digest(self, memory: Tuple[Message, ...]) -> bytes:
        by_id = self._by_id
        d = by_id.get(id(memory))
        if d is None:
            # C-level bulk lookup of the per-message digests; only the
            # genuinely new messages (almost always the one appended by
            # this step) drop into the Python fill-in loop.
            parts = list(map(by_id.get, map(id, memory)))
            if None in parts:
                for i, md in enumerate(parts):
                    if md is None:
                        parts[i] = self.digest(memory[i])
            d = blake2b(b"".join(parts), digest_size=16).digest()
            by_id[id(memory)] = d
            self._pins.append(memory)
        return d


def state_fingerprint(
    state: "ExecState", memo: Optional[FingerprintMemo] = None
) -> int:
    """A 128-bit content fingerprint of *state* for cross-process dedup.

    :class:`StateInterner` keys are per-process (a timeline's code is
    the order it was first seen in *that* interner), so they can never
    be compared across shard workers.  The fingerprint is a genuine
    ``blake2b`` digest over a framed composition of component digests
    instead — thread count, timeline digest, one digest per
    ``ThreadCtx``, then the digest of the scalar tail — built
    from :func:`_canonical_bytes`, so it is independent of
    ``PYTHONHASHSEED`` and the process boundary: any two processes
    agree on it.  Passing a :class:`FingerprintMemo` only caches the
    per-component digests (timelines and thread contexts are shared by
    identity across successor states); the value is identical with and
    without one.

    A ``hash()``-derived fingerprint is **not** an alternative:
    CPython's tuple hash is a pure function of element hashes, so two
    salted passes over the same tuple are fully correlated — any
    ``hash()`` collision between states (trivial to hit: ``hash(-1) ==
    hash(-2)`` propagates through every enclosing tuple) would collide
    in all 128 bits, and a false filter hit silently drops a subtree.
    A genuine 128-bit digest puts an accidental collision in the same
    trust class as the truncated-SHA256 keys of the persistent
    exploration cache.  The result is never 0, so shared-memory
    filters can use an all-zero slot as the empty marker.
    """
    threads = state.threads
    tail = state[2:]
    if memo is None:
        parts = [
            len(threads).to_bytes(4, "big"),
            _timeline_digest(state.memory),
            *map(_component_digest, threads),
            _tail_digest(tail),
        ]
    else:
        # Warm-path probes are inlined: for a typical successor every
        # component but one is identity-shared with its parent, so the
        # common case is a bare dict probe, not a bound-method call.
        by_id = memo._by_id
        get = by_id.get
        memory = state.memory
        d = get(id(memory))
        parts = [
            len(threads).to_bytes(4, "big"),
            d if d is not None else memo.timeline_digest(memory),
        ]
        for t in threads:
            d = get(id(t))
            parts.append(d if d is not None else memo.digest(t))
        tkey = tuple(map(id, tail))
        d = get(tkey)
        if d is None:
            d = _tail_digest(tail)
            by_id[tkey] = d
            memo._pins.append(tail)
        parts.append(d)
    digest = blake2b(b"".join(parts), digest_size=16).digest()
    return int.from_bytes(digest, "big") or 1

Pairs = Tuple[Tuple, ...]


# The probe ``(key,)`` sorts strictly before ``(key, value)`` for any
# value (a proper prefix of a tuple is always smaller), so bisect_left
# lands exactly on the entry for ``key`` when one exists — no ``key=``
# extraction, and values are never compared.

def tget(pairs: Pairs, key, default=0):
    """Look up *key* in a sorted pair-tuple mapping (binary search)."""
    i = bisect_left(pairs, (key,))
    if i < len(pairs) and pairs[i][0] == key:
        return pairs[i][1]
    return default


def tset(pairs: Pairs, key, value) -> Pairs:
    """Return a new sorted pair-tuple with *key* set to *value*."""
    i = bisect_left(pairs, (key,))
    if i < len(pairs) and pairs[i][0] == key:
        return pairs[:i] + ((key, value),) + pairs[i + 1:]
    return pairs[:i] + ((key, value),) + pairs[i:]


def tdel(pairs: Pairs, key) -> Pairs:
    """Return a new pair-tuple with *key* removed (no-op if absent)."""
    i = bisect_left(pairs, (key,))
    if i < len(pairs) and pairs[i][0] == key:
        return pairs[:i] + pairs[i + 1:]
    return pairs


class ThreadCtx(NamedTuple):
    """One CPU's execution context.

    Views (all scalar timestamps into the global timeline):

    * ``coh`` — per-location coherence: the timestamp of the last write to
      that location this thread has read or written; later reads of the
      location may not go behind it.
    * ``vrn`` — floor for new reads: raised by acquire loads and DMB; a
      read of ``loc`` must not return a write older than the last write to
      ``loc`` at or before ``vrn``.
    * ``vwn`` — floor for new writes: a store's timestamp must exceed it.
    * ``vro``/``vwo`` — the maximum timestamp among past reads/writes, the
      inputs DMB LD / DMB ST promote into the floors.
    * ``vctrl`` — control frontier: join of the dependency views of all
      executed branch conditions; orders later *stores* (and, after ISB,
      later loads) after the reads feeding those branches.

    ``rv`` maps registers to dependency views — the timestamp knowledge
    carried by the value in the register, which is what makes data and
    address dependencies order-preserving.
    """

    pc: int
    halted: bool
    regs: Pairs              # (name, value)
    rv: Pairs                # (name, view ts)
    coh: Pairs               # (loc, ts)
    vrn: int
    vwn: int
    vro: int
    vwo: int
    vctrl: int
    promises: Tuple[int, ...]  # timestamps of own unfulfilled promises
    monitor: Tuple = ()        # (loc, ts) armed by LoadExclusive, or ()
    wbuf: Tuple[Tuple[int, int], ...] = ()  # TSO store buffer: FIFO of
                                            # (loc, val) not yet in memory


class ExecState(NamedTuple):
    """A complete machine configuration."""

    memory: Tuple[Message, ...]
    threads: Tuple[ThreadCtx, ...]
    tlb: Pairs               # ((cpu, vpn), ppage)
    walker_floor: int        # raised by barrier-ordered TLBI (scalar, global)
    ownership: Pairs         # (loc, tid) — push/pull ownership map
    push_ts: Pairs           # (loc, ts of last Push) — barrier-fulfillment
    faults: Tuple[Fault, ...]
    panic: Optional[str]
    pending_release: Pairs = ()   # (loc, old owner): push promised early
    walk_cache: Pairs = ()        # ((cpu, entry_loc), descriptor) — cached
                                  # non-leaf walk entries (vm "walk-cache")
    s2_walker_floor: int = 0      # stage-2 walker floor (vm "stage2")

    def thread(self, idx: int) -> ThreadCtx:
        return self.threads[idx]

    # The three functional updates below are the hottest allocation sites
    # of the whole engine; they construct positionally instead of going
    # through NamedTuple._replace's keyword machinery.

    def with_thread(self, idx: int, ctx: ThreadCtx) -> "ExecState":
        threads = self.threads
        return ExecState(
            self.memory,
            threads[:idx] + (ctx,) + threads[idx + 1:],
            self.tlb,
            self.walker_floor,
            self.ownership,
            self.push_ts,
            self.faults,
            self.panic,
            self.pending_release,
            self.walk_cache,
            self.s2_walker_floor,
        )

    def append_message(self, msg: Message) -> "ExecState":
        return ExecState(
            self.memory + (msg,),
            self.threads,
            self.tlb,
            self.walker_floor,
            self.ownership,
            self.push_ts,
            self.faults,
            self.panic,
            self.pending_release,
            self.walk_cache,
            self.s2_walker_floor,
        )

    def fulfill(self, ts: int) -> "ExecState":
        """Mark the promise at *ts* fulfilled."""
        msg = self.memory[ts - 1]
        memory = (
            self.memory[: ts - 1]
            + (msg._replace(promised=False),)
            + self.memory[ts:]
        )
        return ExecState(
            memory,
            self.threads,
            self.tlb,
            self.walker_floor,
            self.ownership,
            self.push_ts,
            self.faults,
            self.panic,
            self.pending_release,
            self.walk_cache,
            self.s2_walker_floor,
        )


class StateInterner:
    """Hash-consed canonical keys for :class:`ExecState` values.

    The message timeline is by far the largest component of a state and
    the one most often shared *by identity* between a state and its
    successors (only stores and promises append to it; every other step
    copies the reference).  The interner therefore hash-conses timelines
    — each distinct timeline is content-hashed once and replaced by a
    small integer code — and keys a state by that code plus the
    remaining (small) fields, which CPython hashes at C speed:

    * ``_id_codes`` memoizes timeline → code by ``id()``, so a shared
      timeline resolves with a single dict probe and no content hashing.
      Every timeline registered there is pinned in ``_pins`` to keep its
      ``id`` from being recycled by the allocator.
    * ``_content_codes`` maps timeline *content* to its code, so two
      structurally equal timelines always receive the same code — the
      property that makes key equality coincide with state equality.

    Keys are plain tuples: cheap to hash, cheap to compare, and equal
    exactly when the underlying states are equal.  An interner is scoped
    to one exploration — the outer DFS and every nested certification
    search it spawns share the same instance (see
    :class:`repro.memory.semantics.CertMemo`), so a timeline is
    content-hashed once for the whole run; never compare keys from
    different interners.
    """

    __slots__ = ("_content_codes", "_id_codes", "_pins")

    def __init__(self) -> None:
        self._content_codes: Dict[Tuple[Message, ...], int] = {}
        self._id_codes: Dict[int, int] = {}
        self._pins: List[object] = []

    def __len__(self) -> int:
        """Number of distinct timelines interned so far."""
        return len(self._content_codes)

    def timeline_code(self, memory: Tuple[Message, ...]) -> int:
        """The small-integer code of one message timeline (hash-consed)."""
        code = self._id_codes.get(id(memory))
        if code is None:
            contents = self._content_codes
            code = contents.get(memory)
            if code is None:
                code = len(contents)
                contents[memory] = code
            self._id_codes[id(memory)] = code
            self._pins.append(memory)
        return code

    def key(self, state: ExecState) -> Tuple:
        """The canonical compact key of *state* (hashable; equal keys
        if and only if equal states, within this interner)."""
        return (self.timeline_code(state.memory),) + state[1:]


def initial_thread_ctx() -> ThreadCtx:
    return ThreadCtx(
        pc=0,
        halted=False,
        regs=(),
        rv=(),
        coh=(),
        vrn=0,
        vwn=0,
        vro=0,
        vwo=0,
        vctrl=0,
        promises=(),
        monitor=(),
        wbuf=(),
    )


def initial_state(
    n_threads: int, initial_ownership: Tuple[Tuple[int, int], ...] = ()
) -> ExecState:
    return ExecState(
        memory=(),
        threads=tuple(initial_thread_ctx() for _ in range(n_threads)),
        tlb=(),
        walker_floor=0,
        ownership=tuple(sorted(initial_ownership)),
        push_ts=(),
        faults=(),
        panic=None,
        pending_release=(),
        walk_cache=(),
        s2_walker_floor=0,
    )
