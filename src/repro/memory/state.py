"""Immutable machine states for the exploration engines.

A :class:`ExecState` captures everything the step relation needs: the
global message timeline, per-thread contexts (program counter, registers,
views, outstanding promises), per-CPU TLBs, the global walker floor, and
the push/pull ownership map.  States are plain nested tuples so they hash
and compare fast; functional updates go through small helpers.

Mapping-like fields (registers, views-per-register, coherence-per-
location, ownership) are stored as sorted tuples of pairs, looked up and
updated with :func:`tget`/:func:`tset`/:func:`tdel` via binary search —
O(log n) probes and O(n) copying updates with no re-sort, while keeping
the trivially correct hashing/equality of plain tuples.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.memory.datatypes import Fault, Message


def interning_enabled() -> bool:
    """Canonical state interning is on unless ``REPRO_INTERN=0``.

    The switch exists for benchmarking (measuring the engine against
    its own unoptimized baseline) — interning never changes results,
    only the cost of duplicate detection.
    """
    return os.environ.get("REPRO_INTERN", "1") != "0"


_FP_SALT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def state_fingerprint(state: "ExecState") -> int:
    """A 128-bit content fingerprint of *state* for cross-process dedup.

    :class:`StateInterner` keys are per-process (a timeline's code is
    the order it was first seen in *that* interner), so they can never
    be compared across shard workers.  The fingerprint is built from two
    independently salted ``hash()`` passes over the full state tuple
    instead: every component is an int, a bool, ``None``, or an interned
    string, so the value is identical in every process of one ``fork``
    family (children share the parent's ``PYTHONHASHSEED``) — exactly
    the lifetime of a :class:`~repro.parallel.shard.SharedVisitedFilter`.
    Never persist fingerprints or compare them across fork families.

    128 bits puts an accidental collision in the same trust class as the
    truncated-SHA256 keys of the persistent exploration cache.  The
    result is never 0, so shared-memory filters can use an all-zero slot
    as the empty marker.
    """
    fp = ((hash(state) & _MASK64) << 64) | (hash((_FP_SALT, state)) & _MASK64)
    return fp or 1

Pairs = Tuple[Tuple, ...]


# The probe ``(key,)`` sorts strictly before ``(key, value)`` for any
# value (a proper prefix of a tuple is always smaller), so bisect_left
# lands exactly on the entry for ``key`` when one exists — no ``key=``
# extraction, and values are never compared.

def tget(pairs: Pairs, key, default=0):
    """Look up *key* in a sorted pair-tuple mapping (binary search)."""
    i = bisect_left(pairs, (key,))
    if i < len(pairs) and pairs[i][0] == key:
        return pairs[i][1]
    return default


def tset(pairs: Pairs, key, value) -> Pairs:
    """Return a new sorted pair-tuple with *key* set to *value*."""
    i = bisect_left(pairs, (key,))
    if i < len(pairs) and pairs[i][0] == key:
        return pairs[:i] + ((key, value),) + pairs[i + 1:]
    return pairs[:i] + ((key, value),) + pairs[i:]


def tdel(pairs: Pairs, key) -> Pairs:
    """Return a new pair-tuple with *key* removed (no-op if absent)."""
    i = bisect_left(pairs, (key,))
    if i < len(pairs) and pairs[i][0] == key:
        return pairs[:i] + pairs[i + 1:]
    return pairs


class ThreadCtx(NamedTuple):
    """One CPU's execution context.

    Views (all scalar timestamps into the global timeline):

    * ``coh`` — per-location coherence: the timestamp of the last write to
      that location this thread has read or written; later reads of the
      location may not go behind it.
    * ``vrn`` — floor for new reads: raised by acquire loads and DMB; a
      read of ``loc`` must not return a write older than the last write to
      ``loc`` at or before ``vrn``.
    * ``vwn`` — floor for new writes: a store's timestamp must exceed it.
    * ``vro``/``vwo`` — the maximum timestamp among past reads/writes, the
      inputs DMB LD / DMB ST promote into the floors.
    * ``vctrl`` — control frontier: join of the dependency views of all
      executed branch conditions; orders later *stores* (and, after ISB,
      later loads) after the reads feeding those branches.

    ``rv`` maps registers to dependency views — the timestamp knowledge
    carried by the value in the register, which is what makes data and
    address dependencies order-preserving.
    """

    pc: int
    halted: bool
    regs: Pairs              # (name, value)
    rv: Pairs                # (name, view ts)
    coh: Pairs               # (loc, ts)
    vrn: int
    vwn: int
    vro: int
    vwo: int
    vctrl: int
    promises: Tuple[int, ...]  # timestamps of own unfulfilled promises
    monitor: Tuple = ()        # (loc, ts) armed by LoadExclusive, or ()


class ExecState(NamedTuple):
    """A complete machine configuration."""

    memory: Tuple[Message, ...]
    threads: Tuple[ThreadCtx, ...]
    tlb: Pairs               # ((cpu, vpn), ppage)
    walker_floor: int        # raised by barrier-ordered TLBI (scalar, global)
    ownership: Pairs         # (loc, tid) — push/pull ownership map
    push_ts: Pairs           # (loc, ts of last Push) — barrier-fulfillment
    faults: Tuple[Fault, ...]
    panic: Optional[str]
    pending_release: Pairs = ()   # (loc, old owner): push promised early

    def thread(self, idx: int) -> ThreadCtx:
        return self.threads[idx]

    # The three functional updates below are the hottest allocation sites
    # of the whole engine; they construct positionally instead of going
    # through NamedTuple._replace's keyword machinery.

    def with_thread(self, idx: int, ctx: ThreadCtx) -> "ExecState":
        threads = self.threads
        return ExecState(
            self.memory,
            threads[:idx] + (ctx,) + threads[idx + 1:],
            self.tlb,
            self.walker_floor,
            self.ownership,
            self.push_ts,
            self.faults,
            self.panic,
            self.pending_release,
        )

    def append_message(self, msg: Message) -> "ExecState":
        return ExecState(
            self.memory + (msg,),
            self.threads,
            self.tlb,
            self.walker_floor,
            self.ownership,
            self.push_ts,
            self.faults,
            self.panic,
            self.pending_release,
        )

    def fulfill(self, ts: int) -> "ExecState":
        """Mark the promise at *ts* fulfilled."""
        msg = self.memory[ts - 1]
        memory = (
            self.memory[: ts - 1]
            + (msg._replace(promised=False),)
            + self.memory[ts:]
        )
        return ExecState(
            memory,
            self.threads,
            self.tlb,
            self.walker_floor,
            self.ownership,
            self.push_ts,
            self.faults,
            self.panic,
            self.pending_release,
        )


class StateInterner:
    """Hash-consed canonical keys for :class:`ExecState` values.

    The message timeline is by far the largest component of a state and
    the one most often shared *by identity* between a state and its
    successors (only stores and promises append to it; every other step
    copies the reference).  The interner therefore hash-conses timelines
    — each distinct timeline is content-hashed once and replaced by a
    small integer code — and keys a state by that code plus the
    remaining (small) fields, which CPython hashes at C speed:

    * ``_id_codes`` memoizes timeline → code by ``id()``, so a shared
      timeline resolves with a single dict probe and no content hashing.
      Every timeline registered there is pinned in ``_pins`` to keep its
      ``id`` from being recycled by the allocator.
    * ``_content_codes`` maps timeline *content* to its code, so two
      structurally equal timelines always receive the same code — the
      property that makes key equality coincide with state equality.

    Keys are plain tuples: cheap to hash, cheap to compare, and equal
    exactly when the underlying states are equal.  An interner is scoped
    to one exploration — the outer DFS and every nested certification
    search it spawns share the same instance (see
    :class:`repro.memory.semantics.CertMemo`), so a timeline is
    content-hashed once for the whole run; never compare keys from
    different interners.
    """

    __slots__ = ("_content_codes", "_id_codes", "_pins")

    def __init__(self) -> None:
        self._content_codes: Dict[Tuple[Message, ...], int] = {}
        self._id_codes: Dict[int, int] = {}
        self._pins: List[object] = []

    def __len__(self) -> int:
        """Number of distinct timelines interned so far."""
        return len(self._content_codes)

    def timeline_code(self, memory: Tuple[Message, ...]) -> int:
        """The small-integer code of one message timeline (hash-consed)."""
        code = self._id_codes.get(id(memory))
        if code is None:
            contents = self._content_codes
            code = contents.get(memory)
            if code is None:
                code = len(contents)
                contents[memory] = code
            self._id_codes[id(memory)] = code
            self._pins.append(memory)
        return code

    def key(self, state: ExecState) -> Tuple:
        """The canonical compact key of *state* (hashable; equal keys
        if and only if equal states, within this interner)."""
        return (self.timeline_code(state.memory),) + state[1:]


def initial_thread_ctx() -> ThreadCtx:
    return ThreadCtx(
        pc=0,
        halted=False,
        regs=(),
        rv=(),
        coh=(),
        vrn=0,
        vwn=0,
        vro=0,
        vwo=0,
        vctrl=0,
        promises=(),
        monitor=(),
    )


def initial_state(
    n_threads: int, initial_ownership: Tuple[Tuple[int, int], ...] = ()
) -> ExecState:
    return ExecState(
        memory=(),
        threads=tuple(initial_thread_ctx() for _ in range(n_threads)),
        tlb=(),
        walker_floor=0,
        ownership=tuple(sorted(initial_ownership)),
        push_ts=(),
        faults=(),
        panic=None,
        pending_release=(),
    )
