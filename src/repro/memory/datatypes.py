"""Core data types of the memory-model substrate.

The executors implement the *single-global-timeline* formulation of the
Promising Arm model (Pulte et al., PLDI 2019, the model Section 4 of the
paper builds on): memory is one append-only list of messages; a message's
timestamp is its position in that list; per-thread *views* are scalar
timestamps (the thread's knowledge frontier into the timeline).  This is
sound for Armv8 because Armv8 is multicopy-atomic — all CPUs agree on one
order of writes, and relaxed behavior comes from threads *reading stale*
messages and *promising* writes ahead of their program-order turn.

Everything here is immutable so whole machine states can be hashed for
the exploration engines' duplicate detection.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, FrozenSet, NamedTuple, Optional, Tuple


class Message(NamedTuple):
    """One write in the global timeline.

    ``ts`` is 1-based (timestamp 0 is the implicit initialization write of
    every location).  ``promised`` is True while the write is an
    unfulfilled promise: it is visible to other threads (that is the point
    of promises) but its own thread must still execute the store that
    fulfills it before the execution can terminate.
    """

    ts: int
    loc: int
    val: int
    tid: int
    promised: bool = False


class Fault(NamedTuple):
    """A translation fault taken by a thread's virtual access."""

    tid: int
    vaddr: int


class Behavior(NamedTuple):
    """One observable outcome of a program execution (Section 4).

    Per the paper, observable behavior is (1) the execution results of the
    kernel program — final registers and final shared-memory contents —
    and (2) the results of user memory accesses through shared page
    tables, which our executors surface as the user threads' observed
    registers and recorded page faults.  A modeled panic is also
    observable (and is what the DRF checkers look for).
    """

    registers: Tuple[Tuple[int, str, int], ...]   # (tid, reg, value)
    memory: Tuple[Tuple[int, int], ...]           # (loc, final value)
    faults: Tuple[Fault, ...]
    panic: Optional[str] = None

    def pretty(self) -> str:
        regs = ", ".join(f"t{t}.{r}={v}" for t, r, v in self.registers)
        mem = ", ".join(f"[{hex(l)}]={v}" for l, v in self.memory)
        parts = [p for p in (regs, mem) if p]
        if self.faults:
            parts.append(
                "faults: " + ", ".join(f"t{f.tid}@{hex(f.vaddr)}" for f in self.faults)
            )
        if self.panic is not None:
            parts.append(f"PANIC({self.panic})")
        return "{" + "; ".join(parts) + "}"


class ExplorationMonitor:
    """Streaming observer of one exploration run.

    Monitors are the engine's alternative to buffering terminal states:
    instead of asking :func:`~repro.memory.exploration.explore` to retain
    every terminal machine state (O(states) memory) and scanning the
    buffer afterwards, a monitor receives each *valid* terminal state the
    moment the DFS pops it — :meth:`on_terminal` for normal termination,
    :meth:`on_panic` for panicked executions — and folds it into whatever
    verdict it is accumulating.

    Calling :meth:`stop` declares that the monitor has its answer (for
    the verification checkers: a counterexample was found).  A stopped
    monitor receives no further callbacks; when *every* monitor of a run
    has stopped, the search itself is cut and the result is marked
    ``stopped_early`` — which, unlike a budget cut, does **not** clear
    ``complete``: the monitors chose to stop, nothing was lost that they
    still wanted.

    Determinism contract: the DFS order for a fixed ``(program, cfg,
    por)`` is deterministic, so a monitor observes the identical callback
    sequence whether it runs alone or fused with other monitors in one
    pass — other monitors can prolong the search past its stop point but
    never reorder or insert callbacks before it.  This is what makes
    fused verification passes bit-identical to per-condition ones.

    Bookkeeping (maintained by :meth:`observe`, the engine-facing entry
    point): ``terminals_seen`` / ``panics_seen`` count callbacks
    delivered, and ``states_seen`` is the exploration's
    ``states_explored`` counter at the most recent callback — after a
    :meth:`stop` it freezes at the stop point, giving the monitor an
    early-exit-accurate "states explored" figure for its evidence.

    Subclasses that want their verdict cached through
    :func:`repro.memory.cache.cached_explore` list their own mutable
    fields in ``extra_state`` (picklable values only) and give distinct
    parameterizations distinct :meth:`fingerprint` strings.
    """

    #: Stable identity of the monitor class for cache fingerprints.
    kind: str = "monitor"
    #: Subclass-owned mutable fields included in snapshot()/restore().
    extra_state: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.terminals_seen = 0
        self.panics_seen = 0
        self.states_seen = 0
        self._stopped = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Declare the verdict final; no further callbacks are wanted."""
        self._stopped = True

    # -- callbacks (override in subclasses) ---------------------------
    def on_terminal(self, state: Any) -> None:
        """A valid, non-panicked terminal machine state."""

    def on_panic(self, reason: str, state: Any) -> None:
        """A panicked terminal machine state (panics are observable)."""

    # -- engine-facing driver -----------------------------------------
    def observe(self, state: Any, states_explored: int) -> None:
        """Deliver one valid terminal state (called by the explorer)."""
        self.states_seen = states_explored
        if state.panic is not None:
            self.panics_seen += 1
            self.on_panic(state.panic, state)
        else:
            self.terminals_seen += 1
            self.on_terminal(state)

    # -- cache support ------------------------------------------------
    def fingerprint(self) -> str:
        """Stable description of this monitor's identity + parameters."""
        return self.kind

    def _state_fields(self) -> Tuple[str, ...]:
        return (
            "terminals_seen", "panics_seen", "states_seen", "_stopped",
        ) + tuple(self.extra_state)

    def snapshot(self) -> Dict[str, Any]:
        """Picklable dump of the accumulated verdict state."""
        return {name: getattr(self, name) for name in self._state_fields()}

    def restore(self, snap: Dict[str, Any]) -> None:
        """Replay a :meth:`snapshot` (cache hit instead of re-exploring)."""
        for name, value in snap.items():
            setattr(self, name, value)


@dataclass
class EngineStats:
    """Mutable performance counters of one exploration run.

    The exploration engine threads a single ``EngineStats`` through the
    outer DFS and every nested certification search so future perf work
    can see exactly where states/second goes:

    * ``certify_calls`` / ``certify_memo_hits`` — certification verdicts
      requested vs. answered from the :class:`~repro.memory.semantics.
      CertMemo` without re-searching.
    * ``candidate_calls`` / ``candidate_memo_hits`` — same for
      promise-candidate collection.
    * ``cert_budget_hits`` — certification searches cut short by
      ``cert_max_states``.  A budget-cut certification may have wrongly
      rejected a promise, so any hit marks the exploration incomplete
      (the behavior set could be an under-approximation); memo replays
      of a budget-cut verdict count again, keeping the counter invariant
      under memoization.
    * ``successors_generated`` — total successor states produced by the
      step relation (before deduplication).
    * ``por_ample_hits`` — states expanded through a single ample thread
      instead of the full scheduler fan-out.
    * ``interner_timelines`` — distinct message timelines hash-consed by
      the exploration's shared :class:`~repro.memory.state.StateInterner`
      (0 when interning is disabled).
    * ``por_gate_skips`` — explorations whose :class:`~repro.memory.por.
      PORPlan` construction was skipped by the cheap static gate (small
      non-relaxed programs, where the reduction's bookkeeping costs more
      than the interleavings it prunes).
    * ``monitor_stops`` — streaming monitors that called ``stop()``
      during this run (early verdicts; see :class:`ExplorationMonitor`).
    * ``fused_conditions`` — monitors beyond the first attached to this
      run, i.e. verification conditions served by an exploration that
      was already being paid for instead of a pass of their own.
    """

    certify_calls: int = 0
    certify_memo_hits: int = 0
    candidate_calls: int = 0
    candidate_memo_hits: int = 0
    cert_budget_hits: int = 0
    successors_generated: int = 0
    por_ample_hits: int = 0
    interner_timelines: int = 0
    por_gate_skips: int = 0
    monitor_stops: int = 0
    fused_conditions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready snapshot (used by the ``bench`` subcommand)."""
        return asdict(self)

    def add(self, other: "EngineStats") -> "EngineStats":
        """Accumulate *other* into this counter set (for corpus sums)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self


@dataclass(frozen=True)
class ExplorationResult:
    """The outcome of exhaustively exploring a program under a model.

    ``terminal_states`` is only populated when the exploration was asked
    to keep them (debugging/auditing; the verification checkers stream
    terminal states through :class:`ExplorationMonitor` instead).
    ``stats`` carries the engine's :class:`EngineStats` counters; entry
    points that synthesize results (sampling, axiomatic comparison) may
    leave it ``None``.

    ``stopped_early`` records that the search was cut because every
    attached monitor had called ``stop()`` — a chosen early exit, so it
    does **not** imply ``complete=False``.  A monitor that stops has its
    verdict (for the checkers: a definitive counterexample); only budget
    cuts mark the result incomplete.
    """

    behaviors: FrozenSet[Behavior]
    complete: bool
    states_explored: int
    cut_paths: int
    terminal_states: Tuple = ()
    stats: Optional[EngineStats] = None
    stopped_early: bool = False

    @property
    def panics(self) -> FrozenSet[str]:
        """The distinct panic reasons reachable in the exploration."""
        return frozenset(
            b.panic for b in self.behaviors if b.panic is not None
        )

    @property
    def panic_free(self) -> bool:
        return not self.panics

    def register_outcomes(self) -> FrozenSet[Tuple[Tuple[int, str, int], ...]]:
        """Just the register components (litmus-test "postconditions")."""
        return frozenset(b.registers for b in self.behaviors)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [
            f"{len(self.behaviors)} behaviors "
            f"({'complete' if self.complete else 'INCOMPLETE'}, "
            f"{self.states_explored} states, {self.cut_paths} cut paths)"
        ]
        for b in sorted(self.behaviors):
            lines.append("  " + b.pretty())
        return "\n".join(lines)


def last_write_ts(memory: Tuple[Message, ...], loc: int, upto: int) -> int:
    """Timestamp of the last write to *loc* at or before time *upto*.

    Returns 0 (the initialization write) when no explicit write qualifies.
    ``upto`` may exceed ``len(memory)``; it is clamped.
    """
    upto = min(upto, len(memory))
    for ts in range(upto, 0, -1):
        if memory[ts - 1].loc == loc:
            return ts
    return 0


def latest_write_ts(memory: Tuple[Message, ...], loc: int) -> int:
    """Timestamp of the globally latest write to *loc* (0 = init)."""
    return last_write_ts(memory, loc, len(memory))


def value_at(
    memory: Tuple[Message, ...], loc: int, ts: int, init: int
) -> int:
    """The value of the write to *loc* at timestamp *ts* (0 = initial)."""
    if ts == 0:
        return init
    msg = memory[ts - 1]
    if msg.loc != loc:
        raise ValueError(f"message at ts {ts} is for loc {msg.loc}, not {loc}")
    return msg.val
