"""The total-store-order hardware model (facade).

TSO — the architecture of x86 and SPARC, after Owens/Sewell/Sarkar's
x86-TSO and Hou et al.'s SPARC formalisation — is the middle rung of the
model portfolio: strictly weaker than SC, strictly stronger than
Promising Arm.  Operationally it is the SC step relation plus one piece
of machinery, the per-thread FIFO store buffer:

* a plain store enqueues ``(loc, val)`` on its thread's buffer instead
  of appending to the global timeline;
* an internal, nondeterministically scheduled *flush* step
  (:func:`repro.memory.semantics.tso_flush_steps`) pops the buffer head
  into memory — one write per step, so flushes interleave freely with
  every other thread's steps;
* a read returns the youngest buffered write to its location when one
  exists (mandatory store forwarding) and the memory-latest write
  otherwise — other threads never see the buffer;
* fences (``dmb sy``/``dmb st``), RMWs, exclusives, release stores, and
  ownership pushes wait for the buffer to drain before executing.

That is exactly enough weakness to admit the store-buffering (SB)
litmus outcome while forbidding load/load, store/store, and
load/store reorderings — and it keeps every TSO behavior an Arm
behavior and every SC behavior a TSO behavior, the containment
:mod:`repro.vrm.portability` certifies.

This module wraps the shared executor with the TSO configuration, the
same way :mod:`repro.memory.sc` and :mod:`repro.memory.promising` wrap
theirs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import TSO, ModelConfig


def explore_tso(
    program: Program,
    observe_locs: Optional[Sequence[int]] = None,
    **overrides,
) -> ExplorationResult:
    """All observable behaviors of *program* on the TSO model."""
    cfg = (
        TSO
        if not overrides
        else ModelConfig(relaxed=False, tso=True, **overrides)
    )
    return cached_explore(program, cfg, observe_locs)
