"""Execution tracing: find and explain a concrete relaxed execution.

When a checker or a behavior comparison reports an RM-only outcome, the
natural next question is *how* the hardware gets there.  This module
searches the Promising Arm state space for an execution reaching a
given behavior and renders it in the style of the paper's Figure 3: the
global promise list (the message timeline) plus each CPU's step
sequence with read-from / fulfill annotations.

The traced search re-runs the same step relation as the main explorer
but keeps the path of :class:`TraceEvent` records, reconstructed by
diffing consecutive machine states (new messages, promise fulfillment,
program-counter movement, register updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.ir.program import Program
from repro.memory.behaviors import admits
from repro.memory.datatypes import Behavior
from repro.memory.exploration import _is_terminal, _is_valid_terminal, behavior_of
from repro.memory.semantics import (
    CertMemo,
    ModelConfig,
    ProgramCache,
    execute_instruction,
    promise_steps,
    resolve_model,
    resolve_vm_features,
    tso_flush_steps,
)
from repro.memory.state import ExecState, initial_state, tget


@dataclass(frozen=True)
class TraceEvent:
    """One step of an execution, reconstructed from a state diff."""

    tid: int
    kind: str            # "exec" | "promise" | "fulfill" | "flush"
    instruction: str
    new_message: Optional[str] = None
    read_note: Optional[str] = None

    def render(self) -> str:
        parts = [f"CPU {self.tid}: {self.kind:<8} {self.instruction}"]
        if self.new_message:
            parts.append(f"-> {self.new_message}")
        if self.read_note:
            parts.append(f"[{self.read_note}]")
        return " ".join(parts)


@dataclass(frozen=True)
class ExecutionTrace:
    """A full execution: events plus the final state.

    ``states`` holds the machine state at every step when the search
    recorded them (``states[0]`` is the initial state and
    ``states[i + 1]`` the state after ``events[i]``) — the renderer in
    :mod:`repro.obs.render` uses it to show per-thread views and the
    coherence order step by step.  Pre-existing producers may leave it
    empty.
    """

    program_name: str
    events: Tuple[TraceEvent, ...]
    final_state: ExecState
    behavior: Behavior
    states: Tuple[ExecState, ...] = ()

    def render(self) -> str:
        lines = [f"execution of {self.program_name!r}:"]
        for i, event in enumerate(self.events):
            lines.append(f"  {i + 1:>3}. {event.render()}")
        lines.append("  promise list (global timeline):")
        for msg in self.final_state.memory:
            lines.append(
                f"    ({msg.ts}) CPU {msg.tid}: [{msg.loc:#x}] := {msg.val}"
            )
        lines.append(f"  outcome: {self.behavior.pretty()}")
        return "\n".join(lines)


def _diff_event(
    cache: ProgramCache, before: ExecState, after: ExecState, tid_idx: int
) -> TraceEvent:
    """Reconstruct what thread *tid_idx* did between two states."""
    from repro.ir.pretty import format_instruction

    thread = cache.threads[tid_idx]
    ctx_before = before.threads[tid_idx]
    ctx_after = after.threads[tid_idx]
    if ctx_before.pc < cache.thread_len(tid_idx):
        instr = format_instruction(cache.instr_at(tid_idx, ctx_before.pc))
    else:
        instr = "<halted>"

    if len(ctx_after.wbuf) < len(ctx_before.wbuf):
        # The internal TSO step: the store buffer's head hit memory
        # (no instruction executed, the pc did not move).
        loc, val = ctx_before.wbuf[0]
        return TraceEvent(
            tid=thread.tid,
            kind="flush",
            instruction="<flush store buffer>",
            new_message=f"[{loc:#x}] := {val} (buffered write drains)",
        )

    new_message = None
    kind = "exec"
    if len(after.memory) > len(before.memory):
        msg = after.memory[-1]
        flavor = "promise" if msg.promised else "write"
        new_message = f"({msg.ts}) [{msg.loc:#x}] := {msg.val} ({flavor})"
        if msg.promised:
            kind = "promise"
            instr = "<promise a future store>"
        elif len(after.memory) - len(before.memory) > 1:
            # One architectural step appended several messages: under the
            # ``had`` VM feature a translation's hardware access/dirty-bit
            # update precedes the access's own write.
            extras = ", ".join(
                f"({m.ts}) [{m.loc:#x}] := {m.val} (hw A/D update)"
                for m in after.memory[len(before.memory):-1]
            )
            new_message = f"{extras}; {new_message}"
    else:
        # A promise may have been fulfilled: a message flipped state.
        for m_before, m_after in zip(before.memory, after.memory):
            if m_before.promised and not m_after.promised:
                kind = "fulfill"
                new_message = (
                    f"fulfills ({m_after.ts}) [{m_after.loc:#x}] := {m_after.val}"
                )
                break

    read_note = None
    regs_before = dict(ctx_before.regs)
    for reg, value in ctx_after.regs:
        if regs_before.get(reg) != value:
            ts = tget(ctx_after.rv, reg, 0)
            read_note = f"{reg} := {value} (view ts {ts})"
            break
    return TraceEvent(
        tid=thread.tid,
        kind=kind,
        instruction=instr,
        new_message=new_message,
        read_note=read_note,
    )


def find_execution(
    program: Program,
    cfg: ModelConfig,
    predicate: Callable[[Behavior], bool],
    observe_locs: Optional[Sequence[int]] = None,
    state_predicate: Optional[Callable[[ExecState], bool]] = None,
) -> Optional[ExecutionTrace]:
    """DFS for a terminal behavior satisfying *predicate*; returns its
    trace, or None if unreachable within the budget.

    *state_predicate*, when given, must additionally accept the terminal
    :class:`ExecState` — used to search for executions identified by
    timeline properties (e.g. a BMC counterexample's write history)
    rather than by observable behavior alone."""
    cfg = resolve_model(resolve_vm_features(cfg))
    cache = ProgramCache(program)
    if observe_locs is None:
        observe_locs = sorted(cache.initial_memory)
    start = initial_state(len(program.threads), cfg.initial_ownership)
    stack: List[
        Tuple[ExecState, Tuple[TraceEvent, ...], Tuple[ExecState, ...]]
    ] = [(start, (), (start,))]
    visited: Set[ExecState] = {start}
    budget = cfg.max_states
    memo = CertMemo()  # share certification work across the traced search

    while stack and budget > 0:
        state, path, states = stack.pop()
        budget -= 1
        if _is_terminal(state):
            if _is_valid_terminal(state):
                behavior = behavior_of(cache, state, observe_locs)
                if predicate(behavior) and (
                    state_predicate is None or state_predicate(state)
                ):
                    return ExecutionTrace(
                        program_name=program.name,
                        events=path,
                        final_state=state,
                        behavior=behavior,
                        states=states,
                    )
            continue
        for tidx in range(len(program.threads)):
            for succ in tso_flush_steps(cache, state, tidx, cfg):
                if succ not in visited and len(succ.memory) <= cfg.max_memory:
                    visited.add(succ)
                    event = _diff_event(cache, state, succ, tidx)
                    stack.append((succ, path + (event,), states + (succ,)))
            for succ in execute_instruction(cache, state, tidx, cfg):
                if succ not in visited and len(succ.memory) <= cfg.max_memory:
                    visited.add(succ)
                    event = _diff_event(cache, state, succ, tidx)
                    stack.append((succ, path + (event,), states + (succ,)))
            for succ in promise_steps(cache, state, tidx, cfg, memo):
                if succ not in visited and len(succ.memory) <= cfg.max_memory:
                    visited.add(succ)
                    event = _diff_event(cache, state, succ, tidx)
                    stack.append((succ, path + (event,), states + (succ,)))
    return None


def explain_outcome(
    program: Program,
    cfg: ModelConfig,
    observe_locs: Optional[Sequence[int]] = None,
    **register_values: int,
) -> Optional[ExecutionTrace]:
    """Find an execution whose registers match ``t{tid}_{reg}=value``
    constraints (the :func:`repro.memory.behaviors.admits` convention)."""
    wanted = {}
    for key, value in register_values.items():
        tid_part, _, reg = key.partition("_")
        wanted[(int(tid_part[1:]), reg)] = value

    def predicate(behavior: Behavior) -> bool:
        assignment = {(t, r): v for t, r, v in behavior.registers}
        return all(assignment.get(k) == v for k, v in wanted.items())

    return find_execution(program, cfg, predicate, observe_locs)
