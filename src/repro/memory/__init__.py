"""Memory-model substrate: SC, TSO, Promising Arm, and push/pull Promising.

See DESIGN.md ("Memory-model fidelity notes") for how these relate to
the models in the paper.
"""

from repro.memory.datatypes import (
    Behavior,
    EngineStats,
    ExplorationMonitor,
    ExplorationResult,
    Fault,
    Message,
    last_write_ts,
    latest_write_ts,
    value_at,
)
from repro.memory.semantics import (
    MODEL_NAMES,
    PROMISING_ARM,
    PUSH_PULL_PROMISING,
    PUSH_PULL_SC,
    SC,
    TSO,
    CertMemo,
    ModelConfig,
    cert_memo_enabled,
    env_model,
    model_config,
    resolve_model,
    tso_check_enabled,
)
from repro.memory.exploration import explore, explore_or_raise
from repro.memory.cache import cached_explore, clear_memory_cache
from repro.memory.por import PORPlan, por_eligible, por_worthwhile
from repro.memory.state import StateInterner
from repro.memory.behaviors import (
    BehaviorComparison,
    admits,
    compare_models,
    parse_register_key,
)
from repro.memory.sc import explore_sc
from repro.memory.promising import explore_promising
from repro.memory.tso import explore_tso
from repro.memory.pushpull import explore_pushpull, pushpull_config
from repro.memory.trace import (
    ExecutionTrace,
    TraceEvent,
    explain_outcome,
    find_execution,
)
from repro.memory.sampling import sample_behaviors

__all__ = [
    "Behavior",
    "CertMemo",
    "EngineStats",
    "ExplorationMonitor",
    "ExplorationResult",
    "Fault",
    "Message",
    "last_write_ts",
    "latest_write_ts",
    "value_at",
    "MODEL_NAMES",
    "PROMISING_ARM",
    "PUSH_PULL_PROMISING",
    "PUSH_PULL_SC",
    "SC",
    "TSO",
    "ModelConfig",
    "cert_memo_enabled",
    "env_model",
    "model_config",
    "resolve_model",
    "tso_check_enabled",
    "explore",
    "explore_or_raise",
    "cached_explore",
    "clear_memory_cache",
    "PORPlan",
    "por_eligible",
    "por_worthwhile",
    "StateInterner",
    "BehaviorComparison",
    "admits",
    "compare_models",
    "parse_register_key",
    "explore_sc",
    "explore_promising",
    "explore_tso",
    "explore_pushpull",
    "pushpull_config",
    "ExecutionTrace",
    "TraceEvent",
    "explain_outcome",
    "find_execution",
    "sample_behaviors",
]
