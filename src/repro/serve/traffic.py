"""Synthetic serve traffic from the conformance fuzzer's generator.

The bench's serving claim is about *duplicate-heavy* load — thousands
of clients verifying overlapping kernels.  The conformance genome
generator (:mod:`repro.conformance.genome`) is the natural traffic
source: it draws small, valid, deterministic programs from seeded RNG
streams, so a workload is reproducible from ``(seed, n_jobs,
unique)`` alone.

:func:`synthetic_workload` builds a job list with a controlled repeat
ratio: ``unique`` distinct genomes cycled across ``n_jobs`` requests
(``unique=8, n_jobs=48`` → 83% repeats).  Repeats get *fresh display
names* — dedup must work on content, not labels.

:func:`run_traffic` drives a running :class:`~repro.serve.server.
VerificationServer` with N concurrent client coroutines over real HTTP
and reports latency percentiles, throughput, and the server's cache
accounting — the numbers the ``serve`` bench section records.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List

from repro.litmus.generate import derive_rng


def synthetic_workload(
    n_jobs: int = 48,
    unique: int = 8,
    seed: int = 0,
    profile: str = "plain",
    model: str = "rm",
) -> List[Dict[str, Any]]:
    """A duplicate-heavy job list: *unique* genomes cycled *n_jobs* times."""
    from repro.conformance.genome import random_genome

    genomes = [
        random_genome(
            profile,
            derive_rng(seed, f"serve-traffic-{i}"),
            n_threads=2, min_ops=3, max_ops=4, n_locations=2,
            name=f"traffic-{i}",
        )
        for i in range(unique)
    ]
    jobs: List[Dict[str, Any]] = []
    for i in range(n_jobs):
        genome = genomes[i % unique]
        # A repeat request renames the genome: content addressing must
        # see through display names for dedup to count.
        doc = genome.to_json()
        doc["name"] = f"traffic-{i % unique}-req{i}"
        jobs.append({
            "kind": "explore",
            "genome": doc,
            "model": model,
            "max_promises": 2,
            "backend": "explore",
        })
    return jobs


async def run_traffic(
    host: str,
    port: int,
    jobs: List[Dict[str, Any]],
    clients: int = 8,
    collect_results: bool = False,
) -> Dict[str, Any]:
    """Drive the server with *clients* concurrent HTTP clients.

    Each client coroutine pulls the next job off a shared list and
    submits it with ``wait=1``; per-job wall latencies feed the
    percentile report.  ``collect_results`` additionally returns the
    response bodies in job order (``"results"``) so the bench can
    assert served verdicts are identical to direct execution.
    """
    from repro.serve.client import get_stats, submit_job

    latencies: List[float] = []
    results: List[Any] = [None] * len(jobs)
    failures = 0
    index = {"next": 0}
    lock = asyncio.Lock()

    async def client() -> None:
        nonlocal failures
        while True:
            async with lock:
                i = index["next"]
                if i >= len(jobs):
                    return
                index["next"] = i + 1
            begin = time.perf_counter()
            status, body = await submit_job(host, port, jobs[i], wait=True)
            latencies.append(time.perf_counter() - begin)
            if collect_results:
                results[i] = body
            if status != 200:
                failures += 1

    begin = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(max(1, clients))))
    wall = time.perf_counter() - begin
    stats = await get_stats(host, port)
    ordered = sorted(latencies)

    def pct(p: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

    report = {
        "jobs": len(jobs),
        "clients": clients,
        "failures": failures,
        "wall_seconds": wall,
        "throughput_jobs_per_s": (len(jobs) / wall) if wall > 0 else 0.0,
        "p50_ms": pct(0.50) * 1000.0,
        "p99_ms": pct(0.99) * 1000.0,
        "server": stats,
    }
    if collect_results:
        report["results"] = results
    return report
