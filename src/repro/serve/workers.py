"""The persistent pre-forked worker pool behind the serve layer.

:mod:`repro.parallel.pool` forks a fresh pool per batch — the right
trade for a CLI run, pure overhead for a server: every fork repays the
interpreter fork cost and starts with cold caches.  The serving pool
forks its workers **once**, at startup, and keeps them alive for the
process lifetime, so each worker accumulates warm state across jobs:

* the in-process exploration memo (``repro.memory.cache``),
* the promise-certification memo,
* the timeline interner,
* the per-process lookup accounting that ships back per-job cache
  deltas for the server's stats.

Workers must be forked **before** the asyncio event loop opens sockets
(fork duplicates fds); :meth:`WorkerPool.start` is therefore called by
the server before it binds.  Each worker owns an inbox queue (so the
server can route jobs with the same content-key affinity to the same
warm worker) and all workers share one outbox the parent drains from a
reader thread, bridging messages into the event loop via
``call_soon_threadsafe``.

Trace bridging: while a job runs, the worker installs a
:class:`_ForwardingSink` that ships a bounded number of coarse engine
events (spans, cache hits/misses, monitor stops — not the per-state
firehose) to the parent, which fans them out to the job's SSE
subscribers.  ``REPRO_SERVE_TRACE_EVENTS`` caps the count per job.

On platforms without ``fork`` — or with ``workers=0`` — the
:class:`InlinePool` fallback runs jobs on a single daemon thread in the
server process: same interface, same warm-memo behavior, no process
isolation (and no engine-event bridging, since the tracer sink is
process-global and the server thread may be using it).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import tracer

#: Engine event kinds a worker forwards to SSE subscribers.  Coarse,
#: bounded-rate events only: per-state kinds (``por_ample``,
#: ``promise_made``...) can fire thousands of times per job and belong
#: in ``--trace`` files, not on the wire.
FORWARDED_KINDS = (
    tracer.SPAN_BEGIN,
    tracer.SPAN_END,
    tracer.CACHE_HIT,
    tracer.CACHE_MISS,
    tracer.MONITOR_STOP,
)


def trace_event_cap() -> int:
    """Per-job cap on forwarded engine events (``REPRO_SERVE_TRACE_EVENTS``)."""
    raw = os.environ.get("REPRO_SERVE_TRACE_EVENTS", "256")
    try:
        return max(0, int(raw))
    except ValueError:
        return 256


class _ForwardingSink(tracer.TraceSink):
    """Tracer sink shipping whitelisted events to the pool outbox."""

    def __init__(self, outbox, widx: int, job_id: str, cap: int) -> None:
        super().__init__()
        self._outbox = outbox
        self._widx = widx
        self._job_id = job_id
        self._budget = cap

    def emit(self, kind: str, **data: Any) -> None:
        seq = self.next_seq()
        if kind not in FORWARDED_KINDS or self._budget <= 0:
            return
        self._budget -= 1
        payload = {"seq": seq, "kind": kind}
        payload.update(data)
        self._outbox.put(("event", self._widx, self._job_id, payload))


def _run_one(outbox, widx: int, job_id: str,
             payload: Dict[str, Any], cap: int) -> None:
    """Execute one job in the worker, shipping events + result back."""
    from repro.memory.cache import lookup_stats, reset_lookup_stats
    from repro.serve.jobs import execute_job

    reset_lookup_stats()
    previous = tracer.SINK
    if cap > 0:
        tracer.SINK = _ForwardingSink(outbox, widx, job_id, cap)
    try:
        result = execute_job(payload)
        outbox.put(("done", widx, job_id, result, lookup_stats()))
    except Exception as exc:  # noqa: BLE001 — worker must not die
        outbox.put((
            "error", widx, job_id,
            f"{type(exc).__name__}: {exc}", lookup_stats(),
        ))
    finally:
        tracer.SINK = previous


def _worker_main(widx: int, inbox, outbox, cap: int) -> None:
    """A worker process's whole life: drain the inbox until ``None``.

    Sharding is pinned off exactly as in the CLI pool: a serving worker
    fanning out its own shard processes would multiply the fan-out.
    """
    os.environ["REPRO_SHARD"] = "0"
    while True:
        msg = inbox.get()
        if msg is None:
            return
        for job_id, payload in msg:
            _run_one(outbox, widx, job_id, payload, cap)


#: Message callback type: receives the raw outbox tuples documented on
#: :class:`WorkerPool` (``("event"|"done"|"error", widx, job_id, ...)``).
MessageHandler = Callable[[Tuple[Any, ...]], None]


class WorkerPool:
    """N long-lived forked workers with per-worker inboxes.

    Outbox message shapes (what the handler receives):

    * ``("event", widx, job_id, payload)`` — one forwarded engine event
    * ``("done", widx, job_id, result, cache_stats)`` — job finished
    * ``("error", widx, job_id, message, cache_stats)`` — job raised

    ``cache_stats`` is the worker's per-job cache-lookup delta (the
    ``{"hits": {layer: n}, "misses": {...}}`` shape of
    :func:`repro.memory.cache.lookup_stats`).
    """

    def __init__(self, n_workers: int, handler: MessageHandler) -> None:
        self.n_workers = n_workers
        self._handler = handler
        self._ctx = multiprocessing.get_context("fork")
        self._inboxes: List[Any] = []
        self._outbox: Any = None
        self._procs: List[Any] = []
        self._reader: Optional[threading.Thread] = None
        self._stopping = False

    @staticmethod
    def supported() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def start(self) -> None:
        """Fork the workers (call before the event loop opens sockets)."""
        cap = trace_event_cap()
        self._outbox = self._ctx.Queue()
        for widx in range(self.n_workers):
            inbox = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(widx, inbox, self._outbox, cap),
                daemon=True,
                name=f"repro-serve-worker-{widx}",
            )
            proc.start()
            self._inboxes.append(inbox)
            self._procs.append(proc)
        self._reader = threading.Thread(
            target=self._drain, name="repro-serve-outbox", daemon=True
        )
        self._reader.start()

    def _drain(self) -> None:
        while True:
            msg = self._outbox.get()
            if msg is None:
                return
            try:
                self._handler(msg)
            except Exception:  # noqa: BLE001 — reader must survive
                if self._stopping:
                    return

    def submit(self, widx: int,
               batch: List[Tuple[str, Dict[str, Any]]]) -> None:
        """Queue a batch of ``(job_id, payload)`` on worker *widx*."""
        self._inboxes[widx % self.n_workers].put(batch)

    def stop(self) -> None:
        """Shut the pool down; pending inbox work is abandoned."""
        self._stopping = True
        for proc, inbox in zip(self._procs, self._inboxes):
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._outbox is not None:
            try:
                self._outbox.put(None)
            except (OSError, ValueError):
                pass
        if self._reader is not None:
            self._reader.join(timeout=2.0)


class InlinePool:
    """The ``workers=0`` / no-fork fallback: one daemon job thread.

    Jobs run in the server process (warm memo included — it is the
    *same* process) and report through the same message shapes as
    :class:`WorkerPool`, so the server code upstack does not branch.
    """

    n_workers = 1

    def __init__(self, handler: MessageHandler) -> None:
        self._handler = handler
        self._inbox: "queue.Queue[Any]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def supported() -> bool:
        return True

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-inline", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        from repro.memory.cache import lookup_stats, reset_lookup_stats
        from repro.serve.jobs import execute_job

        while True:
            msg = self._inbox.get()
            if msg is None:
                return
            for job_id, payload in msg:
                reset_lookup_stats()
                try:
                    result = execute_job(payload)
                    self._handler(
                        ("done", 0, job_id, result, lookup_stats())
                    )
                except Exception as exc:  # noqa: BLE001
                    self._handler((
                        "error", 0, job_id,
                        f"{type(exc).__name__}: {exc}", lookup_stats(),
                    ))

    def submit(self, widx: int,
               batch: List[Tuple[str, Dict[str, Any]]]) -> None:
        self._inbox.put(batch)

    def stop(self) -> None:
        self._inbox.put(None)
        if self._thread is not None:
            self._thread.join(timeout=2.0)


def make_pool(n_workers: int, handler: MessageHandler):
    """The right pool for the configuration and platform."""
    if n_workers > 0 and WorkerPool.supported():
        return WorkerPool(n_workers, handler)
    return InlinePool(handler)
