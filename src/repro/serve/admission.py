"""Admission control: per-tenant token budgets and a bounded queue.

Under overload a verification server has exactly two honest options:
make a client wait, or tell it *no* in a way it can act on.  This
module implements the second.  Two independent gates run before a cold
job may queue:

1. **Per-tenant token buckets** — each tenant (the ``X-Repro-Tenant``
   header, default ``"default"``) gets ``rate`` tokens/second with a
   ``burst`` ceiling; a cold job spends one token.  A drained bucket
   yields a typed 429 (``tenant_budget_exhausted``) with a
   ``retry_after_seconds`` hint.
2. **A bounded global queue** — when the queue is full the *oldest*
   queued job is shed (its waiters get the typed 429) in favor of the
   newcomer.  Shed-oldest beats reject-newest here because the oldest
   entry has the worst remaining-latency prospects anyway, and the
   policy keeps admission latency flat under a flood.

Cache and coalesce hits bypass both gates entirely — *warm-cache
admission control*: traffic the server can answer from memory is never
the traffic that overloads it, so it is never shed.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

#: Error type strings clients switch on (the ``error.type`` field of a
#: 429 body; see docs/SERVING.md).
TENANT_BUDGET_EXHAUSTED = "tenant_budget_exhausted"
QUEUE_SHED = "queue_shed"


class TokenBucket:
    """The classic leaky-bucket rate limiter, injectable clock for tests."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, amount: float = 1.0) -> bool:
        """Spend *amount* tokens if available; False means throttled."""
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until *amount* tokens will have accumulated."""
        self._refill()
        missing = amount - self._tokens
        if missing <= 0 or self.rate <= 0:
            return 0.0
        return missing / self.rate


class AdmissionControl:
    """Tenant budgets for the serving layer.

    ``rate <= 0`` disables throttling (every tenant always admitted) —
    the bench and smoke-test configuration, where the traffic source is
    trusted and the measurement wants the queue, not the limiter, to be
    the bottleneck.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self._clock = clock
        self._tenants: Dict[str, TokenBucket] = {}
        self.admitted = 0
        self.throttled = 0

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._tenants[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> Optional[Dict[str, Any]]:
        """Charge *tenant* for one cold job.

        Returns ``None`` on admission, or the JSON error body for a
        typed 429 when the tenant's budget is exhausted.
        """
        if self.rate <= 0:
            self.admitted += 1
            return None
        bucket = self._bucket(tenant)
        if bucket.try_take():
            self.admitted += 1
            return None
        self.throttled += 1
        return {
            "error": {
                "type": TENANT_BUDGET_EXHAUSTED,
                "tenant": tenant,
                "retry_after_seconds": round(bucket.retry_after(), 3),
            }
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "tenants": len(self._tenants),
            "admitted": self.admitted,
            "throttled": self.throttled,
        }


def shed_error(key: str) -> Dict[str, Any]:
    """The typed 429 body a shed job's waiters receive."""
    return {
        "error": {
            "type": QUEUE_SHED,
            "key": key,
            "retry_after_seconds": 1.0,
        }
    }
