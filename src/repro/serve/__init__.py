"""Verification-as-a-service: the ``repro serve`` HTTP layer.

Five PRs of engine work (POR, memoization, pass fusion, sharding, the
BMC router) made individual queries fast; this package converts that
into *serving throughput* for many concurrent clients verifying
overlapping kernels.  The load-bearing observation is that real query
mixes are duplicate-heavy — the same litmus shapes, the same KCore
primitives, near-identical fuzzer genomes — so the server's job is to
make sure each distinct computation runs **once**:

* **Content addressing** (:mod:`repro.serve.jobs`): every job is keyed
  by the same fingerprint spaces the engine cache uses
  (:func:`~repro.memory.cache.exploration_key`,
  :func:`~repro.memory.cache.monitored_exploration_key` via
  :func:`~repro.vrm.verifier.pass_fingerprints`), so a repeated request
  is recognized *before* any engine work.
* **Hot tier** (:mod:`repro.serve.hot_tier`): a sized in-memory LRU of
  finished results over the disk layer — repeat hits are served without
  touching a worker.
* **Coalescing** (:mod:`repro.serve.server`): an in-flight request with
  the same key attaches to the running computation instead of queueing
  a second one.
* **Persistent workers** (:mod:`repro.serve.workers`): a pre-forked
  pool of long-lived processes whose interner/memo/exploration caches
  stay warm across jobs — replacing the fork-per-call pattern of
  :mod:`repro.parallel.pool` for the serving path.
* **Admission control** (:mod:`repro.serve.admission`): per-tenant
  token budgets and a bounded queue (shed-oldest, typed 429) so the
  server degrades by refusing cold work, never by falling over.

:mod:`repro.serve.traffic` drives the conformance fuzzer's genome
generator as a synthetic traffic source for the ``serve`` bench section
and the CI smoke test.  See ``docs/SERVING.md`` for the HTTP API, job
lifecycle, and SSE event schema.
"""

from repro.serve.jobs import Job, JobError, execute_job, parse_job
from repro.serve.server import ServeConfig, VerificationServer

__all__ = [
    "Job",
    "JobError",
    "ServeConfig",
    "VerificationServer",
    "execute_job",
    "parse_job",
]
