"""The asyncio HTTP server: dedup first, admission second, workers last.

Zero dependencies: HTTP/1.1 is hand-rolled over ``asyncio`` streams
(the request surface is four routes; a framework would be the only
third-party package in the repo).  Every connection carries one
request and closes — except SSE streams, which stay open until their
job finishes.

Routes (see ``docs/SERVING.md`` for the full contract):

* ``POST /v1/jobs`` — submit a job (``?wait=1`` blocks for the result)
* ``GET /v1/jobs/<id>`` — job status + result document
* ``GET /v1/jobs/<id>/events`` — SSE stream of the job's events
* ``GET /v1/stats`` — serving counters (hot tier, admission, queue)
* ``GET /healthz`` — liveness

The submit path is ordered so the cheapest answer wins and warm
traffic can never be shed (*warm-cache admission control*):

1. parse + content-address (400 on malformed input),
2. hot tier (in-memory LRU of result documents),
3. serve disk layer (promoted into the hot tier on hit),
4. in-flight coalesce (same key already queued/running → attach),
5. tenant token budget (typed 429 ``tenant_budget_exhausted``),
6. bounded queue, shedding the *oldest* queued job on overflow
   (typed 429 ``queue_shed`` delivered to the shed job's waiters),
7. dispatch to the persistent worker pool, batched by key affinity so
   jobs likely to share cache entries land on the same warm worker.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.serve import admission as adm
from repro.serve import hot_tier as hot
from repro.serve.jobs import Job, JobError, parse_job
from repro.serve.workers import make_pool


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, "") or default)
    except ValueError:
        return default


@dataclass
class ServeConfig:
    """Server knobs; every field has a ``REPRO_SERVE_*`` twin."""

    host: str = "127.0.0.1"
    port: int = 8044                  # 0 = ephemeral (tests, bench)
    workers: int = 1                  # 0 = inline (no fork)
    queue_limit: int = 64             # bounded cold-job queue
    batch: int = 4                    # max jobs per worker dispatch
    hot_entries: int = 1024           # hot tier entry cap (0 disables)
    hot_mb: float = 64.0              # hot tier byte cap in MiB
    tenant_rate: float = 0.0          # cold jobs/s per tenant (0 = off)
    tenant_burst: float = 20.0        # token bucket ceiling

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        """Environment-driven config; keyword overrides win."""
        cfg = cls(
            host=os.environ.get("REPRO_SERVE_HOST", "127.0.0.1"),
            port=_env_int("REPRO_SERVE_PORT", 8044),
            workers=_env_int("REPRO_SERVE_WORKERS", 1),
            queue_limit=_env_int("REPRO_SERVE_QUEUE", 64),
            batch=_env_int("REPRO_SERVE_BATCH", 4),
            hot_entries=_env_int("REPRO_SERVE_HOT_ENTRIES", 1024),
            hot_mb=_env_float("REPRO_SERVE_HOT_MB", 64.0),
            tenant_rate=_env_float("REPRO_SERVE_TENANT_RATE", 0.0),
            tenant_burst=_env_float("REPRO_SERVE_TENANT_BURST", 20.0),
        )
        for name, value in overrides.items():
            setattr(cfg, name, value)
        return cfg


@dataclass
class JobRecord:
    """One submitted job's lifecycle state, event buffer, and waiters."""

    id: str
    job: Job
    tenant: str
    status: str = "queued"      # queued | running | done | error | shed
    source: str = "computed"    # computed | hot | disk | coalesced
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    cache_stats: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    subscribers: List["asyncio.Queue[Optional[Dict[str, Any]]]"] = (
        field(default_factory=list)
    )
    done: asyncio.Event = field(default_factory=asyncio.Event)
    submitted_at: float = 0.0
    finished_at: float = 0.0

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.id,
            "kind": self.job.kind,
            "key": self.job.key,
            "status": self.status,
            "source": self.source,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error["error"]
        if self.cache_stats is not None:
            out["cache_stats"] = self.cache_stats
        return out


class VerificationServer:
    """The serving state machine plus its asyncio HTTP frontend.

    Built to be driven programmatically too: tests and the bench call
    :meth:`submit` / :meth:`wait` directly on the running instance —
    the HTTP layer is a thin JSON shim over the same methods.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig.from_env()
        mb = self.config.hot_mb
        self.hot = hot.HotTier(
            max_entries=self.config.hot_entries,
            max_bytes=int(mb * 1024 * 1024) if mb > 0 else 0,
        )
        self.admission = adm.AdmissionControl(
            self.config.tenant_rate, self.config.tenant_burst
        )
        self.counters: Dict[str, int] = {
            "submitted": 0, "computed": 0, "hot_hits": 0, "disk_hits": 0,
            "coalesced": 0, "shed": 0, "rejected": 0, "errors": 0,
        }
        self.worker_cache_stats: Dict[str, Dict[str, int]] = {
            "hits": {}, "misses": {},
        }
        self._records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}      # key -> primary job id
        self._queue: Deque[str] = deque()        # job ids awaiting dispatch
        self._outstanding: Dict[int, int] = {}   # widx -> queued batches
        self._next_id = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool = None
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Fork the pool, then bind (fork must precede open sockets)."""
        self._loop = asyncio.get_running_loop()
        self._pool = make_pool(self.config.workers, self._pool_message)
        self._pool.start()
        self._outstanding = {
            w: 0 for w in range(self._pool.n_workers)
        }
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.stop()

    # ------------------------------------------------------------------
    # the submit pipeline

    def submit(self, body: Dict[str, Any],
               tenant: str = "default") -> Tuple[int, JobRecord]:
        """Run the dedup/admission pipeline for one request body.

        Returns ``(http_status, record)``; raises :class:`JobError`
        (→ 400) on malformed input.  Terminal statuses are materialized
        immediately: a hot/disk/throttled/shed submission never touches
        the queue.
        """
        job = parse_job(body)
        self.counters["submitted"] += 1
        now = time.monotonic()

        doc = self.hot.get(job.key)
        if doc is not None:
            self.counters["hot_hits"] += 1
            return 200, self._finished_record(job, tenant, doc, "hot", now)
        doc = hot.disk_load(job.key)
        if doc is not None:
            self.counters["disk_hits"] += 1
            self.hot.put(job.key, doc)
            return 200, self._finished_record(job, tenant, doc, "disk", now)

        primary_id = self._inflight.get(job.key)
        if primary_id is not None:
            primary = self._records[primary_id]
            if primary.status in ("queued", "running"):
                self.counters["coalesced"] += 1
                return 202, primary

        refusal = self.admission.admit(tenant)
        if refusal is not None:
            self.counters["rejected"] += 1
            record = self._new_record(job, tenant, now)
            self._finish(record, status="shed", error=refusal)
            return 429, record

        if len(self._queue) >= max(1, self.config.queue_limit):
            oldest = self._records[self._queue.popleft()]
            self._inflight.pop(oldest.job.key, None)
            self.counters["shed"] += 1
            self._finish(
                oldest, status="shed", error=adm.shed_error(oldest.job.key)
            )

        record = self._new_record(job, tenant, now)
        self._inflight[job.key] = record.id
        self._queue.append(record.id)
        self._emit(record, {"kind": "job_queued", "job_id": record.id,
                            "key": job.key})
        self._pump()
        return 202, record

    async def wait(self, record: JobRecord) -> JobRecord:
        """Block until *record* reaches a terminal status."""
        await record.done.wait()
        return record

    def _new_record(self, job: Job, tenant: str, now: float) -> JobRecord:
        self._next_id += 1
        record = JobRecord(
            id=f"j{self._next_id:06d}", job=job, tenant=tenant,
            submitted_at=now,
        )
        self._records[record.id] = record
        return record

    def _finished_record(self, job: Job, tenant: str, doc: Dict[str, Any],
                         source: str, now: float) -> JobRecord:
        record = self._new_record(job, tenant, now)
        record.source = source
        record.result = doc
        self._finish(record, status="done")
        return record

    def _finish(self, record: JobRecord, status: str,
                error: Optional[Dict[str, Any]] = None) -> None:
        record.status = status
        record.error = error
        record.finished_at = time.monotonic()
        self._emit(record, {"kind": "job_" + status, "job_id": record.id})
        record.done.set()
        for sub in record.subscribers:
            sub.put_nowait(None)

    def _emit(self, record: JobRecord, event: Dict[str, Any]) -> None:
        record.events.append(event)
        for sub in record.subscribers:
            sub.put_nowait(event)

    # ------------------------------------------------------------------
    # dispatch + pool messages

    def _pump(self) -> None:
        """Hand queued jobs to idle workers, batched by key affinity.

        A job's preferred worker is a stable function of its content
        key, so repeats and near-duplicates keep landing on the same
        warm memo.  An idle worker with no affine work steals the
        oldest queued job instead (work conservation beats affinity
        when the alternative is an idle process).
        """
        if self._pool is None:
            return
        n = self._pool.n_workers
        for widx in range(n):
            if self._outstanding[widx] > 0 or not self._queue:
                continue
            batch: List[Tuple[str, Dict[str, Any]]] = []
            keep: Deque[str] = deque()
            while self._queue and len(batch) < max(1, self.config.batch):
                job_id = self._queue.popleft()
                record = self._records[job_id]
                if not batch or self._affinity(record.job.key, n) == widx:
                    record.status = "running"
                    self._emit(record, {
                        "kind": "job_running", "job_id": record.id,
                        "worker": widx,
                    })
                    batch.append((record.id, record.job.payload))
                else:
                    keep.append(job_id)
            for job_id in reversed(keep):
                self._queue.appendleft(job_id)
            if batch:
                self._outstanding[widx] += len(batch)
                self._pool.submit(widx, batch)

    @staticmethod
    def _affinity(key: str, n_workers: int) -> int:
        return int(key[:8], 16) % max(1, n_workers)

    def _pool_message(self, msg: Tuple[Any, ...]) -> None:
        """Pool reader-thread callback: bounce into the event loop."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._on_message, msg)

    def _on_message(self, msg: Tuple[Any, ...]) -> None:
        kind, widx, job_id = msg[0], msg[1], msg[2]
        record = self._records.get(job_id)
        if record is None:
            return
        if kind == "event":
            self._emit(record, {"kind": "engine_event", "event": msg[3]})
            return
        self._outstanding[widx] = max(0, self._outstanding[widx] - 1)
        self._merge_cache_stats(msg[4])
        record.cache_stats = msg[4]
        self._inflight.pop(record.job.key, None)
        if kind == "done":
            self.counters["computed"] += 1
            record.result = msg[3]
            self.hot.put(record.job.key, msg[3])
            hot.disk_store(record.job.key, msg[3])
            self._finish(record, status="done")
        else:
            self.counters["errors"] += 1
            self._finish(record, status="error", error={
                "error": {"type": "execution_failed", "detail": msg[3]},
            })
        self._pump()

    def _merge_cache_stats(self, stats: Dict[str, Dict[str, int]]) -> None:
        for bucket in ("hits", "misses"):
            totals = self.worker_cache_stats[bucket]
            for layer, count in stats.get(bucket, {}).items():
                totals[layer] = totals.get(layer, 0) + count

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> Dict[str, Any]:
        total = self.counters["submitted"]
        served_warm = (self.counters["hot_hits"]
                       + self.counters["disk_hits"]
                       + self.counters["coalesced"])
        return {
            "counters": dict(self.counters),
            "cache_hit_rate": (served_warm / total) if total else 0.0,
            "hot_tier": self.hot.stats(),
            "admission": self.admission.stats(),
            "worker_cache": {
                "hits": dict(self.worker_cache_stats["hits"]),
                "misses": dict(self.worker_cache_stats["misses"]),
            },
            "queue_depth": len(self._queue),
            "workers": 0 if self._pool is None else self._pool.n_workers,
        }

    # ------------------------------------------------------------------
    # HTTP frontend

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, headers, body = request
            await self._route(method, path, query, headers, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    @staticmethod
    async def _read_request(reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        path, _, query = target.partition("?")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, query, headers, body

    async def _route(self, method, path, query, headers, body, writer):
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, {"ok": True})
            return
        if method == "GET" and path == "/v1/stats":
            await self._respond(writer, 200, self.stats())
            return
        if method == "POST" and path == "/v1/jobs":
            await self._handle_submit(query, headers, body, writer)
            return
        if method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                await self._handle_events(rest[:-len("/events")].rstrip("/"),
                                          writer)
                return
            record = self._records.get(rest)
            if record is None:
                await self._respond(writer, 404, {
                    "error": {"type": "unknown_job", "job_id": rest},
                })
                return
            await self._respond(writer, 200, record.to_json())
            return
        await self._respond(writer, 404, {
            "error": {"type": "unknown_route", "path": path},
        })

    async def _handle_submit(self, query, headers, body, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except ValueError:
            await self._respond(writer, 400, {
                "error": {"type": "malformed_json"},
            })
            return
        tenant = headers.get("x-repro-tenant", "default")
        try:
            status, record = self.submit(payload, tenant=tenant)
        except JobError as exc:
            await self._respond(writer, 400, {
                "error": {"type": "invalid_job", "detail": str(exc)},
            })
            return
        if "wait=1" in query.split("&") and status in (200, 202):
            await self.wait(record)
            status = 200 if record.status == "done" else (
                429 if record.status == "shed" else 500
            )
        await self._respond(writer, status, record.to_json())

    async def _handle_events(self, job_id: str, writer) -> None:
        record = self._records.get(job_id)
        if record is None:
            await self._respond(writer, 404, {
                "error": {"type": "unknown_job", "job_id": job_id},
            })
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()
        # Replay the buffer, then subscribe for live events; the buffer
        # snapshot and the subscription happen in one loop tick, so no
        # event is lost or duplicated in between.
        backlog = list(record.events)
        terminal = record.done.is_set()
        if not terminal:
            record.subscribers.append(queue)
        try:
            for event in backlog:
                await self._sse(writer, event)
            if terminal:
                return
            while True:
                event = await queue.get()
                if event is None:
                    return
                await self._sse(writer, event)
        finally:
            if queue in record.subscribers:
                record.subscribers.remove(queue)

    @staticmethod
    async def _sse(writer, event: Dict[str, Any]) -> None:
        writer.write(
            b"data: " + json.dumps(event, sort_keys=True).encode() + b"\n\n"
        )
        await writer.drain()

    _STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                    404: "Not Found", 429: "Too Many Requests",
                    500: "Internal Server Error"}

    async def _respond(self, writer, status: int,
                       body: Dict[str, Any]) -> None:
        data = json.dumps(body, sort_keys=True).encode()
        text = self._STATUS_TEXT.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {text}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n".encode() + data
        )
        await writer.drain()


async def run_server(config: Optional[ServeConfig] = None) -> None:
    """Boot a server and run until cancelled (the CLI entry point)."""
    server = VerificationServer(config)
    await server.start()
    print(f"repro serve listening on "
          f"http://{server.config.host}:{server.port} "
          f"({server.config.workers} worker(s), "
          f"queue={server.config.queue_limit})")
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
