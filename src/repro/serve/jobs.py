"""The serving layer's job model: parse, content-address, execute.

A *job* is one verification request in JSON form.  Three kinds cover
the engine's query surface:

``explore``
    Enumerate the behaviors of a conformance genome under one model
    (``sc`` or ``rm``), optionally through the BMC backend.
``wdrf``
    Run the six-condition wDRF verification of a ``sync``-profile
    genome, or of a named KCore primitive case (``case``).
``litmus``
    Run a named catalog test under both models.

Every job gets a **content address** derived from the engine's own
cache-key spaces (:func:`~repro.memory.cache.exploration_key`,
:func:`~repro.vrm.verifier.pass_fingerprints` over monitored keys) —
two requests share a key exactly when the engine would replay the same
cached computation for both.  Display names are deliberately excluded
(see :func:`~repro.memory.cache.program_fingerprint`): renaming a
genome must not defeat dedup.

:func:`execute_job` delegates straight to the library entry points
(:func:`~repro.memory.cache.cached_explore`,
:func:`~repro.vrm.verifier.verify_wdrf`,
:func:`~repro.litmus.runner.run_litmus`) so a served verdict is
bit-identical to the same call made directly — the property the bench
and the smoke test assert.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.memory.cache import cached_explore, exploration_key
from repro.memory.exploration import por_default_enabled

#: Behaviors included verbatim in a result document; past the cap only
#: the digest and the count are reported (a relaxed genome can admit
#: thousands of behaviors, and result documents ride the hot tier).
MAX_BEHAVIORS = 64

_BACKENDS = ("explore", "bmc", "auto")
_MODELS = ("sc", "tso", "rm")


class JobError(ValueError):
    """A request that cannot become a job (bad kind, malformed genome,
    unknown litmus test/KCore case...).  The server maps it to a 400."""


@dataclass(frozen=True)
class Job:
    """One parsed, content-addressed verification job."""

    kind: str
    key: str                   # content address (hex digest)
    payload: Dict[str, Any]    # canonical JSON-ready form


def _require(data: Dict[str, Any], field: str) -> Any:
    if field not in data:
        raise JobError(f"job is missing required field {field!r}")
    return data[field]


def _genome_of(data: Dict[str, Any], profiles: Optional[tuple] = None):
    from repro.conformance.genome import Genome, valid

    try:
        genome = Genome.from_json(_require(data, "genome"))
    except JobError:
        raise
    except Exception as exc:
        raise JobError(f"malformed genome: {exc}") from exc
    if not valid(genome):
        raise JobError(f"invalid genome {genome.name!r} "
                       f"(profile {genome.profile!r})")
    if profiles is not None and genome.profile not in profiles:
        raise JobError(
            f"kind requires a profile in {profiles!r}, "
            f"got {genome.profile!r}"
        )
    return genome


def _explore_cfg(model: str, max_promises: int):
    from repro.litmus.runner import SC_CFG, TSO_CFG, rm_config

    if model == "sc":
        return SC_CFG
    if model == "tso":
        return TSO_CFG
    return rm_config(max_promises)


def _wdrf_spec(payload: Dict[str, Any]):
    """The :class:`~repro.vrm.verifier.WDRFSpec` of a wdrf job."""
    if "case" in payload:
        from repro.cli import _find_sekvm_case

        try:
            return _find_sekvm_case(str(payload["case"])).spec
        except SystemExit as exc:
            raise JobError(str(exc)) from exc
    from repro.conformance.genome import build, shared_locations
    from repro.vrm.verifier import WDRFSpec

    genome = _genome_of(payload, profiles=("sync",))
    return WDRFSpec(
        program=build(genome), shared_locs=shared_locations(genome)
    )


def _litmus_test(payload: Dict[str, Any]):
    from repro.litmus import full_corpus

    name = str(_require(payload, "test"))
    for test in full_corpus():
        if test.name.lower() == name.lower():
            return test
    raise JobError(f"unknown litmus test {name!r}")


def parse_job(data: Dict[str, Any]) -> Job:
    """Validate a request body and compute its content address.

    Raises :class:`JobError` on anything malformed.  The returned
    payload is canonical (defaults filled in), so re-parsing it yields
    the same key.
    """
    if not isinstance(data, dict):
        raise JobError("job body must be a JSON object")
    kind = str(_require(data, "kind"))
    por = por_default_enabled()

    if kind == "explore":
        genome = _genome_of(data)
        model = str(data.get("model", "rm"))
        if model not in _MODELS:
            raise JobError(f"model must be one of {_MODELS!r}, got {model!r}")
        max_promises = int(data.get("max_promises", 2))
        backend = str(data.get("backend", "explore"))
        if backend not in _BACKENDS:
            raise JobError(
                f"backend must be one of {_BACKENDS!r}, got {backend!r}"
            )
        from repro.conformance.genome import build

        cfg = _explore_cfg(model, max_promises)
        base = exploration_key(build(genome), cfg, None, False, por)
        key = _digest("explore", base, f"backend={backend}")
        payload = {
            "kind": "explore",
            "genome": genome.to_json(),
            "model": model,
            "max_promises": max_promises,
            "backend": backend,
        }
        return Job(kind=kind, key=key, payload=payload)

    if kind == "wdrf":
        from repro.vrm.verifier import pass_fingerprints

        spec = _wdrf_spec(data)
        key = _digest("wdrf", *pass_fingerprints(spec, por=por))
        payload = {"kind": "wdrf"}
        if "case" in data:
            payload["case"] = str(data["case"])
        else:
            payload["genome"] = _genome_of(data, profiles=("sync",)).to_json()
        return Job(kind=kind, key=key, payload=payload)

    if kind == "litmus":
        from repro.litmus.runner import SC_CFG, rm_config

        test = _litmus_test(data)
        observe = sorted(loc for loc, _ in test.memory_condition)
        sc = exploration_key(test.program, SC_CFG, tuple(observe), False, por)
        rm = exploration_key(
            test.program, rm_config(test.max_promises), tuple(observe),
            False, por,
        )
        key = _digest("litmus", sc, rm)
        return Job(kind=kind, key=key,
                   payload={"kind": "litmus", "test": test.name})

    raise JobError(
        f"unknown job kind {kind!r} (expected explore, wdrf, or litmus)"
    )


def _digest(*parts: str) -> str:
    return hashlib.sha256("\x00".join(parts).encode()).hexdigest()


# ----------------------------------------------------------------------
# execution (runs inside a pool worker — or inline with workers=0)


def _run_explore(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.conformance.digests import behavior_digest
    from repro.conformance.genome import Genome, build

    program = build(Genome.from_json(payload["genome"]))
    cfg = _explore_cfg(payload["model"], int(payload["max_promises"]))
    backend = payload["backend"]
    result = None
    if backend in ("bmc", "auto"):
        from repro.smt.backend import bmc_explore, bmc_supported
        from repro.smt.encode import Unsupported
        from repro.smt.router import route

        want_bmc = backend == "bmc" or (
            backend == "auto" and route(program, cfg).backend == "bmc"
        )
        if want_bmc and bmc_supported(program, cfg) is None:
            try:
                result = bmc_explore(program, cfg)
            except Unsupported:
                result = None
    if result is None:
        result = cached_explore(program, cfg)
    pretty = sorted(b.pretty() for b in result.behaviors)
    return {
        "kind": "explore",
        "program": program.name,
        "model": payload["model"],
        "behavior_digest": behavior_digest(result),
        "n_behaviors": len(result.behaviors),
        "behaviors": pretty[:MAX_BEHAVIORS],
        "behaviors_truncated": len(pretty) > MAX_BEHAVIORS,
        "states_explored": result.states_explored,
        "complete": result.complete,
    }


def _run_wdrf(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.vrm.verifier import verify_wdrf

    spec = _wdrf_spec(payload)
    report = verify_wdrf(spec)
    conditions = {
        cond.value: {
            "holds": res.holds,
            "exhaustive": res.exhaustive,
            "violations": list(res.violations),
        }
        for cond, res in sorted(
            report.results.items(), key=lambda kv: kv[0].value
        )
    }
    out = {
        "kind": "wdrf",
        "subject": report.subject,
        "weakened": report.weakened,
        "all_hold": report.all_hold,
        "all_verified": report.all_verified,
        "conditions": conditions,
        "counterexample": None,
    }
    if not report.all_hold:
        out["counterexample"] = _render_counterexample(spec)
    return out


def _render_counterexample(spec) -> Optional[str]:
    """A rendered witness for a failed wDRF report, when one exists.

    Only the DRF/ownership flavor has a traced-search explainer today;
    other violations return ``None`` and clients fall back to the
    per-condition ``violations`` strings.
    """
    from repro.obs.render import explain_drf_violation, render_explanation

    trace = explain_drf_violation(
        spec.program, spec.shared_locs, spec.initial_ownership,
        **spec.overrides(),
    )
    if trace is None:
        return None
    return render_explanation(
        trace, spec.program,
        title=f"wDRF counterexample: {spec.program.name!r}",
        notes=("witness: an execution panicking under the push/pull "
               "ownership discipline",),
    )


def _run_litmus(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.conformance.digests import behavior_digest
    from repro.litmus.runner import run_litmus

    outcome = run_litmus(_litmus_test(payload))
    return {
        "kind": "litmus",
        "test": outcome.test.name,
        "passed": outcome.passed,
        "observed_sc": outcome.observed_sc,
        "observed_rm": outcome.observed_rm,
        "sc_digest": behavior_digest(outcome.sc),
        "rm_digest": behavior_digest(outcome.rm),
    }


_RUNNERS = {
    "explore": _run_explore,
    "wdrf": _run_wdrf,
    "litmus": _run_litmus,
}


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one canonical job payload; returns the JSON result document.

    Pure delegation to the library entry points — no serving-layer
    state — so results are bit-identical to direct calls and safe to
    cache under the job's content address.
    """
    return _RUNNERS[payload["kind"]](payload)
