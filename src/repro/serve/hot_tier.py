"""A sized in-memory result tier over the serve disk cache.

The engine's own caches (in-process memo + pickled explorations on
disk) key *engine artifacts*; the serving layer additionally caches the
finished **result documents** it returns to clients, so a repeat
request costs one dictionary lookup — no worker dispatch, no engine
re-entry, no disk read.

:class:`HotTier` is an LRU bounded by entries *and* bytes (result
documents vary from a few hundred bytes to tens of KB of rendered
counterexample), with hit/miss/eviction counters mirrored into the
``obs`` metrics registry when it is enabled.  Below it sits a small
JSON-per-key disk layer under ``<cache_dir>/serve`` sharing the atomic
write-and-replace discipline of :mod:`repro.memory.cache` — corrupt
entries are deleted and treated as misses.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.memory.cache import cache_dir, cache_enabled
from repro.obs import metrics


def serve_disk_dir() -> str:
    """The serve result layer's directory (under the engine cache dir)."""
    return os.path.join(cache_dir(), "serve")


def serve_disk_enabled() -> bool:
    """Disk persistence of result documents (``REPRO_SERVE_DISK``).

    Follows the engine cache master switch: ``--no-cache`` runs must
    not observe results persisted by earlier runs.
    """
    if not cache_enabled():
        return False
    return os.environ.get("REPRO_SERVE_DISK", "1") != "0"


def disk_load(key: str) -> Optional[Dict[str, Any]]:
    """Load one result document, deleting anything unreadable."""
    if not serve_disk_enabled():
        return None
    path = os.path.join(serve_disk_dir(), key + ".json")
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    if not isinstance(doc, dict):
        return None
    return doc


def disk_store(key: str, doc: Dict[str, Any]) -> None:
    """Atomically persist one result document (mirrors ``_disk_store``)."""
    if not serve_disk_enabled():
        return
    folder = serve_disk_dir()
    tmp = None
    try:
        os.makedirs(folder, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=folder, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, os.path.join(folder, key + ".json"))
        tmp = None
    except (OSError, TypeError, ValueError):
        pass
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


class HotTier:
    """Byte- and entry-bounded LRU of finished result documents.

    ``max_entries <= 0`` or ``max_bytes <= 0`` disables the tier (every
    ``get`` misses, ``put`` is a no-op) — the configuration the warm-
    worker tests use to force repeat jobs through the pool.
    """

    def __init__(self, max_entries: int = 1024,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.max_bytes > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a result, refreshing its recency on a hit."""
        doc = self._entries.get(key) if self.enabled else None
        if doc is None:
            self.misses += 1
            if metrics.ENABLED:
                metrics.REGISTRY.counter("serve.hot.misses").inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if metrics.ENABLED:
            metrics.REGISTRY.counter("serve.hot.hits").inc()
        return doc

    def put(self, key: str, doc: Dict[str, Any]) -> None:
        """Insert a result, evicting least-recently-used entries to fit.

        A document bigger than the whole byte budget is simply not
        admitted (evicting the entire tier for one giant counterexample
        would be a worse trade than recomputing it).
        """
        if not self.enabled:
            return
        size = len(json.dumps(doc, sort_keys=True).encode())
        if size > self.max_bytes:
            return
        if key in self._entries:
            self.bytes -= self._sizes[key]
            del self._entries[key]
        self._entries[key] = doc
        self._sizes[key] = size
        self.bytes += size
        while (len(self._entries) > self.max_entries
               or self.bytes > self.max_bytes):
            old_key, _ = self._entries.popitem(last=False)
            self.bytes -= self._sizes.pop(old_key)
            self.evictions += 1
            if metrics.ENABLED:
                metrics.REGISTRY.counter("serve.hot.evictions").inc()
        if metrics.ENABLED:
            metrics.REGISTRY.gauge("serve.hot.bytes").set(self.bytes)
            metrics.REGISTRY.gauge("serve.hot.entries").set(
                len(self._entries)
            )

    def stats(self) -> Dict[str, Any]:
        """JSON-ready counters for ``/v1/stats`` and the bench section."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }
