"""A minimal asyncio client for the serve API (bench, tests, CI).

Zero dependencies, mirroring the server: raw ``asyncio`` streams, one
request per connection.  This is not a general HTTP client — it speaks
exactly the dialect :mod:`repro.serve.server` emits (``Connection:
close``, JSON bodies, ``data:``-only SSE frames).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple


async def _request(
    host: str, port: int, method: str, path: str,
    body: Optional[Dict[str, Any]] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One request/response exchange; returns ``(status, json_body)``."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        data = b"" if body is None else json.dumps(body).encode()
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {host}:{port}",
                 "Connection: close",
                 f"Content-Length: {len(data)}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        payload = await reader.read()
        return status, json.loads(payload.decode() or "null")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def submit_job(
    host: str, port: int, job: Dict[str, Any],
    wait: bool = True, tenant: Optional[str] = None,
) -> Tuple[int, Dict[str, Any]]:
    """POST a job; ``wait=True`` blocks until the result document."""
    path = "/v1/jobs" + ("?wait=1" if wait else "")
    headers = {"X-Repro-Tenant": tenant} if tenant else None
    return await _request(host, port, "POST", path, body=job,
                          headers=headers)


async def get_job(host: str, port: int,
                  job_id: str) -> Tuple[int, Dict[str, Any]]:
    """GET one job's status + result."""
    return await _request(host, port, "GET", f"/v1/jobs/{job_id}")


async def get_stats(host: str, port: int) -> Dict[str, Any]:
    """GET the serving counters."""
    _status, body = await _request(host, port, "GET", "/v1/stats")
    return body


async def stream_events(
    host: str, port: int, job_id: str, max_events: Optional[int] = None,
) -> AsyncIterator[Dict[str, Any]]:
    """Yield a job's SSE events until the stream closes (job finished).

    ``max_events`` stops early (the CI smoke test reads just enough to
    prove the bridge works without waiting out a long job).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        seen = 0
        while True:
            line = await reader.readline()
            if not line:
                return
            line = line.strip()
            if not line.startswith(b"data: "):
                continue
            yield json.loads(line[len(b"data: "):].decode())
            seen += 1
            if max_events is not None and seen >= max_events:
                return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
