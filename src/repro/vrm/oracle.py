"""Data oracles (Section 5.3).

SeKVM's proofs model every kernel read of VM/KServ memory as a draw from
a *data oracle* — a random-number generator masking the expected
information flow — so the verified kernel behavior is independent of any
concrete user program.  Section 4.3's Theorem 4 then only needs some SC
user program Q' that reproduces the user memory an RM execution produced,
and a suitable oracle always exists.

:class:`DataOracle` is the scripted form (used by the SeKVM functional
model); :func:`mask_user_reads` is the program transformation replacing
kernel loads of user memory with :class:`~repro.ir.instructions.OracleRead`,
which the executors explore over all oracle choices.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.ir.instructions import Load, MemSpace, OracleRead
from repro.ir.program import Program, Thread


class DataOracle:
    """A scripted source of values masking user-memory reads.

    Deterministic and replayable: tests construct oracles with known
    sequences to demonstrate that *some* oracle reproduces any concrete
    user memory (the existence argument behind Theorem 4).  When the
    script runs out it repeats its last value (an infinite tail), so a
    finite script denotes a total oracle.
    """

    def __init__(self, values: Sequence[int] = (0,)):
        if not values:
            raise ValueError("an oracle needs at least one value")
        self._values: Tuple[int, ...] = tuple(values)
        self._index = 0
        self.draws: List[int] = []

    def draw(self) -> int:
        """Return the next scripted value (cycling when exhausted)."""
        idx = min(self._index, len(self._values) - 1)
        value = self._values[idx]
        self._index += 1
        self.draws.append(value)
        return value

    def reset(self) -> None:
        """Rewind the script to its first value."""
        self._index = 0
        self.draws.clear()

    @staticmethod
    def replaying(memory_reads: Iterable[int]) -> "DataOracle":
        """The oracle that reproduces a concrete sequence of user-memory
        read results — the Q'-construction of Theorem 4."""
        return DataOracle(tuple(memory_reads) or (0,))


def mask_user_reads(
    program: Program, choices: Tuple[int, ...] = (0, 1)
) -> Program:
    """Replace kernel loads of user memory with oracle reads.

    The transformed program's kernel behavior is independent of user
    threads by construction; exploring it enumerates every oracle, so
    its SC behavior set over-approximates the original kernel's behavior
    under *any* user program on *any* hardware model.
    """
    new_threads = []
    replaced = 0
    for thread in program.threads:
        if not thread.is_kernel:
            new_threads.append(thread)
            continue
        instrs = []
        for instr in thread.instrs:
            if isinstance(instr, Load) and instr.space is MemSpace.USER:
                instrs.append(
                    OracleRead(dst=instr.dst, addr=instr.addr, choices=choices)
                )
                replaced += 1
            else:
                instrs.append(instr)
        new_threads.append(
            Thread(
                tid=thread.tid,
                instrs=tuple(instrs),
                name=thread.name,
                is_kernel=thread.is_kernel,
                observed=thread.observed,
            )
        )
    return Program(
        threads=tuple(new_threads),
        initial_memory=program.initial_memory,
        spaces=program.spaces,
        mmu=program.mmu,
        name=f"{program.name}[oracle-masked]",
    )
