"""Condition 6 — Memory-Isolation and Weak-Memory-Isolation (§3, §4.3, §5.3).

The strong condition: user programs cannot modify kernel memory, and the
kernel never reads user memory.  The weak condition keeps the first half
but allows kernel reads of user memory when the kernel's verification
does not depend on user implementations — operationally, when every such
read is masked by a data oracle.

Checks:

* **Static** — scan kernel threads for reads of USER-space locations
  (strong fails on any; weak requires them to be ``OracleRead``), and
  user threads for statically-addressed writes to KERNEL-space locations.
* **Dynamic** — explore the program and audit terminal message timelines:
  any message to a kernel-space location authored by a user thread is a
  violation (this catches dynamically computed addresses the static scan
  cannot see).  The audit streams through an :class:`IsolationMonitor`
  (no ``keep_terminal_states`` buffering); the search stops at the first
  timeline containing a user write to kernel memory.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Set, Tuple, Union

from repro.ir.expr import Imm
from repro.ir.instructions import (
    FetchAndInc,
    Load,
    MemSpace,
    OracleRead,
    Store,
    VLoad,
    VStore,
)
from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationMonitor, ExplorationResult
from repro.memory.semantics import ModelConfig
from repro.vrm.conditions import ConditionResult, PassRequest, WDRFCondition


def _static_violations(program: Program, weak: bool) -> List[str]:
    violations: List[str] = []
    for thread in program.kernel_threads():
        for idx, instr in enumerate(thread.instrs):
            if isinstance(instr, (Load, VLoad)) and instr.space is MemSpace.USER:
                if weak:
                    violations.append(
                        f"kernel thread {thread.tid} pc {idx}: raw read of "
                        f"user memory (must be oracle-masked under "
                        f"Weak-Memory-Isolation)"
                    )
                else:
                    violations.append(
                        f"kernel thread {thread.tid} pc {idx}: read of user "
                        f"memory (forbidden by Memory-Isolation)"
                    )
    kernel_locs = {
        loc for loc, space in program.spaces.items()
        if space in (MemSpace.KERNEL, MemSpace.SYNC)
    }
    for thread in program.user_threads():
        for idx, instr in enumerate(thread.instrs):
            target: Optional[int] = None
            if isinstance(instr, (Store, FetchAndInc)) and isinstance(
                instr.addr, Imm
            ):
                target = instr.addr.value
            if target is not None and target in kernel_locs:
                violations.append(
                    f"user thread {thread.tid} pc {idx}: write to kernel "
                    f"location {target:#x}"
                )
    return violations


class IsolationMonitor(ExplorationMonitor):
    """Audits each terminal timeline for user writes to kernel memory.

    Carries the plan-time context (static violations, evidence lines,
    condition flavor) needed to assemble the combined verdict; that
    context is derived from the program — already part of the
    exploration's cache key — so it is not monitor state.
    """

    kind = "memory_isolation"
    extra_state = ("violations",)

    def __init__(
        self,
        kernel_locs: Iterable[int],
        user_tids: Iterable[int],
        condition: WDRFCondition,
        static_violations: Tuple[str, ...] = (),
        evidence: Tuple[str, ...] = (),
    ) -> None:
        super().__init__()
        self.violations: Tuple[str, ...] = ()
        self._kernel_locs = frozenset(kernel_locs)
        self._user_tids = frozenset(user_tids)
        self._condition = condition
        self._static_violations = tuple(static_violations)
        self._evidence = tuple(evidence)

    def fingerprint(self) -> str:
        """Cache identity: same locations and user CPUs, same verdict."""
        return (
            f"{self.kind}:{sorted(self._kernel_locs)!r}:"
            f"{sorted(self._user_tids)!r}"
        )

    def _audit(self, state: Any) -> None:
        found: Set[str] = set()
        for msg in state.memory:
            if msg.tid in self._user_tids and msg.loc in self._kernel_locs:
                found.add(
                    f"user CPU {msg.tid} wrote kernel location {msg.loc:#x} "
                    f"(value {msg.val:#x})"
                )
        if found:
            self.violations = tuple(sorted(set(self.violations) | found))
            self.stop()

    def on_terminal(self, state: Any) -> None:
        """Audit a completed timeline for user writes to kernel memory."""
        self._audit(state)

    def on_panic(self, reason: str, state: Any) -> None:
        """Audit a panicked timeline (its write history still counts)."""
        self._audit(state)  # panicked timelines still carry write history

    def finalize(self, result: ExplorationResult) -> ConditionResult:
        """Combine static evidence and audited writes into the verdict."""
        exhaustive = True if self.stopped else result.complete
        violations = self._static_violations + self.violations
        return ConditionResult(
            condition=self._condition,
            holds=not violations,
            exhaustive=exhaustive,
            evidence=self._evidence,
            violations=violations,
        )


def _oracle_evidence(program: Program, weak: bool) -> List[str]:
    oracle_reads = sum(
        1
        for thread in program.kernel_threads()
        for instr in thread.instrs
        if isinstance(instr, OracleRead)
    )
    if weak and oracle_reads:
        return [
            f"{oracle_reads} kernel reads of user memory are oracle-masked"
        ]
    return []


def plan_memory_isolation(
    program: Program, weak: bool = False, dynamic: bool = True, **overrides
) -> Union[ConditionResult, PassRequest]:
    """Plan condition 6: a ready verdict or an exploration request.

    The static scan runs here, at plan time; the verdict is ready when
    no dynamic audit is requested or the program has no user threads (or
    no kernel locations) to audit.
    """
    condition = (
        WDRFCondition.WEAK_MEMORY_ISOLATION
        if weak
        else WDRFCondition.MEMORY_ISOLATION
    )
    static_violations = _static_violations(program, weak)
    evidence = [
        f"scanned {len(program.kernel_threads())} kernel and "
        f"{len(program.user_threads())} user threads"
    ]
    kernel_locs = {
        loc for loc, space in program.spaces.items()
        if space in (MemSpace.KERNEL, MemSpace.SYNC, MemSpace.PT)
    }
    user_tids = {t.tid for t in program.user_threads()}
    if dynamic:
        evidence.append(
            "audited terminal timelines for user writes to kernel memory"
        )
        if kernel_locs and user_tids:
            cfg = ModelConfig(relaxed=True, **overrides)
            monitor = IsolationMonitor(
                kernel_locs,
                user_tids,
                condition,
                static_violations=tuple(static_violations),
                evidence=tuple(evidence + _oracle_evidence(program, weak)),
            )
            return PassRequest(cfg=cfg, observe_locs=(), monitor=monitor)
    evidence.extend(_oracle_evidence(program, weak))
    return ConditionResult(
        condition=condition,
        holds=not static_violations,
        exhaustive=True,
        evidence=tuple(evidence),
        violations=tuple(static_violations),
    )


def check_memory_isolation(
    program: Program, weak: bool = False, dynamic: bool = True, **overrides
) -> ConditionResult:
    """Check condition 6 (strong by default; ``weak=True`` for §4.3).

    The weak variant passes when all kernel reads of user memory go
    through data oracles (``OracleRead``); apply
    :func:`repro.vrm.oracle.mask_user_reads` first if the program still
    contains raw reads that the proofs model as oracle draws.
    """
    plan = plan_memory_isolation(program, weak, dynamic, **overrides)
    if isinstance(plan, ConditionResult):
        return plan
    result = cached_explore(
        program, plan.cfg, observe_locs=list(plan.observe_locs),
        monitors=[plan.monitor],
    )
    return plan.monitor.finalize(result)
