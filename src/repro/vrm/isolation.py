"""Condition 6 — Memory-Isolation and Weak-Memory-Isolation (§3, §4.3, §5.3).

The strong condition: user programs cannot modify kernel memory, and the
kernel never reads user memory.  The weak condition keeps the first half
but allows kernel reads of user memory when the kernel's verification
does not depend on user implementations — operationally, when every such
read is masked by a data oracle.

Checks:

* **Static** — scan kernel threads for reads of USER-space locations
  (strong fails on any; weak requires them to be ``OracleRead``), and
  user threads for statically-addressed writes to KERNEL-space locations.
* **Dynamic** — explore the program and audit terminal message timelines:
  any message to a kernel-space location authored by a user thread is a
  violation (this catches dynamically computed addresses the static scan
  cannot see).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.ir.expr import Imm
from repro.ir.instructions import (
    FetchAndInc,
    Load,
    MemSpace,
    OracleRead,
    Store,
    VLoad,
    VStore,
)
from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.semantics import ModelConfig
from repro.vrm.conditions import ConditionResult, WDRFCondition


def _static_violations(program: Program, weak: bool) -> List[str]:
    violations: List[str] = []
    for thread in program.kernel_threads():
        for idx, instr in enumerate(thread.instrs):
            if isinstance(instr, (Load, VLoad)) and instr.space is MemSpace.USER:
                if weak:
                    violations.append(
                        f"kernel thread {thread.tid} pc {idx}: raw read of "
                        f"user memory (must be oracle-masked under "
                        f"Weak-Memory-Isolation)"
                    )
                else:
                    violations.append(
                        f"kernel thread {thread.tid} pc {idx}: read of user "
                        f"memory (forbidden by Memory-Isolation)"
                    )
    kernel_locs = {
        loc for loc, space in program.spaces.items()
        if space in (MemSpace.KERNEL, MemSpace.SYNC)
    }
    for thread in program.user_threads():
        for idx, instr in enumerate(thread.instrs):
            target: Optional[int] = None
            if isinstance(instr, (Store, FetchAndInc)) and isinstance(
                instr.addr, Imm
            ):
                target = instr.addr.value
            if target is not None and target in kernel_locs:
                violations.append(
                    f"user thread {thread.tid} pc {idx}: write to kernel "
                    f"location {target:#x}"
                )
    return violations


def _dynamic_violations(program: Program, **overrides) -> Tuple[List[str], bool]:
    kernel_locs = {
        loc for loc, space in program.spaces.items()
        if space in (MemSpace.KERNEL, MemSpace.SYNC, MemSpace.PT)
    }
    user_tids = {t.tid for t in program.user_threads()}
    if not kernel_locs or not user_tids:
        return [], True
    cfg = ModelConfig(relaxed=True, **overrides)
    result = cached_explore(program, cfg, observe_locs=[], keep_terminal_states=True)
    violations: Set[str] = set()
    for state in result.terminal_states:
        for msg in state.memory:
            if msg.tid in user_tids and msg.loc in kernel_locs:
                violations.add(
                    f"user CPU {msg.tid} wrote kernel location {msg.loc:#x} "
                    f"(value {msg.val:#x})"
                )
    return sorted(violations), result.complete


def check_memory_isolation(
    program: Program, weak: bool = False, dynamic: bool = True, **overrides
) -> ConditionResult:
    """Check condition 6 (strong by default; ``weak=True`` for §4.3).

    The weak variant passes when all kernel reads of user memory go
    through data oracles (``OracleRead``); apply
    :func:`repro.vrm.oracle.mask_user_reads` first if the program still
    contains raw reads that the proofs model as oracle draws.
    """
    condition = (
        WDRFCondition.WEAK_MEMORY_ISOLATION
        if weak
        else WDRFCondition.MEMORY_ISOLATION
    )
    violations = _static_violations(program, weak)
    exhaustive = True
    evidence = [
        f"scanned {len(program.kernel_threads())} kernel and "
        f"{len(program.user_threads())} user threads"
    ]
    if dynamic:
        dyn, complete = _dynamic_violations(program, **overrides)
        violations.extend(dyn)
        exhaustive = complete
        evidence.append("audited terminal timelines for user writes to kernel memory")
    oracle_reads = sum(
        1
        for thread in program.kernel_threads()
        for instr in thread.instrs
        if isinstance(instr, OracleRead)
    )
    if weak and oracle_reads:
        evidence.append(
            f"{oracle_reads} kernel reads of user memory are oracle-masked"
        )
    return ConditionResult(
        condition=condition,
        holds=not violations,
        exhaustive=exhaustive,
        evidence=tuple(evidence),
        violations=tuple(violations),
    )
