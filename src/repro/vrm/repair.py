"""Barrier repair: find the minimal strengthening that restores RM = SC.

The paper's related work cites "Repairing Sequential Consistency in
C/C++11" — tools that, given racy code, compute where barriers must go.
VRM's machinery supports the same query for kernel IR: enumerate
candidate strengthenings (make a load acquire, a store release, or
insert a DMB after an access), re-run the RM ⊆ SC containment for each
subset in increasing size, and report the smallest set that makes the
program robust.

This is exact (it re-checks each candidate exhaustively) and therefore
meant for fragments, not whole kernels — the same scale the wDRF
checkers target.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from dataclasses import replace as dc_replace

from repro.errors import VerificationError
from repro.ir.instructions import Barrier, BarrierKind, Load, Store
from repro.ir.program import Program, Thread
from repro.memory.behaviors import compare_models
from repro.memory.semantics import ModelConfig


@dataclass(frozen=True)
class Strengthening:
    """One candidate edit: acquire/release an access on a thread."""

    tid: int
    pc: int
    kind: str          # "acquire" | "release"

    def describe(self, program: Program) -> str:
        """One line naming the fix and where it applies."""
        from repro.ir.pretty import format_instruction

        thread = next(t for t in program.threads if t.tid == self.tid)
        instr = format_instruction(thread.instrs[self.pc])
        return f"thread {self.tid} pc {self.pc}: make {self.kind}: {instr}"


@dataclass(frozen=True)
class RepairResult:
    """The outcome of a repair search."""

    already_robust: bool
    fixes: Tuple[Strengthening, ...]
    candidates_tried: int

    def describe(self, program: Program) -> str:
        """Human-readable summary of the repair attempt."""
        if self.already_robust:
            return "program is already robust (RM = SC)"
        if not self.fixes:
            return (
                "no repair found within the candidate budget "
                f"({self.candidates_tried} sets tried)"
            )
        lines = [f"minimal repair ({len(self.fixes)} strengthenings):"]
        for fix in self.fixes:
            lines.append("  " + fix.describe(program))
        return "\n".join(lines)


def _candidates(program: Program) -> List[Strengthening]:
    out: List[Strengthening] = []
    for thread in program.kernel_threads():
        for pc, instr in enumerate(thread.instrs):
            if isinstance(instr, Load) and not instr.acquire:
                out.append(Strengthening(thread.tid, pc, "acquire"))
            elif isinstance(instr, Store) and not instr.release:
                out.append(Strengthening(thread.tid, pc, "release"))
    return out


def _apply(program: Program, fixes: Sequence[Strengthening]) -> Program:
    by_thread = {}
    for fix in fixes:
        by_thread.setdefault(fix.tid, []).append(fix)
    threads = []
    for thread in program.threads:
        fixes_here = by_thread.get(thread.tid, [])
        if not fixes_here:
            threads.append(thread)
            continue
        instrs = list(thread.instrs)
        for fix in fixes_here:
            instr = instrs[fix.pc]
            if fix.kind == "acquire":
                instrs[fix.pc] = dc_replace(instr, acquire=True)
            else:
                instrs[fix.pc] = dc_replace(instr, release=True)
        threads.append(
            Thread(
                tid=thread.tid,
                instrs=tuple(instrs),
                name=thread.name,
                is_kernel=thread.is_kernel,
                observed=thread.observed,
            )
        )
    return Program(
        threads=tuple(threads),
        initial_memory=program.initial_memory,
        spaces=program.spaces,
        mmu=program.mmu,
        name=f"{program.name}[repaired]",
    )


def _robust(program: Program, rm_overrides: dict) -> bool:
    comparison = compare_models(
        program, rm_cfg=ModelConfig(relaxed=True, **rm_overrides)
    )
    if not comparison.complete:
        raise VerificationError(
            "repair requires exhaustive exploration; raise the budgets"
        )
    return comparison.equivalent


def repair_barriers(
    program: Program,
    max_fixes: int = 2,
    max_sets: int = 200,
    **rm_overrides,
) -> RepairResult:
    """Search for the smallest strengthening set making RM = SC.

    Tries candidate sets in increasing size (so the first hit is
    minimal); gives up after ``max_sets`` containment checks.
    """
    if _robust(program, rm_overrides):
        return RepairResult(True, (), 0)
    candidates = _candidates(program)
    tried = 0
    for size in range(1, max_fixes + 1):
        for combo in itertools.combinations(candidates, size):
            if tried >= max_sets:
                return RepairResult(False, (), tried)
            tried += 1
            if _robust(_apply(program, combo), rm_overrides):
                return RepairResult(False, tuple(combo), tried)
    return RepairResult(False, (), tried)
