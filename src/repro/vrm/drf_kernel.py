"""Condition 1 — DRF-Kernel, via push/pull panic-freedom (Section 4.1).

A kernel program satisfies DRF-Kernel iff all of its shared-memory
accesses (outside synchronization implementations and page-table
management) are protected by synchronization.  Following the paper, the
check instruments critical sections with ``Pull``/``Push`` primitives and
explores the program on the *push/pull Promising* model: the condition
holds iff no execution panics on an ownership violation.

Running the check on the relaxed base model (rather than SC) is what
makes it meaningful: the conditions "must themselves hold on RM hardware"
(Section 3), and indeed a lock whose barriers are missing lets two CPUs
enter the critical section simultaneously *only* under relaxed execution,
which the ownership discipline then catches.

The check is a *violation-existence* search, so it streams: the
:class:`DRFKernelMonitor` watches panics as the explorer reaches them and
stops the search at the first ownership violation — a definitive
counterexample needs no further states.  :func:`plan_drf_kernel` exposes
the underlying exploration request so the pass planner in
:mod:`repro.vrm.verifier` can fuse it with other checkers sharing the
same configuration.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple, Union

from repro.ir.instructions import Pull, Push
from repro.ir.program import Program
from repro.memory import mutants
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationMonitor, ExplorationResult
from repro.memory.pushpull import pushpull_config
from repro.vrm.conditions import ConditionResult, PassRequest, WDRFCondition


def _has_pushpull_instrumentation(program: Program) -> bool:
    for thread in program.kernel_threads():
        for instr in thread.instrs:
            if isinstance(instr, (Pull, Push)):
                return True
    return False


class DRFKernelMonitor(ExplorationMonitor):
    """Streams panics; stops at the first ownership violation."""

    kind = "drf_kernel"
    extra_state = ("violations",)

    def __init__(self) -> None:
        super().__init__()
        self.violations: Tuple[str, ...] = ()

    def on_panic(self, reason: str, state: Any) -> None:
        """Record an ownership-discipline panic and stop the exploration."""
        if mutants.enabled("weaken-drf-monitor"):  # seeded bug class
            return
        if "DRF violation" in reason or "push/pull violation" in reason:
            self.violations = self.violations + (reason,)
            self.stop()

    def finalize(self, result: ExplorationResult) -> ConditionResult:
        """Turn the recorded panics into the DRF-Kernel verdict."""
        # A stopped monitor holds a definitive counterexample: its figures
        # are frozen at the stop point (identical whether the pass ran
        # fused or alone) and the verdict is exhaustive by construction.
        states = self.states_seen if self.stopped else result.states_explored
        exhaustive = True if self.stopped else result.complete
        return ConditionResult(
            condition=WDRFCondition.DRF_KERNEL,
            holds=not self.violations,
            exhaustive=exhaustive,
            evidence=(
                f"explored {states} states on the push/pull Promising "
                f"model; {self.terminals_seen + self.panics_seen} terminal "
                f"states streamed",
            ),
            violations=self.violations,
        )


def plan_drf_kernel(
    program: Program,
    shared_locs: Iterable[int],
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> Union[ConditionResult, PassRequest]:
    """Plan the DRF-Kernel check: a ready verdict or an exploration.

    Returns a :class:`ConditionResult` directly when no exploration is
    needed (uninstrumented program), otherwise a :class:`PassRequest`
    whose monitor's ``finalize`` produces the verdict.
    """
    shared = frozenset(shared_locs)
    if shared and not _has_pushpull_instrumentation(program):
        return ConditionResult(
            condition=WDRFCondition.DRF_KERNEL,
            holds=False,
            exhaustive=True,
            violations=(
                "program declares shared locations but has no push/pull "
                "instrumentation: shared accesses cannot be protected",
            ),
        )
    cfg = pushpull_config(
        relaxed=True,
        owned_access_required=shared,
        initial_ownership=tuple(initial_ownership),
        **overrides,
    )
    return PassRequest(cfg=cfg, observe_locs=(), monitor=DRFKernelMonitor())


def check_drf_kernel(
    program: Program,
    shared_locs: Iterable[int],
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ConditionResult:
    """Check DRF-Kernel for an instrumented kernel program.

    ``shared_locs`` are the kernel's shared-data locations (critical
    section footprints): any access to them outside ownership panics.
    ``initial_ownership`` seeds locations already held (e.g. a vCPU
    context owned by the CPU currently running that vCPU).
    """
    plan = plan_drf_kernel(
        program, shared_locs, initial_ownership, **overrides
    )
    if isinstance(plan, ConditionResult):
        return plan
    result = cached_explore(
        program, plan.cfg, observe_locs=list(plan.observe_locs),
        monitors=[plan.monitor],
    )
    return plan.monitor.finalize(result)
