"""Condition 1 — DRF-Kernel, via push/pull panic-freedom (Section 4.1).

A kernel program satisfies DRF-Kernel iff all of its shared-memory
accesses (outside synchronization implementations and page-table
management) are protected by synchronization.  Following the paper, the
check instruments critical sections with ``Pull``/``Push`` primitives and
explores the program on the *push/pull Promising* model: the condition
holds iff no execution panics on an ownership violation.

Running the check on the relaxed base model (rather than SC) is what
makes it meaningful: the conditions "must themselves hold on RM hardware"
(Section 3), and indeed a lock whose barriers are missing lets two CPUs
enter the critical section simultaneously *only* under relaxed execution,
which the ownership discipline then catches.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.ir.instructions import Pull, Push
from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.pushpull import pushpull_config
from repro.vrm.conditions import ConditionResult, WDRFCondition


def _has_pushpull_instrumentation(program: Program) -> bool:
    for thread in program.kernel_threads():
        for instr in thread.instrs:
            if isinstance(instr, (Pull, Push)):
                return True
    return False


def check_drf_kernel(
    program: Program,
    shared_locs: Iterable[int],
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ConditionResult:
    """Check DRF-Kernel for an instrumented kernel program.

    ``shared_locs`` are the kernel's shared-data locations (critical
    section footprints): any access to them outside ownership panics.
    ``initial_ownership`` seeds locations already held (e.g. a vCPU
    context owned by the CPU currently running that vCPU).
    """
    shared = frozenset(shared_locs)
    evidence = []
    if shared and not _has_pushpull_instrumentation(program):
        return ConditionResult(
            condition=WDRFCondition.DRF_KERNEL,
            holds=False,
            exhaustive=True,
            violations=(
                "program declares shared locations but has no push/pull "
                "instrumentation: shared accesses cannot be protected",
            ),
        )
    cfg = pushpull_config(
        relaxed=True,
        owned_access_required=shared,
        initial_ownership=tuple(initial_ownership),
        **overrides,
    )
    result = cached_explore(program, cfg, observe_locs=[])
    drf_panics = tuple(
        reason
        for reason in result.panics
        if "DRF violation" in reason or "push/pull violation" in reason
    )
    evidence.append(
        f"explored {result.states_explored} states on the push/pull "
        f"Promising model; {len(result.behaviors)} behaviors"
    )
    return ConditionResult(
        condition=WDRFCondition.DRF_KERNEL,
        holds=not drf_panics,
        exhaustive=result.complete,
        evidence=tuple(evidence),
        violations=drf_panics,
    )
