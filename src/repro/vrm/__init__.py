"""VRM: the wDRF conditions, their checkers, and the executable theorems.

This is the paper's primary contribution, reproduced as decision
procedures over bounded kernel programs:

* Conditions 1-2 (DRF-Kernel, No-Barrier-Misuse) — push/pull ownership
  panic-freedom on the relaxed model + barrier placement.
* Condition 3 (Write-Once-Kernel-Mapping) — write-history audit.
* Condition 4 (Transactional-Page-Table) — per-location write-prefix
  visibility enumeration against pre/post/fault walk results.
* Condition 5 (Sequential-TLB-Invalidation) — unmap/remap must be
  followed by barrier + TLBI.
* Condition 6 (Memory-Isolation / Weak-Memory-Isolation) — no user
  writes to kernel memory; kernel user-reads forbidden or oracle-masked.
* Theorems 1/2/4 — exhaustive RM ⊆ SC behavior containment.
"""

from repro.vrm.conditions import (
    ConditionResult,
    PassRequest,
    WDRFCondition,
    WDRFReport,
)
from repro.vrm.drf_kernel import check_drf_kernel, plan_drf_kernel
from repro.vrm.barrier_misuse import (
    check_no_barrier_misuse,
    check_no_barrier_misuse_dynamic,
    check_no_barrier_misuse_static,
    plan_no_barrier_misuse,
)
from repro.vrm.write_once import (
    audit_write_log,
    check_write_once,
    kernel_pt_locations,
    plan_write_once,
)
from repro.vrm.transactional import (
    audit_operation_writes,
    check_program_transactional,
    check_writes_transactional,
    enumerate_visibility_snapshots,
    extract_pt_write_sequences,
)
from repro.vrm.tlb_sequential import check_sequential_tlb_invalidation
from repro.vrm.isolation import check_memory_isolation, plan_memory_isolation
from repro.vrm.oracle import DataOracle, mask_user_reads
from repro.vrm.theorem import (
    TheoremResult,
    check_theorem1,
    check_theorem2,
    check_theorem4,
    kernel_projection,
)
from repro.vrm.verifier import (
    VerifyStats,
    WDRFSpec,
    fuse_check_enabled,
    fuse_default_enabled,
    pass_fingerprints,
    plan_passes,
    run_condition,
    run_condition_group,
    verify_and_check_theorem,
    verify_wdrf,
)
from repro.vrm.infer import infer_spec, inferred_probe_vpns, inferred_shared_locs, verify_program
from repro.vrm.repair import RepairResult, Strengthening, repair_barriers

__all__ = [
    "ConditionResult",
    "PassRequest",
    "WDRFCondition",
    "WDRFReport",
    "check_drf_kernel",
    "plan_drf_kernel",
    "check_no_barrier_misuse",
    "check_no_barrier_misuse_dynamic",
    "check_no_barrier_misuse_static",
    "plan_no_barrier_misuse",
    "audit_write_log",
    "check_write_once",
    "kernel_pt_locations",
    "plan_write_once",
    "audit_operation_writes",
    "check_program_transactional",
    "check_writes_transactional",
    "enumerate_visibility_snapshots",
    "extract_pt_write_sequences",
    "check_sequential_tlb_invalidation",
    "check_memory_isolation",
    "plan_memory_isolation",
    "DataOracle",
    "mask_user_reads",
    "TheoremResult",
    "check_theorem1",
    "check_theorem2",
    "check_theorem4",
    "kernel_projection",
    "VerifyStats",
    "WDRFSpec",
    "fuse_check_enabled",
    "fuse_default_enabled",
    "pass_fingerprints",
    "plan_passes",
    "run_condition",
    "run_condition_group",
    "verify_and_check_theorem",
    "verify_wdrf",
    "infer_spec",
    "inferred_probe_vpns",
    "inferred_shared_locs",
    "verify_program",
    "RepairResult",
    "Strengthening",
    "repair_barriers",
]
