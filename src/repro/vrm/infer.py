"""Specification inference: derive a WDRFSpec from a program's own
instrumentation.

The push/pull instrumentation already names the shared-data footprint
(every location a ``Pull``/``Push`` covers), kernel page-table stores
carry their kind tags, and the MMU configuration bounds the probe
space.  For most programs the verification inputs are therefore
derivable — ``verify_program(program)`` is the one-argument entry point
a downstream user reaches for first.

``initial_ownership`` cannot be inferred (it is a fact about the state
the fragment starts in, e.g. "CPU 0 is currently running this vCPU"),
so it stays an explicit parameter.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.errors import VerificationError
from repro.ir.expr import Imm
from repro.ir.instructions import Pull, Push
from repro.ir.program import Program
from repro.vrm.conditions import WDRFReport
from repro.vrm.verifier import WDRFSpec, verify_wdrf
from repro.vrm.write_once import kernel_pt_locations


def inferred_shared_locs(program: Program) -> Tuple[int, ...]:
    """The union of all statically-known pulled/pushed locations."""
    locs: Set[int] = set()
    for thread in program.kernel_threads():
        for instr in thread.instrs:
            if isinstance(instr, (Pull, Push)):
                for expr in instr.locs:
                    if isinstance(expr, Imm):
                        locs.add(expr.value)
                    else:
                        raise VerificationError(
                            "cannot infer shared locations from a "
                            "register-addressed pull/push; pass shared_locs "
                            "explicitly"
                        )
    return tuple(sorted(locs))


def inferred_probe_vpns(program: Program) -> Optional[Tuple[int, ...]]:
    """The exhaustive probe space, when the MMU config makes it small."""
    if program.mmu is None:
        return None
    total_bits = program.mmu.levels * program.mmu.va_bits_per_level
    if total_bits > 12:
        raise VerificationError(
            "virtual address space too large to probe exhaustively; "
            "pass probe_vpns explicitly"
        )
    return tuple(range(1 << total_bits))


def infer_spec(
    program: Program,
    initial_ownership: Iterable[Tuple[int, int]] = (),
    weakened: bool = True,
    **model_overrides,
) -> WDRFSpec:
    """Build a :class:`WDRFSpec` from the program's instrumentation."""
    return WDRFSpec(
        program=program,
        shared_locs=inferred_shared_locs(program),
        initial_ownership=tuple(initial_ownership),
        kernel_pt_locs=tuple(sorted(kernel_pt_locations(program))) or None,
        probe_vpns=inferred_probe_vpns(program),
        weakened=weakened,
        model_overrides=tuple(model_overrides.items()),
    )


def verify_program(
    program: Program,
    initial_ownership: Iterable[Tuple[int, int]] = (),
    weakened: bool = True,
    **model_overrides,
) -> WDRFReport:
    """One-argument wDRF verification: infer the spec, run all checks."""
    spec = infer_spec(
        program,
        initial_ownership=initial_ownership,
        weakened=weakened,
        **model_overrides,
    )
    return verify_wdrf(spec)
