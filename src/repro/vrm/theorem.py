"""Executable forms of the paper's Theorems 1, 2 and 4 (Section 4).

The Coq theorems say: for a kernel program satisfying the (weakened)
wDRF conditions, every observable behavior on the Promising Arm model is
also observable on an SC model.  Here the theorems become *decidable
checks on bounded programs*: exhaustively enumerate both behavior sets
and test containment.  The test suite runs these checks on every wDRF-
conforming kernel fragment (they must pass) and on the Section 2 buggy
examples (they must fail) — the executable analogue of the proof plus
its tightness.

* :func:`check_theorem2` — the solely-running kernel program: full
  behavior containment, no user threads allowed.
* :func:`check_theorem1` — kernel + user threads: containment of the
  *kernel-observable* projection (kernel registers and memory, user
  page-table access results, panics).  User threads may freely exhibit
  RM behavior among themselves.
* :func:`check_theorem4` — the weakened conditions: kernel reads of user
  memory are oracle-masked first (the Q'-existence argument), then the
  Theorem-1 containment is checked on the masked program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Sequence, Set, Tuple

from repro.errors import VerificationError
from repro.ir.instructions import MemSpace, VLoad
from repro.ir.program import Program
from repro.memory.behaviors import BehaviorComparison, compare_models
from repro.memory.datatypes import Behavior
from repro.memory.semantics import ModelConfig


@dataclass(frozen=True)
class TheoremResult:
    """Outcome of an executable theorem check."""

    theorem: str
    holds: bool
    exhaustive: bool
    rm_only_behaviors: Tuple[Behavior, ...]
    detail: str = ""

    @property
    def verified(self) -> bool:
        """True when every premise and the conclusion held."""
        return self.holds and self.exhaustive

    def describe(self) -> str:
        """One-line verdict with the failing premise, if any."""
        status = (
            "HOLDS" if self.verified
            else ("holds (non-exhaustive)" if self.holds else "FAILS")
        )
        lines = [f"{self.theorem}: {status}"]
        if self.detail:
            lines.append(f"  {self.detail}")
        for b in self.rm_only_behaviors:
            lines.append(f"  RM-only: {b.pretty()}")
        return "\n".join(lines)


def _vload_registers(program: Program) -> Set[Tuple[int, str]]:
    """(tid, reg) pairs written by user-thread virtual loads.

    These register results *are* "user memory access results via shared
    page tables" and stay observable under Theorem 1; other user
    registers reflect the user program's own (possibly racy) execution
    and are projected away.
    """
    out: Set[Tuple[int, str]] = set()
    for thread in program.user_threads():
        for instr in thread.instrs:
            if isinstance(instr, VLoad):
                out.add((thread.tid, instr.dst))
    return out


def kernel_projection(program: Program) -> Callable[[Behavior], Behavior]:
    """Project a behavior onto its kernel-observable part.

    User-thread registers (other than page-table access results) and
    USER-space memory contents are projected away: user programs may
    freely exhibit relaxed behavior among themselves (Section 4.2), and
    the kernel's observables must not depend on them.
    """
    kernel_tids = {t.tid for t in program.kernel_threads()}
    pt_regs = _vload_registers(program)
    from repro.ir.instructions import MemSpace

    def project(behavior: Behavior) -> Behavior:
        """Restrict a behavior to the registers the theorem compares."""
        registers = tuple(
            (tid, reg, val)
            for tid, reg, val in behavior.registers
            if tid in kernel_tids or (tid, reg) in pt_regs
        )
        memory = tuple(
            (loc, val)
            for loc, val in behavior.memory
            if program.space_of(loc) is not MemSpace.USER
        )
        return Behavior(
            registers=registers,
            memory=memory,
            faults=behavior.faults,
            panic=behavior.panic,
        )

    return project


def _containment(
    program: Program,
    project: Optional[Callable[[Behavior], Behavior]],
    theorem: str,
    observe_locs: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
    **rm_overrides,
) -> TheoremResult:
    comparison = compare_models(
        program,
        rm_cfg=ModelConfig(relaxed=True, **rm_overrides),
        observe_locs=observe_locs,
        jobs=jobs,
    )
    if project is None:
        rm_only = comparison.rm_only
    else:
        sc_set = {project(b) for b in comparison.sc.behaviors}
        rm_set = {project(b) for b in comparison.rm.behaviors}
        rm_only = frozenset(rm_set - sc_set)
    return TheoremResult(
        theorem=theorem,
        holds=not rm_only,
        exhaustive=comparison.complete,
        rm_only_behaviors=tuple(sorted(rm_only)),
        detail=(
            f"SC: {len(comparison.sc.behaviors)} behaviors, "
            f"RM: {len(comparison.rm.behaviors)} behaviors "
            f"({comparison.rm.states_explored} states explored)"
        ),
    )


def check_theorem2(
    program: Program,
    observe_locs: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
    **rm_overrides,
) -> TheoremResult:
    """Theorem 2: a solely-running kernel program has identical execution
    results on the Promising Arm and SC models."""
    if program.user_threads():
        raise VerificationError(
            "Theorem 2 applies to kernel programs running solely; "
            "use check_theorem1/check_theorem4 for full systems"
        )
    return _containment(
        program, None, "Theorem 2 (solely-running kernel)",
        observe_locs=observe_locs, jobs=jobs, **rm_overrides,
    )


def check_theorem1(
    program: Program,
    observe_locs: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
    **rm_overrides,
) -> TheoremResult:
    """Theorem 1: every kernel-observable RM behavior is SC-observable."""
    return _containment(
        program,
        kernel_projection(program),
        "Theorem 1 (wDRF theorem)",
        observe_locs=observe_locs,
        jobs=jobs,
        **rm_overrides,
    )


def check_theorem4(
    program: Program,
    oracle_choices: Tuple[int, ...] = (0, 1),
    observe_locs: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
    **rm_overrides,
) -> TheoremResult:
    """Theorem 4: the weakened-wDRF containment, after oracle masking.

    Kernel reads of user memory are replaced by data-oracle draws (the
    Q'-existence construction of Section 4.3); containment is then
    checked on the masked program's kernel observables.
    """
    from repro.vrm.oracle import mask_user_reads

    masked = mask_user_reads(program, choices=oracle_choices)
    result = _containment(
        masked,
        kernel_projection(masked),
        "Theorem 4 (weakened wDRF theorem)",
        observe_locs=observe_locs,
        jobs=jobs,
        **rm_overrides,
    )
    return result
