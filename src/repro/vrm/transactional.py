"""Condition 4 — Transactional-Page-Table (Sections 3 and 5.4).

A series of shared-page-table writes inside a critical section is
*transactional* if, under arbitrary reordering of the writes, any page
table walk sees (1) the pre-state walk result, (2) the post-state walk
result, or (3) a page fault.

The decision procedure exploits coherence: Armv8 never reorders two
writes to the *same* location, so a racing walker observes, per entry
location, some prefix of that location's write sequence — and arbitrary
cross-location reordering means those prefixes are independent.  The
checker therefore enumerates every combination of per-location prefixes,
builds the corresponding memory snapshot, walks each probe address, and
compares against the pre/post results.

This is exactly the argument of Section 5.4: ``clear_s2pt`` is a single
write (trivially transactional), and ``set_s2pt`` writes only freshly
allocated zeroed tables plus one previously-empty entry, so any partial
visibility faults.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.ir.expr import Imm
from repro.ir.instructions import Label, Mov, Nop, PTKind, Store
from repro.ir.program import MMUConfig, Program
from repro.memory.semantics import PTE_VALUE_MASK
from repro.mmu.pagetable import PTWrite
from repro.mmu.walker import WalkResult, walk_memory
from repro.vrm.conditions import ConditionResult, WDRFCondition

#: One page-table write: (entry location, new value).
Write = Tuple[int, int]


def _snapshot(
    initial: Mapping[int, int], visible: Sequence[Write]
) -> Dict[int, int]:
    snap = dict(initial)
    for loc, val in visible:
        snap[loc] = val
    return snap


def _per_location_prefixes(writes: Sequence[Write]) -> List[List[Sequence[Write]]]:
    """Group writes by location, preserving order; return, per location,
    the list of visible prefixes (including the empty one)."""
    by_loc: Dict[int, List[Write]] = {}
    for write in writes:
        by_loc.setdefault(write[0], []).append(write)
    prefix_choices: List[List[Sequence[Write]]] = []
    for loc in sorted(by_loc):
        seq = by_loc[loc]
        prefix_choices.append([seq[:k] for k in range(len(seq) + 1)])
    return prefix_choices


def enumerate_visibility_snapshots(
    initial: Mapping[int, int], writes: Sequence[Write]
) -> List[Dict[int, int]]:
    """Every memory snapshot a racing walker could observe."""
    choices = _per_location_prefixes(writes)
    snapshots: List[Dict[int, int]] = []
    for combo in itertools.product(*choices):
        visible: List[Write] = [w for prefix in combo for w in prefix]
        snapshots.append(_snapshot(initial, visible))
    return snapshots


def check_writes_transactional(
    initial: Mapping[int, int],
    writes: Sequence[Write],
    mmu: MMUConfig,
    probe_vpns: Iterable[int],
) -> ConditionResult:
    """Decide transactionality of one write sequence.

    ``probe_vpns`` are the virtual pages a concurrent user thread could
    walk; each must resolve to the pre-state result, the post-state
    result, or a fault under every visibility snapshot.
    """
    probes = list(probe_vpns)
    # Mask hardware A/D attribute bits at every level: entries observed
    # from a ``had``-enabled execution may carry them, and an unmasked
    # walk would misread `frame | AF` as a different frame (or a bogus
    # intermediate table pointer) and report a phantom violation.
    pre = {
        vpn: walk_memory(initial, mmu, vpn, PTE_VALUE_MASK)
        for vpn in probes
    }
    post_mem = _snapshot(initial, writes)
    post = {
        vpn: walk_memory(post_mem, mmu, vpn, PTE_VALUE_MASK)
        for vpn in probes
    }
    violations: List[str] = []
    snapshots = enumerate_visibility_snapshots(initial, writes)
    for snap in snapshots:
        for vpn in probes:
            result = walk_memory(snap, mmu, vpn, PTE_VALUE_MASK)
            if result.is_fault:
                continue
            if result == pre[vpn] or result == post[vpn]:
                continue
            violations.append(
                f"walk of vpn {vpn:#x} under a partial update reached page "
                f"{result.ppage:#x} (pre: {pre[vpn]}, post: {post[vpn]})"
            )
    unique = tuple(sorted(set(violations)))
    return ConditionResult(
        condition=WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
        holds=not unique,
        exhaustive=True,
        evidence=(
            f"checked {len(snapshots)} visibility snapshots x "
            f"{len(probes)} probe addresses for {len(writes)} writes",
        ),
        violations=unique,
    )


def extract_pt_write_sequences(
    program: Program, kinds: Tuple[PTKind, ...] = (PTKind.STAGE2, PTKind.SMMU)
) -> List[List[Write]]:
    """Maximal runs of shared-page-table stores in each kernel thread.

    Stores must have immediate addresses and values (the form every
    KCore page-table primitive compiles to); a non-PT memory access or
    control transfer ends the run.  ``Label``/``Nop``/``Mov`` do not.
    """
    sequences: List[List[Write]] = []
    for thread in program.kernel_threads():
        current: List[Write] = []
        for instr in thread.instrs:
            if isinstance(instr, Store) and instr.pt_kind in kinds:
                if not isinstance(instr.addr, Imm) or not isinstance(
                    instr.value, Imm
                ):
                    raise VerificationError(
                        "transactional checker requires immediate page-table "
                        "store operands"
                    )
                current.append((instr.addr.value, instr.value.value))
            elif isinstance(instr, (Label, Nop, Mov)):
                continue
            else:
                if current:
                    sequences.append(current)
                    current = []
        if current:
            sequences.append(current)
    return sequences


def check_program_transactional(
    program: Program,
    probe_vpns: Optional[Iterable[int]] = None,
) -> ConditionResult:
    """Check every shared-PT write sequence in *program*.

    ``probe_vpns`` defaults to the program MMU's whole (small) virtual
    page space when it is enumerable.
    """
    if program.mmu is None:
        return ConditionResult(
            condition=WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
            holds=True,
            exhaustive=True,
            evidence=("program has no MMU configuration / page tables",),
        )
    if probe_vpns is None:
        total_bits = program.mmu.levels * program.mmu.va_bits_per_level
        if total_bits > 12:
            raise VerificationError(
                "probe_vpns must be supplied for large virtual address spaces"
            )
        probe_vpns = range(1 << total_bits)
    probes = list(probe_vpns)
    sequences = extract_pt_write_sequences(program)
    evidence: List[str] = [f"{len(sequences)} page-table write sequences"]
    violations: List[str] = []
    for seq in sequences:
        result = check_writes_transactional(
            program.initial_memory, seq, program.mmu, probes
        )
        violations.extend(result.violations)
    return ConditionResult(
        condition=WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
        holds=not violations,
        exhaustive=True,
        evidence=tuple(evidence),
        violations=tuple(violations),
    )


def audit_operation_writes(
    op_writes: Sequence[PTWrite], operation: str
) -> ConditionResult:
    """Functional-model audit of one ``map``/``unmap`` operation's log.

    ``map`` operations must only ever write previously-empty entries
    (fresh-table discipline); ``unmap`` operations must be a single
    entry clear.  Together with zeroed table pools these imply
    transactionality (Section 5.4's argument).
    """
    violations: List[str] = []
    if operation == "unmap":
        if len(op_writes) != 1:
            violations.append(
                f"unmap performed {len(op_writes)} writes (must be exactly 1)"
            )
        elif op_writes[0].new != 0:
            violations.append("unmap wrote a non-zero value")
    elif operation == "map":
        for write in op_writes:
            if write.old != 0:
                violations.append(
                    f"map overwrote a non-empty entry at {write.loc:#x} "
                    f"({write.old:#x} -> {write.new:#x})"
                )
    else:
        raise VerificationError(f"unknown page-table operation {operation!r}")
    return ConditionResult(
        condition=WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
        holds=not violations,
        exhaustive=True,
        evidence=(f"audited {len(op_writes)} writes of one {operation}",),
        violations=tuple(violations),
    )
