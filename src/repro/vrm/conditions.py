"""The six wDRF conditions and the result/report types (Section 3).

Every checker in this package returns a :class:`ConditionResult`: whether
the condition *holds*, whether the check was *exhaustive* (exploration
budgets not exceeded — only an exhaustive pass counts as verified), and
human-readable evidence.  :class:`WDRFReport` aggregates one result per
condition, the shape the SeKVM verification pipeline and Table-1-style
reporting consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple


class WDRFCondition(enum.Enum):
    """The six conditions of Section 3 (plus the weakened sixth)."""

    DRF_KERNEL = "DRF-Kernel"
    NO_BARRIER_MISUSE = "No-Barrier-Misuse"
    WRITE_ONCE_KERNEL_MAPPING = "Write-Once-Kernel-Mapping"
    TRANSACTIONAL_PAGE_TABLE = "Transactional-Page-Table"
    SEQUENTIAL_TLB_INVALIDATION = "Sequential-TLB-Invalidation"
    MEMORY_ISOLATION = "Memory-Isolation"
    WEAK_MEMORY_ISOLATION = "Weak-Memory-Isolation"


class PassRequest(NamedTuple):
    """One exploration pass a condition checker needs.

    Checkers whose verdict requires exploring the program return this
    from their ``plan_*`` function instead of running the exploration
    themselves: the model configuration, the observation request, and a
    streaming :class:`~repro.memory.datatypes.ExplorationMonitor` (with a
    checker-specific ``finalize(result)`` producing the
    :class:`ConditionResult`).  The pass planner in
    :mod:`repro.vrm.verifier` fuses requests whose ``(program, cfg,
    observe_locs)`` coincide into a single exploration carrying all of
    their monitors.
    """

    cfg: Any                        # repro.memory.semantics.ModelConfig
    observe_locs: Tuple[int, ...]   # behavior projection (order matters)
    monitor: Any                    # ExplorationMonitor with .finalize()


@dataclass(frozen=True)
class ConditionResult:
    """Outcome of checking one wDRF condition on one program/system."""

    condition: WDRFCondition
    holds: bool
    exhaustive: bool
    evidence: Tuple[str, ...] = ()
    violations: Tuple[str, ...] = ()

    @property
    def verified(self) -> bool:
        """Holds *and* the check covered the whole (bounded) state space."""
        return self.holds and self.exhaustive

    def describe(self) -> str:
        """One-line verdict: condition, holds/violated, evidence count."""
        status = (
            "VERIFIED" if self.verified
            else ("holds (non-exhaustive)" if self.holds else "VIOLATED")
        )
        lines = [f"{self.condition.value}: {status}"]
        for item in self.evidence:
            lines.append(f"  evidence: {item}")
        for item in self.violations:
            lines.append(f"  violation: {item}")
        return "\n".join(lines)


@dataclass
class WDRFReport:
    """Aggregated verification report for a kernel program or system.

    ``weakened`` selects which flavor of the sixth condition the report
    requires (Section 4.3): the strong Memory-Isolation or the weak one
    SeKVM actually satisfies.
    """

    subject: str
    results: Dict[WDRFCondition, ConditionResult] = field(default_factory=dict)
    weakened: bool = True

    def add(self, result: ConditionResult) -> None:
        """Append a condition verdict to the report."""
        self.results[result.condition] = result

    def required_conditions(self) -> List[WDRFCondition]:
        """The condition names this spec is expected to satisfy."""
        isolation = (
            WDRFCondition.WEAK_MEMORY_ISOLATION
            if self.weakened
            else WDRFCondition.MEMORY_ISOLATION
        )
        return [
            WDRFCondition.DRF_KERNEL,
            WDRFCondition.NO_BARRIER_MISUSE,
            WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
            WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
            WDRFCondition.SEQUENTIAL_TLB_INVALIDATION,
            isolation,
        ]

    @property
    def all_hold(self) -> bool:
        """True when every recorded condition holds."""
        return all(
            c in self.results and self.results[c].holds
            for c in self.required_conditions()
        )

    @property
    def all_verified(self) -> bool:
        """True when the full report amounts to a verified primitive."""
        return all(
            c in self.results and self.results[c].verified
            for c in self.required_conditions()
        )

    def describe(self) -> str:
        """Multi-line human-readable report."""
        header = (
            f"wDRF verification of {self.subject!r} "
            f"({'weakened' if self.weakened else 'strong'} conditions)"
        )
        lines = [header, "=" * len(header)]
        for cond in self.required_conditions():
            result = self.results.get(cond)
            if result is None:
                lines.append(f"{cond.value}: NOT CHECKED")
            else:
                lines.append(result.describe())
        verdict = (
            "all wDRF conditions verified: SC proofs extend to Arm RM hardware"
            if self.all_verified
            else "wDRF conditions NOT established"
        )
        lines.append(verdict)
        return "\n".join(lines)
