"""Condition 3 — Write-Once-Kernel-Mapping (Sections 3 and 5.1).

If the kernel's own page table is shared, only *empty* entries may ever
be written: each kernel virtual address maps to at most one physical
address for the whole execution, which removes the kernel's own address
translation (and TLB) from the proof entirely (Section 4.1).

Checks:

* **IR-level** (:func:`check_write_once`): explore the program and audit
  every terminal message timeline — a second write to a kernel-page-table
  location, or a first write over a non-empty initial entry, violates the
  condition.  Because the timeline is append-only, terminal memories
  contain the complete write history.
* **Functional-model** (:func:`audit_write_log`): audit a
  :class:`~repro.mmu.pagetable.MultiLevelPageTable` write log, the form
  used for SeKVM's EL2 table (``set_el2_pt``/``remap_pfn``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import Imm
from repro.ir.instructions import PTKind, Store
from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.semantics import ModelConfig
from repro.mmu.pagetable import PTWrite
from repro.vrm.conditions import ConditionResult, WDRFCondition


def kernel_pt_locations(program: Program) -> Set[int]:
    """Statically known locations targeted by kernel-PT stores."""
    locs: Set[int] = set()
    for thread in program.threads:
        for instr in thread.instrs:
            if (
                isinstance(instr, Store)
                and instr.pt_kind is PTKind.KERNEL
                and isinstance(instr.addr, Imm)
            ):
                locs.add(instr.addr.value)
    return locs


def check_write_once(
    program: Program,
    kernel_pt_locs: Optional[Iterable[int]] = None,
    relaxed: bool = True,
    **overrides,
) -> ConditionResult:
    """Audit all executions: kernel PT entries are written at most once,
    and only when previously empty."""
    if kernel_pt_locs is None:
        locs = kernel_pt_locations(program)
    else:
        locs = set(kernel_pt_locs)
    if not locs:
        return ConditionResult(
            condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
            holds=True,
            exhaustive=True,
            evidence=("program never writes the kernel page table",),
        )
    cfg = ModelConfig(relaxed=relaxed, **overrides)
    result = cached_explore(program, cfg, observe_locs=[], keep_terminal_states=True)
    violations: List[str] = []
    for state in result.terminal_states:
        writes_per_loc: dict = {}
        for msg in state.memory:
            if msg.loc in locs:
                writes_per_loc.setdefault(msg.loc, []).append(msg)
        for loc, msgs in writes_per_loc.items():
            init = program.initial_value(loc)
            if init != 0:
                violations.append(
                    f"kernel PT entry {loc:#x} (initially {init:#x}) "
                    f"overwritten by CPU {msgs[0].tid}"
                )
            if len(msgs) > 1:
                violations.append(
                    f"kernel PT entry {loc:#x} written {len(msgs)} times "
                    f"(CPUs {sorted({m.tid for m in msgs})})"
                )
    unique = tuple(sorted(set(violations)))
    return ConditionResult(
        condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
        holds=not unique,
        exhaustive=result.complete,
        evidence=(
            f"audited {len(result.terminal_states)} terminal timelines over "
            f"{len(locs)} kernel PT entries",
        ),
        violations=unique,
    )


def audit_write_log(
    write_log: Sequence[PTWrite], subject: str = "EL2 page table"
) -> ConditionResult:
    """Audit a functional page table's write log for write-once-ness."""
    violations: List[str] = []
    written: Set[int] = set()
    for write in write_log:
        if write.old != 0:
            violations.append(
                f"{subject}: entry {write.loc:#x} overwritten "
                f"({write.old:#x} -> {write.new:#x})"
            )
        if write.loc in written:
            violations.append(
                f"{subject}: entry {write.loc:#x} written more than once"
            )
        written.add(write.loc)
    return ConditionResult(
        condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
        holds=not violations,
        exhaustive=True,
        evidence=(f"audited {len(write_log)} writes to the {subject}",),
        violations=tuple(violations),
    )
