"""Condition 3 — Write-Once-Kernel-Mapping (Sections 3 and 5.1).

If the kernel's own page table is shared, only *empty* entries may ever
be written: each kernel virtual address maps to at most one physical
address for the whole execution, which removes the kernel's own address
translation (and TLB) from the proof entirely (Section 4.1).

Checks:

* **IR-level** (:func:`check_write_once`): explore the program and audit
  every terminal message timeline — a second write to a kernel-page-table
  location, or a first write over a non-empty initial entry, violates the
  condition.  Because the timeline is append-only, terminal memories
  contain the complete write history.  The audit streams through a
  :class:`WriteOnceMonitor`: each terminal timeline is folded in as the
  explorer reaches it (no ``keep_terminal_states`` buffering) and the
  search stops at the first violating timeline.
* **Functional-model** (:func:`audit_write_log`): audit a
  :class:`~repro.mmu.pagetable.MultiLevelPageTable` write log, the form
  used for SeKVM's EL2 table (``set_el2_pt``/``remap_pfn``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.ir.expr import Imm
from repro.ir.instructions import PTKind, Store
from repro.ir.program import Program
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationMonitor, ExplorationResult
from repro.memory.semantics import ModelConfig
from repro.mmu.pagetable import PTWrite
from repro.vrm.conditions import ConditionResult, PassRequest, WDRFCondition


def kernel_pt_locations(program: Program) -> Set[int]:
    """Statically known locations targeted by kernel-PT stores."""
    locs: Set[int] = set()
    for thread in program.threads:
        for instr in thread.instrs:
            if (
                isinstance(instr, Store)
                and instr.pt_kind is PTKind.KERNEL
                and isinstance(instr.addr, Imm)
            ):
                locs.add(instr.addr.value)
    return locs


class WriteOnceMonitor(ExplorationMonitor):
    """Audits each terminal timeline; stops at the first violating one."""

    kind = "write_once"
    extra_state = ("violations",)

    def __init__(self, initial_values: Dict[int, int], locs: Iterable[int]):
        super().__init__()
        self.violations: Tuple[str, ...] = ()
        self._init = dict(initial_values)
        self._locs = frozenset(locs)

    def fingerprint(self) -> str:
        """Cache identity: same protected locations, same verdict."""
        return f"{self.kind}:{sorted(self._locs)!r}"

    def _audit(self, state: Any) -> None:
        writes_per_loc: Dict[int, List] = {}
        for msg in state.memory:
            if msg.loc in self._locs:
                writes_per_loc.setdefault(msg.loc, []).append(msg)
        found: List[str] = []
        for loc, msgs in writes_per_loc.items():
            init = self._init.get(loc, 0)
            if init != 0:
                found.append(
                    f"kernel PT entry {loc:#x} (initially {init:#x}) "
                    f"overwritten by CPU {msgs[0].tid}"
                )
            if len(msgs) > 1:
                found.append(
                    f"kernel PT entry {loc:#x} written {len(msgs)} times "
                    f"(CPUs {sorted({m.tid for m in msgs})})"
                )
        if found:
            self.violations = tuple(sorted(set(self.violations) | set(found)))
            self.stop()

    def on_terminal(self, state: Any) -> None:
        """Audit a completed timeline for rewritten kernel PT entries."""
        self._audit(state)

    def on_panic(self, reason: str, state: Any) -> None:
        """Audit a panicked timeline (its write history still counts)."""
        self._audit(state)  # panicked timelines still carry write history

    def finalize(self, result: ExplorationResult) -> ConditionResult:
        """Turn the audited write histories into the write-once verdict."""
        exhaustive = True if self.stopped else result.complete
        return ConditionResult(
            condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
            holds=not self.violations,
            exhaustive=exhaustive,
            evidence=(
                f"audited {self.terminals_seen + self.panics_seen} terminal "
                f"timelines over {len(self._locs)} kernel PT entries",
            ),
            violations=self.violations,
        )


def plan_write_once(
    program: Program,
    kernel_pt_locs: Optional[Iterable[int]] = None,
    relaxed: bool = True,
    **overrides,
) -> Union[ConditionResult, PassRequest]:
    """Plan the Write-Once check: a ready verdict or an exploration."""
    if kernel_pt_locs is None:
        locs = kernel_pt_locations(program)
    else:
        locs = set(kernel_pt_locs)
    if not locs:
        return ConditionResult(
            condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
            holds=True,
            exhaustive=True,
            evidence=("program never writes the kernel page table",),
        )
    cfg = ModelConfig(relaxed=relaxed, **overrides)
    monitor = WriteOnceMonitor(
        {loc: program.initial_value(loc) for loc in locs}, locs
    )
    return PassRequest(cfg=cfg, observe_locs=(), monitor=monitor)


def check_write_once(
    program: Program,
    kernel_pt_locs: Optional[Iterable[int]] = None,
    relaxed: bool = True,
    **overrides,
) -> ConditionResult:
    """Audit all executions: kernel PT entries are written at most once,
    and only when previously empty."""
    plan = plan_write_once(program, kernel_pt_locs, relaxed, **overrides)
    if isinstance(plan, ConditionResult):
        return plan
    result = cached_explore(
        program, plan.cfg, observe_locs=list(plan.observe_locs),
        monitors=[plan.monitor],
    )
    return plan.monitor.finalize(result)


def audit_write_log(
    write_log: Sequence[PTWrite], subject: str = "EL2 page table"
) -> ConditionResult:
    """Audit a functional page table's write log for write-once-ness."""
    violations: List[str] = []
    written: Set[int] = set()
    for write in write_log:
        if write.old != 0:
            violations.append(
                f"{subject}: entry {write.loc:#x} overwritten "
                f"({write.old:#x} -> {write.new:#x})"
            )
        if write.loc in written:
            violations.append(
                f"{subject}: entry {write.loc:#x} written more than once"
            )
        written.add(write.loc)
    return ConditionResult(
        condition=WDRFCondition.WRITE_ONCE_KERNEL_MAPPING,
        holds=not violations,
        exhaustive=True,
        evidence=(f"audited {len(write_log)} writes to the {subject}",),
        violations=tuple(violations),
    )
