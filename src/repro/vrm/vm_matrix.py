"""Verdict matrix: the page-table wDRF conditions under VM features.

The Transactional-Page-Table and Sequential-TLB-Invalidation conditions
were proved sufficient against the *base* virtual-memory model.  The
``REPRO_VM_FEATURES`` behavior families (break-before-make amalgamation,
partial walk caching, hardware A/D updates, two-stage translation) each
weaken the hardware beyond that model, so the natural question is which
condition verdicts survive which feature combination.

This module answers it mechanically: for every subset of
:data:`repro.memory.semantics.VM_FEATURES` it re-runs both structural
checkers on a fixed scenario suite (the ``vm_corpus`` update protocols)
and then *explores* each scenario on the relaxed model under that
feature set, recording whether the stale-translation postcondition is
observable.  A row where both conditions hold structurally while the
stale outcome is observable is a sufficiency gap — the condition's
discipline no longer protects against that feature family (the
break-before-make protocol, per-stage invalidation scope, or non-leaf
invalidations are additionally required).

The matrix is persisted as ``tests/corpus/vm_features_verdicts.json``
(regenerate with ``python -m repro.vrm.vm_matrix <path>``) and pinned by
the corpus regression suite, so any semantics change that silently moves
the sufficiency boundary fails a test instead of a reader.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import sys
from typing import Dict, FrozenSet, List, Tuple

from repro.litmus.catalog import (
    LitmusTest,
    vm_bbm,
    vm_stage2_tlbi,
    vm_walk_cache,
)
from repro.litmus.runner import _admits
from repro.memory.cache import cached_explore
from repro.memory.semantics import PROMISING_ARM, VM_FEATURES
from repro.vrm.tlb_sequential import check_sequential_tlb_invalidation
from repro.vrm.transactional import check_program_transactional

#: Matrix schema version (bump when the row shape changes).
SCHEMA = 1


def _scenarios() -> Tuple[Tuple[str, LitmusTest], ...]:
    """Scenario name -> litmus test (built lazily; programs are cheap)."""
    return (
        ("bbm-honest", vm_bbm(honest=True)),
        ("bbm-amalgamated", vm_bbm(honest=False)),
        ("walk-cache-leaf-tlbi", vm_walk_cache(leaf_only=True)),
        ("stage2-stage1-tlbi", vm_stage2_tlbi(stage=1)),
    )


def all_feature_combos() -> List[FrozenSet[str]]:
    """Every subset of the VM feature families, smallest first."""
    combos: List[FrozenSet[str]] = []
    for size in range(len(VM_FEATURES) + 1):
        for subset in itertools.combinations(VM_FEATURES, size):
            combos.append(frozenset(subset))
    return combos


def _combo_key(combo: FrozenSet[str]) -> str:
    return ",".join(sorted(combo))


def build_matrix(cache: bool = True) -> Dict[str, object]:
    """Compute the full verdict matrix (JSON-ready)."""
    rows: List[Dict[str, object]] = []
    for combo in all_feature_combos():
        cfg = dataclasses.replace(PROMISING_ARM, vm_features=combo)
        for name, test in _scenarios():
            transactional = check_program_transactional(test.program)
            sequential = check_sequential_tlb_invalidation(test.program)
            observe = sorted(loc for loc, _ in test.memory_condition)
            explored = cached_explore(
                test.program, cfg, observe_locs=observe, cache=cache
            )
            rows.append({
                "features": _combo_key(combo),
                "scenario": name,
                "transactional_holds": transactional.holds,
                "tlb_sequential_holds": sequential.holds,
                "stale_observed": _admits(test, explored),
                "complete": explored.complete,
            })
    return {
        "schema": SCHEMA,
        "conditions": [
            "Transactional-Page-Table",
            "Sequential-TLB-Invalidation",
        ],
        "scenarios": [name for name, _ in _scenarios()],
        "rows": rows,
    }


def render_matrix(matrix: Dict[str, object]) -> str:
    """Human-readable verdict table (one line per row)."""
    lines = ["features                        scenario                 "
             "TPT  STLBI  stale"]
    for row in matrix["rows"]:
        lines.append(
            f"{row['features'] or '(none)':<31} {row['scenario']:<24} "
            f"{'ok' if row['transactional_holds'] else 'VIOL':<4} "
            f"{'ok' if row['tlb_sequential_holds'] else 'VIOL':<6} "
            f"{'yes' if row['stale_observed'] else 'no'}"
        )
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    """Write the matrix to the path in ``argv`` (or stdout)."""
    matrix = build_matrix()
    text = json.dumps(matrix, indent=2, sort_keys=True) + "\n"
    if argv:
        with open(argv[0], "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(matrix['rows'])} verdict rows to {argv[0]}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
