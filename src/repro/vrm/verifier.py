"""The one-call wDRF verification pipeline.

:class:`WDRFSpec` bundles everything the six condition checkers need for
one kernel program (or one compiled KCore primitive pair):

* the instrumented program itself,
* the shared-data footprint (locations requiring ownership),
* seed ownership,
* the kernel-page-table locations,
* the probe addresses for the transactional check.

:func:`verify_wdrf` runs all six checks and returns a
:class:`~repro.vrm.conditions.WDRFReport`; :func:`verify_and_check_theorem`
additionally validates the end-to-end guarantee (RM ⊆ SC) — which must
follow when the report verifies, and is how the test suite exercises the
soundness of the whole framework.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.program import Program
from repro.parallel import parallel_map
from repro.vrm.barrier_misuse import check_no_barrier_misuse
from repro.vrm.conditions import ConditionResult, WDRFCondition, WDRFReport
from repro.vrm.drf_kernel import check_drf_kernel
from repro.vrm.isolation import check_memory_isolation
from repro.vrm.theorem import TheoremResult, check_theorem1, check_theorem4
from repro.vrm.tlb_sequential import check_sequential_tlb_invalidation
from repro.vrm.transactional import check_program_transactional
from repro.vrm.write_once import check_write_once


@dataclass(frozen=True)
class WDRFSpec:
    """Verification inputs for one kernel program."""

    program: Program
    shared_locs: Tuple[int, ...] = ()
    initial_ownership: Tuple[Tuple[int, int], ...] = ()
    kernel_pt_locs: Optional[Tuple[int, ...]] = None
    probe_vpns: Optional[Tuple[int, ...]] = None
    weakened: bool = True
    model_overrides: Tuple[Tuple[str, object], ...] = ()

    def overrides(self) -> Dict[str, object]:
        return dict(self.model_overrides)


#: The six checks in report order.  Each entry is a stable name the
#: pool worker dispatches on (check functions take differing arguments).
CONDITION_CHECKS: Tuple[str, ...] = (
    "drf_kernel",
    "no_barrier_misuse",
    "write_once",
    "transactional",
    "tlb_sequential",
    "memory_isolation",
)


def run_condition(spec: WDRFSpec, name: str) -> ConditionResult:
    """Run one named wDRF condition check for *spec*.

    Module-level (and dispatching on a plain string) so it pickles into
    pool workers; each condition explores its own instrumentation of the
    program, making the six checks independent jobs.
    """
    overrides = spec.overrides()
    if name == "drf_kernel":
        return check_drf_kernel(
            spec.program, spec.shared_locs, spec.initial_ownership, **overrides
        )
    if name == "no_barrier_misuse":
        return check_no_barrier_misuse(
            spec.program, spec.shared_locs, spec.initial_ownership, **overrides
        )
    if name == "write_once":
        return check_write_once(spec.program, spec.kernel_pt_locs, **overrides)
    if name == "transactional":
        return check_program_transactional(spec.program, spec.probe_vpns)
    if name == "tlb_sequential":
        return check_sequential_tlb_invalidation(spec.program)
    if name == "memory_isolation":
        return check_memory_isolation(
            spec.program, weak=spec.weakened, **overrides
        )
    raise ValueError(f"unknown wDRF condition check {name!r}")


def verify_wdrf(spec: WDRFSpec, jobs: Optional[int] = None) -> WDRFReport:
    """Run all six wDRF condition checks for *spec*.

    ``jobs`` fans the independent checks out over a process pool
    (``None``/``0`` = serial, negative = all CPUs); the report is merged
    in the fixed condition order either way.
    """
    report = WDRFReport(subject=spec.program.name, weakened=spec.weakened)
    worker = functools.partial(run_condition, spec)
    for result in parallel_map(worker, CONDITION_CHECKS, jobs=jobs):
        report.add(result)
    return report


def verify_and_check_theorem(
    spec: WDRFSpec, jobs: Optional[int] = None
) -> Tuple[WDRFReport, TheoremResult]:
    """Verify the conditions *and* the guarantee they are meant to imply.

    Returns the condition report and the Theorem 1/4 containment result;
    soundness of the framework means: if the report verifies, the
    containment holds.
    """
    report = verify_wdrf(spec, jobs=jobs)
    overrides = spec.overrides()
    if spec.weakened:
        theorem = check_theorem4(spec.program, jobs=jobs, **overrides)
    else:
        theorem = check_theorem1(spec.program, jobs=jobs, **overrides)
    return report, theorem
