"""The one-call wDRF verification pipeline.

:class:`WDRFSpec` bundles everything the six condition checkers need for
one kernel program (or one compiled KCore primitive pair):

* the instrumented program itself,
* the shared-data footprint (locations requiring ownership),
* seed ownership,
* the kernel-page-table locations,
* the probe addresses for the transactional check.

:func:`verify_wdrf` runs all six checks and returns a
:class:`~repro.vrm.conditions.WDRFReport`; :func:`verify_and_check_theorem`
additionally validates the end-to-end guarantee (RM ⊆ SC) — which must
follow when the report verifies, and is how the test suite exercises the
soundness of the whole framework.

Pass fusion
-----------

The exploration-backed checkers don't run their own explorations: each
exposes a ``plan_*`` function returning either a ready
:class:`~repro.vrm.conditions.ConditionResult` or a
:class:`~repro.vrm.conditions.PassRequest` (a model configuration plus a
streaming monitor).  :func:`plan_passes` groups requests whose
``(program, cfg, observe_locs)`` coincide — keyed by the same
:func:`~repro.memory.cache.exploration_key` the cache uses — and
:func:`run_condition_group` serves each group with a *single* exploration
carrying all of its monitors.  On the standard specs this fuses
DRF-Kernel with No-Barrier-Misuse (identical push/pull configuration)
and Write-Once with Memory-Isolation (identical relaxed base
configuration), cutting ``verify_wdrf`` to at most two explorations.
Because the DFS order is deterministic, every monitor observes the same
callback prefix fused or alone, so fused reports are bit-identical to
per-condition ones; ``REPRO_FUSE_CHECK=1`` verifies exactly that on
every call, mirroring the POR/memo cross-check pattern.  ``REPRO_FUSE=0``
(or the CLI's ``--no-fuse``) disables the whole streaming pipeline:
every check runs as its own *exhaustive* pass — the legacy layout,
with monitor early-exit off as well as fusion.
"""

from __future__ import annotations

import functools
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.ir.program import Program
from repro.memory.cache import (
    cached_explore,
    code_fingerprint,
    exploration_key,
    monitor_code_fingerprint,
    monitored_exploration_key,
    program_fingerprint,
)
from repro.memory.datatypes import EngineStats, ExplorationResult
from repro.memory.exploration import por_default_enabled
from repro.obs import metrics, tracer
from repro.parallel import parallel_map
from repro.vrm.barrier_misuse import plan_no_barrier_misuse
from repro.vrm.conditions import (
    ConditionResult,
    PassRequest,
    WDRFCondition,
    WDRFReport,
)
from repro.vrm.drf_kernel import plan_drf_kernel
from repro.vrm.isolation import plan_memory_isolation
from repro.vrm.theorem import TheoremResult, check_theorem1, check_theorem4
from repro.vrm.tlb_sequential import check_sequential_tlb_invalidation
from repro.vrm.transactional import check_program_transactional
from repro.vrm.write_once import plan_write_once


@dataclass(frozen=True)
class WDRFSpec:
    """Verification inputs for one kernel program."""

    program: Program
    shared_locs: Tuple[int, ...] = ()
    initial_ownership: Tuple[Tuple[int, int], ...] = ()
    kernel_pt_locs: Optional[Tuple[int, ...]] = None
    probe_vpns: Optional[Tuple[int, ...]] = None
    weakened: bool = True
    model_overrides: Tuple[Tuple[str, object], ...] = ()

    def overrides(self) -> Dict[str, object]:
        """The spec's model overrides as ModelConfig keyword arguments."""
        return dict(self.model_overrides)


#: The six checks in report order.  Each entry is a stable name the
#: pool worker dispatches on (check functions take differing arguments).
CONDITION_CHECKS: Tuple[str, ...] = (
    "drf_kernel",
    "no_barrier_misuse",
    "write_once",
    "transactional",
    "tlb_sequential",
    "memory_isolation",
)

#: Checks that never explore — they are pure structural/functional
#: decision procedures, so the pass planner gives each its own unit
#: without running it at plan time.
_NON_EXPLORING: Tuple[str, ...] = ("transactional", "tlb_sequential")


def fuse_default_enabled() -> bool:
    """Pass fusion is on unless ``REPRO_FUSE=0``."""
    return os.environ.get("REPRO_FUSE", "1") != "0"


def fuse_check_enabled() -> bool:
    """Cross-check mode: run fused and per-condition passes, compare."""
    return os.environ.get("REPRO_FUSE_CHECK", "0") == "1"


@dataclass
class VerifyStats:
    """Aggregated exploration counters of one or more ``verify_wdrf``
    runs (pass ``collect=`` to gather them; serial runs only)."""

    explorations: int = 0
    states_explored: int = 0
    fused_conditions: int = 0
    monitor_stops: int = 0
    stopped_early: int = 0
    bmc_passes: int = 0
    engine: EngineStats = field(default_factory=EngineStats)

    def record_pass(self, result: ExplorationResult) -> None:
        """Record one exploration pass's figures into the report."""
        self.explorations += 1
        self.states_explored += result.states_explored
        if result.stopped_early:
            self.stopped_early += 1
        if result.stats is not None:
            self.engine.add(result.stats)
            self.fused_conditions += result.stats.fused_conditions
            self.monitor_stops += result.stats.monitor_stops

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form of the report (used by bench output)."""
        return {
            "explorations": self.explorations,
            "states_explored": self.states_explored,
            "fused_conditions": self.fused_conditions,
            "monitor_stops": self.monitor_stops,
            "stopped_early": self.stopped_early,
            "bmc_passes": self.bmc_passes,
            "engine": self.engine.as_dict(),
        }


def _condition_plan(spec: WDRFSpec, name: str):
    """The plan for one named check: a ready result or a PassRequest."""
    overrides = spec.overrides()
    if name == "drf_kernel":
        return plan_drf_kernel(
            spec.program, spec.shared_locs, spec.initial_ownership, **overrides
        )
    if name == "no_barrier_misuse":
        return plan_no_barrier_misuse(
            spec.program, spec.shared_locs, spec.initial_ownership, **overrides
        )
    if name == "write_once":
        return plan_write_once(spec.program, spec.kernel_pt_locs, **overrides)
    if name == "transactional":
        return check_program_transactional(spec.program, spec.probe_vpns)
    if name == "tlb_sequential":
        return check_sequential_tlb_invalidation(spec.program)
    if name == "memory_isolation":
        return plan_memory_isolation(
            spec.program, weak=spec.weakened, **overrides
        )
    raise ValueError(f"unknown wDRF condition check {name!r}")


def run_condition(spec: WDRFSpec, name: str) -> ConditionResult:
    """Run one named wDRF condition check for *spec* (a pass of its own)."""
    results = run_condition_group(spec, (name,))
    return results[0]


def run_condition_group(
    spec: WDRFSpec,
    names: Sequence[str],
    collect: Optional[VerifyStats] = None,
    monitor_cut: bool = True,
) -> List[ConditionResult]:
    """Run a group of wDRF checks, sharing one exploration pass.

    Module-level (dispatching on plain strings) so it pickles into pool
    workers: the plans — and their monitors — are rebuilt in the worker,
    only the names and the spec cross the process boundary.  All
    exploring checks in *names* must share an identical ``(cfg,
    observe_locs)`` (the planner guarantees this); their monitors ride a
    single :func:`~repro.memory.cache.cached_explore` call.
    ``monitor_cut=False`` runs the pass exhaustively (the legacy
    per-condition behavior) instead of cutting the search once every
    monitor has its verdict; verdicts are bit-identical either way.
    """
    names = tuple(names)
    if tracer.SINK is not None:
        with tracer.SINK.span(
            "wdrf_pass", subject=spec.program.name, conditions=list(names)
        ):
            return _run_condition_group(spec, names, collect, monitor_cut)
    return _run_condition_group(spec, names, collect, monitor_cut)


def _run_condition_group(
    spec: WDRFSpec,
    names: Tuple[str, ...],
    collect: Optional[VerifyStats],
    monitor_cut: bool,
) -> List[ConditionResult]:
    """The :func:`run_condition_group` body (span bracketing lives in
    the wrapper so the traced and untraced paths share this code)."""
    plans = [(name, _condition_plan(spec, name)) for name in names]
    results: Dict[str, ConditionResult] = {
        name: plan for name, plan in plans
        if isinstance(plan, ConditionResult)
    }
    requests = [
        (name, plan) for name, plan in plans if isinstance(plan, PassRequest)
    ]
    if requests:
        base = requests[0][1]
        for name, plan in requests[1:]:
            if plan.cfg != base.cfg or plan.observe_locs != base.observe_locs:
                raise ValueError(
                    f"cannot fuse {name!r} with {requests[0][0]!r}: "
                    f"exploration configurations differ"
                )
        from repro.smt.router import backend_check_enabled

        monitors = [plan.monitor for _, plan in requests]
        bmc_results = _maybe_bmc(spec, base, requests, monitors, collect)
        if bmc_results is not None and not backend_check_enabled():
            results.update(bmc_results)
            return [results[name] for name in names]
        exploration = cached_explore(
            spec.program,
            base.cfg,
            observe_locs=list(base.observe_locs),
            monitors=monitors,
            monitor_cut=monitor_cut,
        )
        if collect is not None:
            collect.record_pass(exploration)
        if metrics.ENABLED:
            reg = metrics.REGISTRY
            reg.counter("verify.passes").inc()
            reg.counter("verify.fused_conditions").inc(len(requests) - 1)
            reg.histogram("verify.pass_states").observe(
                exploration.states_explored
            )
        for name, plan in requests:
            results[name] = plan.monitor.finalize(exploration)
        if bmc_results is not None and backend_check_enabled():
            _compare_backends(spec, results, bmc_results, names)
    return [results[name] for name in names]


def _maybe_bmc(
    spec: WDRFSpec,
    base: PassRequest,
    requests: List[Tuple[str, PassRequest]],
    monitors: List[object],
    collect: Optional[VerifyStats],
) -> Optional[Dict[str, ConditionResult]]:
    """BMC verdicts for one fused group, or None to use exploration.

    Consults the backend knob (``REPRO_BACKEND``) and, in ``auto`` mode,
    the cost-model router.  With ``REPRO_BACKEND_CHECK=1`` the verdicts
    are computed whenever the group is encodable — regardless of routing
    — so the caller can cross-check them against exploration.
    """
    # Imported lazily: repro.smt.backend consumes repro.vrm.conditions,
    # so a module-level import here would be circular.
    from repro.smt.backend import bmc_condition_results, bmc_supported
    from repro.smt.encode import Unsupported
    from repro.smt.router import backend_check_enabled, backend_default, route

    backend = backend_default()
    check = backend_check_enabled()
    if backend == "explore" and not check:
        return None
    if bmc_supported(spec.program, base.cfg, monitors) is not None:
        return None
    if backend == "auto" and not check:
        decision = route(
            spec.program, base.cfg, base.observe_locs, monitors
        )
        if decision.backend != "bmc":
            return None
    try:
        verdicts = bmc_condition_results(
            spec.program, base.cfg, requests
        )
    except Unsupported:
        return None  # domain blow-up discovered during encoding
    if collect is not None:
        collect.bmc_passes += 1
    if metrics.ENABLED:
        metrics.REGISTRY.counter("verify.bmc_passes").inc()
    return verdicts


def _compare_backends(
    spec: WDRFSpec,
    explored: Dict[str, ConditionResult],
    bmc: Dict[str, ConditionResult],
    names: Tuple[str, ...],
) -> None:
    """``REPRO_BACKEND_CHECK=1``: the two backends must agree.

    Verdicts (``holds``) must match exactly.  ``exhaustive`` is compared
    as an implication: the solver may legitimately be exhaustive where a
    budget-cut exploration is not, but never the reverse — unless a
    ``REPRO_BMC_DEPTH`` bound explains the solver's modesty.  Evidence
    strings are backend-flavored and intentionally not compared.
    """
    from repro.smt.backend import bmc_depth

    diffs: List[str] = []
    for name in names:
        if name not in bmc or name not in explored:
            continue
        e, b = explored[name], bmc[name]
        if e.holds != b.holds:
            diffs.append(
                f"{name}: exploration holds={e.holds}, BMC holds={b.holds} "
                f"(BMC violations: {b.violations!r})"
            )
        elif e.exhaustive and not b.exhaustive and bmc_depth() is None:
            diffs.append(
                f"{name}: exploration exhaustive but full-depth BMC is not"
            )
    if diffs:
        raise VerificationError(
            f"backend cross-check failed for {spec.program.name!r}: "
            + "; ".join(diffs)
        )


def plan_passes(
    spec: WDRFSpec,
    fuse: Optional[bool] = None,
    por: Optional[bool] = None,
) -> List[Tuple[str, ...]]:
    """Group the six checks into exploration-sharing units of work.

    Checks whose plans request explorations with the same cache
    fingerprint (per :func:`~repro.memory.cache.exploration_key`, the
    same identity the memo uses) land in one unit; ready verdicts and
    non-exploring checks stay singleton units.  With ``fuse=False``
    every check is its own unit (the legacy per-condition layout;
    :func:`_verify` additionally runs those units exhaustively).
    """
    if fuse is None:
        fuse = fuse_default_enabled()
    if por is None:
        por = por_default_enabled()
    units: List[Tuple[str, ...]] = []
    groups: Dict[str, int] = {}
    for name in CONDITION_CHECKS:
        if not fuse or name in _NON_EXPLORING:
            units.append((name,))
            continue
        plan = _condition_plan(spec, name)
        if isinstance(plan, ConditionResult):
            units.append((name,))
            continue
        key = exploration_key(
            spec.program, plan.cfg, tuple(plan.observe_locs), False, por
        )
        if key in groups:
            units[groups[key]] = units[groups[key]] + (name,)
        else:
            groups[key] = len(units)
            units.append((name,))
    return units


def pass_fingerprints(
    spec: WDRFSpec,
    fuse: Optional[bool] = None,
    por: Optional[bool] = None,
) -> List[str]:
    """Content keys of the units :func:`plan_passes` would run.

    One digest per unit, in unit order.  Exploring units reuse the exact
    :func:`~repro.memory.cache.monitored_exploration_key` their pass
    would be cached under, so two specs share a fingerprint list iff
    their verifications would replay the same cache entries.  Ready and
    non-exploring units (which never touch the exploration cache) get a
    digest over the engine fingerprints plus every spec input their
    checkers read.  The serving layer hashes this list into one job
    content address for wDRF requests.
    """
    if por is None:
        por = por_default_enabled()
    units = plan_passes(spec, fuse=fuse, por=por)
    keys: List[str] = []
    for names in units:
        plans = [_condition_plan(spec, name) for name in names]
        if plans and all(isinstance(p, PassRequest) for p in plans):
            base = plans[0]
            keys.append(
                monitored_exploration_key(
                    spec.program,
                    base.cfg,
                    tuple(base.observe_locs),
                    por,
                    [p.monitor for p in plans],
                )
            )
            continue
        text = "\x00".join(
            (
                "wdrf-unit",
                code_fingerprint(),
                monitor_code_fingerprint(),
                program_fingerprint(spec.program),
                repr(spec.shared_locs),
                repr(spec.initial_ownership),
                repr(spec.kernel_pt_locs),
                repr(spec.probe_vpns),
                repr(bool(spec.weakened)),
                repr(spec.model_overrides),
                ",".join(names),
            )
        )
        keys.append(hashlib.sha256(text.encode()).hexdigest())
    return keys


def _diff_reports(fused: WDRFReport, unfused: WDRFReport) -> List[str]:
    diffs: List[str] = []
    if fused.subject != unfused.subject:
        diffs.append(f"subject: {fused.subject!r} != {unfused.subject!r}")
    if fused.weakened != unfused.weakened:
        diffs.append(f"weakened: {fused.weakened} != {unfused.weakened}")
    conditions = set(fused.results) | set(unfused.results)
    for cond in sorted(conditions, key=lambda c: c.value):
        a = fused.results.get(cond)
        b = unfused.results.get(cond)
        if a != b:
            diffs.append(f"{cond.value}: fused {a!r} != per-condition {b!r}")
    return diffs


def _verify(
    spec: WDRFSpec,
    jobs: Optional[int],
    fuse: bool,
    collect: Optional[VerifyStats],
) -> WDRFReport:
    report = WDRFReport(subject=spec.program.name, weakened=spec.weakened)
    units = plan_passes(spec, fuse=fuse)
    # The unfused layout *is* the legacy pipeline: per-condition passes
    # that exhaust the state space.  Early exit (like fusion itself) is
    # part of the streaming pipeline being measured against it, so it is
    # disabled together with fusion — a stopped monitor's counters
    # freeze at its stop point either way, so reports stay bit-identical.
    cut = fuse
    if collect is not None:
        # Stats collection needs the exploration results, which do not
        # cross the pool boundary: run serially.
        for names in units:
            for result in run_condition_group(
                spec, names, collect, monitor_cut=cut
            ):
                report.add(result)
        return report
    worker = functools.partial(run_condition_group, spec, monitor_cut=cut)
    for results in parallel_map(worker, units, jobs=jobs):
        for result in results:
            report.add(result)
    return report


def verify_wdrf(
    spec: WDRFSpec,
    jobs: Optional[int] = None,
    fuse: Optional[bool] = None,
    collect: Optional[VerifyStats] = None,
) -> WDRFReport:
    """Run all six wDRF condition checks for *spec*.

    ``jobs`` fans the independent units of work out over a process pool
    (``None``/``0`` = serial, negative = all CPUs); the report is merged
    in the fixed condition order either way.  ``fuse`` overrides the
    pass-fusion default (``REPRO_FUSE``); with ``REPRO_FUSE_CHECK=1``
    and no explicit ``fuse``, the fused and per-condition reports are
    both computed and any difference raises
    :class:`~repro.errors.VerificationError`.

    Orthogonally, ``REPRO_SHARD``/``--shard-jobs`` shards each
    *individual* exploration pass over work-stealing workers
    (:mod:`repro.parallel.shard`).  Fused monitor passes stay exact
    under sharding: the shard orchestrator replays the merged state
    graph in serial DFS order through the real condition monitors, so
    reports — including early-stop evidence — are bit-identical.  The
    two axes compose safely with ``jobs``: pool children refuse to
    shard (see :func:`repro.parallel.pool.plan_jobs`), so the budget is
    never multiplied.
    """
    if fuse is None and fuse_check_enabled():
        fused = _verify(spec, jobs, True, collect)
        unfused = _verify(spec, jobs, False, None)
        diffs = _diff_reports(fused, unfused)
        if diffs:
            raise VerificationError(
                f"fusion cross-check failed for {spec.program.name!r}: "
                + "; ".join(diffs)
            )
        return fused
    if fuse is None:
        fuse = fuse_default_enabled()
    return _verify(spec, jobs, fuse, collect)


def verify_and_check_theorem(
    spec: WDRFSpec, jobs: Optional[int] = None
) -> Tuple[WDRFReport, TheoremResult]:
    """Verify the conditions *and* the guarantee they are meant to imply.

    Returns the condition report and the Theorem 1/4 containment result;
    soundness of the framework means: if the report verifies, the
    containment holds.
    """
    report = verify_wdrf(spec, jobs=jobs)
    overrides = spec.overrides()
    if spec.weakened:
        theorem = check_theorem4(spec.program, jobs=jobs, **overrides)
    else:
        theorem = check_theorem1(spec.program, jobs=jobs, **overrides)
    return report, theorem
