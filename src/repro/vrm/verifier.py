"""The one-call wDRF verification pipeline.

:class:`WDRFSpec` bundles everything the six condition checkers need for
one kernel program (or one compiled KCore primitive pair):

* the instrumented program itself,
* the shared-data footprint (locations requiring ownership),
* seed ownership,
* the kernel-page-table locations,
* the probe addresses for the transactional check.

:func:`verify_wdrf` runs all six checks and returns a
:class:`~repro.vrm.conditions.WDRFReport`; :func:`verify_and_check_theorem`
additionally validates the end-to-end guarantee (RM ⊆ SC) — which must
follow when the report verifies, and is how the test suite exercises the
soundness of the whole framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.program import Program
from repro.vrm.barrier_misuse import check_no_barrier_misuse
from repro.vrm.conditions import ConditionResult, WDRFCondition, WDRFReport
from repro.vrm.drf_kernel import check_drf_kernel
from repro.vrm.isolation import check_memory_isolation
from repro.vrm.theorem import TheoremResult, check_theorem1, check_theorem4
from repro.vrm.tlb_sequential import check_sequential_tlb_invalidation
from repro.vrm.transactional import check_program_transactional
from repro.vrm.write_once import check_write_once


@dataclass(frozen=True)
class WDRFSpec:
    """Verification inputs for one kernel program."""

    program: Program
    shared_locs: Tuple[int, ...] = ()
    initial_ownership: Tuple[Tuple[int, int], ...] = ()
    kernel_pt_locs: Optional[Tuple[int, ...]] = None
    probe_vpns: Optional[Tuple[int, ...]] = None
    weakened: bool = True
    model_overrides: Tuple[Tuple[str, object], ...] = ()

    def overrides(self) -> Dict[str, object]:
        return dict(self.model_overrides)


def verify_wdrf(spec: WDRFSpec) -> WDRFReport:
    """Run all six wDRF condition checks for *spec*."""
    report = WDRFReport(subject=spec.program.name, weakened=spec.weakened)
    overrides = spec.overrides()
    report.add(
        check_drf_kernel(
            spec.program,
            spec.shared_locs,
            spec.initial_ownership,
            **overrides,
        )
    )
    report.add(
        check_no_barrier_misuse(
            spec.program,
            spec.shared_locs,
            spec.initial_ownership,
            **overrides,
        )
    )
    report.add(
        check_write_once(spec.program, spec.kernel_pt_locs, **overrides)
    )
    report.add(
        check_program_transactional(spec.program, spec.probe_vpns)
    )
    report.add(check_sequential_tlb_invalidation(spec.program))
    report.add(
        check_memory_isolation(spec.program, weak=spec.weakened, **overrides)
    )
    return report


def verify_and_check_theorem(
    spec: WDRFSpec,
) -> Tuple[WDRFReport, TheoremResult]:
    """Verify the conditions *and* the guarantee they are meant to imply.

    Returns the condition report and the Theorem 1/4 containment result;
    soundness of the framework means: if the report verifies, the
    containment holds.
    """
    report = verify_wdrf(spec)
    overrides = spec.overrides()
    if spec.weakened:
        theorem = check_theorem4(spec.program, **overrides)
    else:
        theorem = check_theorem1(spec.program, **overrides)
    return report, theorem
