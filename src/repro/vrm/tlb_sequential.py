"""Condition 5 — Sequential-TLB-Invalidation (Sections 3 and 5.5).

A page-table *unmap or remap* (a store over a possibly non-empty entry)
must be followed by a TLB invalidation, with a barrier between the store
and the invalidation.  Stores into previously-empty entries need no
invalidation — there is nothing stale to cache — which is why
``set_s2pt`` (which refuses to overwrite) needs none and ``clear_s2pt``
ends with ``barrier; tlbi``.

The check is structural per kernel thread: for every page-table store
that may overwrite a non-empty entry (decided against the program's
initial memory plus earlier stores in the same thread), scan forward for
a full/store barrier followed by a covering ``TLBInvalidate`` before the
thread ends or the next page-table store to the same table kind begins a
new operation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.expr import Imm
from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    PTKind,
    Store,
    TLBInvalidate,
)
from repro.ir.program import Program, Thread
from repro.vrm.conditions import ConditionResult, WDRFCondition


def _may_overwrite(
    program: Program, seen_values: Dict[int, int], instr: Store
) -> bool:
    """Could this PT store overwrite a non-empty entry?

    Conservative: unknown (non-immediate) addresses count as overwrites.
    """
    if not isinstance(instr.addr, Imm):
        return True
    loc = instr.addr.value
    current = seen_values.get(loc, program.initial_value(loc))
    return current != 0


def _tlbi_follows_with_barrier(thread: Thread, idx: int) -> bool:
    """Is instruction *idx*'s store followed by ``barrier ... tlbi``?"""
    barrier_seen = False
    for instr in thread.instrs[idx + 1:]:
        if isinstance(instr, Barrier) and instr.kind in (
            BarrierKind.FULL,
            BarrierKind.ST,
        ):
            barrier_seen = True
        elif isinstance(instr, TLBInvalidate):
            return barrier_seen
    return False


def check_sequential_tlb_invalidation(
    program: Program,
    pt_kinds: Tuple[PTKind, ...] = (PTKind.STAGE2, PTKind.SMMU, PTKind.KERNEL),
) -> ConditionResult:
    """Check condition 5 over every kernel thread of *program*."""
    violations: List[str] = []
    checked = 0
    for thread in program.kernel_threads():
        seen_values: Dict[int, int] = {}
        for idx, instr in enumerate(thread.instrs):
            if not isinstance(instr, Store) or instr.pt_kind not in pt_kinds:
                continue
            checked += 1
            if _may_overwrite(program, seen_values, instr):
                if not _tlbi_follows_with_barrier(thread, idx):
                    loc = (
                        f"{instr.addr.value:#x}"
                        if isinstance(instr.addr, Imm)
                        else "<dynamic>"
                    )
                    violations.append(
                        f"thread {thread.tid} pc {idx}: unmap/remap of PT "
                        f"entry {loc} not followed by barrier + TLBI"
                    )
            if isinstance(instr.addr, Imm) and isinstance(instr.value, Imm):
                seen_values[instr.addr.value] = instr.value.value
    return ConditionResult(
        condition=WDRFCondition.SEQUENTIAL_TLB_INVALIDATION,
        holds=not violations,
        exhaustive=True,
        evidence=(f"checked {checked} page-table stores",),
        violations=tuple(violations),
    )
