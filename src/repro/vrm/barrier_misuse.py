"""Condition 2 — No-Barrier-Misuse (Sections 3 and 4.1).

Barriers must guard critical sections and synchronization methods: the
paper's operational reading is that every *pull* promise is fulfilled by
a load barrier and every *push* promise by a store barrier, so a
critical section's body can never be reordered with the synchronization
that protects it.

Two complementary checks implement this:

* **Dynamic** (:func:`check_no_barrier_misuse_dynamic`): explore the
  instrumented program on the push/pull Promising model; the executor
  panics on any ``Pull`` whose preceding ``Push`` is not covered by the
  pulling CPU's barrier frontier — exactly "the pull promise was not
  fulfilled by a barrier".  This catches missing acquire loads *and*
  missing release stores (a promoted sync write lands before the push
  point, so the puller's frontier cannot cover it).
* **Static** (:func:`check_no_barrier_misuse_static`): a structural scan
  that each ``Pull`` is dominated by an acquire (or full barrier) since
  the last synchronization read and each ``Push`` is post-dominated by a
  release (or full barrier) before the next synchronization write —
  Figure 7's shape.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    CompareAndSwap,
    FetchAndInc,
    Load,
    LoadExclusive,
    MemSpace,
    Pull,
    Push,
    Store,
    StoreExclusive,
)
from repro.ir.program import Program, Thread
from repro.memory.cache import cached_explore
from repro.memory.pushpull import pushpull_config
from repro.vrm.conditions import ConditionResult, WDRFCondition


def _static_thread_violations(thread: Thread) -> List[str]:
    """Scan one thread for pulls/pushes not guarded by barriers.

    The scan is linear over the instruction stream (loops appear as the
    same instructions; a barrier inside the loop body guards re-entry).
    """
    violations: List[str] = []
    # A pull with no preceding synchronization read orders against
    # nothing (the location's last push, if any, predates this thread's
    # execution) — matching the dynamic rule's push_ts=0 base case.
    covered_by_acquire = True
    for idx, instr in enumerate(thread.instrs):
        if isinstance(instr, Barrier) and instr.kind in (
            BarrierKind.FULL,
            BarrierKind.LD,
        ):
            covered_by_acquire = True
        elif isinstance(
            instr, (Load, LoadExclusive, FetchAndInc, CompareAndSwap)
        ) and instr.space is MemSpace.SYNC:
            covered_by_acquire = bool(getattr(instr, "acquire", False))
        elif isinstance(instr, Pull):
            if not covered_by_acquire:
                violations.append(
                    f"thread {thread.tid} pc {idx}: pull not preceded by an "
                    f"acquire/load barrier since the last synchronization read"
                )
        elif isinstance(instr, Push):
            # Look forward for the synchronization write that publishes
            # the push; it must be a release store or preceded by a
            # barrier ordering prior writes.
            ok = False
            for later in thread.instrs[idx + 1:]:
                if isinstance(later, Barrier) and later.kind in (
                    BarrierKind.FULL,
                    BarrierKind.ST,
                ):
                    ok = True
                    break
                if isinstance(
                    later, (Store, StoreExclusive, FetchAndInc, CompareAndSwap)
                ) and getattr(later, "space", None) is MemSpace.SYNC:
                    ok = bool(getattr(later, "release", False))
                    break
            else:
                # No publishing write at all: nothing to reorder against.
                ok = True
            if not ok:
                violations.append(
                    f"thread {thread.tid} pc {idx}: push not followed by a "
                    f"release/store barrier before its synchronization write"
                )
    return violations


def check_no_barrier_misuse_static(program: Program) -> ConditionResult:
    """Structural barrier-placement check over all kernel threads."""
    violations: List[str] = []
    for thread in program.kernel_threads():
        violations.extend(_static_thread_violations(thread))
    return ConditionResult(
        condition=WDRFCondition.NO_BARRIER_MISUSE,
        holds=not violations,
        exhaustive=True,
        evidence=(
            f"scanned {len(program.kernel_threads())} kernel threads for "
            f"pull/push barrier guards",
        ),
        violations=tuple(violations),
    )


def check_no_barrier_misuse_dynamic(
    program: Program,
    shared_locs: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ConditionResult:
    """Exploration-based check: no pull may outrun its barrier."""
    cfg = pushpull_config(
        relaxed=True,
        owned_access_required=frozenset(shared_locs),
        initial_ownership=tuple(initial_ownership),
        **overrides,
    )
    result = cached_explore(program, cfg, observe_locs=[])
    misuse = tuple(
        reason for reason in result.panics if "No-Barrier-Misuse" in reason
    )
    return ConditionResult(
        condition=WDRFCondition.NO_BARRIER_MISUSE,
        holds=not misuse,
        exhaustive=result.complete,
        evidence=(
            f"explored {result.states_explored} states; pull barrier-"
            f"fulfillment enforced dynamically",
        ),
        violations=misuse,
    )


def check_no_barrier_misuse(
    program: Program,
    shared_locs: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ConditionResult:
    """Combined static + dynamic No-Barrier-Misuse check."""
    static = check_no_barrier_misuse_static(program)
    dynamic = check_no_barrier_misuse_dynamic(
        program, shared_locs, initial_ownership, **overrides
    )
    return ConditionResult(
        condition=WDRFCondition.NO_BARRIER_MISUSE,
        holds=static.holds and dynamic.holds,
        exhaustive=static.exhaustive and dynamic.exhaustive,
        evidence=static.evidence + dynamic.evidence,
        violations=static.violations + dynamic.violations,
    )
