"""Condition 2 — No-Barrier-Misuse (Sections 3 and 4.1).

Barriers must guard critical sections and synchronization methods: the
paper's operational reading is that every *pull* promise is fulfilled by
a load barrier and every *push* promise by a store barrier, so a
critical section's body can never be reordered with the synchronization
that protects it.

Two complementary checks implement this:

* **Dynamic** (:func:`check_no_barrier_misuse_dynamic`): explore the
  instrumented program on the push/pull Promising model; the executor
  panics on any ``Pull`` whose preceding ``Push`` is not covered by the
  pulling CPU's barrier frontier — exactly "the pull promise was not
  fulfilled by a barrier".  This catches missing acquire loads *and*
  missing release stores (a promoted sync write lands before the push
  point, so the puller's frontier cannot cover it).
* **Static** (:func:`check_no_barrier_misuse_static`): a structural scan
  that each ``Pull`` is dominated by an acquire (or full barrier) since
  the last synchronization read and each ``Push`` is post-dominated by a
  release (or full barrier) before the next synchronization write —
  Figure 7's shape.

The dynamic half streams: :class:`BarrierMisuseMonitor` stops the search
at the first barrier-fulfillment panic, and :func:`plan_no_barrier_misuse`
exposes the exploration request (with the static verdict folded in at
plan time) so the pass planner can fuse it with the DRF-Kernel check,
which runs on the identical push/pull configuration.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple, Union

from repro.ir.instructions import (
    Barrier,
    BarrierKind,
    CompareAndSwap,
    FetchAndInc,
    Load,
    LoadExclusive,
    MemSpace,
    Pull,
    Push,
    Store,
    StoreExclusive,
)
from repro.ir.program import Program, Thread
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationMonitor, ExplorationResult
from repro.memory.pushpull import pushpull_config
from repro.vrm.conditions import ConditionResult, PassRequest, WDRFCondition


def _static_thread_violations(thread: Thread) -> List[str]:
    """Scan one thread for pulls/pushes not guarded by barriers.

    The scan is linear over the instruction stream (loops appear as the
    same instructions; a barrier inside the loop body guards re-entry).
    """
    violations: List[str] = []
    # A pull with no preceding synchronization read orders against
    # nothing (the location's last push, if any, predates this thread's
    # execution) — matching the dynamic rule's push_ts=0 base case.
    covered_by_acquire = True
    for idx, instr in enumerate(thread.instrs):
        if isinstance(instr, Barrier) and instr.kind in (
            BarrierKind.FULL,
            BarrierKind.LD,
        ):
            covered_by_acquire = True
        elif isinstance(
            instr, (Load, LoadExclusive, FetchAndInc, CompareAndSwap)
        ) and instr.space is MemSpace.SYNC:
            covered_by_acquire = bool(getattr(instr, "acquire", False))
        elif isinstance(instr, Pull):
            if not covered_by_acquire:
                violations.append(
                    f"thread {thread.tid} pc {idx}: pull not preceded by an "
                    f"acquire/load barrier since the last synchronization read"
                )
        elif isinstance(instr, Push):
            # Look forward for the synchronization write that publishes
            # the push; it must be a release store or preceded by a
            # barrier ordering prior writes.
            ok = False
            for later in thread.instrs[idx + 1:]:
                if isinstance(later, Barrier) and later.kind in (
                    BarrierKind.FULL,
                    BarrierKind.ST,
                ):
                    ok = True
                    break
                if isinstance(
                    later, (Store, StoreExclusive, FetchAndInc, CompareAndSwap)
                ) and getattr(later, "space", None) is MemSpace.SYNC:
                    ok = bool(getattr(later, "release", False))
                    break
            else:
                # No publishing write at all: nothing to reorder against.
                ok = True
            if not ok:
                violations.append(
                    f"thread {thread.tid} pc {idx}: push not followed by a "
                    f"release/store barrier before its synchronization write"
                )
    return violations


def check_no_barrier_misuse_static(program: Program) -> ConditionResult:
    """Structural barrier-placement check over all kernel threads."""
    violations: List[str] = []
    for thread in program.kernel_threads():
        violations.extend(_static_thread_violations(thread))
    return ConditionResult(
        condition=WDRFCondition.NO_BARRIER_MISUSE,
        holds=not violations,
        exhaustive=True,
        evidence=(
            f"scanned {len(program.kernel_threads())} kernel threads for "
            f"pull/push barrier guards",
        ),
        violations=tuple(violations),
    )


class BarrierMisuseMonitor(ExplorationMonitor):
    """Streams panics; stops at the first barrier-fulfillment violation.

    The optional *static* result (the structural scan, computed at plan
    time) is combined into the final verdict; it is derived from the
    program — already part of the exploration's cache key — so it is not
    monitor state and is recomputed, never cached.
    """

    kind = "barrier_misuse"
    extra_state = ("violations",)

    def __init__(self, static: Optional[ConditionResult] = None) -> None:
        super().__init__()
        self.violations: Tuple[str, ...] = ()
        self._static = static

    def on_panic(self, reason: str, state: Any) -> None:
        """Record a barrier-misuse panic and stop the exploration."""
        if "No-Barrier-Misuse" in reason:
            self.violations = self.violations + (reason,)
            self.stop()

    def finalize(self, result: ExplorationResult) -> ConditionResult:
        """Fold the dynamic evidence into the static plan's verdict."""
        states = self.states_seen if self.stopped else result.states_explored
        exhaustive = True if self.stopped else result.complete
        dynamic = ConditionResult(
            condition=WDRFCondition.NO_BARRIER_MISUSE,
            holds=not self.violations,
            exhaustive=exhaustive,
            evidence=(
                f"explored {states} states; pull barrier-"
                f"fulfillment enforced dynamically",
            ),
            violations=self.violations,
        )
        static = self._static
        if static is None:
            return dynamic
        return ConditionResult(
            condition=WDRFCondition.NO_BARRIER_MISUSE,
            holds=static.holds and dynamic.holds,
            exhaustive=static.exhaustive and dynamic.exhaustive,
            evidence=static.evidence + dynamic.evidence,
            violations=static.violations + dynamic.violations,
        )


def plan_no_barrier_misuse(
    program: Program,
    shared_locs: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    static: bool = True,
    **overrides,
) -> PassRequest:
    """Plan the No-Barrier-Misuse check as an exploration request.

    The static structural scan runs here, at plan time, and rides along
    in the monitor; the dynamic half is the returned exploration.
    """
    cfg = pushpull_config(
        relaxed=True,
        owned_access_required=frozenset(shared_locs),
        initial_ownership=tuple(initial_ownership),
        **overrides,
    )
    static_result = check_no_barrier_misuse_static(program) if static else None
    return PassRequest(
        cfg=cfg, observe_locs=(),
        monitor=BarrierMisuseMonitor(static=static_result),
    )


def check_no_barrier_misuse_dynamic(
    program: Program,
    shared_locs: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ConditionResult:
    """Exploration-based check: no pull may outrun its barrier."""
    plan = plan_no_barrier_misuse(
        program, shared_locs, initial_ownership, static=False, **overrides
    )
    result = cached_explore(
        program, plan.cfg, observe_locs=list(plan.observe_locs),
        monitors=[plan.monitor],
    )
    return plan.monitor.finalize(result)


def check_no_barrier_misuse(
    program: Program,
    shared_locs: Iterable[int] = (),
    initial_ownership: Iterable[Tuple[int, int]] = (),
    **overrides,
) -> ConditionResult:
    """Combined static + dynamic No-Barrier-Misuse check."""
    plan = plan_no_barrier_misuse(
        program, shared_locs, initial_ownership, **overrides
    )
    result = cached_explore(
        program, plan.cfg, observe_locs=list(plan.observe_locs),
        monitors=[plan.monitor],
    )
    return plan.monitor.finalize(result)
