"""Model-portfolio portability certification: SC ⊆ TSO ⊆ Arm.

The paper verifies SeKVM against the Promising Arm model; the model
portfolio (see ``docs/PORTABILITY.md``) adds a TSO operational backend
(:mod:`repro.memory.tso`) and sequential consistency as explicit
targets.  The portfolio is only trustworthy if the models relate the
way the architectures do — every SC behavior must be a TSO behavior
and every TSO behavior an Arm behavior, for *arbitrary* programs:

* SC ⊆ TSO because an SC step is a TSO step whose store drains
  immediately (store, flush, repeat reproduces any interleaving);
* TSO ⊆ Arm because a drained-late store is an Arm store read stale by
  other threads, and store forwarding is exactly what Arm coherence
  forces a thread to see of its own writes.

Two seeded mutants break one inclusion each and keep the oracle
honest: ``lost-flush`` makes a buffered write vanish (SC ⊄ TSO — the
behavior where the store lands becomes unreachable) and
``read-skips-own-buffer`` lets a thread read older than its own
latest store (TSO ⊄ Arm — no Arm coherence order admits that).

Two granularities:

* :func:`check_portability` — the behavior-set containment oracle on
  one program, used by the ``portability`` conformance oracle
  (:mod:`repro.conformance.oracles`) on fuzzed programs and by
  ``REPRO_TSO_CHECK=1`` inside the explorer.
* :func:`build_matrix` — re-verifies the whole litmus catalog (all
  three verdict columns plus both containment directions per test) and
  the SeKVM KCore corpus (the wDRF verdict under each ``REPRO_MODEL``,
  which must be anti-monotone in model strength: verified on Arm ⇒
  verified on TSO ⇒ verified on SC).  The matrix is persisted as
  ``tests/corpus/portability_verdicts.json`` (regenerate with
  ``python -m repro.vrm.portability <path>``) and pinned by the corpus
  regression suite.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import sys
from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.program import Program
from repro.litmus.catalog import full_corpus
from repro.litmus.runner import _admits, litmus_configs, tso_config
from repro.memory.cache import cached_explore
from repro.memory.datatypes import ExplorationResult
from repro.memory.semantics import ModelConfig

__all__ = [
    "SCHEMA",
    "build_matrix",
    "check_portability",
    "render_matrix",
]

#: Matrix schema version (bump when the row shape changes).
SCHEMA = 1

#: Portfolio order, weakest guarantees last.
MODEL_ORDER = ("sc", "tso", "arm")


def portfolio_configs(arm_cfg: ModelConfig) -> Dict[str, ModelConfig]:
    """The three portfolio configurations derived from an Arm config.

    Everything but the architecture selection (promise budget, VM
    features, exploration limits) is inherited, so the three
    explorations differ in exactly the model.
    """
    return {
        "sc": dataclasses.replace(arm_cfg, relaxed=False, tso=False),
        "tso": dataclasses.replace(arm_cfg, relaxed=False, tso=True),
        "arm": dataclasses.replace(arm_cfg, relaxed=True, tso=False),
    }


def check_portability(
    program: Program,
    arm_cfg: Optional[ModelConfig] = None,
    observe_locs: Optional[Sequence[int]] = None,
    cache: bool = True,
) -> List[str]:
    """Certify SC ⊆ TSO ⊆ Arm on *program*; [] means both inclusions hold.

    Returns one message per violated inclusion.  An inclusion is only
    judged when the weaker (upper) model's exploration completed — a
    budget-truncated upper set proves nothing about containment.
    """
    if arm_cfg is None:
        arm_cfg = ModelConfig(relaxed=True)
    if observe_locs is None:
        observe_locs = sorted(program.initial_memory)
    results: Dict[str, ExplorationResult] = {
        name: cached_explore(program, cfg, observe_locs=observe_locs,
                             cache=cache)
        for name, cfg in portfolio_configs(arm_cfg).items()
    }
    problems: List[str] = []
    for lower, upper in (("sc", "tso"), ("tso", "arm")):
        if not results[upper].complete:
            continue
        missing = results[lower].behaviors - results[upper].behaviors
        if missing:
            shown = ", ".join(sorted(b.pretty() for b in missing)[:3])
            problems.append(
                f"{lower.upper()} ⊄ {upper.upper()}: {len(missing)} "
                f"{lower.upper()} behavior(s) unreachable on "
                f"{upper.upper()}, e.g. {shown}"
            )
    return problems


@contextlib.contextmanager
def _repro_model(name: str) -> Iterator[None]:
    previous = os.environ.get("REPRO_MODEL")
    os.environ["REPRO_MODEL"] = name
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_MODEL", None)
        else:
            os.environ["REPRO_MODEL"] = previous


def _litmus_rows(cache: bool) -> List[Dict[str, object]]:
    """One row per catalog test: three verdicts + both inclusions."""
    rows: List[Dict[str, object]] = []
    for test in full_corpus():
        sc_cfg, rm_cfg = litmus_configs(test)
        configs = {"sc": sc_cfg, "tso": tso_config(test), "arm": rm_cfg}
        observe = sorted(test.program.initial_memory)
        results = {
            name: cached_explore(test.program, cfg, observe_locs=observe,
                                 cache=cache)
            for name, cfg in configs.items()
        }
        rows.append({
            "name": test.name,
            "observed": {
                name: _admits(test, results[name]) for name in MODEL_ORDER
            },
            "complete": all(r.complete for r in results.values()),
            "sc_subset_tso": not (
                results["sc"].behaviors - results["tso"].behaviors
            ),
            "tso_subset_arm": not (
                results["tso"].behaviors - results["arm"].behaviors
            ),
        })
    return rows


def _sekvm_rows(cache: bool) -> List[Dict[str, object]]:
    """One row per verified KCore primitive: wDRF verdict per model.

    ``REPRO_MODEL`` re-targets the verifier's relaxed explorations, so
    each column is the verdict a user selecting that architecture would
    get.  Verification must be anti-monotone in model strength
    (behaviors(SC) ⊆ behaviors(TSO) ⊆ behaviors(Arm), and a violation
    is witnessed by a behavior): expressed in the shared row shape,
    ``sc_subset_tso`` means no TSO-verified case fails on SC and
    ``tso_subset_arm`` means no Arm-verified case fails on TSO.
    """
    from repro.sekvm.ir_programs import kcore_verified_cases
    from repro.vrm.verifier import verify_wdrf

    if not cache:  # pragma: no cover - matrix CLI always caches
        os.environ["REPRO_EXPLORE_CACHE"] = "0"
    rows: List[Dict[str, object]] = []
    for case in kcore_verified_cases():
        verified: Dict[str, bool] = {}
        for model in MODEL_ORDER:
            with _repro_model(model):
                verified[model] = verify_wdrf(case.spec).all_verified
        rows.append({
            "name": case.name,
            "verified": verified,
            "expected": case.should_verify,
            "sc_subset_tso": (not verified["tso"]) or verified["sc"],
            "tso_subset_arm": (not verified["arm"]) or verified["tso"],
        })
    return rows


def build_matrix(cache: bool = True) -> Dict[str, object]:
    """Compute the full portability matrix (JSON-ready)."""
    return {
        "schema": SCHEMA,
        "models": list(MODEL_ORDER),
        "litmus": _litmus_rows(cache),
        "sekvm": _sekvm_rows(cache),
    }


def render_matrix(matrix: Dict[str, object]) -> str:
    """Human-readable portability table."""
    lines = [
        "litmus test                              sc    tso   arm   "
        "sc⊆tso tso⊆arm",
    ]
    for row in matrix["litmus"]:
        obs = row["observed"]
        lines.append(
            f"{row['name']:<40} "
            + " ".join(f"{'yes' if obs[m] else 'no':<5}" for m in MODEL_ORDER)
            + f" {'ok' if row['sc_subset_tso'] else 'VIOL':<6}"
            + f" {'ok' if row['tso_subset_arm'] else 'VIOL'}"
        )
    lines.append("")
    lines.append(
        "sekvm primitive                          sc    tso   arm   "
        "sc⊆tso tso⊆arm"
    )
    for row in matrix["sekvm"]:
        ver = row["verified"]
        lines.append(
            f"{row['name']:<40} "
            + " ".join(f"{'ok' if ver[m] else 'FAIL':<5}" for m in MODEL_ORDER)
            + f" {'ok' if row['sc_subset_tso'] else 'VIOL':<6}"
            + f" {'ok' if row['tso_subset_arm'] else 'VIOL'}"
        )
    certified = all(
        row["sc_subset_tso"] and row["tso_subset_arm"]
        for section in ("litmus", "sekvm")
        for row in matrix[section]
    )
    lines.append("")
    lines.append(
        "portfolio containment SC ⊆ TSO ⊆ Arm: "
        + ("CERTIFIED" if certified else "VIOLATED")
    )
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    """Write the matrix to the path in ``argv`` (or stdout)."""
    matrix = build_matrix()
    text = json.dumps(matrix, indent=2, sort_keys=True) + "\n"
    if argv:
        with open(argv[0], "w", encoding="utf-8") as fh:
            fh.write(text)
        rows = len(matrix["litmus"]) + len(matrix["sekvm"])
        print(f"wrote {rows} verdict rows to {argv[0]}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
