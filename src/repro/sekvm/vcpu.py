"""vCPU contexts and the ACTIVE/INACTIVE ownership protocol (§5.2).

A vCPU context is not lock-protected: a state variable serializes access
(the Example 3 shape).  A physical CPU may only restore a context whose
state is INACTIVE, must set it ACTIVE before touching it, and sets it
back to INACTIVE only after saving — with release/acquire semantics on
the state variable so the protocol is sound on relaxed hardware.  The
functional model enforces the protocol and panics (KernelPanic) on
violations, mirroring ``restore_vm``'s ``panic()`` in Figure 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import KernelPanic


class VCpuState(enum.Enum):
    INACTIVE = 0
    ACTIVE = 1


@dataclass
class VCpuContext:
    """One virtual CPU's register context and run state."""

    vmid: int
    vcpu_id: int
    state: VCpuState = VCpuState.INACTIVE
    regs: Dict[str, int] = field(default_factory=dict)
    running_on: Optional[int] = None   # physical CPU, when ACTIVE
    generation: int = 0                # bumped on every save (staleness probe)

    def activate(self, cpu: int) -> None:
        """restore_vm()'s check-and-claim (Figure 2, lines 12-14)."""
        if self.state is not VCpuState.INACTIVE:
            raise KernelPanic(
                f"restore_vm: vCPU {self.vmid}/{self.vcpu_id} is not "
                f"INACTIVE (held by CPU {self.running_on})",
                cpu=cpu,
            )
        self.state = VCpuState.ACTIVE
        self.running_on = cpu

    def deactivate(self, cpu: int) -> None:
        """save_vm()'s release of the context."""
        if self.state is not VCpuState.ACTIVE or self.running_on != cpu:
            raise KernelPanic(
                f"save_vm: vCPU {self.vmid}/{self.vcpu_id} not active "
                f"on CPU {cpu}",
                cpu=cpu,
            )
        self.generation += 1
        self.state = VCpuState.INACTIVE
        self.running_on = None

    def write_reg(self, cpu: int, reg: str, value: int) -> None:
        """Guest register mutation; only legal while this CPU holds it."""
        if self.state is not VCpuState.ACTIVE or self.running_on != cpu:
            raise KernelPanic(
                f"vCPU {self.vmid}/{self.vcpu_id} context touched by CPU "
                f"{cpu} without ownership",
                cpu=cpu,
            )
        self.regs[reg] = value

    def read_reg(self, cpu: int, reg: str) -> int:
        if self.state is not VCpuState.ACTIVE or self.running_on != cpu:
            raise KernelPanic(
                f"vCPU {self.vmid}/{self.vcpu_id} context read by CPU "
                f"{cpu} without ownership",
                cpu=cpu,
            )
        return self.regs.get(reg, 0)
