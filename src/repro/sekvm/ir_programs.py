"""KCore's concurrency-relevant primitives, compiled to the kernel IR.

The paper proves "SeKVM satisfies the wDRF conditions" over the KCore
implementation; our analogue expresses each synchronization-relevant
KCore primitive as a kernel IR program and packages it with the
verification inputs (:class:`~repro.vrm.verifier.WDRFSpec`) the checkers
need.  Buggy variants (missing barriers, missing TLBI, non-transactional
page-table updates, overwriting EL2 entries, raw user reads) exist for
every primitive so the test and benchmark suites can show the checkers
*reject* non-conforming code — the tightness half of the argument.

Program inventory (all parameterized by stage-2 table depth where
relevant, matching the 3-/4-level verification of Section 5.6):

* ``gen_vmid_program``    — Figure 1/7: VMID allocation under the ticket lock.
* ``vcpu_switch_program`` — Figure 2 / §5.2: the ACTIVE/INACTIVE protocol.
* ``set_s2pt_program``    — §5.4: transactional stage-2 map + racing walk.
* ``clear_s2pt_program``  — §5.5: unmap + barrier + TLBI + racing walk.
* ``set_el2_pt_program``  — §5.1: write-once EL2 mapping.
* ``snapshot_program``    — §5.3: KCore reading VM memory (oracle-masked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir import MemSpace, PTKind, Reg, ThreadBuilder, build_program
from repro.ir.program import Program
from repro.mmu.pagetable import PageTableLayout
from repro.sekvm.locks import LockAddrs, emit_acquire, emit_release
from repro.vrm.verifier import WDRFSpec

# Shared-location map for the lock-protected fragments.
VM_LOCK = LockAddrs(ticket=0x10, now=0x11)
NEXT_VMID_LOC = 0x20
VCPU_CTX_LOC = 0x30
VCPU_STATE_LOC = 0x31
DONE_FLAG_LOC = 0x500


@dataclass(frozen=True)
class PrimitiveCase:
    """One verification subject: a primitive's program + its spec."""

    name: str
    spec: WDRFSpec
    should_verify: bool          # False for the seeded-bug variants
    paper_ref: str = ""

    @property
    def program(self) -> Program:
        return self.spec.program


# ---------------------------------------------------------------------------
# gen_vmid (Figure 1 / Figure 7 / Example 2)
# ---------------------------------------------------------------------------

def gen_vmid_program(correct: bool = True, n_cpus: int = 2) -> Program:
    threads = []
    for tid in range(n_cpus):
        b = ThreadBuilder(tid, name=f"cpu{tid}-gen_vmid")
        emit_acquire(b, VM_LOCK, protects=[NEXT_VMID_LOC], correct=correct)
        b.load("vmid", NEXT_VMID_LOC)
        b.store(NEXT_VMID_LOC, Reg("vmid") + 1)
        emit_release(b, VM_LOCK, protects=[NEXT_VMID_LOC], correct=correct)
        threads.append(b)
    init = dict(VM_LOCK.initial_memory())
    init[NEXT_VMID_LOC] = 0
    return build_program(
        threads,
        observed={tid: ["vmid"] for tid in range(n_cpus)},
        initial_memory=init,
        spaces={
            VM_LOCK.ticket: MemSpace.SYNC,
            VM_LOCK.now: MemSpace.SYNC,
            NEXT_VMID_LOC: MemSpace.KERNEL,
        },
        name=f"kcore.gen_vmid[{'verified' if correct else 'no-barriers'}]",
    )


def gen_vmid_case(correct: bool = True) -> PrimitiveCase:
    return PrimitiveCase(
        name=f"gen_vmid[{'verified' if correct else 'no-barriers'}]",
        spec=WDRFSpec(
            program=gen_vmid_program(correct),
            shared_locs=(NEXT_VMID_LOC,),
        ),
        should_verify=correct,
        paper_ref="Figure 1/7, Example 2, Section 5.2",
    )


# ---------------------------------------------------------------------------
# vCPU context switch (Figure 2 / Section 5.2)
# ---------------------------------------------------------------------------

def vcpu_switch_program(correct: bool = True) -> Program:
    """CPU 0 stops running a vCPU (save + INACTIVE); CPU 1 claims it.

    The push/pull primitives sit where Section 5.2 places them: the push
    before setting INACTIVE, the pull after observing INACTIVE (claiming
    with ACTIVE).
    """
    t0 = ThreadBuilder(0, name="cpu0-save_vm")
    t0.store(VCPU_CTX_LOC, 42)                      # save the vCPU context
    t0.push(VCPU_CTX_LOC)
    t0.store(VCPU_STATE_LOC, 0, release=correct, space=MemSpace.SYNC)

    t1 = ThreadBuilder(1, name="cpu1-restore_vm")
    t1.spin_until_eq("s", VCPU_STATE_LOC, 0, acquire=correct)
    t1.store(VCPU_STATE_LOC, 1, space=MemSpace.SYNC)
    t1.pull(VCPU_CTX_LOC)
    t1.load("restored", VCPU_CTX_LOC)               # restore the context
    return build_program(
        [t0, t1],
        observed={1: ["restored"]},
        initial_memory={VCPU_CTX_LOC: 0, VCPU_STATE_LOC: 1},
        spaces={
            VCPU_CTX_LOC: MemSpace.KERNEL,
            VCPU_STATE_LOC: MemSpace.SYNC,
        },
        name=f"kcore.vcpu_switch[{'verified' if correct else 'no-barriers'}]",
    )


def vcpu_switch_case(correct: bool = True) -> PrimitiveCase:
    return PrimitiveCase(
        name=f"vcpu_switch[{'verified' if correct else 'no-barriers'}]",
        spec=WDRFSpec(
            program=vcpu_switch_program(correct),
            shared_locs=(VCPU_CTX_LOC,),
            initial_ownership=((VCPU_CTX_LOC, 0),),
        ),
        should_verify=correct,
        paper_ref="Figure 2, Example 3, Section 5.2",
    )


# ---------------------------------------------------------------------------
# set_s2pt (Section 5.4) — transactional stage 2 mapping
# ---------------------------------------------------------------------------

def _stage2_layout(levels: int) -> PageTableLayout:
    # Two VA bits per level keeps the probe space exhaustively walkable
    # while exercising the full multi-level structure.
    return PageTableLayout(base=0x1000, levels=levels, va_bits_per_level=2)


SECRET_PAGE = 0x400
SECRET_VALUE = 0x5EC


def set_s2pt_program(levels: int = 4, transactional: bool = True) -> Program:
    """KCore maps a new guest page while the guest keeps accessing.

    The verified form emits the walk-allocate-set writes of
    ``set_s2pt``; the buggy form first unmaps an intermediate entry and
    then writes a leaf beneath it (Example 5's shape).
    """
    layout = _stage2_layout(levels)
    pre_vpn = 1                       # an existing mapping (shares tables)
    layout.map(pre_vpn, 0x200)
    init = layout.initial_memory()
    init[SECRET_PAGE] = SECRET_VALUE
    init[0x200] = 7

    t0 = ThreadBuilder(0, name="cpu0-set_s2pt")
    if transactional:
        new_vpn = (1 << (2 * (levels - 1)))   # distinct top-level slot
        writes = layout.plan_map(new_vpn, SECRET_PAGE)
        for loc, value, level in writes:
            t0.pt_store(loc, value, kind=PTKind.STAGE2, level=level)
        victim_vpn = new_vpn
    else:
        path = layout.entry_path(pre_vpn)
        t0.pt_store(path[0], 0, kind=PTKind.STAGE2, level=0)
        t0.pt_store(path[-1], SECRET_PAGE, kind=PTKind.STAGE2, level=levels - 1)
        victim_vpn = pre_vpn
    t1 = ThreadBuilder(1, name="vm-vcpu", is_kernel=False)
    t1.vload("g0", victim_vpn)
    return build_program(
        [t0, t1],
        observed={1: ["g0"]},
        initial_memory=init,
        spaces={loc: MemSpace.PT for loc in init if loc >= 0x1000},
        mmu=layout.mmu_config(),
        name=(
            f"kcore.set_s2pt[{levels}lvl]"
            f"[{'verified' if transactional else 'non-transactional'}]"
        ),
    )


def set_s2pt_case(levels: int = 4, transactional: bool = True) -> PrimitiveCase:
    program = set_s2pt_program(levels, transactional)
    probe_space = 1 << (2 * levels)
    return PrimitiveCase(
        name=(
            f"set_s2pt[{levels}lvl]"
            f"[{'verified' if transactional else 'non-transactional'}]"
        ),
        spec=WDRFSpec(
            program=program,
            probe_vpns=tuple(range(probe_space)),
        ),
        should_verify=transactional,
        paper_ref="Section 5.4, Example 5",
    )


# ---------------------------------------------------------------------------
# clear_s2pt (Section 5.5) — unmap + barrier + TLBI
# ---------------------------------------------------------------------------

def clear_s2pt_program(
    levels: int = 4, with_barrier: bool = True, with_tlbi: bool = True
) -> Program:
    """KCore unmaps a guest page, invalidates, and signals completion;
    the guest must not reach the old frame after the signal."""
    layout = _stage2_layout(levels)
    vpn = 2
    layout.map(vpn, SECRET_PAGE)
    init = layout.initial_memory()
    init[SECRET_PAGE] = SECRET_VALUE
    init[DONE_FLAG_LOC] = 0

    t0 = ThreadBuilder(0, name="cpu0-clear_s2pt")
    leaf = layout.leaf_entry(vpn)
    t0.pt_store(leaf, 0, kind=PTKind.STAGE2, level=levels - 1)
    if with_barrier:
        t0.barrier("full")
    if with_tlbi:
        t0.tlbi(vpn)
    t0.store(DONE_FLAG_LOC, 1, release=True, space=MemSpace.SYNC)

    t1 = ThreadBuilder(1, name="vm-vcpu", is_kernel=False)
    t1.spin_until_eq("d", DONE_FLAG_LOC, 1, acquire=True)
    t1.vload("g0", vpn)
    kind = (
        "verified" if (with_barrier and with_tlbi)
        else ("no-barrier" if with_tlbi else "no-tlbi")
    )
    return build_program(
        [t0, t1],
        observed={1: ["g0"]},
        initial_memory=init,
        spaces={DONE_FLAG_LOC: MemSpace.SYNC},
        mmu=layout.mmu_config(),
        name=f"kcore.clear_s2pt[{levels}lvl][{kind}]",
    )


def clear_s2pt_case(
    levels: int = 4, with_barrier: bool = True, with_tlbi: bool = True
) -> PrimitiveCase:
    program = clear_s2pt_program(levels, with_barrier, with_tlbi)
    return PrimitiveCase(
        name=program.name.replace("kcore.", ""),
        spec=WDRFSpec(
            program=program,
            probe_vpns=tuple(range(1 << (2 * levels))),
        ),
        should_verify=with_barrier and with_tlbi,
        paper_ref="Section 5.5, Example 6",
    )


# ---------------------------------------------------------------------------
# set_el2_pt (Section 5.1) — write-once kernel mapping
# ---------------------------------------------------------------------------

EL2_PT_BASE = 0x2000


def set_el2_pt_program(write_once: bool = True) -> Program:
    """remap_pfn's EL2 mapping: one store per fresh entry.

    The buggy variant overwrites an existing mapping, which the
    Write-Once audit must reject (and which would otherwise require the
    TLB maintenance the kernel page table never performs).
    """
    entry_free = EL2_PT_BASE + 1
    entry_used = EL2_PT_BASE + 2
    t0 = ThreadBuilder(0, name="cpu0-set_el2_pt")
    target = entry_free if write_once else entry_used
    t0.pt_store(target, 0x300, kind=PTKind.KERNEL, level=0)
    init = {entry_free: 0, entry_used: 0x111}
    return build_program(
        [t0],
        initial_memory=init,
        spaces={entry_free: MemSpace.PT, entry_used: MemSpace.PT},
        name=f"kcore.set_el2_pt[{'verified' if write_once else 'overwrite'}]",
    )


def set_el2_pt_case(write_once: bool = True) -> PrimitiveCase:
    program = set_el2_pt_program(write_once)
    return PrimitiveCase(
        name=f"set_el2_pt[{'verified' if write_once else 'overwrite'}]",
        spec=WDRFSpec(program=program),
        should_verify=write_once,
        paper_ref="Section 5.1",
    )


# ---------------------------------------------------------------------------
# VM snapshot read (Section 5.3) — Weak-Memory-Isolation
# ---------------------------------------------------------------------------

VM_MEM_LOC = 0x600


def snapshot_program(use_oracle: bool = True) -> Program:
    """KCore reads VM memory for a snapshot while the VM writes it.

    The verified form draws from the data oracle; the raw form reads the
    VM's memory directly, which Weak-Memory-Isolation rejects.
    """
    t0 = ThreadBuilder(0, name="cpu0-snapshot")
    if use_oracle:
        t0.oracle_read("snap", VM_MEM_LOC, choices=(0, 1, 2))
    else:
        t0.load("snap", VM_MEM_LOC, space=MemSpace.USER)
    t1 = ThreadBuilder(1, name="vm-vcpu", is_kernel=False)
    t1.store(VM_MEM_LOC, 2, space=MemSpace.USER)
    return build_program(
        [t0, t1],
        observed={0: ["snap"]},
        initial_memory={VM_MEM_LOC: 0},
        spaces={VM_MEM_LOC: MemSpace.USER},
        name=f"kcore.snapshot[{'oracle' if use_oracle else 'raw-read'}]",
    )


def snapshot_case(use_oracle: bool = True) -> PrimitiveCase:
    return PrimitiveCase(
        name=f"snapshot[{'oracle' if use_oracle else 'raw-read'}]",
        spec=WDRFSpec(program=snapshot_program(use_oracle)),
        should_verify=use_oracle,
        paper_ref="Section 5.3",
    )


# ---------------------------------------------------------------------------
# suites
# ---------------------------------------------------------------------------

def kcore_verified_cases(s2_levels: int = 4) -> List[PrimitiveCase]:
    """The verified KCore primitive suite for one stage-2 depth."""
    return [
        gen_vmid_case(correct=True),
        vcpu_switch_case(correct=True),
        set_s2pt_case(levels=s2_levels, transactional=True),
        clear_s2pt_case(levels=s2_levels, with_barrier=True, with_tlbi=True),
        set_el2_pt_case(write_once=True),
        snapshot_case(use_oracle=True),
    ]


def kcore_buggy_cases(s2_levels: int = 4) -> List[PrimitiveCase]:
    """Seeded-bug variants; every one must FAIL verification."""
    return [
        gen_vmid_case(correct=False),
        vcpu_switch_case(correct=False),
        set_s2pt_case(levels=s2_levels, transactional=False),
        clear_s2pt_case(levels=s2_levels, with_barrier=False, with_tlbi=True),
        clear_s2pt_case(levels=s2_levels, with_barrier=True, with_tlbi=False),
        set_el2_pt_case(write_once=False),
        snapshot_case(use_oracle=False),
    ]
