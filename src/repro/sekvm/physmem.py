"""Physical memory: the machine's page frames.

Pages hold a single integer "content" — enough structure for ownership,
confidentiality, and integrity reasoning (a page's content is either a
VM secret, KServ data, or zero after scrubbing), without byte-level
bookkeeping the proofs never look at.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import HypercallError


class PhysicalMemory:
    """The machine's physical page frames."""

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise HypercallError("machine needs at least one page")
        self.total_pages = total_pages
        self._pages: List[int] = [0] * total_pages

    def _check(self, pfn: int) -> None:
        if not 0 <= pfn < self.total_pages:
            raise HypercallError(f"pfn {pfn:#x} out of range")

    def read(self, pfn: int) -> int:
        self._check(pfn)
        return self._pages[pfn]

    def write(self, pfn: int, value: int) -> None:
        self._check(pfn)
        self._pages[pfn] = value

    def scrub(self, pfn: int) -> None:
        """Zero a page (ownership-transfer hygiene)."""
        self.write(pfn, 0)

    def scrub_range(self, pfns: Sequence[int]) -> None:
        for pfn in pfns:
            self.scrub(pfn)

    def snapshot(self, pfns: Sequence[int]) -> List[int]:
        return [self.read(pfn) for pfn in pfns]
