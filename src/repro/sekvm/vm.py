"""VM lifecycle: creation, authenticated boot, run, teardown (§5.1, §5.3).

A VM's identity is its VMID (allocated by ``gen_vmid`` under the VM
lock).  Secure boot follows SeKVM: KServ loads the (possibly
discontiguous) VM image into pages it owns, donates them, KCore remaps
them to a contiguous EL2 region (``remap_pfn``) and hashes the contents
with the integrated crypto library — modeled here with SHA-256 standing
in for Ed25519 signature verification — refusing to run unauthenticated
images.  Teardown scrubs and reclaims every page (confidentiality).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import HypercallError
from repro.sekvm.s2pt import Stage2PageTable
from repro.sekvm.vcpu import VCpuContext

MAX_VM = 64


class VMState(enum.Enum):
    CREATED = "created"
    VERIFIED = "verified"
    RUNNING = "running"
    POWERED_OFF = "powered-off"


def image_digest(page_contents: Sequence[int]) -> str:
    """The boot-image measurement (SHA-256 over page contents).

    Stands in for SeKVM's Ed25519 VM-image authentication: same role
    (KCore refuses to boot an image whose measurement does not match),
    different primitive, since no signing infrastructure exists here.
    """
    h = hashlib.sha256()
    for content in page_contents:
        h.update(int(content).to_bytes(16, "little", signed=True))
    return h.hexdigest()


@dataclass
class VM:
    """One virtual machine's KCore-side bookkeeping."""

    vmid: int
    s2pt: Stage2PageTable
    expected_digest: Optional[str] = None
    state: VMState = VMState.CREATED
    vcpus: Dict[int, VCpuContext] = field(default_factory=dict)
    pages: List[int] = field(default_factory=list)   # donated pfns

    def add_vcpu(self, vcpu_id: int) -> VCpuContext:
        if self.state not in (VMState.CREATED, VMState.VERIFIED):
            raise HypercallError(
                f"VM {self.vmid}: cannot add vCPUs in state {self.state.value}"
            )
        if vcpu_id in self.vcpus:
            raise HypercallError(
                f"VM {self.vmid}: vCPU {vcpu_id} already registered"
            )
        ctx = VCpuContext(vmid=self.vmid, vcpu_id=vcpu_id)
        self.vcpus[vcpu_id] = ctx
        return ctx

    def vcpu(self, vcpu_id: int) -> VCpuContext:
        try:
            return self.vcpus[vcpu_id]
        except KeyError:
            raise HypercallError(
                f"VM {self.vmid}: no vCPU {vcpu_id}"
            ) from None

    def mark_verified(self) -> None:
        if self.state is not VMState.CREATED:
            raise HypercallError(
                f"VM {self.vmid}: boot verification in state {self.state.value}"
            )
        self.state = VMState.VERIFIED

    def mark_running(self) -> None:
        if self.state not in (VMState.VERIFIED, VMState.RUNNING):
            raise HypercallError(
                f"VM {self.vmid}: cannot run unverified VM"
            )
        self.state = VMState.RUNNING

    def power_off(self) -> None:
        self.state = VMState.POWERED_OFF
