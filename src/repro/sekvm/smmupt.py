"""SMMU page-table management: ``set_spt`` / ``clear_spt`` (§5.4-5.5).

Identical discipline to the stage 2 primitives — KCore allocates from a
pool reserved for the SMMU, only writes empty entries on map, performs a
single write plus ``barrier; smmu-tlbi`` on unmap — so the transactional
and sequential-invalidation proofs carry over unchanged, as the paper
notes.  The implementation shares the audited machinery and differs only
in the invalidation target (the SMMU TLB) and the backing pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HypercallError
from repro.mmu.smmu import SMMU, SMMUContext
from repro.mmu.pagetable import PTWrite
from repro.sekvm.locks import TicketLock
from repro.sekvm.s2pt import S2PTOperation


class SMMUPageTableManager:
    """KCore's interface to one device's SMMU page table."""

    def __init__(self, smmu: SMMU, device_id: int, pool_pages: int = 1024):
        self.smmu = smmu
        self.device_id = device_id
        self.context: SMMUContext = smmu.context(device_id)
        self.lock = TicketLock(name=f"spt-lock-dev{device_id}")
        self.operations: List[S2PTOperation] = []
        self.smmu_tlb_invalidations = 0
        self._pool_pages = pool_pages

    def set_spt(self, cpu: int, iova: int, pfn: int) -> S2PTOperation:
        """Map ``iova -> pfn`` for the device; empty entries only."""
        self.lock.acquire(cpu)
        try:
            pt = self.context.pagetable
            mark = len(pt.write_log)
            if pt.is_mapped(iova):
                raise HypercallError(
                    f"set_spt(dev {self.device_id}): iova {iova:#x} "
                    f"already mapped"
                )
            pt.map(iova, pfn, overwrite=False)
            op = S2PTOperation(
                kind="map",
                vpn=iova,
                writes=tuple(pt.write_log[mark:]),
                barrier_before_tlbi=True,
                tlbi=False,
            )
            self.operations.append(op)
            return op
        finally:
            self.lock.release(cpu)

    def clear_spt(self, cpu: int, iova: int) -> S2PTOperation:
        """Unmap ``iova``: one write, then ``barrier; smmu-tlbi``."""
        self.lock.acquire(cpu)
        try:
            pt = self.context.pagetable
            mark = len(pt.write_log)
            if not pt.unmap(iova):
                raise HypercallError(
                    f"clear_spt(dev {self.device_id}): iova {iova:#x} "
                    f"not mapped"
                )
            self.context.invalidate_tlb(iova)
            self.smmu_tlb_invalidations += 1
            op = S2PTOperation(
                kind="unmap",
                vpn=iova,
                writes=tuple(pt.write_log[mark:]),
                barrier_before_tlbi=True,
                tlbi=True,
            )
            self.operations.append(op)
            return op
        finally:
            self.lock.release(cpu)

    def translate(self, iova: int) -> Optional[int]:
        return self.context.pagetable.walk(iova)
