"""The verified KVM version matrix (Section 5.6).

The paper verifies eight retrofitted KVM versions — Linux 4.18, 4.20,
5.0, 5.1, 5.2, 5.3, 5.4 and 5.5 — across multiple Armv8 hardware
configurations, with both 3- and 4-level stage 2 page tables.  Ports
between versions changed KServ (untrusted) code; KCore and its proofs
were reused, with the 3-level page-table support the only verified
addition.  This module encodes that matrix so the verification pipeline
and the benchmarks can iterate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class KVMVersion:
    """One verified SeKVM configuration."""

    linux: str                      # kernel version the retrofit targets
    s2_levels: int                  # stage 2 page-table depth (3 or 4)
    va_bits_per_level: int = 9
    notes: str = ""

    @property
    def name(self) -> str:
        return f"SeKVM-{self.linux}-{self.s2_levels}lvl"


#: Linux versions the paper verified (Section 5.6).
VERIFIED_LINUX_VERSIONS: Tuple[str, ...] = (
    "4.18", "4.20", "5.0", "5.1", "5.2", "5.3", "5.4", "5.5",
)


def all_versions() -> List[KVMVersion]:
    """The full verified matrix: every Linux version × {3,4}-level tables.

    The original SeKVM (4.18) used 4-level tables; 3-level support was
    added and verified afterwards and "the weakened wDRF conditions
    [are] satisfied for both 3-level and 4-level stage 2 page tables".
    """
    versions: List[KVMVersion] = []
    for linux in VERIFIED_LINUX_VERSIONS:
        for levels in (4, 3):
            notes = (
                "original verified retrofit"
                if (linux, levels) == ("4.18", 4)
                else "ported KServ; reused KCore proofs"
            )
            versions.append(
                KVMVersion(linux=linux, s2_levels=levels, notes=notes)
            )
    return versions


def default_version() -> KVMVersion:
    return KVMVersion(linux="4.18", s2_levels=4, notes="original verified retrofit")
