"""Virtual GIC: emulated interrupt controller and virtual IPIs.

The evaluation's "I/O Kernel" and "Virtual IPI" microbenchmarks exercise
the in-kernel emulated interrupt controller (Table 2); SeKVM routes
those traps through KCore, which must enforce that interrupt state is a
per-VM resource — a vCPU can only IPI vCPUs of its *own* VM, and KServ
can only inject the interrupt lines of devices it legitimately emulates.

This functional model keeps per-vCPU pending sets and list registers,
supports SGIs (software-generated interrupts, the IPI mechanism), SPIs
(device interrupts injected by KServ's emulation), and delivers on
vCPU entry — enough structure for the security tests (no cross-VM
injection) and the scheduler/performance layer (IPI latency counting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import HypercallError, SecurityViolation

#: Interrupt id ranges, matching the GIC architecture's split.
SGI_RANGE = range(0, 16)      # software-generated (IPIs)
PPI_RANGE = range(16, 32)     # per-CPU peripherals (timers)
SPI_RANGE = range(32, 1020)   # shared peripherals (devices)


@dataclass
class VGicVCpuState:
    """Per-vCPU virtual interrupt state."""

    vmid: int
    vcpu_id: int
    pending: Set[int] = field(default_factory=set)
    active: Set[int] = field(default_factory=set)
    delivered_count: int = 0


class VGic:
    """One VM's virtual interrupt controller, owned by KCore."""

    def __init__(self, vmid: int, n_vcpus: int):
        if n_vcpus < 1:
            raise HypercallError("a VM needs at least one vCPU")
        self.vmid = vmid
        self.vcpus: Dict[int, VGicVCpuState] = {
            vcpu_id: VGicVCpuState(vmid=vmid, vcpu_id=vcpu_id)
            for vcpu_id in range(n_vcpus)
        }
        self.sgi_sent = 0
        self.spi_injected = 0

    def _vcpu(self, vcpu_id: int) -> VGicVCpuState:
        try:
            return self.vcpus[vcpu_id]
        except KeyError:
            raise HypercallError(
                f"VM {self.vmid}: no vCPU {vcpu_id} on its vGIC"
            ) from None

    # ------------------------------------------------------------------
    def send_sgi(
        self, sender_vmid: int, sender_vcpu: int, target_vcpu: int, intid: int
    ) -> None:
        """A guest vCPU sends a virtual IPI.

        KCore's mediation: the sender must belong to this vGIC's VM —
        cross-VM SGIs are an isolation violation, not an error return.
        """
        if intid not in SGI_RANGE:
            raise HypercallError(f"SGI intid {intid} out of range")
        if sender_vmid != self.vmid:
            raise SecurityViolation(
                f"VM {sender_vmid} attempted an IPI into VM {self.vmid}"
            )
        self._vcpu(sender_vcpu)  # sender must exist too
        self._vcpu(target_vcpu).pending.add(intid)
        self.sgi_sent += 1

    def inject_spi(self, intid: int, target_vcpu: int = 0) -> None:
        """KServ's device emulation injects a device interrupt."""
        if intid not in SPI_RANGE:
            raise HypercallError(f"SPI intid {intid} out of range")
        self._vcpu(target_vcpu).pending.add(intid)
        self.spi_injected += 1

    # ------------------------------------------------------------------
    def deliver(self, vcpu_id: int) -> List[int]:
        """vCPU entry: pending interrupts become active and are returned
        in priority (ascending intid) order."""
        state = self._vcpu(vcpu_id)
        delivered = sorted(state.pending)
        state.active |= state.pending
        state.pending.clear()
        state.delivered_count += len(delivered)
        return delivered

    def eoi(self, vcpu_id: int, intid: int) -> None:
        """End-of-interrupt from the guest."""
        state = self._vcpu(vcpu_id)
        if intid not in state.active:
            raise HypercallError(
                f"EOI for inactive interrupt {intid} on vCPU {vcpu_id}"
            )
        state.active.discard(intid)

    def has_pending(self, vcpu_id: int) -> bool:
        return bool(self._vcpu(vcpu_id).pending)


class VGicDistributor:
    """System-wide registry: one vGIC per VM, mediated by KCore."""

    def __init__(self):
        self._vgics: Dict[int, VGic] = {}

    def create(self, vmid: int, n_vcpus: int) -> VGic:
        if vmid in self._vgics:
            raise HypercallError(f"VM {vmid} already has a vGIC")
        vgic = VGic(vmid, n_vcpus)
        self._vgics[vmid] = vgic
        return vgic

    def for_vm(self, vmid: int) -> VGic:
        try:
            return self._vgics[vmid]
        except KeyError:
            raise HypercallError(f"VM {vmid} has no vGIC") from None

    def send_ipi(
        self, sender_vmid: int, sender_vcpu: int,
        target_vmid: int, target_vcpu: int, intid: int = 0,
    ) -> None:
        """The full IPI path with the isolation check at the boundary."""
        if sender_vmid != target_vmid:
            raise SecurityViolation(
                f"VM {sender_vmid} attempted an IPI into VM {target_vmid}"
            )
        self.for_vm(target_vmid).send_sgi(
            sender_vmid, sender_vcpu, target_vcpu, intid
        )
