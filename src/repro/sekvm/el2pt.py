"""KCore's EL2 page table — Write-Once-Kernel-Mapping in action (§5.1).

At boot, all physical memory is mapped to a contiguous virtual region of
KCore's EL2 table (the linear map), like Linux's 64-bit kernel map.
After boot the table changes exactly one way: the ``remap_pfn``
hypercall maps physical pages holding a VM image into a contiguous
region *outside* the linear map so the integrated crypto library can
hash them for boot authentication.  The single primitive ``set_el2_pt``
refuses to overwrite any existing mapping, and nothing ever unmaps or
remaps, so the Write-Once condition holds by construction — which this
class enforces at runtime and exposes for audit via the write log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError, VerificationError
from repro.mmu.pagetable import MultiLevelPageTable, PTWrite


class EL2PageTable:
    """The kernel page table of KCore.

    Virtual layout (page-number granularity):

    * ``[0, linear_pages)`` — the boot-time linear map: VA ``i`` maps
      physical page ``i``.
    * ``[remap_base, ...)`` — the ``remap_pfn`` region, grown linearly,
      never reused.
    """

    def __init__(
        self,
        linear_pages: int,
        levels: int = 4,
        va_bits_per_level: int = 9,
        remap_base: Optional[int] = None,
    ):
        self.linear_pages = linear_pages
        self.pagetable = MultiLevelPageTable(
            levels=levels, va_bits_per_level=va_bits_per_level, name="el2-pt"
        )
        self.remap_base = (
            remap_base if remap_base is not None else 2 * linear_pages
        )
        self._remap_next = self.remap_base
        self.booted = False

    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Install the linear map; callable exactly once."""
        if self.booted:
            raise VerificationError("EL2 page table already booted")
        for pfn in range(self.linear_pages):
            self.set_el2_pt(pfn, pfn)
        self.booted = True

    def set_el2_pt(self, va: int, pfn: int) -> None:
        """The only primitive that writes the EL2 table (Section 5.1).

        Verified property: it can never overwrite an existing mapping.
        """
        if self.pagetable.is_mapped(va):
            raise VerificationError(
                f"set_el2_pt: VA {va:#x} already mapped — Write-Once-"
                f"Kernel-Mapping forbids overwriting"
            )
        self.pagetable.map(va, pfn, overwrite=False)

    def remap_pfn(self, pfns: Sequence[int]) -> int:
        """Map *pfns* (a possibly discontiguous VM image) to a fresh
        contiguous VA region for hashing; returns the base VA.

        The hypercall never unmaps or remaps: each call consumes fresh
        virtual pages.
        """
        if not self.booted:
            raise HypercallError("remap_pfn before boot")
        base = self._remap_next
        for offset, pfn in enumerate(pfns):
            self.set_el2_pt(base + offset, pfn)
        self._remap_next = base + len(pfns)
        return base

    # ------------------------------------------------------------------
    def translate(self, va: int) -> Optional[int]:
        return self.pagetable.walk(va)

    @property
    def write_log(self) -> List[PTWrite]:
        return self.pagetable.write_log

    def leaf_write_log(self) -> List[PTWrite]:
        """Only the leaf-entry writes (the mappings themselves)."""
        return [
            w for w in self.pagetable.write_log if w.level == self.pagetable.levels - 1
        ]
