"""KServ: the untrusted hypervisor services (Section 5).

KServ is the bulk of KVM after the retrofit: scheduling, device
emulation, memory allocation.  It runs at EL1 behind a stage 2 page
table KCore controls, so everything it does to VMs goes through KCore
hypercalls.  This model gives KServ a page allocator over the frames it
owns, boot/run orchestration helpers, and — for the security tests — a
record of everything it *observes* (page contents it reads, hypercall
results), which is the trace the confidentiality checker compares across
secret-differing runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError, SecurityViolation
from repro.sekvm.kcore import KCore
from repro.sekvm.s2page import KSERV
from repro.sekvm.vm import image_digest


class KServ:
    """The untrusted host: allocates pages, orchestrates VMs."""

    def __init__(self, kcore: KCore):
        self.kcore = kcore
        self._free_pfns: List[int] = [
            pfn for pfn in self.kcore.s2page.pages_owned_by(KSERV)
        ]
        self._next_vpn = 0
        self.observations: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # page allocation (from KServ-owned frames)
    # ------------------------------------------------------------------
    def alloc_page(self) -> int:
        if not self._free_pfns:
            raise HypercallError("KServ out of memory")
        return self._free_pfns.pop()

    def alloc_pages(self, count: int) -> List[int]:
        return [self.alloc_page() for _ in range(count)]

    def map_and_write(self, cpu: int, pfn: int, value: int) -> int:
        """Map one of its pages into its stage 2 space and write it."""
        vpn = self._next_vpn
        self._next_vpn += 1
        self.kcore.map_pfn_kserv(cpu, vpn, pfn)
        self.kcore.kserv_write(vpn, value)
        return vpn

    def read(self, vpn: int) -> int:
        value = self.kcore.kserv_read(vpn)
        self.observations.append(("read", value))
        return value

    # ------------------------------------------------------------------
    # VM orchestration
    # ------------------------------------------------------------------
    def create_and_boot_vm(
        self,
        cpu: int,
        image: Sequence[int],
        vcpus: int = 1,
        tamper: Optional[Dict[int, int]] = None,
    ) -> int:
        """Load an image, (optionally tamper with it), and boot a VM.

        Returns the vmid.  ``tamper`` maps image-page index to a value
        KServ substitutes after computing the legitimate digest — the
        attack authenticated boot must defeat.
        """
        vmid = self.kcore.gen_vmid(cpu)
        for vcpu_id in range(vcpus):
            self.kcore.register_vcpu(cpu, vmid, vcpu_id)
        pfns = []
        expected = image_digest(image)
        for idx, content in enumerate(image):
            pfn = self.alloc_page()
            vpn = self.map_and_write(cpu, pfn, content)
            if tamper and idx in tamper:
                self.kcore.kserv_write(vpn, tamper[idx])
            self.kcore.unmap_pfn_kserv(cpu, vpn)
            pfns.append(pfn)
        self.kcore.boot_vm(cpu, vmid, pfns, expected)
        return vmid

    def run_vcpu(self, cpu: int, vmid: int, vcpu_id: int = 0):
        return self.kcore.run_vcpu(cpu, vmid, vcpu_id)

    def stop_vcpu(self, cpu: int, vmid: int, vcpu_id: int = 0) -> None:
        self.kcore.stop_vcpu(cpu, vmid, vcpu_id)

    # ------------------------------------------------------------------
    # adversarial probes (used by the security test suite)
    # ------------------------------------------------------------------
    def try_map_foreign_page(self, cpu: int, pfn: int) -> bool:
        """Attempt to map a page KServ does not own into its own space.

        Returns True when the attack *succeeded* (which the verified
        KCore must never allow)."""
        vpn = self._next_vpn
        self._next_vpn += 1
        try:
            self.kcore.map_pfn_kserv(cpu, vpn, pfn)
        except (HypercallError, SecurityViolation):
            return False
        value = self.kcore.kserv_read(vpn)
        self.observations.append(("stolen", value))
        return True

    def try_dma_attack(self, cpu: int, device_id: int, pfn: int) -> bool:
        """Attempt to program device DMA at a page KServ does not own."""
        try:
            self.kcore.smmu_map(cpu, device_id, iova=0xD0, pfn=pfn, owner=KSERV)
        except (HypercallError, SecurityViolation):
            return False
        return True
