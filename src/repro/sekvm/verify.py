"""End-to-end SeKVM verification (Sections 5 and 5.6).

``verify_sekvm(version)`` runs all six wDRF condition checks on every
KCore primitive program for that version's stage-2 depth, and
``verify_all_versions()`` sweeps the full verified matrix of Section 5.6
(eight Linux versions × {3,4}-level tables).  Because KCore is shared
across versions and only the stage-2 depth differs, the per-version work
reduces to re-checking the page-table primitives — the same modularity
the paper credits for the "modest additional proof effort".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.parallel import parallel_map
from repro.sekvm.ir_programs import (
    PrimitiveCase,
    kcore_buggy_cases,
    kcore_verified_cases,
)
from repro.sekvm.versions import KVMVersion, all_versions, default_version
from repro.vrm.conditions import WDRFReport
from repro.vrm.verifier import verify_wdrf


@dataclass
class CaseOutcome:
    """Verification outcome for one primitive case."""

    case: PrimitiveCase
    report: WDRFReport

    @property
    def as_expected(self) -> bool:
        """Verified cases must pass; seeded-bug cases must fail."""
        return self.report.all_verified == self.case.should_verify


@dataclass
class VersionOutcome:
    """Verification outcome for one KVM version."""

    version: KVMVersion
    outcomes: List[CaseOutcome] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(
            o.report.all_verified for o in self.outcomes if o.case.should_verify
        )

    @property
    def all_as_expected(self) -> bool:
        return all(o.as_expected for o in self.outcomes)

    def describe(self) -> str:
        lines = [f"{self.version.name} ({self.version.notes}):"]
        for o in self.outcomes:
            status = "verified" if o.report.all_verified else "REJECTED"
            expect = "" if o.as_expected else "  <-- UNEXPECTED"
            lines.append(f"  {o.case.name:<48} {status}{expect}")
        return "\n".join(lines)


def _verify_case(case: PrimitiveCase) -> CaseOutcome:
    """Pool worker: verify one primitive case (module-level, picklable)."""
    return CaseOutcome(case=case, report=verify_wdrf(case.spec))


def verify_sekvm(
    version: Optional[KVMVersion] = None,
    include_buggy: bool = False,
    jobs: Optional[int] = None,
) -> VersionOutcome:
    """Run the wDRF verification suite for one SeKVM version.

    ``jobs`` fans the per-interface verifications out over a process
    pool (``None``/``0`` = serial, negative = all CPUs); outcomes are
    merged in case order, identical to a serial run.
    """
    version = version or default_version()
    cases = list(kcore_verified_cases(version.s2_levels))
    if include_buggy:
        cases += kcore_buggy_cases(version.s2_levels)
    outcome = VersionOutcome(version=version)
    outcome.outcomes.extend(parallel_map(_verify_case, cases, jobs=jobs))
    return outcome


def verify_all_versions(
    include_buggy: bool = False, jobs: Optional[int] = None
) -> List[VersionOutcome]:
    """Section 5.6's sweep: every Linux version × {3,4}-level tables."""
    return [
        verify_sekvm(version, include_buggy=include_buggy, jobs=jobs)
        for version in all_versions()
    ]
