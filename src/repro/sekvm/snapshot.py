"""VM snapshots: the feature that motivates Weak-Memory-Isolation (§4.3).

"The KVM hypervisor reads a VM's memory to create a VM snapshot" — the
one place the verified kernel legitimately touches VM memory, which is
why the strong Memory-Isolation condition is too strong for real systems
and Theorem 4's weakened form exists.

The model implements the SeKVM-style protocol:

* KCore reads the VM's pages and produces a snapshot *sealed* under a
  per-VM key (an XOR stream stands in for authenticated encryption —
  the structural point is that KServ stores ciphertext it cannot read).
* The proof-facing accounting records every read through the data-oracle
  interface (`kcore.oracle_reads`), so the Weak-Memory-Isolation audit
  sees exactly the declassification the proofs model.
* Restore verifies the seal, rebuilds the pages from KServ-donated
  frames, and reinstalls the stage 2 mappings.

Security content exercised by the tests: a snapshot in KServ's hands is
independent of the VM's secrets (sealed), restores to exactly the saved
state, and refuses tampered blobs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError, SecurityViolation
from repro.sekvm.kcore import KCore
from repro.sekvm.vm import VMState


def _keystream(key: int, index: int) -> int:
    """A deterministic keyed stream (stand-in for AEAD encryption)."""
    digest = hashlib.sha256(f"{key}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _seal_tag(key: int, payload: Sequence[Tuple[int, int]]) -> str:
    h = hashlib.sha256(f"seal:{key}".encode())
    for vpn, word in payload:
        h.update(vpn.to_bytes(8, "little"))
        h.update(word.to_bytes(8, "little", signed=False))
    return h.hexdigest()


@dataclass(frozen=True)
class SealedSnapshot:
    """What KServ gets to store: ciphertext pages plus an integrity tag."""

    vmid: int
    generation: int
    pages: Tuple[Tuple[int, int], ...]     # (vpn, sealed word)
    tag: str


class SnapshotManager:
    """KCore's snapshot/restore service."""

    def __init__(self, kcore: KCore):
        self.kcore = kcore
        self._keys: Dict[int, int] = {}
        self._generations: Dict[int, int] = {}

    def _key_for(self, vmid: int) -> int:
        if vmid not in self._keys:
            # Derived at VM creation in real SeKVM; any per-VM secret
            # unknown to KServ works for the model.
            self._keys[vmid] = int(
                hashlib.sha256(f"vmkey:{vmid}".encode()).hexdigest()[:12], 16
            )
        return self._keys[vmid]

    # ------------------------------------------------------------------
    def snapshot_vm(self, cpu: int, vmid: int) -> SealedSnapshot:
        """Produce a sealed snapshot of every mapped VM page."""
        vm = self.kcore.vms.get(vmid)
        if vm is None:
            raise HypercallError(f"no VM with vmid {vmid}")
        key = self._key_for(vmid)
        generation = self._generations.get(vmid, 0) + 1
        self._generations[vmid] = generation
        sealed: List[Tuple[int, int]] = []
        for vpn, pfn in sorted(vm.s2pt.pagetable.mappings()):
            word = self.kcore.memory.read(pfn)
            # Proof-facing accounting: this is a kernel read of user
            # memory, modeled as an oracle draw (Weak-Memory-Isolation).
            self.kcore.oracle_reads.append((f"snapshot:vm{vmid}:{vpn:#x}", word))
            sealed.append((vpn, word ^ _keystream(key, vpn)))
        payload = tuple(sealed)
        return SealedSnapshot(
            vmid=vmid,
            generation=generation,
            pages=payload,
            tag=_seal_tag(key, payload),
        )

    def restore_vm(
        self, cpu: int, snapshot: SealedSnapshot, pfn_source
    ) -> int:
        """Restore a snapshot into its VM; returns pages restored.

        ``pfn_source()`` supplies KServ-owned frames for pages not
        currently mapped (a teardown/restore cycle).  The seal is
        verified before anything is written.
        """
        vm = self.kcore.vms.get(snapshot.vmid)
        if vm is None:
            raise HypercallError(f"no VM with vmid {snapshot.vmid}")
        key = self._key_for(snapshot.vmid)
        if _seal_tag(key, snapshot.pages) != snapshot.tag:
            raise SecurityViolation(
                f"snapshot for VM {snapshot.vmid} failed integrity check"
            )
        if vm.state is VMState.POWERED_OFF:
            raise HypercallError("cannot restore into a powered-off VM")
        restored = 0
        for vpn, sealed_word in snapshot.pages:
            word = sealed_word ^ _keystream(key, vpn)
            if not vm.s2pt.is_mapped(vpn):
                self.kcore.grant_vm_page(cpu, snapshot.vmid, vpn, pfn_source())
            self.kcore.vm_write(snapshot.vmid, vpn, word)
            restored += 1
        return restored
