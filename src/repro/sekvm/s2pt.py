"""Stage 2 page-table management: ``set_s2pt`` / ``clear_s2pt`` (§5.4-5.5).

Each principal below KCore (KServ and every VM) runs behind a stage 2
page table that KCore alone can write.  The two primitives follow the
paper exactly:

* ``set_s2pt`` walks from the root, allocating intermediate tables from
  a private zeroed pool, and sets the leaf only if it is empty — a
  transactional update (any partially visible state faults).
* ``clear_s2pt`` clears an existing leaf (one write) and then performs
  ``barrier; tlbi`` — the Sequential-TLB-Invalidation discipline.  It
  never reclaims intermediate tables.

Every operation appends an :class:`S2PTOperation` record (its write
slice, barrier/TLBI events) so the wDRF audits in :mod:`repro.vrm` can
check the discipline after the fact, and the performance simulator can
count walks and invalidations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import HypercallError
from repro.mmu.pagetable import MultiLevelPageTable, PTWrite
from repro.sekvm.locks import TicketLock


@dataclass(frozen=True)
class S2PTOperation:
    """Audit record of one stage-2 page-table operation."""

    kind: str                    # "map" | "unmap"
    vpn: int
    writes: Tuple[PTWrite, ...]
    barrier_before_tlbi: bool
    tlbi: bool


class Stage2PageTable:
    """One principal's stage 2 table, with its lock and audit trail.

    ``levels`` is 3 or 4 — the paper verifies both (Section 5.6), with
    3-level tables reducing intermediate-entry TLB pressure on CPUs with
    small TLBs.
    """

    def __init__(
        self,
        owner_name: str,
        levels: int = 4,
        va_bits_per_level: int = 9,
        pool_pages: int = 4096,
        buggy_skip_tlbi: bool = False,
        buggy_skip_barrier: bool = False,
    ):
        if levels not in (3, 4):
            raise HypercallError("SeKVM supports 3- or 4-level stage 2 tables")
        self.owner_name = owner_name
        self.levels = levels
        self.pagetable = MultiLevelPageTable(
            levels=levels,
            va_bits_per_level=va_bits_per_level,
            pool_pages=pool_pages,
            name=f"s2pt-{owner_name}",
        )
        self.lock = TicketLock(name=f"s2pt-lock-{owner_name}")
        self.operations: List[S2PTOperation] = []
        self.tlb_invalidations = 0
        # Seeded-bug knobs for the ablation benchmarks (A2): a variant
        # that skips the TLBI or the barrier must be caught by the
        # Sequential-TLB-Invalidation audit.
        self._buggy_skip_tlbi = buggy_skip_tlbi
        self._buggy_skip_barrier = buggy_skip_barrier

    # ------------------------------------------------------------------
    def set_s2pt(self, cpu: int, vpn: int, pfn: int) -> S2PTOperation:
        """Establish ``vpn -> pfn``; the whole walk-allocate-set runs
        under the table lock and only ever writes empty entries."""
        self.lock.acquire(cpu)
        try:
            mark = len(self.pagetable.write_log)
            if self.pagetable.is_mapped(vpn):
                raise HypercallError(
                    f"set_s2pt({self.owner_name}): vpn {vpn:#x} already mapped"
                )
            self.pagetable.map(vpn, pfn, overwrite=False)
            writes = tuple(self.pagetable.write_log[mark:])
            op = S2PTOperation(
                kind="map",
                vpn=vpn,
                writes=writes,
                barrier_before_tlbi=True,
                tlbi=False,  # mapping an empty entry needs no invalidation
            )
            self.operations.append(op)
            return op
        finally:
            self.lock.release(cpu)

    def set_s2pt_block(
        self, cpu: int, vpn: int, pfn_base: int, level: Optional[int] = None
    ) -> S2PTOperation:
        """Establish a huge-page (block) mapping for the VM.

        KCore uses block mappings for VM stage 2 tables to reduce TLB
        pressure (Section 6); the update discipline is identical to
        ``set_s2pt`` — fresh tables plus one previously-empty entry — so
        the transactional proof carries over.
        """
        if level is None:
            level = self.levels - 2
        self.lock.acquire(cpu)
        try:
            mark = len(self.pagetable.write_log)
            self.pagetable.map_block(vpn, pfn_base, level)
            op = S2PTOperation(
                kind="map",
                vpn=vpn,
                writes=tuple(self.pagetable.write_log[mark:]),
                barrier_before_tlbi=True,
                tlbi=False,
            )
            self.operations.append(op)
            return op
        finally:
            self.lock.release(cpu)

    def clear_s2pt(self, cpu: int, vpn: int) -> S2PTOperation:
        """Unmap ``vpn``: one leaf write, then ``barrier; tlbi``."""
        self.lock.acquire(cpu)
        try:
            mark = len(self.pagetable.write_log)
            if not self.pagetable.unmap(vpn):
                raise HypercallError(
                    f"clear_s2pt({self.owner_name}): vpn {vpn:#x} not mapped"
                )
            writes = tuple(self.pagetable.write_log[mark:])
            do_tlbi = not self._buggy_skip_tlbi
            if do_tlbi:
                self.tlb_invalidations += 1
            op = S2PTOperation(
                kind="unmap",
                vpn=vpn,
                writes=writes,
                barrier_before_tlbi=not self._buggy_skip_barrier,
                tlbi=do_tlbi,
            )
            self.operations.append(op)
            return op
        finally:
            self.lock.release(cpu)

    # ------------------------------------------------------------------
    def translate(self, vpn: int) -> Optional[int]:
        return self.pagetable.walk(vpn)

    def is_mapped(self, vpn: int) -> bool:
        return self.pagetable.is_mapped(vpn)

    def mapped_pfns(self) -> List[int]:
        return [pfn for _vpn, pfn in self.pagetable.mappings()]

    def table_pages(self) -> int:
        """Table pages in use — the quantity 3-level tables reduce."""
        return self.pagetable.table_count()
