"""KCore: SeKVM's verified core (Section 5).

KCore is the only code running at EL2.  It owns the s2page ownership
database, its own EL2 page table, every stage 2 and SMMU page table, and
the vCPU contexts; KServ (the untrusted bulk of KVM) can only affect the
system through the hypercall surface implemented here.  Each handler
performs the exact checks the paper's proofs rely on:

* pages are mapped only into their owner's tables, never KCore's pages
  (:class:`~repro.sekvm.s2page.S2PageDB`);
* VM images are authenticated before a VM may run (``remap_pfn`` +
  measurement, §5.1);
* vCPU contexts follow the ACTIVE/INACTIVE protocol (§5.2);
* VM pages return to KServ only after scrubbing (§5.3);
* KCore reads of VM/KServ memory go through the data oracle interface,
  so nothing KCore does depends on user memory contents (§5.3).

The class also keeps counters (hypercalls, page-table ops, lock
acquisitions) that the performance simulator uses for its cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError, KernelPanic, SecurityViolation
from repro.mmu.smmu import SMMU
from repro.sekvm.el2pt import EL2PageTable
from repro.sekvm.locks import TicketLock
from repro.sekvm.physmem import PhysicalMemory
from repro.sekvm.s2page import KCORE, KSERV, Owner, S2PageDB, vm_owner
from repro.sekvm.s2pt import Stage2PageTable
from repro.sekvm.smmupt import SMMUPageTableManager
from repro.sekvm.vcpu import VCpuContext
from repro.sekvm.vgic import VGic, VGicDistributor
from repro.sekvm.vm import MAX_VM, VM, VMState, image_digest
from repro.vrm.oracle import DataOracle


@dataclass
class KCoreStats:
    """Operation counters consumed by the performance simulator."""

    hypercalls: int = 0
    s2pt_maps: int = 0
    s2pt_unmaps: int = 0
    smmu_maps: int = 0
    smmu_unmaps: int = 0
    vcpu_switches: int = 0
    pages_donated: int = 0
    pages_reclaimed: int = 0
    virtual_ipis: int = 0
    device_irqs: int = 0


class KCore:
    """The trusted computing base of SeKVM."""

    def __init__(
        self,
        memory: PhysicalMemory,
        s2_levels: int = 4,
        va_bits_per_level: int = 9,
        kcore_reserved_pages: Sequence[int] = (),
        smmu: Optional[SMMU] = None,
    ):
        self.memory = memory
        self.s2_levels = s2_levels
        self.va_bits_per_level = va_bits_per_level
        self.s2page = S2PageDB(memory.total_pages)
        self.el2pt = EL2PageTable(linear_pages=memory.total_pages)
        self.el2pt.boot()
        self.smmu = smmu if smmu is not None else SMMU(levels=s2_levels)
        self.vm_lock = TicketLock(name="vm-lock")
        self.next_vmid = 0
        self.vms: Dict[int, VM] = {}
        self.kserv_s2pt = Stage2PageTable(
            "kserv", levels=s2_levels, va_bits_per_level=va_bits_per_level
        )
        self.smmu_managers: Dict[int, SMMUPageTableManager] = {}
        self.vgic = VGicDistributor()
        self.oracle = DataOracle(values=(0,))
        self.oracle_reads: List[Tuple[str, int]] = []
        self.stats = KCoreStats()
        for pfn in kcore_reserved_pages:
            self.s2page.reserve_for_kcore(pfn)

    # ------------------------------------------------------------------
    # VM lifecycle hypercalls
    # ------------------------------------------------------------------
    def gen_vmid(self, cpu: int) -> int:
        """Allocate the next unused VMID (Figure 1, fixed lock)."""
        self.stats.hypercalls += 1
        self.vm_lock.acquire(cpu)
        try:
            vmid = self.next_vmid
            if vmid >= MAX_VM:
                raise KernelPanic("gen_vmid: VMID space exhausted", cpu=cpu)
            self.next_vmid += 1
        finally:
            self.vm_lock.release(cpu)
        self.vms[vmid] = VM(
            vmid=vmid,
            s2pt=Stage2PageTable(
                f"vm{vmid}",
                levels=self.s2_levels,
                va_bits_per_level=self.va_bits_per_level,
            ),
        )
        return vmid

    def register_vcpu(self, cpu: int, vmid: int, vcpu_id: int) -> None:
        self.stats.hypercalls += 1
        self._vm(vmid).add_vcpu(vcpu_id)

    def boot_vm(
        self,
        cpu: int,
        vmid: int,
        image_pfns: Sequence[int],
        expected_digest: str,
    ) -> None:
        """Authenticated VM boot (§5.1).

        KServ must own the image pages; KCore takes them (donation),
        remaps them to a contiguous EL2 region, measures the image
        through those mappings, and refuses to mark the VM runnable on a
        measurement mismatch (returning the pages scrubbed).
        """
        self.stats.hypercalls += 1
        vm = self._vm(vmid)
        if vm.state is not VMState.CREATED:
            raise HypercallError(f"VM {vmid} already booted")
        for pfn in image_pfns:
            self.s2page.donate_to_vm(pfn, vmid)
            vm.pages.append(pfn)
            self.stats.pages_donated += 1
        base_va = self.el2pt.remap_pfn(image_pfns)
        contents = []
        for offset in range(len(image_pfns)):
            pfn = self.el2pt.translate(base_va + offset)
            assert pfn is not None
            contents.append(self.memory.read(pfn))
        measured = image_digest(contents)
        if measured != expected_digest:
            for pfn in image_pfns:
                self.memory.scrub(pfn)
                self.s2page.reclaim(pfn, scrubbed=True)
            vm.pages.clear()
            raise HypercallError(
                f"VM {vmid}: image authentication failed"
            )
        vm.expected_digest = expected_digest
        vm.mark_verified()
        # Bring up the VM's virtual interrupt controller.
        self.vgic.create(vmid, n_vcpus=max(1, len(vm.vcpus)))
        # Install the verified image in the VM's stage 2 address space.
        for vpn, pfn in enumerate(image_pfns):
            self._map_vm_page(cpu, vm, vpn, pfn)

    def teardown_vm(self, cpu: int, vmid: int) -> int:
        """Power off a VM, scrub and reclaim every page; returns count."""
        self.stats.hypercalls += 1
        vm = self._vm(vmid)
        vm.power_off()
        reclaimed = 0
        for vpn, _pfn in list(vm.s2pt.pagetable.mappings()):
            self._unmap_vm_page(cpu, vm, vpn)
        for pfn in vm.pages:
            self.memory.scrub(pfn)
            self.s2page.reclaim(pfn, scrubbed=True)
            reclaimed += 1
            self.stats.pages_reclaimed += 1
        vm.pages.clear()
        return reclaimed

    # ------------------------------------------------------------------
    # vCPU context switching (§5.2)
    # ------------------------------------------------------------------
    def run_vcpu(self, cpu: int, vmid: int, vcpu_id: int) -> VCpuContext:
        self.stats.hypercalls += 1
        vm = self._vm(vmid)
        vm.mark_running()
        ctx = vm.vcpu(vcpu_id)
        self.vm_lock.acquire(cpu)
        try:
            ctx.activate(cpu)
        finally:
            self.vm_lock.release(cpu)
        self.stats.vcpu_switches += 1
        return ctx

    def stop_vcpu(self, cpu: int, vmid: int, vcpu_id: int) -> None:
        self.stats.hypercalls += 1
        ctx = self._vm(vmid).vcpu(vcpu_id)
        ctx.deactivate(cpu)
        self.stats.vcpu_switches += 1

    # ------------------------------------------------------------------
    # stage 2 fault handling / page mapping
    # ------------------------------------------------------------------
    def map_pfn_kserv(self, cpu: int, vpn: int, pfn: int) -> None:
        """KServ stage-2 fault: map a KServ-owned page at *vpn*."""
        self.stats.hypercalls += 1
        self.s2page.assert_mappable(pfn, KSERV)
        self.kserv_s2pt.set_s2pt(cpu, vpn, pfn)
        self.s2page.note_mapped(pfn)
        self.stats.s2pt_maps += 1

    def unmap_pfn_kserv(self, cpu: int, vpn: int) -> None:
        self.stats.hypercalls += 1
        pfn = self.kserv_s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"KServ vpn {vpn:#x} not mapped")
        self.kserv_s2pt.clear_s2pt(cpu, vpn)
        self.s2page.note_unmapped(pfn)
        self.stats.s2pt_unmaps += 1

    def grant_vm_page(self, cpu: int, vmid: int, vpn: int, pfn: int) -> None:
        """Donate a KServ page to a VM and map it (VM stage-2 fault path).

        The page is scrubbed at donation so KServ data never leaks into
        the VM and, conversely, the VM starts from a clean page.
        """
        self.stats.hypercalls += 1
        vm = self._vm(vmid)
        self.memory.scrub(pfn)
        self.s2page.donate_to_vm(pfn, vmid)
        vm.pages.append(pfn)
        self.stats.pages_donated += 1
        self._map_vm_page(cpu, vm, vpn, pfn)

    def _map_vm_page(self, cpu: int, vm: VM, vpn: int, pfn: int) -> None:
        self.s2page.assert_mappable(pfn, vm_owner(vm.vmid))
        vm.s2pt.set_s2pt(cpu, vpn, pfn)
        self.s2page.note_mapped(pfn)
        self.stats.s2pt_maps += 1

    def _unmap_vm_page(self, cpu: int, vm: VM, vpn: int) -> None:
        pfn = vm.s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"VM {vm.vmid} vpn {vpn:#x} not mapped")
        vm.s2pt.clear_s2pt(cpu, vpn)
        self.s2page.note_unmapped(pfn)
        self.stats.s2pt_unmaps += 1

    def share_vm_page(self, cpu: int, vmid: int, vpn: int) -> int:
        """A VM volunteers one of its pages for sharing with KServ.

        The virtio model: guests explicitly designate ring/buffer pages;
        only then may KServ map them (``assert_mappable`` honors the
        shared flag).  Everything else stays exclusively VM-owned.
        Returns the shared pfn.
        """
        self.stats.hypercalls += 1
        vm = self._vm(vmid)
        pfn = vm.s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"VM {vmid} vpn {vpn:#x} not mapped")
        self.s2page.mark_shared(pfn)
        return pfn

    # ------------------------------------------------------------------
    # virtual interrupts (Table 2's I/O Kernel / Virtual IPI paths)
    # ------------------------------------------------------------------
    def send_vipi(
        self, cpu: int, vmid: int, sender_vcpu: int, target_vcpu: int,
        intid: int = 0,
    ) -> None:
        """A guest vCPU's SGI, mediated by KCore (same-VM only)."""
        self.stats.hypercalls += 1
        self._vm(vmid)  # the VM must exist
        self.vgic.send_ipi(vmid, sender_vcpu, vmid, target_vcpu, intid)
        self.stats.virtual_ipis += 1

    def inject_device_irq(
        self, cpu: int, vmid: int, intid: int, target_vcpu: int = 0
    ) -> None:
        """KServ's device emulation raises a device interrupt line."""
        self.stats.hypercalls += 1
        self.vgic.for_vm(vmid).inject_spi(intid, target_vcpu)
        self.stats.device_irqs += 1

    # ------------------------------------------------------------------
    # SMMU (DMA) management
    # ------------------------------------------------------------------
    def smmu_manager(self, device_id: int) -> SMMUPageTableManager:
        if device_id not in self.smmu_managers:
            self.smmu_managers[device_id] = SMMUPageTableManager(
                self.smmu, device_id
            )
        return self.smmu_managers[device_id]

    def smmu_map(
        self, cpu: int, device_id: int, iova: int, pfn: int, owner: Owner
    ) -> None:
        """Map a page for device DMA; the page must belong to the
        device's assigned owner and never to KCore."""
        self.stats.hypercalls += 1
        self.s2page.assert_mappable(pfn, owner)
        self.smmu_manager(device_id).set_spt(cpu, iova, pfn)
        self.s2page.note_mapped(pfn)
        self.stats.smmu_maps += 1

    def smmu_unmap(self, cpu: int, device_id: int, iova: int) -> None:
        self.stats.hypercalls += 1
        manager = self.smmu_manager(device_id)
        pfn = manager.translate(iova)
        if pfn is None:
            raise HypercallError(
                f"device {device_id} iova {iova:#x} not mapped"
            )
        manager.clear_spt(cpu, iova)
        self.s2page.note_unmapped(pfn)
        self.stats.smmu_unmaps += 1

    # ------------------------------------------------------------------
    # mediated memory access
    # ------------------------------------------------------------------
    def kserv_read(self, vpn: int) -> int:
        """A KServ load: translated by its stage 2 table; faults
        (HypercallError) if unmapped — the hardware enforcement that
        KServ only reaches memory KCore mapped for it."""
        pfn = self.kserv_s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"KServ stage-2 fault at vpn {vpn:#x}")
        return self.memory.read(pfn)

    def kserv_write(self, vpn: int, value: int) -> None:
        pfn = self.kserv_s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"KServ stage-2 fault at vpn {vpn:#x}")
        self.memory.write(pfn, value)

    def vm_read(self, vmid: int, vpn: int) -> int:
        pfn = self._vm(vmid).s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"VM {vmid} stage-2 fault at vpn {vpn:#x}")
        return self.memory.read(pfn)

    def vm_write(self, vmid: int, vpn: int, value: int) -> None:
        pfn = self._vm(vmid).s2pt.translate(vpn)
        if pfn is None:
            raise HypercallError(f"VM {vmid} stage-2 fault at vpn {vpn:#x}")
        self.memory.write(pfn, value)

    def kcore_read_user(self, what: str) -> int:
        """KCore reading VM/KServ memory — through the data oracle (§5.3).

        The verified KCore never lets user memory contents influence its
        control flow directly; reads are modeled as oracle draws, and the
        draw log is what the Weak-Memory-Isolation audit inspects.
        """
        value = self.oracle.draw()
        self.oracle_reads.append((what, value))
        return value

    # ------------------------------------------------------------------
    def _vm(self, vmid: int) -> VM:
        try:
            return self.vms[vmid]
        except KeyError:
            raise HypercallError(f"no VM with vmid {vmid}") from None
