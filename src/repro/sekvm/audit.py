"""Runtime wDRF audit of a live SeKVM system.

The IR-level checkers verify KCore's *code*; this module audits a
running functional system's *history*: every page-table operation ever
performed (stage 2, SMMU, EL2) is replayed through the same condition
audits — write-once for the kernel table, transactional discipline for
guest tables, barrier+TLBI on every unmap.  Any scenario the test suite
or the stateful fuzzer drives through the system can therefore be
checked after the fact, which is how implementation drift (a new
hypercall forgetting an invalidation) gets caught without re-deriving
IR programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sekvm.hypervisor import SeKVMSystem
from repro.vrm.conditions import ConditionResult, WDRFCondition
from repro.vrm.transactional import audit_operation_writes
from repro.vrm.write_once import audit_write_log


@dataclass
class SystemAudit:
    """Aggregated audit results for one system's history."""

    results: List[ConditionResult] = field(default_factory=list)
    operations_audited: int = 0

    @property
    def holds(self) -> bool:
        return all(r.holds for r in self.results)

    @property
    def violations(self) -> Tuple[str, ...]:
        out: List[str] = []
        for result in self.results:
            out.extend(result.violations)
        return tuple(out)

    def describe(self) -> str:
        status = "CLEAN" if self.holds else "VIOLATIONS FOUND"
        lines = [
            f"system audit: {self.operations_audited} operations — {status}"
        ]
        for violation in self.violations:
            lines.append(f"  {violation}")
        return "\n".join(lines)


def _audit_pt_manager(audit: SystemAudit, name: str, operations) -> None:
    for op in operations:
        audit.operations_audited += 1
        result = audit_operation_writes(op.writes, op.kind)
        if not result.holds:
            audit.results.append(
                ConditionResult(
                    condition=WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
                    holds=False,
                    exhaustive=True,
                    violations=tuple(
                        f"{name}: {v}" for v in result.violations
                    ),
                )
            )
        if op.kind == "unmap" and not (op.tlbi and op.barrier_before_tlbi):
            audit.results.append(
                ConditionResult(
                    condition=WDRFCondition.SEQUENTIAL_TLB_INVALIDATION,
                    holds=False,
                    exhaustive=True,
                    violations=(
                        f"{name}: unmap of vpn {op.vpn:#x} without "
                        f"{'barrier' if op.tlbi else 'TLBI'}",
                    ),
                )
            )


def audit_system(system: SeKVMSystem) -> SystemAudit:
    """Audit every page-table operation the system ever performed."""
    audit = SystemAudit()
    kcore = system.kcore

    # Write-Once-Kernel-Mapping over the EL2 table's full history.
    el2 = audit_write_log(kcore.el2pt.write_log, subject="EL2 page table")
    audit.operations_audited += len(kcore.el2pt.write_log)
    if not el2.holds:
        audit.results.append(el2)

    # Transactional + Sequential-TLB discipline over guest tables.
    _audit_pt_manager(audit, "kserv-s2pt", kcore.kserv_s2pt.operations)
    for vmid, vm in kcore.vms.items():
        _audit_pt_manager(audit, f"vm{vmid}-s2pt", vm.s2pt.operations)
    for device_id, manager in kcore.smmu_managers.items():
        _audit_pt_manager(audit, f"smmu-dev{device_id}", manager.operations)

    # A clean audit still records the positive result.
    if not audit.results:
        audit.results.append(
            ConditionResult(
                condition=WDRFCondition.TRANSACTIONAL_PAGE_TABLE,
                holds=True,
                exhaustive=True,
                evidence=(
                    f"{audit.operations_audited} operations audited clean",
                ),
            )
        )
    return audit
