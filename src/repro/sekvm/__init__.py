"""SeKVM: the verified KVM retrofit (KCore + KServ) and its verification.

The functional model (``kcore``/``kserv``/``hypervisor``/``security``)
carries the security-property checks; ``ir_programs``/``verify`` carry
the wDRF verification of the concurrency-relevant primitives.
"""

from repro.sekvm.locks import LockAddrs, TicketLock, emit_acquire, emit_release
from repro.sekvm.physmem import PhysicalMemory
from repro.sekvm.s2page import (
    KCORE,
    KSERV,
    Owner,
    OwnerKind,
    S2PageDB,
    vm_owner,
)
from repro.sekvm.el2pt import EL2PageTable
from repro.sekvm.s2pt import S2PTOperation, Stage2PageTable
from repro.sekvm.smmupt import SMMUPageTableManager
from repro.sekvm.vcpu import VCpuContext, VCpuState
from repro.sekvm.vm import MAX_VM, VM, VMState, image_digest
from repro.sekvm.kcore import KCore, KCoreStats
from repro.sekvm.vgic import VGic, VGicDistributor
from repro.sekvm.hypercalls import HVC, HvcResult, HvcStatus, HypercallInterface
from repro.sekvm.snapshot import SealedSnapshot, SnapshotManager
from repro.sekvm.scheduler import SchedulerStats, VCpuScheduler
from repro.sekvm.audit import SystemAudit, audit_system
from repro.sekvm.kserv import KServ
from repro.sekvm.hypervisor import SeKVMSystem, make_image
from repro.sekvm.security import (
    AttackResult,
    all_attacks_refused,
    check_vm_confidentiality,
    check_vm_integrity,
    run_attack_battery,
)
from repro.sekvm.versions import KVMVersion, all_versions, default_version
from repro.sekvm.ir_programs import (
    PrimitiveCase,
    kcore_buggy_cases,
    kcore_verified_cases,
)
from repro.sekvm.verify import (
    CaseOutcome,
    VersionOutcome,
    verify_all_versions,
    verify_sekvm,
)

__all__ = [
    "LockAddrs",
    "TicketLock",
    "emit_acquire",
    "emit_release",
    "PhysicalMemory",
    "KCORE",
    "KSERV",
    "Owner",
    "OwnerKind",
    "S2PageDB",
    "vm_owner",
    "EL2PageTable",
    "S2PTOperation",
    "Stage2PageTable",
    "SMMUPageTableManager",
    "VCpuContext",
    "VCpuState",
    "MAX_VM",
    "VM",
    "VMState",
    "image_digest",
    "KCore",
    "KCoreStats",
    "VGic",
    "VGicDistributor",
    "HVC",
    "HvcResult",
    "HvcStatus",
    "HypercallInterface",
    "SealedSnapshot",
    "SnapshotManager",
    "SchedulerStats",
    "VCpuScheduler",
    "SystemAudit",
    "audit_system",
    "KServ",
    "SeKVMSystem",
    "make_image",
    "AttackResult",
    "all_attacks_refused",
    "check_vm_confidentiality",
    "check_vm_integrity",
    "run_attack_battery",
    "KVMVersion",
    "all_versions",
    "default_version",
    "PrimitiveCase",
    "kcore_buggy_cases",
    "kcore_verified_cases",
    "CaseOutcome",
    "VersionOutcome",
    "verify_all_versions",
    "verify_sekvm",
]
