"""The ``s2page`` ownership database (Section 5.3).

KCore tracks the owner of every 4 KB physical page: KCore itself, KServ,
or a VM.  A page has exactly one owner at any time; KCore checks that it
is *not* the owner before mapping a page into any stage 2 or SMMU table,
which is the invariant that keeps hypervisor memory unreachable from
VMs, KServ, and DMA.

Ownership transfers model the SeKVM protocols: KServ donates pages to a
VM at boot or on stage-2 fault; a VM's pages return to KServ only after
scrubbing when the VM is torn down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import HypercallError, SecurityViolation


class OwnerKind(enum.Enum):
    KCORE = "kcore"
    KSERV = "kserv"
    VM = "vm"


@dataclass(frozen=True)
class Owner:
    """A page owner: KCore, KServ, or a specific VM."""

    kind: OwnerKind
    vmid: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.kind is OwnerKind.VM) != (self.vmid is not None):
            raise ValueError("VM owners carry a vmid; others must not")

    def __str__(self) -> str:
        return f"VM{self.vmid}" if self.kind is OwnerKind.VM else self.kind.value


KCORE = Owner(OwnerKind.KCORE)
KSERV = Owner(OwnerKind.KSERV)


def vm_owner(vmid: int) -> Owner:
    return Owner(OwnerKind.VM, vmid)


@dataclass
class S2PageEntry:
    """Per-page metadata: owner, map count, and share flag."""

    owner: Owner
    mapped_count: int = 0
    shared: bool = False


class S2PageDB:
    """The per-page ownership table, with transfer auditing.

    Invariants enforced on every operation:

    * a page has exactly one owner;
    * KCore-owned pages are never mapped into stage 2 / SMMU tables
      (:meth:`assert_mappable`);
    * ownership transfers follow the SeKVM protocols (KServ -> VM at
      donation; VM -> KServ only through :meth:`reclaim`, which requires
      the page to be scrubbed).
    """

    def __init__(self, total_pages: int):
        if total_pages <= 0:
            raise ValueError("need at least one physical page")
        self.total_pages = total_pages
        self._entries: List[S2PageEntry] = [
            S2PageEntry(owner=KSERV) for _ in range(total_pages)
        ]
        self.transfers: List[Tuple[int, Owner, Owner]] = []

    def _entry(self, pfn: int) -> S2PageEntry:
        if not 0 <= pfn < self.total_pages:
            raise HypercallError(f"pfn {pfn:#x} out of range")
        return self._entries[pfn]

    # ------------------------------------------------------------------
    def owner_of(self, pfn: int) -> Owner:
        return self._entry(pfn).owner

    def pages_owned_by(self, owner: Owner) -> Iterator[int]:
        for pfn, entry in enumerate(self._entries):
            if entry.owner == owner:
                yield pfn

    def assert_mappable(self, pfn: int, for_owner: Owner) -> None:
        """KCore's pre-map check: never map KCore pages anywhere, and
        only map pages into tables of their actual owner."""
        entry = self._entry(pfn)
        if entry.owner == KCORE:
            raise SecurityViolation(
                f"attempt to map KCore-owned page {pfn:#x} into a "
                f"{for_owner} table"
            )
        if entry.owner != for_owner and not entry.shared:
            raise HypercallError(
                f"page {pfn:#x} owned by {entry.owner}, not {for_owner}"
            )

    # ------------------------------------------------------------------
    def reserve_for_kcore(self, pfn: int) -> None:
        """Claim a page for KCore (boot-time pools, page tables)."""
        entry = self._entry(pfn)
        if entry.mapped_count:
            raise HypercallError(
                f"page {pfn:#x} still mapped {entry.mapped_count} times"
            )
        self.transfers.append((pfn, entry.owner, KCORE))
        entry.owner = KCORE
        entry.shared = False

    def donate_to_vm(self, pfn: int, vmid: int) -> None:
        """KServ donates one of its pages to a VM."""
        entry = self._entry(pfn)
        if entry.owner != KSERV:
            raise HypercallError(
                f"cannot donate page {pfn:#x} owned by {entry.owner}"
            )
        if entry.mapped_count:
            raise HypercallError(
                f"page {pfn:#x} must be unmapped from KServ before donation"
            )
        new_owner = vm_owner(vmid)
        self.transfers.append((pfn, entry.owner, new_owner))
        entry.owner = new_owner

    def reclaim(self, pfn: int, scrubbed: bool) -> None:
        """Return a VM page to KServ; requires scrubbing (confidentiality)."""
        entry = self._entry(pfn)
        if entry.owner.kind is not OwnerKind.VM:
            raise HypercallError(
                f"page {pfn:#x} is not VM-owned ({entry.owner})"
            )
        if not scrubbed:
            raise SecurityViolation(
                f"reclaiming VM page {pfn:#x} without scrubbing leaks VM data"
            )
        if entry.mapped_count:
            raise HypercallError(f"page {pfn:#x} still mapped")
        self.transfers.append((pfn, entry.owner, KSERV))
        entry.owner = KSERV
        entry.shared = False

    def mark_shared(self, pfn: int) -> None:
        """A VM explicitly shares a page with KServ (e.g. virtio rings)."""
        entry = self._entry(pfn)
        if entry.owner.kind is not OwnerKind.VM:
            raise HypercallError("only VM pages can be shared with KServ")
        entry.shared = True

    # ------------------------------------------------------------------
    def note_mapped(self, pfn: int) -> None:
        self._entry(pfn).mapped_count += 1

    def note_unmapped(self, pfn: int) -> None:
        entry = self._entry(pfn)
        if entry.mapped_count <= 0:
            raise HypercallError(f"unbalanced unmap of page {pfn:#x}")
        entry.mapped_count -= 1

    def audit_exclusive_ownership(self) -> None:
        """Invariant check used by tests: every page has one owner and
        KCore pages are unmapped."""
        for pfn, entry in enumerate(self._entries):
            if entry.owner == KCORE and entry.mapped_count:
                raise SecurityViolation(
                    f"KCore page {pfn:#x} is mapped into a guest-visible table"
                )
