"""The hypercall ABI: the complete KServ -> KCore trap surface.

SeKVM's security argument rests on KCore exposing a *narrow, numbered*
interface — KServ cannot call arbitrary KCore functions, only issue
``HVC`` with a hypercall number and register arguments.  This module
makes that boundary explicit: a dispatch table from numbers to handlers,
argument validation, and errno-style results (a malicious KServ gets an
error code, never an exception escaping EL2 — except modeled panics,
which are KCore's own invariant violations).

The numbers and grouping follow SeKVM's hypercall inventory: VM
lifecycle, vCPU control, stage 2 / SMMU page management, interrupts,
and the boot-time ``remap_pfn`` path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError, KernelPanic, SecurityViolation
from repro.sekvm.kcore import KCore
from repro.sekvm.s2page import KSERV, vm_owner


class HVC(enum.IntEnum):
    """Hypercall numbers (the guest/host-visible ABI)."""

    # VM lifecycle
    GEN_VMID = 0x10
    REGISTER_VCPU = 0x11
    BOOT_VM = 0x12
    TEARDOWN_VM = 0x13
    # vCPU control
    RUN_VCPU = 0x20
    STOP_VCPU = 0x21
    # stage 2 page management
    MAP_PFN_KSERV = 0x30
    UNMAP_PFN_KSERV = 0x31
    GRANT_VM_PAGE = 0x32
    # SMMU
    SMMU_MAP = 0x40
    SMMU_UNMAP = 0x41
    # interrupts
    SEND_VIPI = 0x50
    INJECT_IRQ = 0x51


class HvcStatus(enum.IntEnum):
    """errno-style results returned to KServ."""

    OK = 0
    EINVAL = 22          # malformed arguments
    EPERM = 1            # policy refused (ownership, authentication...)
    ENOENT = 2           # no such VM/vCPU/mapping


@dataclass(frozen=True)
class HvcResult:
    """One hypercall's outcome: status plus an optional return value."""

    status: HvcStatus
    value: int = 0

    @property
    def ok(self) -> bool:
        return self.status is HvcStatus.OK


class HypercallInterface:
    """The EL2 trap handler: dispatches numbered hypercalls to KCore.

    ``SecurityViolation`` and ``KernelPanic`` deliberately propagate —
    the first must be impossible for verified KCore (tests assert it),
    the second is KCore's own panic and stops the machine.
    """

    def __init__(self, kcore: KCore):
        self.kcore = kcore
        self.calls: List[Tuple[HVC, Tuple[int, ...]]] = []
        self._handlers: Dict[HVC, Callable[..., int]] = {
            HVC.GEN_VMID: self._gen_vmid,
            HVC.REGISTER_VCPU: self._register_vcpu,
            HVC.BOOT_VM: self._boot_vm,
            HVC.TEARDOWN_VM: self._teardown_vm,
            HVC.RUN_VCPU: self._run_vcpu,
            HVC.STOP_VCPU: self._stop_vcpu,
            HVC.MAP_PFN_KSERV: self._map_pfn_kserv,
            HVC.UNMAP_PFN_KSERV: self._unmap_pfn_kserv,
            HVC.GRANT_VM_PAGE: self._grant_vm_page,
            HVC.SMMU_MAP: self._smmu_map,
            HVC.SMMU_UNMAP: self._smmu_unmap,
            HVC.SEND_VIPI: self._send_vipi,
            HVC.INJECT_IRQ: self._inject_irq,
        }
        # Boot images are passed out of band (registers can't carry a
        # page list); KServ stages them here before HVC.BOOT_VM.
        self.staged_images: Dict[int, Tuple[Sequence[int], str]] = {}

    # ------------------------------------------------------------------
    def hvc(self, cpu: int, number: int, *args: int) -> HvcResult:
        """Issue one hypercall from *cpu*."""
        try:
            call = HVC(number)
        except ValueError:
            return HvcResult(HvcStatus.EINVAL)
        self.calls.append((call, tuple(args)))
        handler = self._handlers[call]
        try:
            value = handler(cpu, *args)
        except TypeError:
            return HvcResult(HvcStatus.EINVAL)
        except HypercallError as exc:
            status = (
                HvcStatus.ENOENT
                if "no VM" in str(exc) or "not mapped" in str(exc)
                else HvcStatus.EPERM
            )
            return HvcResult(status)
        return HvcResult(HvcStatus.OK, value if value is not None else 0)

    # ------------------------------------------------------------------
    def _gen_vmid(self, cpu: int) -> int:
        return self.kcore.gen_vmid(cpu)

    def _register_vcpu(self, cpu: int, vmid: int, vcpu_id: int) -> int:
        self.kcore.register_vcpu(cpu, vmid, vcpu_id)
        return 0

    def _boot_vm(self, cpu: int, vmid: int) -> int:
        if vmid not in self.staged_images:
            raise HypercallError(f"no VM image staged for vmid {vmid}")
        pfns, digest = self.staged_images.pop(vmid)
        self.kcore.boot_vm(cpu, vmid, pfns, digest)
        return 0

    def _teardown_vm(self, cpu: int, vmid: int) -> int:
        return self.kcore.teardown_vm(cpu, vmid)

    def _run_vcpu(self, cpu: int, vmid: int, vcpu_id: int) -> int:
        self.kcore.run_vcpu(cpu, vmid, vcpu_id)
        return 0

    def _stop_vcpu(self, cpu: int, vmid: int, vcpu_id: int) -> int:
        self.kcore.stop_vcpu(cpu, vmid, vcpu_id)
        return 0

    def _map_pfn_kserv(self, cpu: int, vpn: int, pfn: int) -> int:
        self.kcore.map_pfn_kserv(cpu, vpn, pfn)
        return 0

    def _unmap_pfn_kserv(self, cpu: int, vpn: int) -> int:
        self.kcore.unmap_pfn_kserv(cpu, vpn)
        return 0

    def _grant_vm_page(self, cpu: int, vmid: int, vpn: int, pfn: int) -> int:
        self.kcore.grant_vm_page(cpu, vmid, vpn, pfn)
        return 0

    def _smmu_map(
        self, cpu: int, device_id: int, iova: int, pfn: int, owner_vmid: int
    ) -> int:
        owner = KSERV if owner_vmid < 0 else vm_owner(owner_vmid)
        self.kcore.smmu_map(cpu, device_id, iova, pfn, owner)
        return 0

    def _smmu_unmap(self, cpu: int, device_id: int, iova: int) -> int:
        self.kcore.smmu_unmap(cpu, device_id, iova)
        return 0

    def _send_vipi(
        self, cpu: int, vmid: int, sender_vcpu: int, target_vcpu: int
    ) -> int:
        self.kcore.send_vipi(cpu, vmid, sender_vcpu, target_vcpu)
        return 0

    def _inject_irq(self, cpu: int, vmid: int, intid: int, target: int) -> int:
        self.kcore.inject_device_irq(cpu, vmid, intid, target)
        return 0
