"""KServ's vCPU scheduler.

Scheduling is untrusted in SeKVM: KServ decides *which* vCPU runs
*where*, but every placement goes through KCore's ``run_vcpu`` /
``stop_vcpu`` hypercalls, so the ACTIVE/INACTIVE context protocol (§5.2)
is enforced regardless of scheduling decisions — including migrations
between physical CPUs, the case Example 3 is about.

The model is a round-robin multiplexer: a global ready queue of vCPUs,
``tick()`` preempts every physical CPU and places the next ready vCPU.
Guest register state is saved/restored through the protocol, so the
tests can verify context integrity across arbitrary migration patterns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import HypercallError
from repro.sekvm.kcore import KCore

#: A schedulable entity.
VCpuId = Tuple[int, int]          # (vmid, vcpu_id)


@dataclass
class SchedulerStats:
    placements: int = 0
    preemptions: int = 0
    migrations: int = 0


class VCpuScheduler:
    """Round-robin vCPU scheduler over the machine's physical CPUs."""

    def __init__(self, kcore: KCore, cpus: int):
        if cpus < 1:
            raise HypercallError("need at least one physical CPU")
        self.kcore = kcore
        self.cpus = cpus
        self.ready: Deque[VCpuId] = deque()
        self.running: Dict[int, VCpuId] = {}       # cpu -> vcpu
        self._last_cpu: Dict[VCpuId, int] = {}
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    def enqueue(self, vmid: int, vcpu_id: int) -> None:
        """Make a vCPU schedulable."""
        key = (vmid, vcpu_id)
        if key in self.ready or key in self.running.values():
            raise HypercallError(f"vCPU {key} already scheduled")
        self.ready.append(key)

    def remove(self, vmid: int, vcpu_id: int) -> None:
        """Deschedule a vCPU (stopping it first if running)."""
        key = (vmid, vcpu_id)
        for cpu, current in list(self.running.items()):
            if current == key:
                self._stop(cpu)
        if key in self.ready:
            self.ready.remove(key)

    # ------------------------------------------------------------------
    def _stop(self, cpu: int) -> None:
        vmid, vcpu_id = self.running.pop(cpu)
        self.kcore.stop_vcpu(cpu, vmid, vcpu_id)
        self.ready.append((vmid, vcpu_id))
        self.stats.preemptions += 1

    def _place(self, cpu: int) -> Optional[VCpuId]:
        if not self.ready:
            return None
        key = self.ready.popleft()
        vmid, vcpu_id = key
        self.kcore.run_vcpu(cpu, vmid, vcpu_id)
        self.running[cpu] = key
        last = self._last_cpu.get(key)
        if last is not None and last != cpu:
            self.stats.migrations += 1
        self._last_cpu[key] = cpu
        self.stats.placements += 1
        return key

    def tick(self) -> None:
        """One scheduling round: preempt everything, place round-robin."""
        for cpu in sorted(self.running):
            self._stop(cpu)
        for cpu in range(self.cpus):
            if self._place(cpu) is None:
                break

    def run_rounds(self, rounds: int) -> None:
        for _ in range(rounds):
            self.tick()

    def idle(self) -> None:
        """Stop everything (e.g. before system shutdown)."""
        for cpu in sorted(self.running):
            self._stop(cpu)

    def where(self, vmid: int, vcpu_id: int) -> Optional[int]:
        for cpu, key in self.running.items():
            if key == (vmid, vcpu_id):
                return cpu
        return None
