"""KCore's ticket lock (Figure 7) — functional form and IR emitters.

KCore uses Linux's arm64 ticket lock: ``acquire`` atomically takes a
ticket (``LDADDA`` — fetch-and-increment with acquire) and spins on
``now`` with load-acquire; ``release`` bumps ``now`` with store-release.
The push/pull instrumentation points sit exactly where Figure 7 places
them: ``pull`` after the spin loop, ``push`` before the releasing store.

The IR emitters also expose the *buggy* variant (no acquire/release) so
the test and benchmark suites can demonstrate that the DRF-Kernel and
No-Barrier-Misuse checkers reject it (Example 2).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.ir.builder import ThreadBuilder
from repro.ir.expr import ExprLike, Reg
from repro.ir.instructions import MemSpace


@dataclass(frozen=True)
class LockAddrs:
    """Shared-memory locations of one ticket lock instance."""

    ticket: int
    now: int

    def initial_memory(self) -> dict:
        return {self.ticket: 0, self.now: 0}


def emit_acquire(
    b: ThreadBuilder,
    lock: LockAddrs,
    protects: Sequence[ExprLike] = (),
    correct: bool = True,
    ticket_reg: str = "my_ticket",
    now_reg: str = "now",
) -> ThreadBuilder:
    """Emit ``acquire_lock()`` and pull the protected locations.

    ``correct=False`` drops the acquire semantics (Example 2's bug).
    """
    b.faa(ticket_reg, lock.ticket, acquire=correct)
    b.spin_until_eq(now_reg, lock.now, ticket_reg, acquire=correct)
    if protects:
        b.pull(*protects)
    return b


def emit_release(
    b: ThreadBuilder,
    lock: LockAddrs,
    protects: Sequence[ExprLike] = (),
    correct: bool = True,
    scratch_reg: str = "_rel_t",
) -> ThreadBuilder:
    """Emit ``release_lock()`` after pushing the protected locations."""
    if protects:
        b.push(*protects)
    b.load(scratch_reg, lock.now, space=MemSpace.SYNC)
    b.store(lock.now, Reg(scratch_reg) + 1, release=correct,
            space=MemSpace.SYNC)
    return b


class TicketLock:
    """Functional ticket lock for the (sequential) SeKVM model.

    The functional model executes hypercalls atomically, so this lock's
    job is bookkeeping, invariant checking, and contention *accounting*
    (the performance simulator reads ``acquisitions``/``contended`` to
    model lock behavior under multi-VM load).  It still enforces the
    ticket discipline so double-release bugs surface.
    """

    def __init__(self, name: str = "lock"):
        self.name = name
        self._ticket = 0
        self._now = 0
        self._holder: int | None = None
        self.acquisitions = 0
        self.contended = 0

    @property
    def held(self) -> bool:
        return self._holder is not None

    def acquire(self, cpu: int) -> None:
        if self._holder == cpu:
            raise RuntimeError(f"{self.name}: CPU {cpu} re-acquired (not reentrant)")
        if self._holder is not None:
            self.contended += 1
        my_ticket = self._ticket
        self._ticket += 1
        # Sequential model: the lock is available by the time we run.
        assert my_ticket >= self._now
        self._now = my_ticket
        self._holder = cpu
        self.acquisitions += 1

    def release(self, cpu: int) -> None:
        if self._holder != cpu:
            raise RuntimeError(
                f"{self.name}: CPU {cpu} released a lock held by {self._holder}"
            )
        self._holder = None
        self._now += 1

    def __enter__(self):  # pragma: no cover - convenience
        self.acquire(cpu=-1)
        return self

    def __exit__(self, *exc):  # pragma: no cover - convenience
        self.release(cpu=-1)
