"""VM confidentiality and integrity checks (the SeKVM guarantees, §5).

The paper's end-to-end guarantee — KCore protects the confidentiality
and integrity of VM data against an arbitrary KServ and other VMs — is
reproduced as executable property checks:

* **Confidentiality** (:func:`check_vm_confidentiality`): a
  noninterference experiment.  Run the same adversarial KServ scenario
  twice with different VM secrets; everything KServ observes (its page
  reads, hypercall outcomes, stolen values) must be identical.  Any
  difference is a channel from VM memory to KServ.
* **Integrity** (:func:`check_vm_integrity`): after a battery of KServ
  attacks (mapping VM/KCore pages, DMA into VM memory, image tampering,
  unscrubbed reclaim), the VM's memory must be exactly what the VM wrote.
* **Attack battery** (:func:`run_attack_battery`): each attack must be
  *refused* by the verified KCore; the suite returns which succeeded, so
  tests can assert none did (and that seeded-vulnerable variants fail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError, SecurityViolation
from repro.sekvm.hypervisor import SeKVMSystem, make_image
from repro.sekvm.s2page import KSERV
from repro.sekvm.versions import KVMVersion


@dataclass
class AttackResult:
    name: str
    succeeded: bool
    detail: str = ""


def _adversarial_scenario(system: SeKVMSystem, secret: int) -> List[Tuple[str, int]]:
    """One full adversarial run; returns KServ's observation trace."""
    cpu = 0
    image, _ = make_image(101, 102, 103)
    vmid = system.boot_vm(image, vcpus=2, cpu=cpu)
    # The guest writes its secret into its own memory.
    system.run_guest_work(vmid, vcpu_id=0, cpu=cpu, writes={0x10: secret})
    # KServ probes: direct maps of VM pages, KCore pages, DMA, reads of
    # its own memory (the legitimate channel).
    for pfn in system.vm_pages(vmid):
        system.kserv.try_map_foreign_page(cpu, pfn)
    for pfn in system.kcore_pages()[:4]:
        system.kserv.try_map_foreign_page(cpu, pfn)
    for pfn in system.vm_pages(vmid)[:2]:
        system.kserv.try_dma_attack(cpu, device_id=1, pfn=pfn)
    own = system.kserv.alloc_page()
    vpn = system.kserv.map_and_write(cpu, own, 0xAB)
    system.kserv.read(vpn)
    # Teardown returns pages to KServ — scrubbed.
    system.teardown_vm(vmid, cpu=cpu)
    for pfn in system.vm_pages(vmid):
        system.kserv.try_map_foreign_page(cpu, pfn)
    return list(system.kserv.observations)


def check_vm_confidentiality(
    version: Optional[KVMVersion] = None,
    secrets: Tuple[int, int] = (0x5EC, 0x7E57),
) -> bool:
    """Noninterference: KServ's trace is independent of VM secrets."""
    traces = []
    for secret in secrets:
        system = SeKVMSystem(version=version)
        traces.append(_adversarial_scenario(system, secret))
    if traces[0] != traces[1]:
        raise SecurityViolation(
            "KServ observations depend on VM secret: "
            f"{traces[0]} vs {traces[1]}"
        )
    return True


def check_vm_integrity(version: Optional[KVMVersion] = None) -> bool:
    """VM memory reflects only the VM's own writes, despite attacks."""
    cpu = 0
    system = SeKVMSystem(version=version)
    image, _ = make_image(7, 8, 9)
    vmid = system.boot_vm(image, vcpus=1, cpu=cpu)
    system.run_guest_work(vmid, vcpu_id=0, cpu=cpu, writes={0x20: 1234})
    # Attack: KServ tries to remap / DMA / overwrite VM pages.
    for pfn in system.vm_pages(vmid):
        system.kserv.try_map_foreign_page(cpu, pfn)
        system.kserv.try_dma_attack(cpu, device_id=2, pfn=pfn)
    # The image pages and the guest write must be intact.
    for vpn, expected in ((0, 7), (1, 8), (2, 9), (0x20, 1234)):
        actual = system.guest_read(vmid, vpn)
        if actual != expected:
            raise SecurityViolation(
                f"VM {vmid} page {vpn:#x} corrupted: {actual} != {expected}"
            )
    return True


def run_attack_battery(
    version: Optional[KVMVersion] = None,
) -> List[AttackResult]:
    """Run every modeled KServ attack; each must be refused."""
    cpu = 0
    results: List[AttackResult] = []

    # --- map a VM page into KServ -------------------------------------
    system = SeKVMSystem(version=version)
    image, _ = make_image(1, 2)
    vmid = system.boot_vm(image, cpu=cpu)
    vm_pfn = system.vm_pages(vmid)[0]
    results.append(
        AttackResult(
            name="map-vm-page-into-kserv",
            succeeded=system.kserv.try_map_foreign_page(cpu, vm_pfn),
        )
    )

    # --- map a KCore page into KServ ----------------------------------
    kcore_pfn = system.kcore_pages()[0]
    results.append(
        AttackResult(
            name="map-kcore-page-into-kserv",
            succeeded=system.kserv.try_map_foreign_page(cpu, kcore_pfn),
        )
    )

    # --- DMA into VM memory -------------------------------------------
    results.append(
        AttackResult(
            name="dma-into-vm-page",
            succeeded=system.kserv.try_dma_attack(cpu, device_id=3, pfn=vm_pfn),
        )
    )

    # --- boot a tampered image ----------------------------------------
    system2 = SeKVMSystem(version=version)
    tampered_ok = True
    try:
        system2.kserv.create_and_boot_vm(
            cpu, image=[11, 12, 13], tamper={1: 999}
        )
    except HypercallError:
        tampered_ok = False
    results.append(
        AttackResult(name="boot-tampered-image", succeeded=tampered_ok)
    )

    # --- reclaim a VM page without scrubbing --------------------------
    system3 = SeKVMSystem(version=version)
    image3, _ = make_image(42)
    vmid3 = system3.boot_vm(image3, cpu=cpu)
    pfn3 = system3.vm_pages(vmid3)[0]
    unscrubbed = True
    try:
        system3.kcore.s2page.note_unmapped(pfn3)  # simulate unmap
        system3.kcore.s2page.reclaim(pfn3, scrubbed=False)
    except SecurityViolation:
        unscrubbed = False
    results.append(
        AttackResult(name="reclaim-without-scrub", succeeded=unscrubbed)
    )

    # --- double donation (ownership confusion) ------------------------
    system4 = SeKVMSystem(version=version)
    image4, _ = make_image(5)
    vmid4 = system4.boot_vm(image4, cpu=cpu)
    vmid5 = system4.boot_vm(image4, cpu=cpu)
    stolen_pfn = system4.vm_pages(vmid4)[0]
    double = True
    try:
        system4.kcore.s2page.donate_to_vm(stolen_pfn, vmid5)
    except HypercallError:
        double = False
    results.append(
        AttackResult(name="double-donate-vm-page", succeeded=double)
    )

    return results


def all_attacks_refused(version: Optional[KVMVersion] = None) -> bool:
    return not any(r.succeeded for r in run_attack_battery(version))
