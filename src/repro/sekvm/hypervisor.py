"""Whole-system composition: machine + KCore + KServ (+ VMs).

:class:`SeKVMSystem` wires the pieces together for a given verified KVM
version and machine size, and provides the scenario helpers the security
checks and examples drive: boot VMs with authenticated images, run guest
work on vCPUs, exercise DMA, tear down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError
from repro.mmu.smmu import SMMU
from repro.sekvm.kcore import KCore
from repro.sekvm.kserv import KServ
from repro.sekvm.physmem import PhysicalMemory
from repro.sekvm.s2page import vm_owner
from repro.sekvm.versions import KVMVersion, default_version
from repro.sekvm.vm import image_digest


class SeKVMSystem:
    """A booted SeKVM machine."""

    def __init__(
        self,
        total_pages: int = 256,
        cpus: int = 8,
        version: Optional[KVMVersion] = None,
        kcore_reserved: int = 16,
    ):
        self.version = version or default_version()
        self.cpus = cpus
        self.memory = PhysicalMemory(total_pages)
        self.smmu = SMMU(levels=self.version.s2_levels)
        # KCore reserves the top pages for its own state & page pools.
        reserved = range(total_pages - kcore_reserved, total_pages)
        self.kcore = KCore(
            memory=self.memory,
            s2_levels=self.version.s2_levels,
            va_bits_per_level=self.version.va_bits_per_level,
            kcore_reserved_pages=reserved,
            smmu=self.smmu,
        )
        self.kserv = KServ(self.kcore)

    # ------------------------------------------------------------------
    def boot_vm(
        self,
        image: Sequence[int],
        vcpus: int = 1,
        cpu: int = 0,
    ) -> int:
        """Create, authenticate, and boot a VM; returns the vmid."""
        return self.kserv.create_and_boot_vm(cpu, image, vcpus=vcpus)

    def run_guest_work(
        self, vmid: int, vcpu_id: int, cpu: int, writes: Dict[int, int]
    ) -> None:
        """Run a vCPU on *cpu* and perform guest memory writes."""
        self.kcore.run_vcpu(cpu, vmid, vcpu_id)
        try:
            for vpn, value in writes.items():
                if not self.kcore.vms[vmid].s2pt.is_mapped(vpn):
                    # Guest touches a new page: stage-2 fault -> KServ
                    # allocates and asks KCore to donate+map.
                    pfn = self.kserv.alloc_page()
                    self.kcore.grant_vm_page(cpu, vmid, vpn, pfn)
                self.kcore.vm_write(vmid, vpn, value)
        finally:
            self.kcore.stop_vcpu(cpu, vmid, vcpu_id)

    def guest_read(self, vmid: int, vpn: int) -> int:
        return self.kcore.vm_read(vmid, vpn)

    def teardown_vm(self, vmid: int, cpu: int = 0) -> int:
        return self.kcore.teardown_vm(cpu, vmid)

    # ------------------------------------------------------------------
    def kcore_pages(self) -> List[int]:
        from repro.sekvm.s2page import KCORE

        return list(self.kcore.s2page.pages_owned_by(KCORE))

    def vm_pages(self, vmid: int) -> List[int]:
        return list(self.kcore.s2page.pages_owned_by(vm_owner(vmid)))


def make_image(*contents: int) -> Tuple[List[int], str]:
    """A VM image (page contents) and its measurement."""
    image = list(contents)
    return image, image_digest(image)
