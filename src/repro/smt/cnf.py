"""CNF construction helpers on top of :class:`repro.smt.sat.Solver`.

:class:`CnfBuilder` owns a clause list plus a variable counter and
provides the gate vocabulary the encoder needs: Tseitin AND/OR gates
(cached, so structurally equal gates share one variable), pairwise
exactly-one constraints for one-hot finite-domain variables, and the
constant literals ``TRUE``/``FALSE`` (variable 1, pinned by a unit
clause, so constants are ordinary literals everywhere — in particular
in blocking clauses and models).

The builder is solver-agnostic: it accumulates clauses, and
:meth:`CnfBuilder.solver` instantiates a fresh :class:`Solver` over
them.  Queries that must not pollute each other (a violation query vs.
AllSAT enumeration) each get their own solver from the same clause
list.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.smt.sat import Solver

__all__ = ["CnfBuilder"]


class CnfBuilder:
    """Accumulates CNF clauses with Tseitin gates and one-hot helpers."""

    def __init__(self) -> None:
        self._nvars = 1  # variable 1 is the TRUE constant
        self._clauses: List[Tuple[int, ...]] = [(1,)]
        self._gate_cache: Dict[Tuple[str, Tuple[int, ...]], int] = {}

    @property
    def TRUE(self) -> int:
        """Literal that is true in every model."""
        return 1

    @property
    def FALSE(self) -> int:
        """Literal that is false in every model."""
        return -1

    @property
    def num_vars(self) -> int:
        """Variables allocated so far (including the constant)."""
        return self._nvars

    @property
    def num_clauses(self) -> int:
        """Clauses accumulated so far."""
        return len(self._clauses)

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its positive literal."""
        self._nvars += 1
        return self._nvars

    def add(self, *lits: int) -> None:
        """Add one clause (a disjunction of literals)."""
        self._clauses.append(tuple(lits))

    def implies(self, antecedent: Sequence[int], consequent: int) -> None:
        """``antecedent[0] ∧ … ∧ antecedent[n] → consequent``."""
        self.add(*[-lit for lit in antecedent], consequent)

    # ------------------------------------------------------------------
    # Tseitin gates

    def and_gate(self, lits: Iterable[int]) -> int:
        """A literal equivalent to the conjunction of *lits*."""
        unique = sorted(set(lits))
        if self.FALSE in unique:
            return self.FALSE
        unique = [lit for lit in unique if lit != self.TRUE]
        if not unique:
            return self.TRUE
        if len(unique) == 1:
            return unique[0]
        key = ("and", tuple(unique))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        y = self.new_var()
        for lit in unique:
            self.add(-y, lit)
        self.add(y, *[-lit for lit in unique])
        self._gate_cache[key] = y
        return y

    def or_gate(self, lits: Iterable[int]) -> int:
        """A literal equivalent to the disjunction of *lits*."""
        unique = sorted(set(lits))
        if self.TRUE in unique:
            return self.TRUE
        unique = [lit for lit in unique if lit != self.FALSE]
        if not unique:
            return self.FALSE
        if len(unique) == 1:
            return unique[0]
        key = ("or", tuple(unique))
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        y = self.new_var()
        for lit in unique:
            self.add(-lit, y)
        self.add(-y, *unique)
        self._gate_cache[key] = y
        return y

    # ------------------------------------------------------------------
    # one-hot (finite-domain) helpers

    def exactly_one(self, lits: Sequence[int]) -> None:
        """At least one and at most one of *lits* (pairwise encoding)."""
        assert lits, "exactly_one over an empty domain"
        self.add(*lits)
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                self.add(-lits[i], -lits[j])

    def one_hot(self, values: Iterable[int]) -> Dict[int, int]:
        """Fresh exactly-one selector variables, one per domain value."""
        sel = {value: self.new_var() for value in values}
        self.exactly_one(list(sel.values()))
        return sel

    # ------------------------------------------------------------------
    # solver handoff

    def solver(self, extra: Iterable[Sequence[int]] = ()) -> Solver:
        """A fresh :class:`Solver` over the accumulated clauses + *extra*."""
        s = Solver()
        for _ in range(self._nvars):
            s.new_var()
        for clause in self._clauses:
            if not s.add_clause(clause):
                break
        else:
            for clause in extra:
                if not s.add_clause(clause):
                    break
        return s

    def to_dimacs(self) -> str:
        """The accumulated clause set in DIMACS CNF format."""
        lines = [f"p cnf {self._nvars} {len(self._clauses)}"]
        for clause in self._clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"
