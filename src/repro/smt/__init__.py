"""SAT/BMC verification backend (ROADMAP item 3).

A second, solver-based verification engine beside the explicit-state
explorer: :mod:`repro.smt.sat` is a zero-dependency CDCL SAT solver
(with optional DIMACS emission for external solvers), :mod:`repro.smt.
encode` compiles the eligible straight-line fragment of the kernel IR —
together with the repo's validated axiomatic memory model — into CNF,
and :mod:`repro.smt.backend` answers the same questions the explorer
answers (litmus behavior sets, wDRF condition verdicts) by bounded
model checking over that encoding.  :mod:`repro.smt.router` picks the
cheaper backend per query from a small cost model, behind the
``REPRO_BACKEND={explore,bmc,auto}`` knob, with ``REPRO_BACKEND_CHECK=1``
running both engines and raising on any verdict disagreement.
"""

from repro.smt.backend import (
    BmcStats,
    bmc_behaviors,
    bmc_condition_results,
    bmc_explore,
    bmc_supported,
    bmc_witness_trace,
)
from repro.smt.encode import ProgramEncoding, Unsupported
from repro.smt.router import (
    RouteDecision,
    backend_check_enabled,
    backend_default,
    decide,
    route,
)
from repro.smt.sat import SatStats, Solver

__all__ = [
    "BmcStats",
    "ProgramEncoding",
    "RouteDecision",
    "SatStats",
    "Solver",
    "Unsupported",
    "backend_check_enabled",
    "backend_default",
    "bmc_behaviors",
    "bmc_condition_results",
    "bmc_explore",
    "bmc_supported",
    "bmc_witness_trace",
    "decide",
    "route",
]
